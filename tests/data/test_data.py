"""Tests for the synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CENSUS_DEFAULT_ROWS,
    CENSUS_DIMENSIONS,
    census_sample,
    gaussian_mixture,
)


class TestCensus:
    def test_shape_defaults_match_paper(self):
        assert CENSUS_DIMENSIONS == 68
        assert CENSUS_DEFAULT_ROWS == 200_000
        data = census_sample(500)
        assert data.shape == (500, 68)

    def test_integer_codes(self):
        data = census_sample(300, seed=1)
        assert np.array_equal(data, np.round(data))
        assert data.min() >= 0

    def test_attribute_cardinalities_respected(self):
        data = census_sample(2000, seed=2)
        # first attribute is binary (cardinality 2)
        assert set(np.unique(data[:, 0])) <= {0.0, 1.0}

    def test_deterministic(self):
        a = census_sample(200, seed=3)
        b = census_sample(200, seed=3)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        assert not np.array_equal(census_sample(200, seed=1),
                                  census_sample(200, seed=2))

    def test_clusterable_structure(self):
        # k-means on the census data must beat a single global centroid
        from repro.apps import kmeans_reference, sse

        data = census_sample(3000, noise=0.3, num_profiles=6, seed=0)
        cents = kmeans_reference(data, 6, threshold=0.01, seed=0)
        one = data.mean(0, keepdims=True)
        assert sse(data, cents) < 0.8 * sse(data, one)

    def test_noise_increases_spread(self):
        lo = census_sample(3000, noise=0.05, seed=0)
        hi = census_sample(3000, noise=0.9, seed=0)
        assert hi.var(axis=0).mean() > lo.var(axis=0).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            census_sample(0)
        with pytest.raises(ValueError):
            census_sample(10, noise=1.5)
        with pytest.raises(ValueError):
            census_sample(10, num_profiles=0)

    def test_custom_dims(self):
        assert census_sample(50, num_dims=10).shape == (50, 10)


class TestGaussianMixture:
    def test_shapes(self):
        pts, labels = gaussian_mixture(500, 4, num_dims=3, seed=0)
        assert pts.shape == (500, 3)
        assert labels.shape == (500,)
        assert set(np.unique(labels)) <= set(range(4))

    def test_separated_clusters_tight(self):
        pts, labels = gaussian_mixture(2000, 3, spread=0.1, box=20.0, seed=1)
        for c in range(3):
            members = pts[labels == c]
            assert members.std(axis=0).max() < 0.2

    def test_deterministic(self):
        a, _ = gaussian_mixture(100, 2, seed=7)
        b, _ = gaussian_mixture(100, 2, seed=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(2, 5)
        with pytest.raises(ValueError):
            gaussian_mixture(0, 1)
