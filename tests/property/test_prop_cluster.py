"""Property-based tests for the cluster simulator's scheduling laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import CostModel, SimCluster, ZERO_COST, ec2_nodes
from repro.engine import lpt_schedule, speculative_schedule, submission_order_schedule

costs_lists = st.lists(st.floats(0.0, 50.0, allow_nan=False),
                       min_size=0, max_size=40)


class TestSchedulingLaws:
    @settings(deadline=None, max_examples=60)
    @given(costs_lists)
    def test_makespan_between_bounds(self, costs):
        cl = SimCluster(ec2_nodes(), ZERO_COST)
        lb = cl.lower_bound_makespan(costs)
        res = cl.run_map_phase(costs)
        assert res.makespan >= lb - 1e-9
        assert res.makespan <= sum(costs) + 1e-9  # never worse than serial

    @settings(deadline=None, max_examples=60)
    @given(costs_lists)
    def test_trace_never_overlaps(self, costs):
        cl = SimCluster(ec2_nodes(2), ZERO_COST)
        cl.run_map_phase(costs)
        cl.trace.check_no_overlap()

    @settings(deadline=None, max_examples=40)
    @given(costs_lists, st.integers(min_value=1, max_value=4))
    def test_more_nodes_never_slower(self, costs, extra):
        small = SimCluster(ec2_nodes(1), ZERO_COST).run_map_phase(costs)
        big = SimCluster(ec2_nodes(1 + extra), ZERO_COST).run_map_phase(costs)
        assert big.makespan <= small.makespan + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(costs_lists)
    def test_lpt_completion_covers_all_tasks(self, costs):
        out = lpt_schedule(costs, ec2_nodes(2))
        assert len(out.completion) == len(costs)
        if costs:
            assert out.makespan == pytest.approx(max(out.completion))

    @settings(deadline=None, max_examples=40)
    @given(costs_lists)
    def test_submission_order_within_greedy_bounds(self, costs):
        # any greedy list schedule stays between the area bound and the
        # serial sum, and covers every task
        nodes = ec2_nodes(2, speeds=[1.0, 0.5])
        out = submission_order_schedule(costs, nodes)
        assert len(out.completion) == len(costs)
        assert out.makespan <= sum(costs) / min(1.0, 0.5) + 1e-9
        if costs:
            assert out.makespan == pytest.approx(max(out.completion))

    @settings(deadline=None, max_examples=40)
    @given(costs_lists, st.floats(min_value=1.1, max_value=3.0))
    def test_speculation_never_hurts(self, costs, threshold):
        nodes = ec2_nodes(2, speeds=[1.0, 0.3])
        f = lpt_schedule(costs, nodes)
        s = speculative_schedule(costs, nodes, slowdown_threshold=threshold)
        assert s.makespan <= f.makespan + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.0, 1e9), st.floats(0.0, 1e9))
    def test_shuffle_charge_additive_superadditive(self, a, b):
        cm = CostModel()
        # one combined transfer is at most as costly as two separate ones
        # (a single latency term instead of two)
        assert cm.shuffle_seconds(a + b) <= (
            cm.shuffle_seconds(a) + cm.shuffle_seconds(b) + 1e-9)

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.0, 1e9))
    def test_dfs_roundtrip_monotone(self, nbytes):
        cm = CostModel()
        assert cm.dfs_write_seconds(nbytes) >= 0
        assert cm.dfs_read_seconds(nbytes) <= cm.dfs_write_seconds(nbytes) \
            or nbytes == 0
