"""Property-based tests for the graph substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    DiGraph,
    Partition,
    bfs_partition,
    chunk_partition,
    hash_partition,
    loads_adjacency,
    dumps_adjacency,
    multilevel_partition,
    random_partition,
)


@st.composite
def digraphs(draw, max_nodes=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    w = draw(st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=m, max_size=m))
    return DiGraph(n, src, dst, w)


class TestDigraphProperties:
    @settings(deadline=None, max_examples=60)
    @given(digraphs())
    def test_degree_sums_equal_edge_count(self, g):
        assert g.out_degree().sum() == g.num_edges
        assert g.in_degree().sum() == g.num_edges

    @settings(deadline=None, max_examples=60)
    @given(digraphs())
    def test_reverse_preserves_edge_multiset(self, g):
        r = g.reverse()
        fwd = sorted(zip(g.edge_src.tolist(), g.out_dst.tolist(), g.out_w.tolist()))
        rev = sorted(zip(r.out_dst.tolist(), r.edge_src.tolist(), r.out_w.tolist()))
        assert fwd == rev

    @settings(deadline=None, max_examples=40)
    @given(digraphs())
    def test_io_roundtrip_identity(self, g):
        assert loads_adjacency(dumps_adjacency(g)) == g

    @settings(deadline=None, max_examples=60)
    @given(digraphs())
    def test_successor_slices_partition_edges(self, g):
        total = sum(len(g.successors(u)) for u in range(g.num_nodes))
        assert total == g.num_edges

    @settings(deadline=None, max_examples=40)
    @given(digraphs())
    def test_undirected_csr_degree_symmetry(self, g):
        ptr, nbr, w = g.undirected_csr()
        src = np.repeat(np.arange(g.num_nodes), np.diff(ptr))
        # undirected view: (u, v) present iff (v, u) present, same weight
        # (up to float summation order when merging parallel edges)
        table = {(int(a), int(b)): float(c) for a, b, c in zip(src, nbr, w)}
        for (u, v), weight in table.items():
            assert table[(v, u)] == pytest.approx(weight, rel=1e-9)


class TestPartitionProperties:
    @settings(deadline=None, max_examples=40)
    @given(digraphs(), st.integers(min_value=1, max_value=12),
           st.sampled_from(["multilevel", "bfs", "chunk", "hash", "random"]))
    def test_partition_is_always_valid_cover(self, g, k, method):
        from repro.graph import partition_graph

        p = partition_graph(g, k, method=method, seed=0)
        p.validate()
        assert p.part_sizes().sum() == g.num_nodes
        assert (p.assign >= 0).all() and (p.assign < p.k).all()

    @settings(deadline=None, max_examples=40)
    @given(digraphs(), st.integers(min_value=1, max_value=8))
    def test_cut_plus_internal_equals_edges(self, g, k):
        p = hash_partition(g, k)
        internal = (~p.cut_edge_mask()).sum()
        assert internal + p.edge_cut() == g.num_edges

    @settings(deadline=None, max_examples=40)
    @given(digraphs(), st.integers(min_value=1, max_value=8))
    def test_boundary_internal_disjoint_cover(self, g, k):
        p = random_partition(g, k, seed=1)
        b = set(p.boundary_nodes().tolist())
        i = set(p.internal_nodes().tolist())
        assert b.isdisjoint(i)
        assert b | i == set(range(g.num_nodes))

    @settings(deadline=None, max_examples=30)
    @given(digraphs(max_nodes=30, max_edges=80),
           st.integers(min_value=2, max_value=6))
    def test_multilevel_never_worse_than_worst_random(self, g, k):
        # sanity: the refined cut is never worse than 10 random tries' worst
        ml = multilevel_partition(g, k, seed=0).edge_cut()
        worst = max(random_partition(g, k, seed=s).edge_cut() for s in range(10))
        assert ml <= worst + max(1, g.num_edges // 10)

    @settings(deadline=None, max_examples=30)
    @given(digraphs(), st.integers(min_value=1, max_value=6))
    def test_bfs_chunk_balanced(self, g, k):
        for fn in (bfs_partition, chunk_partition):
            p = fn(g, k) if fn is chunk_partition else fn(g, k, seed=0)
            sizes = p.part_sizes()
            assert sizes.max() - sizes.min() <= max(1, g.num_nodes // k + 1)
