"""Property-based tests for the applications' core invariants.

PageRank: General and Eager agree with the dense oracle on arbitrary
graphs and partitionings.  SSSP: always exactly Dijkstra.  K-Means:
centroids are means, the objective never increases under general Lloyd
steps.  These run on random graphs, not just the tuned paper inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import (
    kmeans_reference,
    pagerank,
    pagerank_reference,
    sssp,
    sssp_reference,
    connected_components,
    components_reference,
)
from repro.graph import DiGraph, partition_graph


@st.composite
def graph_and_partition(draw, max_nodes=30, max_edges=90):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    w = draw(st.lists(st.floats(0.5, 20.0, allow_nan=False),
                      min_size=m, max_size=m))
    g = DiGraph(n, src, dst, w)
    k = draw(st.integers(min_value=1, max_value=min(6, n)))
    method = draw(st.sampled_from(["multilevel", "chunk", "hash"]))
    return g, partition_graph(g, k, method=method, seed=0)


class TestPageRankProperties:
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_partition(), st.sampled_from(["general", "eager"]))
    def test_agrees_with_oracle_on_any_graph(self, gp, mode):
        g, part = gp
        res = pagerank(g, part, mode=mode, tol=1e-7)
        expected = pagerank_reference(g, tol=1e-10)
        assert np.abs(res.ranks - expected).max() < 1e-4

    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_partition())
    def test_ranks_bounded(self, gp):
        g, part = gp
        ranks = pagerank(g, part, mode="eager").ranks
        # rank >= teleport mass; total rank bounded by n/(1-d) trivially
        assert np.all(ranks >= 0.15 - 1e-9)
        assert np.all(np.isfinite(ranks))


class TestSsspProperties:
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_partition(), st.sampled_from(["general", "eager"]))
    def test_exactly_dijkstra(self, gp, mode):
        g, part = gp
        res = sssp(g, part, source=0, mode=mode)
        expected = sssp_reference(g, source=0)
        assert np.allclose(res.distances, expected)

    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_partition())
    def test_triangle_inequality_on_edges(self, gp):
        g, part = gp
        dist = sssp(g, part, mode="eager").distances
        src, dst, w = g.edge_arrays()
        finite = np.isfinite(dist[src])
        assert np.all(dist[dst[finite]] <= dist[src[finite]] + w[finite] + 1e-9)


class TestComponentsProperties:
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_partition(), st.sampled_from(["general", "eager"]))
    def test_exactly_scipy(self, gp, mode):
        g, part = gp
        res = connected_components(g, part, mode=mode)
        assert np.array_equal(res.labels, components_reference(g))


class TestKMeansProperties:
    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=100))
    def test_centroids_are_member_means(self, k, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(60, 3))
        cents = kmeans_reference(pts, k, threshold=1e-9, seed=seed)
        from repro.apps import assign_points

        a = assign_points(pts, cents)
        for j in range(k):
            members = pts[a == j]
            if len(members):
                assert np.allclose(cents[j], members.mean(0), atol=1e-6)

    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=1, max_value=6))
    def test_general_matches_reference_any_partitioning(self, k, seed, parts):
        from repro.apps import kmeans

        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(80, 2)) * 3
        got = kmeans(pts, k, mode="general", threshold=1e-4,
                     num_partitions=parts, seed=seed)
        expected = kmeans_reference(pts, k, threshold=1e-4, seed=seed)
        assert np.allclose(got.centroids, expected, atol=1e-6)
