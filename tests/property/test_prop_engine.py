"""Property-based tests (hypothesis) for the MapReduce engine.

Invariants: shuffle loses nothing; combiners never change reduce output
for associative-commutative reducers; executors and fault injection are
observationally equivalent; stable_hash is total and stable on supported
key types.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import (
    FaultPlan,
    HashPartitioner,
    Job,
    JobConf,
    MapReduceRuntime,
    ShuffleBuffer,
    shuffle,
    stable_hash,
)

# -- strategies ---------------------------------------------------------

words = st.text(alphabet="abcdefg", min_size=1, max_size=4)
docs = st.lists(st.lists(words, max_size=8).map(" ".join), min_size=0, max_size=8)

key_scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
    st.binary(max_size=8),
)
keys = st.one_of(key_scalars, st.tuples(key_scalars, key_scalars))


def _wc_map(key, value, ctx):
    for w in value.split():
        ctx.emit(w, 1)


def _wc_reduce(key, values, ctx):
    ctx.emit(key, sum(values))


def _split(documents, n):
    out = [[] for _ in range(n)]
    for i, d in enumerate(documents):
        out[i % n].append((i, d))
    return out


def _expected(documents):
    c: Counter = Counter()
    for d in documents:
        c.update(d.split())
    return dict(c)


class TestShuffleProperties:
    @given(st.lists(st.lists(st.tuples(words, st.integers()), max_size=10),
                    min_size=1, max_size=5),
           st.integers(min_value=1, max_value=6))
    def test_no_pair_lost_or_duplicated(self, map_outputs, num_reducers):
        part = HashPartitioner()
        buckets = []
        for pairs in map_outputs:
            b = [[] for _ in range(num_reducers)]
            for k, v in pairs:
                b[part(k, num_reducers)].append((k, v))
            buckets.append(b)
        grouped = shuffle(buckets, num_reducers)
        regrouped = Counter()
        for r in grouped:
            for k, vs in r:
                regrouped[k] += len(vs)
        original = Counter(k for pairs in map_outputs for k, _ in pairs)
        assert regrouped == original

    @given(st.lists(st.lists(st.tuples(words, st.integers()), max_size=10),
                    min_size=1, max_size=5),
           st.integers(min_value=1, max_value=6),
           st.randoms(use_true_random=False))
    def test_buffer_insertion_order_irrelevant(self, map_outputs,
                                               num_reducers, rng):
        # streaming consumption in ANY completion order must reproduce
        # the batch shuffle exactly (the buffer restores map order)
        part = HashPartitioner()
        buckets = []
        for pairs in map_outputs:
            b = [[] for _ in range(num_reducers)]
            for k, v in pairs:
                b[part(k, num_reducers)].append((k, v))
            buckets.append(b)
        order = list(range(len(buckets)))
        rng.shuffle(order)
        buf = ShuffleBuffer(len(buckets), num_reducers)
        for m in order:
            buf.add(m, buckets[m])
        assert buf.groups() == shuffle(buckets, num_reducers)

    @given(st.lists(st.tuples(words, st.integers()), max_size=30),
           st.integers(min_value=1, max_value=4))
    def test_each_key_exactly_one_reducer(self, pairs, num_reducers):
        part = HashPartitioner()
        buckets = [[[] for _ in range(num_reducers)]]
        for k, v in pairs:
            buckets[0][part(k, num_reducers)].append((k, v))
        grouped = shuffle(buckets, num_reducers)
        owners = {}
        for r, groups in enumerate(grouped):
            for k, _ in groups:
                assert k not in owners
                owners[k] = r


class TestStableHash:
    @given(keys)
    def test_total_and_self_consistent(self, key):
        assert stable_hash(key) == stable_hash(key)
        assert isinstance(stable_hash(key), int)

    @given(keys, st.integers(min_value=1, max_value=64))
    def test_partitioner_in_range(self, key, r):
        assert 0 <= HashPartitioner()(key, r) < r


class TestJobProperties:
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(docs, st.integers(min_value=1, max_value=4))
    def test_wordcount_correct_any_input(self, documents, reducers):
        job = Job(_wc_map, _wc_reduce, conf=JobConf(num_reducers=reducers))
        res = MapReduceRuntime("serial").run(job, _split(documents, 3))
        assert res.as_dict() == _expected(documents)

    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(docs)
    def test_combiner_never_changes_output(self, documents):
        base = Job(_wc_map, _wc_reduce, conf=JobConf(num_reducers=3))
        combined = Job(_wc_map, _wc_reduce, combine_fn=_wc_reduce,
                       conf=JobConf(num_reducers=3))
        rt = MapReduceRuntime("serial")
        splits = _split(documents, 2)
        assert rt.run(base, splits).as_dict() == rt.run(combined, splits).as_dict()

    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(docs, st.integers(min_value=0, max_value=10_000))
    def test_fault_injection_observationally_equivalent(self, documents, seed):
        job = Job(_wc_map, _wc_reduce, conf=JobConf(num_reducers=2))
        splits = _split(documents, 3)
        clean = MapReduceRuntime("serial").run(job, splits)
        faulty = MapReduceRuntime(
            "serial", fault_plan=FaultPlan.random(0.3, seed=seed)
        ).run(job, splits)
        assert clean.as_dict() == faulty.as_dict()

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(docs)
    def test_thread_executor_equivalent(self, documents):
        job = Job(_wc_map, _wc_reduce, conf=JobConf(num_reducers=2))
        splits = _split(documents, 3)
        serial = MapReduceRuntime("serial").run(job, splits)
        with MapReduceRuntime("threads", workers=3) as rt:
            threads = rt.run(job, splits)
        assert serial.as_dict() == threads.as_dict()

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(docs, st.integers(min_value=0, max_value=10_000))
    def test_eager_reduce_equivalent_under_faults(self, documents, seed):
        # streaming pipeline + immediate retries vs the serial barrier
        # reference: byte-identical output, with and without faults
        splits = _split(documents, 3)
        barrier = MapReduceRuntime("serial").run(
            Job(_wc_map, _wc_reduce, conf=JobConf(num_reducers=2)), splits)
        eager_job = Job(_wc_map, _wc_reduce,
                        conf=JobConf(num_reducers=2, eager_reduce=True))
        with MapReduceRuntime(
                "threads", workers=3,
                fault_plan=FaultPlan.random(0.3, seed=seed)) as rt:
            eager = rt.run(eager_job, splits)
        assert eager.output == barrier.output
