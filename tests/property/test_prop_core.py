"""Property-based tests for the core driver, local loop, and solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    DriverConfig,
    InfNormCriterion,
    UnchangedCriterion,
    run_local_mapreduce,
)

from tests.core.test_localmr import CountdownSpec


class TestLocalLoopProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.dictionaries(st.text(alphabet="abc", min_size=1, max_size=2),
                           st.integers(min_value=0, max_value=20),
                           min_size=1, max_size=6),
           st.integers(min_value=1, max_value=40))
    def test_countdown_semantics(self, table, cap):
        xs = list(table.items())
        res = run_local_mapreduce(CountdownSpec(), xs, max_local_iters=cap)
        expected_iters = min(cap, max(max(table.values()), 1))
        assert res.local_iters == expected_iters
        for k, v in table.items():
            assert res.table[k] == max(0, v - res.local_iters)

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                    max_size=8))
    def test_converged_iff_all_zero(self, values):
        xs = [(i, v) for i, v in enumerate(values)]
        res = run_local_mapreduce(CountdownSpec(), xs, max_local_iters=100)
        assert res.converged
        assert all(v == 0 for v in res.table.values())


class TestCriterionProperties:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                    max_size=20),
           st.floats(1e-9, 1e3))
    def test_infnorm_symmetric_in_sign(self, vals, tol):
        a = np.asarray(vals)
        c1, c2 = InfNormCriterion(tol), InfNormCriterion(tol)
        assert c1.update(np.zeros_like(a), a) == c2.update(a, np.zeros_like(a))
        assert c1.last_residual == pytest.approx(c2.last_residual)

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1,
                    max_size=20))
    def test_unchanged_reflexive(self, vals):
        a = np.asarray(vals)
        assert UnchangedCriterion().update(a, a.copy())

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                    max_size=10),
           st.integers(0, 9))
    def test_unchanged_detects_any_change(self, vals, idx):
        a = np.asarray(vals)
        b = a.copy()
        b[idx % len(b)] += 1.0
        assert not UnchangedCriterion().update(a, b)


class TestJacobiProperties:
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=4),
           st.sampled_from(["general", "eager"]))
    def test_random_dominant_systems_solved(self, seed, k, mode):
        from repro.apps import jacobi_solve, make_diagonally_dominant_system
        from repro.graph import chunk_partition, random_digraph

        g = random_digraph(30, 80, seed=seed)
        part = chunk_partition(g, k)
        system = make_diagonally_dominant_system(part, dominance=2.0,
                                                 seed=seed)
        res = jacobi_solve(system, part, mode=mode, tol=1e-10)
        exact = np.linalg.solve(system.dense(), system.b)
        assert np.abs(res.x - exact).max() < 1e-6


class TestDriverConfigProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.sampled_from(["general", "eager"]),
           st.integers(min_value=1, max_value=500))
    def test_effective_local_iters(self, mode, mli):
        cfg = DriverConfig(mode=mode, max_local_iters=mli)
        if mode == "general":
            assert cfg.effective_local_iters == 1
        else:
            assert cfg.effective_local_iters == mli
