"""Tests for the benchmark harness (repro.bench) at tiny scale."""

from __future__ import annotations

import pytest

from repro.bench import (
    PAPER_KMEANS_THRESHOLDS,
    PAPER_PARTITION_COUNTS,
    SweepPoint,
    SweepResult,
    get_graph,
    get_partition,
    graph_scale,
    kmeans_rows,
    kmeans_sweep,
    make_cluster,
    pagerank_sweep,
    report_sweep,
    scaled_partitions,
    speedup_summary,
)

TINY = 0.002  # ~560-node Graph A: fast enough for unit tests


class TestScaleHandling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert graph_scale() == 0.1

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert graph_scale() == 1.0
        assert kmeans_rows() == 200_000

    def test_fractional_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert graph_scale() == 0.25

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "3.0")
        with pytest.raises(ValueError):
            graph_scale()

    def test_scaled_partitions_regime(self):
        pairs = scaled_partitions(0.1)
        assert [p for p, _ in pairs] == list(PAPER_PARTITION_COUNTS)
        assert pairs[0][1] == 10  # 100 * 0.1
        # minimum of 2 partitions even at tiny scales
        assert all(k >= 2 for _, k in scaled_partitions(1e-6))


class TestCachedInputs:
    def test_graph_cached(self):
        assert get_graph("A", TINY) is get_graph("A", TINY)

    def test_partition_cached_and_consistent(self):
        p1 = get_partition("A", TINY, 4)
        p2 = get_partition("A", TINY, 4)
        assert p1 is p2
        assert p1.graph is get_graph("A", TINY)

    def test_weighted_variant_distinct(self):
        g = get_graph("A", TINY)
        gw = get_graph("A", TINY, weighted=True)
        assert g is not gw
        assert gw.num_edges == g.num_edges

    def test_make_cluster_fresh(self):
        a, b = make_cluster(), make_cluster()
        assert a is not b
        assert len(a.nodes) == 8


class TestSweeps:
    @pytest.fixture(scope="class")
    def tiny_sweep(self):
        return pagerank_sweep("A", scale=TINY)

    def test_sweep_has_both_modes_per_point(self, tiny_sweep):
        xs_e, _ = tiny_sweep.series("eager")
        xs_g, _ = tiny_sweep.series("general")
        assert xs_e == xs_g
        assert len(xs_e) >= 3

    def test_point_lookup(self, tiny_sweep):
        p = tiny_sweep.point("eager", tiny_sweep.points[0].x)
        assert isinstance(p, SweepPoint)
        with pytest.raises(KeyError):
            tiny_sweep.point("eager", -1)

    def test_all_points_converged(self, tiny_sweep):
        assert all(p.converged for p in tiny_sweep.points)

    def test_sim_times_positive(self, tiny_sweep):
        assert all(p.sim_time > 0 for p in tiny_sweep.points)

    def test_kmeans_sweep_thresholds(self):
        result = kmeans_sweep(rows=2000, k=4, partitions=8)
        xs, _ = result.series("general")
        assert tuple(xs) == PAPER_KMEANS_THRESHOLDS


class TestReporting:
    @pytest.fixture(scope="class")
    def sweep(self):
        return pagerank_sweep("A", scale=TINY)

    def test_report_contains_series(self, sweep):
        out = report_sweep(sweep, value="iterations", title="Fig X")
        assert "Fig X" in out
        assert "series Eager" in out and "series General" in out
        assert "General/Eager" in out

    def test_speedup_summary_fields(self, sweep):
        s = speedup_summary(sweep)
        assert set(s) == {"mean", "max", "min"}
        assert s["min"] <= s["mean"] <= s["max"]

    def test_speedup_positive(self, sweep):
        assert speedup_summary(sweep)["mean"] > 1.0

    def test_empty_sweep_summary(self):
        empty = SweepResult(name="empty", points=[])
        s = speedup_summary(empty)
        assert s["mean"] != s["mean"]  # NaN
