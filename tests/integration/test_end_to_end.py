"""Cross-module integration tests: full pipelines through real substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    pagerank,
    pagerank_reference,
    sssp,
    sssp_reference,
    wordcount,
)
from repro.apps.pagerank import PageRankKVSpec
from repro.cluster import HPC_DEFAULTS, SimCluster, ec2_nodes
from repro.core import DriverConfig, run_iterative_kv
from repro.engine import FaultPlan, MapReduceRuntime
from repro.graph import (
    attach_random_weights,
    dumps_adjacency,
    loads_adjacency,
    multilevel_partition,
    preferential_attachment,
)


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment(250, num_conn=3, locality_prob=0.92,
                                   community_mean=30, seed=3)


@pytest.fixture(scope="module")
def partition(graph):
    return multilevel_partition(graph, 4, seed=0)


class TestSerializationPipeline:
    def test_pagerank_survives_io_roundtrip(self, graph, partition):
        # write graph to the adjacency format, read it back, recompute
        g2 = loads_adjacency(dumps_adjacency(graph))
        p2 = multilevel_partition(g2, 4, seed=0)
        a = pagerank(graph, partition, mode="eager").ranks
        b = pagerank(g2, p2, mode="eager").ranks
        assert np.allclose(a, b, atol=1e-4)


class TestCrossExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_kv_pagerank_same_across_executors(self, graph, partition, executor):
        spec = PageRankKVSpec(graph, partition)
        rt = MapReduceRuntime(executor, workers=4)
        res = run_iterative_kv(spec, DriverConfig(mode="eager"), runtime=rt)
        ranks = np.array([res.state[u][0] for u in range(graph.num_nodes)])
        assert np.abs(ranks - pagerank_reference(graph)).max() < 1e-3

    def test_kv_pagerank_with_faults_identical(self, graph, partition):
        clean = run_iterative_kv(PageRankKVSpec(graph, partition),
                                 DriverConfig(mode="eager"))
        faulty_rt = MapReduceRuntime(
            "serial", fault_plan=FaultPlan.random(0.15, seed=2))
        faulty = run_iterative_kv(PageRankKVSpec(graph, partition),
                                  DriverConfig(mode="eager"), runtime=faulty_rt)
        for u in clean.state:
            assert clean.state[u][0] == pytest.approx(faulty.state[u][0])
        assert clean.global_iters == faulty.global_iters


class TestPlatformSensitivity:
    def test_cloud_gains_exceed_hpc_gains(self, graph, partition):
        # §II: "the performance improvement from algorithmic asynchrony is
        # significantly amplified on distributed platforms"
        def ratio(cost_model):
            gen = pagerank(graph, partition, mode="general",
                           cluster=SimCluster(ec2_nodes(), cost_model))
            eag = pagerank(graph, partition, mode="eager",
                           cluster=SimCluster(ec2_nodes(), cost_model))
            return gen.sim_time / eag.sim_time

        from repro.cluster import EC2_DEFAULTS

        assert ratio(EC2_DEFAULTS) > ratio(HPC_DEFAULTS)

    def test_scalability_larger_cluster_not_slower(self, graph, partition):
        # §VI scalability: more nodes must not increase simulated time
        small = pagerank(graph, partition, mode="eager",
                         cluster=SimCluster(ec2_nodes(2)))
        large = pagerank(graph, partition, mode="eager",
                         cluster=SimCluster(ec2_nodes(16)))
        assert large.sim_time <= small.sim_time + 1e-9


class TestCombinedWorkload:
    def test_pagerank_then_sssp_same_partition(self, graph):
        # one off-line partitioning run serves both applications, as the
        # paper prescribes (§V-B.3: partitioning performed once)
        gw = attach_random_weights(graph, seed=9)
        part = multilevel_partition(gw, 4, seed=0)
        pr = pagerank(gw, part, mode="eager")
        sp = sssp(gw, part, mode="eager")
        assert np.abs(pr.ranks - pagerank_reference(gw)).max() < 1e-3
        assert np.allclose(sp.distances, sssp_reference(gw))

    def test_wordcount_on_simulated_cluster_faulty(self):
        rt = MapReduceRuntime("serial", cluster=SimCluster(),
                              fault_plan=FaultPlan.random(0.2, seed=1))
        docs = [f"alpha beta gamma doc{i}" for i in range(12)]
        res = wordcount(docs, runtime=rt, splits=6)
        assert res.as_dict()["alpha"] == 12
        assert res.sim_time_total > 0


class TestTraceConsistency:
    def test_cluster_trace_valid_after_full_run(self, graph, partition):
        cl = SimCluster()
        pagerank(graph, partition, mode="eager", cluster=cl)
        cl.trace.check_no_overlap()
        assert cl.trace.makespan() <= cl.clock + 1e-9
        phases = cl.trace.phases()
        assert any("map" in p for p in phases)
        assert any("startup" in p for p in phases)

    def test_utilization_bounded(self, graph, partition):
        cl = SimCluster()
        pagerank(graph, partition, mode="general", cluster=cl)
        assert 0.0 < cl.trace.utilization(cl.total_map_slots) <= 1.0
