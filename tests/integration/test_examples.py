"""Smoke tests: every example script runs to completion.

The examples are user-facing documentation; a broken one is a bug.  They
are executed in-process (imported as modules and ``main()`` called) at
reduced output, with a generous-but-bounded runtime expectation.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_async_algorithm.py",
]


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    out = _run_example(name, capsys)
    assert len(out) > 100  # produced a real report


def test_quickstart_reports_speedup(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "Eager speedup" in out
    assert "WordCount" in out


def test_custom_algorithm_correct(capsys):
    out = _run_example("custom_async_algorithm.py", capsys)
    assert "correct=True" in out
    assert "correct=False" not in out


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    expected = {
        "quickstart.py",
        "web_ranking.py",
        "transaction_paths.py",
        "census_clustering.py",
        "custom_async_algorithm.py",
        "extensions_tour.py",
    }
    assert expected <= present
