"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pagerank_defaults(self):
        args = build_parser().parse_args(["pagerank"])
        assert args.graph == "A"
        assert args.mode == "both"
        assert args.partitions == 8

    def test_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pagerank", "--graph", "C"])

    def test_sweep_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.policy == "fair"
        assert args.jobs == "pagerank,kmeans,sssp"

    def test_schedule_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--policy", "lottery"])

    def test_adaptive_sync_flag(self):
        assert build_parser().parse_args(
            ["pagerank", "--adaptive-sync"]).adaptive_sync
        assert not build_parser().parse_args(["sssp"]).adaptive_sync
        assert build_parser().parse_args(
            ["kmeans", "--adaptive-sync"]).adaptive_sync

    def test_sweep_figure_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--figure", "10"])

    def test_async_flags(self):
        args = build_parser().parse_args(
            ["pagerank", "--backend", "async", "--staleness", "2"])
        assert args.backend == "async"
        assert args.staleness == "2"
        assert build_parser().parse_args(["jacobi"]).backend == "block"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pagerank", "--backend", "engine"])


class TestCommands:
    def test_pagerank_runs(self, capsys):
        rc = main(["pagerank", "--graph", "A", "--scale", "0.003",
                   "-k", "2", "--mode", "eager"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PageRank on Graph A" in out
        assert "eager" in out

    def test_sssp_runs(self, capsys):
        rc = main(["sssp", "--graph", "A", "--scale", "0.003", "-k", "2",
                   "--mode", "general"])
        assert rc == 0
        assert "SSSP on Graph A" in capsys.readouterr().out

    def test_kmeans_runs(self, capsys):
        rc = main(["kmeans", "--rows", "500", "--clusters", "3",
                   "--threshold", "0.1", "-k", "4", "--mode", "eager"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "K-Means on census sample" in out
        assert "SSE" in out

    def test_autotune_runs(self, capsys):
        rc = main(["autotune", "--graph", "A", "--scale", "0.003",
                   "--candidates", "2,4"])
        assert rc == 0
        assert "best k" in capsys.readouterr().out

    def test_schedule_runs_three_jobs_on_one_cluster(self, capsys):
        rc = main(["schedule", "--jobs", "pagerank,kmeans,sssp",
                   "--policy", "fair", "--scale", "0.003", "-k", "2",
                   "--rows", "400", "--clusters", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 jobs on one shared cluster (fair)" in out
        for job in ("pagerank#0", "kmeans#1", "sssp#2"):
            assert job in out
        assert "mean job latency" in out

    def test_schedule_fifo_policy(self, capsys):
        rc = main(["schedule", "--jobs", "sssp,components",
                   "--policy", "fifo", "--scale", "0.003", "-k", "2"])
        assert rc == 0
        assert "(fifo)" in capsys.readouterr().out

    def test_schedule_rejects_unknown_job(self, capsys):
        rc = main(["schedule", "--jobs", "pagerank,teleport",
                   "--scale", "0.003", "-k", "2"])
        assert rc == 2
        assert "unknown jobs" in capsys.readouterr().err

    def test_pagerank_adaptive_sync_runs(self, capsys):
        rc = main(["pagerank", "--graph", "A", "--scale", "0.003",
                   "-k", "2", "--mode", "eager", "--adaptive-sync"])
        assert rc == 0
        assert "PageRank on Graph A" in capsys.readouterr().out

    def test_jacobi_runs(self, capsys):
        rc = main(["jacobi", "--graph", "A", "--scale", "0.003", "-k", "2",
                   "--mode", "eager"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Jacobi solve on Graph A" in out
        assert "||Ax - b||_inf" in out

    def test_pagerank_async_backend_runs(self, capsys):
        rc = main(["pagerank", "--graph", "A", "--scale", "0.003", "-k", "2",
                   "--mode", "eager", "--backend", "async",
                   "--staleness", "2"])
        assert rc == 0
        assert "PageRank on Graph A" in capsys.readouterr().out

    def test_sssp_unbounded_staleness_runs(self, capsys):
        rc = main(["sssp", "--graph", "A", "--scale", "0.003", "-k", "2",
                   "--mode", "eager", "--staleness", "none"])
        assert rc == 0
        assert "SSSP on Graph A" in capsys.readouterr().out

    def test_negative_staleness_exits_two(self, capsys):
        rc = main(["pagerank", "--graph", "A", "--scale", "0.003", "-k", "2",
                   "--mode", "eager", "--staleness", "-3"])
        assert rc == 2
        assert "--staleness" in capsys.readouterr().err

    def test_schedule_async_needs_online_store(self, capsys):
        rc = main(["schedule", "--jobs", "pagerank,sssp", "--scale", "0.003",
                   "-k", "2", "--backend", "async", "--staleness", "1"])
        assert rc == 2
        assert "--state-store online" in capsys.readouterr().err

    def test_schedule_async_with_online_store_runs(self, capsys):
        rc = main(["schedule", "--jobs", "pagerank,sssp", "--scale", "0.003",
                   "-k", "2", "--backend", "async", "--staleness", "1",
                   "--state-store", "online", "--tablets", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pagerank#0" in out and "sssp#1" in out

    def test_bad_candidates_reports_error(self, capsys):
        rc = main(["autotune", "--graph", "A", "--scale", "0.003",
                   "--candidates", ""])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_runs_at_tiny_scale(self, capsys):
        rc = main(["sweep", "--figure", "2", "--scale", "0.002"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "series Eager" in out


class TestLint:
    """The `repro lint` exit-code contract: 0 clean, 1 findings, 2 usage."""

    FIXTURES = str(Path(__file__).parent / "analysis" / "lint_fixtures.py")

    def test_parser_accepts_lint_options(self):
        args = build_parser().parse_args(
            ["lint", "src/repro/apps", "examples", "--format", "json",
             "--strict"])
        assert args.command == "lint"
        assert args.targets == ["src/repro/apps", "examples"]
        assert args.fmt == "json"
        assert args.strict

    def test_clean_target_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean_job.py"
        clean.write_text(
            "def count_map(key, value, ctx):\n"
            "    ctx.emit(key, 1)\n"
            "\n"
            "def sum_reduce(key, values, ctx):\n"
            "    ctx.emit(key, sum(values))\n")
        rc = main(["lint", str(clean)])
        assert rc == 0
        assert "0 at or above" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        rc = main(["lint", self.FIXTURES])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "hint:" in out

    def test_unknown_target_exits_two(self, capsys):
        rc = main(["lint", "no/such/target.py"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_json_format(self, capsys):
        rc = main(["lint", self.FIXTURES, "--format", "json"])
        assert rc == 1
        findings = json.loads(capsys.readouterr().out)
        assert findings
        assert {"code", "severity", "message", "function", "file",
                "line", "hint"} <= set(findings[0])
        assert any(f["code"] == "RPR021" for f in findings)

    def test_strict_lowers_threshold_to_warnings(self, tmp_path, capsys):
        warny = tmp_path / "warny_job.py"
        warny.write_text(
            "def fanout_map(key, value, ctx):\n"
            "    for n in {value, value + 1}:\n"
            "        ctx.emit(n, 1)\n")
        assert main(["lint", str(warny)]) == 0
        capsys.readouterr()
        assert main(["lint", str(warny), "--strict"]) == 1
        assert "RPR002" in capsys.readouterr().out

    def test_module_target_resolves(self, capsys):
        rc = main(["lint", "repro.apps.pagerank", "--strict"])
        assert rc == 0
