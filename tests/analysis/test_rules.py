"""Static rule catalog: every rule fires on its trigger fixtures and
stays quiet on the near-misses."""

from __future__ import annotations

import pytest

import lint_fixtures as fixtures

from repro.analysis import RULES, Severity, lint_callable


def _codes(fn, role):
    return {f.code for f in lint_callable(fn, role)}


class TestCatalog:
    def test_every_static_rule_has_trigger_and_near_miss(self):
        static_rules = {c for c in RULES if c in fixtures.TRIGGERS}
        assert static_rules == set(fixtures.TRIGGERS)
        assert set(fixtures.NEAR_MISSES) == set(fixtures.TRIGGERS)

    def test_rule_metadata(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert code.startswith("RPR")
            assert rule.hint
            assert isinstance(rule.severity, Severity)

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.parse("error") is Severity.ERROR
        with pytest.raises(ValueError, match="severity must be one of"):
            Severity.parse("fatal")


@pytest.mark.parametrize(
    "code,fn,role",
    [(code, fn, role)
     for code, cases in fixtures.TRIGGERS.items()
     for fn, role in cases],
    ids=lambda v: getattr(v, "__qualname__", str(v)),
)
def test_trigger_fires(code, fn, role):
    assert code in _codes(fn, role), (
        f"{code} should fire on {fn.__qualname__} in role {role}")


@pytest.mark.parametrize(
    "code,fn,role",
    [(code, fn, role)
     for code, cases in fixtures.NEAR_MISSES.items()
     for fn, role in cases],
    ids=lambda v: getattr(v, "__qualname__", str(v)),
)
def test_near_miss_stays_clean(code, fn, role):
    assert code not in _codes(fn, role), (
        f"{code} must not fire on near-miss {fn.__qualname__}")


class TestRoleScoping:
    def test_combiner_rules_skip_reduce_role(self):
        # A subtracting fold is only an algebra problem for combiners;
        # a reduce sees the complete value list exactly once.
        assert "RPR021" in _codes(fixtures.subtracting_combine, "combine")
        assert "RPR021" not in _codes(fixtures.subtracting_combine, "reduce")

    def test_values_mutation_skips_map_role(self):
        assert "RPR012" in _codes(fixtures.sorting_reduce, "reduce")
        assert "RPR012" not in _codes(fixtures.sorting_reduce, "map")

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="role must be one of"):
            lint_callable(fixtures.clock_map, "mapper")

    def test_findings_carry_location_and_hint(self):
        findings = lint_callable(fixtures.clock_map, "map")
        assert findings
        f = findings[0]
        assert f.filename.endswith("fixtures.py")
        assert f.line > 0
        assert "clock_map" in f.function
        assert f.hint == RULES[f.code].hint
        assert str(f.line) in f.format()

    def test_finding_as_dict_shape(self):
        f = lint_callable(fixtures.clock_map, "map")[0]
        d = f.as_dict()
        assert set(d) == {"code", "severity", "message", "function",
                         "file", "line", "hint"}
        assert d["severity"] == "error"
