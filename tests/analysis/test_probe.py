"""Runtime property probes: permutation + regrouping invariance."""

from __future__ import annotations

import lint_fixtures as fixtures
import numpy as np
import pytest

from repro.analysis import (
    probe_commutative,
    probe_permutation_invariant,
    results_equal,
)


class TestProbeCommutative:
    @pytest.mark.parametrize("agg", ["sum", "min", "max"])
    def test_named_aggregations_pass(self, agg):
        result = probe_commutative(agg)
        assert result.ok
        assert result.checks > 0
        assert "ok" in result.summary()

    def test_classic_summing_combiner_passes(self):
        assert probe_commutative(fixtures.summing_combine).ok

    def test_subtracting_combiner_fails(self):
        result = probe_commutative(fixtures.subtracting_combine)
        assert not result.ok
        assert not bool(result)
        assert any("permutation" in f or "regrouping" in f
                   for f in result.failures)

    def test_dividing_combiner_fails(self):
        assert not probe_commutative(fixtures.dividing_combine).ok

    def test_positional_combiner_fails(self):
        assert not probe_commutative(fixtures.positional_combine).ok

    def test_plain_fold_spelling(self):
        assert probe_commutative(sum).ok
        assert probe_commutative(min).ok

    def test_plain_fold_mean_fails_regrouping(self):
        # mean is permutation-invariant but NOT regroupable: the mean
        # of chunk means weights chunks, not values.
        def mean(values):
            return sum(values) / len(values)

        result = probe_commutative(mean)
        assert not result.ok
        assert all("regroup" in f for f in result.failures)

    def test_float_sum_tolerates_reassociation_noise(self):
        # Permuted/regrouped float sums differ in the last ulps; the
        # tolerance comparison must not flag that as non-commutativity.
        samples = [[0.1] * 11, [1e8, 1.0, -1e8, 1.0, 0.5]]

        def kahanless_sum(key, values, ctx):
            total = 0.0
            for v in values:
                total += v
            ctx.emit(key, total)

        assert probe_commutative(kahanless_sum, samples,
                                 rtol=1e-6, atol=1e-6).ok

    def test_custom_samples_and_determinism(self):
        samples = [[3.0, 1.0, 2.0]]
        a = probe_commutative("sum", samples, seed=5)
        b = probe_commutative("sum", samples, seed=5)
        assert a.checks == b.checks
        assert a.ok and b.ok

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            probe_commutative("median")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="must be callable"):
            probe_commutative(42)

    def test_join_combiner_fails(self):
        result = probe_commutative(
            fixtures.joining_combine,
            samples=[["b", "a", "c"], ["x", "y"]])
        assert not result.ok

    def test_sorted_join_combiner_passes_permutations(self):
        # Order-insensitive but not decomposable: string partials are
        # not re-foldable values, so only permutations are checked.
        assert probe_commutative(
            fixtures.sorted_join_combine,
            samples=[["b", "a", "c"], ["x", "y"]], regroup=False).ok


class TestProbePermutationInvariant:
    def test_order_insensitive_fold_passes(self):
        result = probe_permutation_invariant(
            lambda items: sorted(items), [3, 1, 2, 5], name="sorted")
        assert result.ok
        assert result.function == "sorted"

    def test_order_sensitive_fold_fails(self):
        result = probe_permutation_invariant(
            lambda items: list(items), [3, 1, 2, 5])
        assert not result.ok


class TestResultsEqual:
    def test_float_tolerance(self):
        assert results_equal(0.1 + 0.2, 0.3)
        assert not results_equal(0.1, 0.2)

    def test_arrays(self):
        assert results_equal(np.array([1.0, 2.0]),
                             np.array([1.0, 2.0 + 1e-15]))
        assert not results_equal(np.array([1.0]), np.array([1.0, 2.0]))
        assert results_equal(np.array([1, 2]), np.array([1, 2]))

    def test_nested_containers(self):
        assert results_equal({"a": [1.0, (2.0, 3.0)]},
                             {"a": [1.0, (2.0, 3.0 + 1e-15)]})
        assert not results_equal({"a": 1.0}, {"b": 1.0})

    def test_nan_equal(self):
        assert results_equal(float("nan"), float("nan"))
