"""The combiner contract, probed on every bundled app.

Map-side combining (and the arbitrary-arrival asynchronous discipline
the paper studies) is only sound when each app's combine step is
order- and grouping-insensitive.  This parametrizes the runtime probes
of :mod:`repro.analysis` over all seven bundled applications:

* KV specs declare ``columnar_combine`` by name — probed directly as
  a fold (pagerank/sum, sssp/min), plus the wordcount reduce, which
  doubles as its combiner.
* Block specs fold per-partition :class:`LocalSolveReport` objects in
  ``global_combine`` — worker reports arrive in scheduler-dependent
  order, so the fold must be permutation-invariant (pagerank, sssp,
  components, jacobi, k-means; APSP runs SSSP once per landmark, so it
  is covered by probing the SSSP fold from several source nodes).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.analysis import probe_commutative, probe_permutation_invariant
from repro.apps.components import ComponentsBlockSpec
from repro.apps.jacobi import JacobiBlockSpec, make_diagonally_dominant_system
from repro.apps.kmeans import KMeansBlockSpec
from repro.apps.pagerank import PageRankBlockSpec, PageRankKVSpec
from repro.apps.sssp import SsspBlockSpec, SsspKVSpec
from repro.apps.wordcount import wordcount_reduce


class TestKVCombiners:
    def test_pagerank_declares_sum(self):
        assert PageRankKVSpec.columnar_combine == "sum"

    def test_sssp_declares_min(self):
        assert SsspKVSpec.columnar_combine == "min"

    @pytest.mark.parametrize("agg", ["sum", "min"],
                             ids=["pagerank", "sssp"])
    def test_declared_aggregations_commute(self, agg):
        result = probe_commutative(agg)
        assert result.ok, result.failures

    def test_wordcount_reduce_is_a_valid_combiner(self):
        # The reduce sums counts, so it doubles as the map-side combiner.
        result = probe_commutative(
            wordcount_reduce,
            samples=[[1, 1, 1], [2, 5, 1, 7], [1] * 16])
        assert result.ok, result.failures


def _probe_global_combine(spec, *, max_local_iters=2, rounds=12,
                          rtol=1e-9, atol=1e-12):
    """Permutation-probe a block spec's report fold.

    Reports are generated once by running ``local_solve`` on every
    partition; the probe then folds deep copies (``global_combine`` may
    update state arrays in place) under random report orders.
    """
    state0 = spec.init_state()
    reports = [
        spec.local_solve(part_id, copy.deepcopy(state0),
                         max_local_iters=max_local_iters)
        for part_id in range(spec.num_partitions())
    ]

    def fold(permuted_reports):
        return spec.global_combine(copy.deepcopy(state0),
                                   copy.deepcopy(permuted_reports))[0]

    return probe_permutation_invariant(
        fold, reports, rounds=rounds, rtol=rtol, atol=atol,
        name=f"{type(spec).__name__}.global_combine")


class TestBlockSpecFolds:
    def test_pagerank(self, small_graph, small_partition):
        result = _probe_global_combine(
            PageRankBlockSpec(small_graph, small_partition),
            rtol=1e-9, atol=1e-12)
        assert result.ok, result.failures

    def test_sssp(self, weighted_graph, weighted_partition):
        result = _probe_global_combine(
            SsspBlockSpec(weighted_graph, weighted_partition, source=0))
        assert result.ok, result.failures

    @pytest.mark.parametrize("landmark", [0, 17, 123])
    def test_apsp_landmark_folds(self, weighted_graph, weighted_partition,
                                 landmark):
        # APSP = one SSSP instance per landmark source; the fold must
        # commute from every source, not just node 0.
        result = _probe_global_combine(
            SsspBlockSpec(weighted_graph, weighted_partition,
                          source=landmark))
        assert result.ok, result.failures

    def test_components(self, small_graph, small_partition):
        result = _probe_global_combine(
            ComponentsBlockSpec(small_graph, small_partition))
        assert result.ok, result.failures

    def test_jacobi(self, small_graph, small_partition):
        system = make_diagonally_dominant_system(small_partition, seed=1)
        result = _probe_global_combine(
            JacobiBlockSpec(system, small_partition))
        assert result.ok, result.failures

    def test_kmeans(self):
        rng = np.random.default_rng(42)
        points = rng.normal(size=(200, 3))
        spec = KMeansBlockSpec(points, 5, num_partitions=4, seed=0)
        # Centroid updates average float sums, so permuted arrival
        # reassociates the arithmetic; tolerance covers the ulps.
        result = _probe_global_combine(spec, rtol=1e-7, atol=1e-9)
        assert result.ok, result.failures
