"""Linting live objects and the lint="off"|"warn"|"strict" knob."""

from __future__ import annotations

import warnings

import lint_fixtures as fixtures
import numpy as np
import pytest

from repro.analysis import (
    LintError,
    LintReport,
    LintWarning,
    Severity,
    enforce,
    lint_backend,
    lint_callable,
    lint_job,
    lint_spec,
)
from repro.apps.pagerank import PageRankBlockSpec, PageRankKVSpec
from repro.apps.wordcount import wordcount_job
from repro.core import DriverConfig, Session
from repro.core.api import AsyncMapReduceSpec, BlockSpec, LocalSolveReport
from repro.core.loop import BlockBackend, EngineBackend
from repro.engine import MapReduceRuntime
from repro.engine.job import Job, JobConf


class SubtractingBlockSpec(BlockSpec):
    """A deliberately non-commutative global combine."""

    def num_partitions(self):
        return 2

    def init_state(self):
        return 0.0

    def local_solve(self, part_id, state, *, max_local_iters):
        return LocalSolveReport(partition=part_id, updates=1.0,
                                local_iters=1, per_iter_ops=[1.0])

    def global_combine(self, state, reports):
        acc = state
        for r in reports:
            acc -= r.updates
        return acc, 1.0, 0

    def global_converged(self, prev_state, curr_state):
        return True, 0.0


class SummingBlockSpec(SubtractingBlockSpec):
    """The commutative twin — must lint clean."""

    def global_combine(self, state, reports):
        acc = state
        for r in reports:
            acc += r.updates
        return acc, 1.0, 0


class PlainKVSpec(AsyncMapReduceSpec):
    """A minimal KV spec with none of the columnar hooks."""

    def lmap(self, key, value, ctx):
        ctx.emit_local_intermediate(key, value)

    def lreduce(self, key, values, ctx):
        ctx.emit_local(key, sum(values))

    def greduce(self, key, values, ctx):
        ctx.emit(key, sum(values))

    def initial_state(self):
        return {}

    def num_partitions(self):
        return 2

    def partition_input(self, part_id, state):
        return [(part_id, 1.0)]

    def state_from_output(self, output, prev_state):
        return dict(output)

    def local_converged(self, prev_table, curr_table):
        return True

    def global_converged(self, prev_state, curr_state):
        return True, 0.0


class TestHazards:
    def test_captured_lock_flagged(self):
        findings = lint_callable(fixtures.make_locked_map(), "map")
        assert any(f.code == "RPR031" and "synchronization" in f.message
                   for f in findings)

    def test_captured_live_rng_flagged(self):
        findings = lint_callable(fixtures.make_live_rng_map(), "map")
        assert any(f.code == "RPR031" and "RNG" in f.message
                   for f in findings)

    def test_captured_open_file_flagged(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("x")
        findings = lint_callable(fixtures.make_file_map(str(path)), "map")
        assert any(f.code == "RPR031" and "file" in f.message
                   for f in findings)

    def test_plain_data_closure_clean(self):
        findings = lint_callable(fixtures.make_scaled_map(2.0), "map")
        assert not [f for f in findings if f.code == "RPR031"]

    def test_unpicklable_capture_flagged(self):
        import threading

        unpicklable = {"inner": threading.Lock()}

        def nested_map(key, value, ctx, _bag=unpicklable):
            ctx.emit(key, value)

        findings = lint_callable(nested_map, "map")
        assert any(f.code == "RPR031" for f in findings)

    def test_cluster_handle_flagged(self):
        from repro.cluster import SimCluster

        cluster = SimCluster()

        def handle_map(key, value, ctx, _c=cluster):
            ctx.emit(key, value)

        findings = lint_callable(handle_map, "map")
        assert any(f.code == "RPR031" and "SimCluster" in f.message
                   for f in findings)


class TestLintSpec:
    def test_bundled_kv_spec_clean(self, small_graph, small_partition):
        report = lint_spec(PageRankKVSpec(small_graph, small_partition))
        assert report.ok
        assert not report.findings

    def test_bundled_block_spec_clean(self, small_graph, small_partition):
        assert lint_spec(PageRankBlockSpec(small_graph, small_partition)).ok

    def test_stateful_spec_flagged(self):
        report = lint_spec(fixtures.StatefulSpec())
        codes = {f.code for f in report.findings}
        assert "RPR011" in codes
        assert not report.ok

    def test_subtracting_combine_flagged(self):
        report = lint_spec(SubtractingBlockSpec())
        assert any(f.code == "RPR021" for f in report.findings)
        assert report.errors

    def test_summing_combine_clean(self):
        assert not [f for f in lint_spec(SummingBlockSpec()).findings
                    if f.code == "RPR021"]

    def test_columnar_explainer_info(self):
        # A KV spec without columnar hooks gets RPR041 info findings —
        # never errors, never warnings.
        report = lint_spec(PlainKVSpec())
        infos = [f for f in report.findings if f.code == "RPR041"]
        assert infos
        assert all(f.severity is Severity.INFO for f in infos)
        assert report.ok


class TestLintJob:
    def test_wordcount_job_clean(self):
        report = lint_job(wordcount_job())
        assert report.ok  # RPR041 infos allowed

    def test_bad_map_flagged(self):
        job = Job(map_fn=fixtures.clock_map, reduce_fn="sum",
                  conf=JobConf(name="bad"))
        report = lint_job(job)
        assert any(f.code == "RPR001" for f in report.findings)

    def test_combine_role_applied_to_combine_fn(self):
        job = Job(map_fn=fixtures.sleepy_map,
                  reduce_fn=fixtures.summing_combine,
                  combine_fn=fixtures.subtracting_combine,
                  conf=JobConf(name="subtract"))
        report = lint_job(job)
        assert any(f.code == "RPR021"
                   and "subtracting_combine" in f.function
                   for f in report.findings)

    def test_engine_backend_spec_followed(self, small_graph, small_partition):
        backend = EngineBackend(PageRankKVSpec(small_graph, small_partition),
                                num_reducers=2)
        try:
            report = lint_backend(backend)
        finally:
            backend.runtime.close()
        assert report.ok
        assert "PageRankKVSpec" in report.subject


class TestEnforce:
    def _report(self, *findings):
        return LintReport(subject="test", findings=tuple(findings))

    def test_off_is_noop(self):
        report = lint_job(Job(map_fn=fixtures.clock_map, reduce_fn="sum",
                              conf=JobConf(name="bad")))
        assert enforce(report, "off") is report

    def test_warn_emits_lint_warnings(self):
        report = lint_job(Job(map_fn=fixtures.clock_map, reduce_fn="sum",
                              conf=JobConf(name="bad")))
        with pytest.warns(LintWarning, match="RPR001"):
            enforce(report, "warn")

    def test_strict_raises_on_errors(self):
        report = lint_job(Job(map_fn=fixtures.clock_map, reduce_fn="sum",
                              conf=JobConf(name="bad")))
        with pytest.raises(LintError, match="RPR001") as exc_info:
            enforce(report, "strict")
        assert exc_info.value.report is report

    def test_strict_passes_clean_report(self):
        report = lint_job(wordcount_job())
        assert enforce(report, "strict") is report

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="lint must be one of"):
            enforce(self._report(), "aggressive")


class TestRuntimeKnob:
    def test_jobconf_validates_lint(self):
        with pytest.raises(ValueError, match="lint must be"):
            JobConf(lint="strictest")

    def test_strict_rejects_before_any_task(self):
        calls = []

        def counting_bad_map(key, value, ctx):
            calls.append(key)
            ctx.emit(key, np.random.rand())

        job = Job(map_fn=counting_bad_map, reduce_fn="sum",
                  conf=JobConf(name="bad", lint="strict"))
        with MapReduceRuntime("serial") as rt:
            with pytest.raises(LintError):
                rt.run(job, [[(0, 1.0)], [(1, 2.0)]])
        assert calls == []  # rejected before any task executed

    def test_warn_still_runs(self):
        job = Job(map_fn=fixtures.clock_map, reduce_fn="sum",
                  conf=JobConf(name="warny", lint="warn"))
        with MapReduceRuntime("serial") as rt:
            with pytest.warns(LintWarning):
                result = rt.run(job, [[(0, 1.0)]])
        assert result.output

    def test_off_by_default(self):
        job = Job(map_fn=fixtures.clock_map, reduce_fn="sum",
                  conf=JobConf(name="quiet"))
        with MapReduceRuntime("serial") as rt:
            with warnings.catch_warnings():
                warnings.simplefilter("error", LintWarning)
                rt.run(job, [[(0, 1.0)]])


class TestSessionKnob:
    def test_submit_strict_rejects_noncommutative_combiner(self):
        spec = SubtractingBlockSpec()
        with Session() as session:
            with pytest.raises(LintError, match="RPR021"):
                session.submit(BlockBackend(spec), DriverConfig(),
                               lint="strict")
            assert session.jobs == []  # nothing was admitted

    def test_submit_strict_accepts_clean_spec(self):
        with Session() as session:
            handle = session.submit(BlockBackend(SummingBlockSpec()),
                                    DriverConfig(), lint="strict")
            assert handle in session.jobs

    def test_config_lint_default_applies(self):
        cfg = DriverConfig(lint="strict")
        with Session() as session:
            with pytest.raises(LintError):
                session.submit(BlockBackend(SubtractingBlockSpec()), cfg)

    def test_submit_overrides_config_lint(self):
        cfg = DriverConfig(lint="strict")
        with Session() as session:
            handle = session.submit(BlockBackend(SubtractingBlockSpec()),
                                    cfg, lint="off")
            assert handle in session.jobs

    def test_driverconfig_validates_lint(self):
        with pytest.raises(ValueError, match="lint must be one of"):
            DriverConfig(lint="loose")
