"""Fixture job functions for the lint rule catalog.

Every ``RPR`` rule has at least one *trigger* here (a function the rule
must flag) and one *near-miss* (a superficially similar function the
rule must NOT flag).  The functions are role-named (``*_map`` /
``*_reduce`` / ``*_combine``) so the static discovery path picks them
up too — CI lints this file and asserts the expected exit code.

``TRIGGERS`` maps rule code -> list of (function, role) expected to
fire it; ``NEAR_MISSES`` maps rule code -> list of (function, role)
expected to stay clean of that code.
"""

from __future__ import annotations

import functools
import operator
import random
import threading
import time

import numpy as np

# ---------------------------------------------------------------------
# RPR001 — nondeterministic calls
# ---------------------------------------------------------------------

def clock_map(key, value, ctx):
    ctx.emit(key, time.time())


def entropy_map(key, value, ctx):
    ctx.emit(key, random.random())


def unseeded_rng_map(key, value, ctx):
    rng = np.random.default_rng()
    ctx.emit(key, value + rng.standard_normal())


def global_rng_map(key, value, ctx):
    ctx.emit(key, value + np.random.rand())


def seeded_rng_map(key, value, ctx):
    # Near-miss: an explicitly seeded generator is deterministic.
    rng = np.random.default_rng(int(key))
    ctx.emit(key, value + rng.standard_normal())


def sleepy_map(key, value, ctx):
    # Near-miss: sleeping changes timing, not output.
    time.sleep(0)
    ctx.emit(key, value)


# ---------------------------------------------------------------------
# RPR002 — set-iteration emission order
# ---------------------------------------------------------------------

def set_iter_map(key, value, ctx):
    for neighbour in {value, value + 1, value + 2}:
        ctx.emit(neighbour, 1)


def set_call_iter_map(key, value, ctx):
    for neighbour in set(value):
        ctx.emit(neighbour, 1)


def sorted_set_map(key, value, ctx):
    # Near-miss: sorting pins the emission order.
    for neighbour in sorted(set(value)):
        ctx.emit(neighbour, 1)


# ---------------------------------------------------------------------
# RPR003 — id()-derived keys
# ---------------------------------------------------------------------

def identity_key_map(key, value, ctx):
    ctx.emit(id(value), 1)


def method_id_map(key, value, ctx):
    # Near-miss: a .id() *method* is the record's own identifier.
    ctx.emit(value.id(), 1)


# ---------------------------------------------------------------------
# RPR011 — writes that escape the task
# ---------------------------------------------------------------------

_SEEN = []


def global_write_map(key, value, ctx):
    global _SEEN
    _SEEN = [key]
    ctx.emit(key, value)


class StatefulSpec:
    """Trigger: methods cache results on self between invocations."""

    def __init__(self):
        self._cache = {}
        self.total = 0.0

    def lmap(self, key, value, ctx):
        self._cache[key] = value
        ctx.emit_local_intermediate(key, value)

    def lreduce(self, key, values, ctx):
        self.total += sum(values)
        ctx.emit_local(key, self.total)

    def greduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class ReadOnlySpec:
    """Near-miss: reading self attributes is fine."""

    def __init__(self, damping=0.85):
        self.damping = damping

    def lmap(self, key, value, ctx):
        ctx.emit_local_intermediate(key, value * self.damping)

    def lreduce(self, key, values, ctx):
        scale = self.damping
        ctx.emit_local(key, sum(values) * scale)

    def greduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


# ---------------------------------------------------------------------
# RPR012 — mutation of the aliased values list
# ---------------------------------------------------------------------

def sorting_reduce(key, values, ctx):
    values.sort()
    ctx.emit(key, values[0])


def slicing_store_reduce(key, values, ctx):
    values[0] = 0.0
    ctx.emit(key, sum(values))


def appending_reduce(key, values, ctx):
    values.append(0.0)
    ctx.emit(key, sum(values))


def copying_reduce(key, values, ctx):
    # Near-miss: sorted() copies; the alias stays untouched.
    ordered = sorted(values)
    ctx.emit(key, ordered[0])


# ---------------------------------------------------------------------
# RPR021 — non-commutative accumulation in a combine
# ---------------------------------------------------------------------

def subtracting_combine(key, values, ctx):
    acc = 0.0
    for v in values:
        acc -= v
    ctx.emit(key, acc)


def dividing_combine(key, values, ctx):
    acc = 1.0
    for v in values:
        acc = acc / v
    ctx.emit(key, acc)


def reduce_sub_combine(key, values, ctx):
    ctx.emit(key, functools.reduce(operator.sub, values))


def positional_combine(key, values, ctx):
    ctx.emit(key, values[0] - values[1])


def summing_combine(key, values, ctx):
    # Near-miss: addition commutes.
    acc = 0.0
    for v in values:
        acc += v
    ctx.emit(key, acc)


def countdown_combine(key, values, ctx):
    # Near-miss: `-=` on loop bookkeeping, not on the accumulation.
    budget = 10
    total = 0.0
    for v in values:
        budget -= 1
        if budget >= 0:
            total += v
    ctx.emit(key, total)


def mean_after_loop_combine(key, values, ctx):
    # Near-miss: one division after the fold (k-means' shape).
    total, count = 0.0, 0
    for v in values:
        total += v
        count += 1
    ctx.emit(key, total / max(count, 1))


# ---------------------------------------------------------------------
# RPR022 — order-dependent string concatenation in a combine
# ---------------------------------------------------------------------

def joining_combine(key, values, ctx):
    ctx.emit(key, ",".join(values))


def sorted_join_combine(key, values, ctx):
    # Near-miss: a canonical order makes the concat order-free.
    ctx.emit(key, ",".join(sorted(values)))


# ---------------------------------------------------------------------
# RPR051 — async-unsafe in-place state update in a combine
# ---------------------------------------------------------------------

def overwriting_state_combine(state, reports, ctx):
    for r in reports:
        nodes, x = r
        state[nodes] = x
    ctx.emit(0, state)


def accumulating_state_combine(state, reports, ctx):
    for r in reports:
        nodes, x = r
        state[nodes] += x
    ctx.emit(0, state)


def copying_state_combine(state, reports, ctx):
    # Near-miss: the fold lands in a fresh copy; the shared view the
    # async backend hands out is never written.
    new_state = state.copy()
    for r in reports:
        nodes, x = r
        new_state[nodes] = x
    ctx.emit(0, new_state)


# ---------------------------------------------------------------------
# RPR061 — captured mutable accumulators (double-count when the engine
# re-executes the task: retry after a fault, or a speculative backup)
# ---------------------------------------------------------------------

_HITS = {}


def counting_map(key, value, ctx):
    _HITS[key] = _HITS.get(key, 0) + 1
    ctx.emit(key, value)


def make_audit_map():
    seen = []

    def audit_map(key, value, ctx):
        seen.append(key)
        ctx.emit(key, value)

    return audit_map


def make_tally_reduce():
    totals = {}

    def tally_reduce(key, values, ctx):
        totals[key] = totals.get(key, 0.0) + sum(values)
        ctx.emit(key, totals[key])

    return tally_reduce


def local_tally_reduce(key, values, ctx):
    # Near-miss: the accumulator is born and dies inside the attempt,
    # so a backup copy's accumulator is independent.
    totals = {}
    for v in values:
        totals[key] = totals.get(key, 0.0) + v
    ctx.emit(key, totals[key])


def make_lookup_map(weights):
    # Near-miss: *reading* captured plain data is re-execution safe.
    def lookup_map(key, value, ctx):
        ctx.emit(key, value * weights.get(key, 1.0))

    return lookup_map


# ---------------------------------------------------------------------
# RPR071 — cluster/store handles cached across attempts (stale after
# a node death revives the worker under a new incarnation)
# ---------------------------------------------------------------------

_CLUSTER = None
_HANDLES = {}


def cached_cluster_map(key, value, ctx):
    global _CLUSTER
    if _CLUSTER is None:
        _CLUSTER = SimCluster()  # noqa: F821 - linted, never called
    ctx.emit(key, value)


def handle_stashing_reduce(key, values, ctx):
    _HANDLES["store"] = OnlineStateStore(1)  # noqa: F821
    ctx.emit(key, sum(values))


def stale_store_read_map(key, value, ctx):
    row, _ = _TABLET_STORE.get(str(key))  # noqa: F821
    ctx.emit(key, value + row)


def local_cluster_map(key, value, ctx):
    # Near-miss: the handle is born and dies inside the attempt.
    cluster = SimCluster()  # noqa: F821
    ctx.emit(key, cluster.run_map_phase([value]).makespan)


def fresh_store_reduce(key, values, ctx):
    # Near-miss: handle-like *name*, but a plain local container.
    store = {}
    store[key] = sum(values)
    ctx.emit(key, store[key])


def global_round_counter_map(key, value, ctx):
    # Near-miss for RPR071 (RPR011's business): the escaping write is
    # plain data, not an execution-substrate handle.
    global _ROUND
    _ROUND = value
    ctx.emit(key, value)


# ---------------------------------------------------------------------
# RPR031 — process-executor hazards (runtime-object rules: exercised
# through lint_callable, not the static file path)
# ---------------------------------------------------------------------

def make_locked_map():
    lock = threading.Lock()

    def locked_map(key, value, ctx):
        with lock:
            ctx.emit(key, value)

    return locked_map


def make_live_rng_map():
    rng = np.random.default_rng(3)

    def rng_map(key, value, ctx):
        ctx.emit(key, value + rng.standard_normal())

    return rng_map


def make_file_map(path):
    fh = open(path)  # noqa: SIM115 - the leak is the point

    def file_map(key, value, ctx, _fh=fh):
        ctx.emit(key, value)

    return file_map


def make_scaled_map(scale):
    # Near-miss: plain data in the closure ships fine.
    def scaled_map(key, value, ctx):
        ctx.emit(key, value * scale)

    return scaled_map


#: rule code -> [(function, role)] the rule must flag.
TRIGGERS = {
    "RPR001": [(clock_map, "map"), (entropy_map, "map"),
               (unseeded_rng_map, "map"), (global_rng_map, "map")],
    "RPR002": [(set_iter_map, "map"), (set_call_iter_map, "map")],
    "RPR003": [(identity_key_map, "map")],
    "RPR011": [(global_write_map, "map"),
               (StatefulSpec.lmap, "map"), (StatefulSpec.lreduce, "reduce")],
    "RPR012": [(sorting_reduce, "reduce"), (slicing_store_reduce, "reduce"),
               (appending_reduce, "reduce")],
    "RPR021": [(subtracting_combine, "combine"),
               (dividing_combine, "combine"),
               (reduce_sub_combine, "combine"),
               (positional_combine, "combine")],
    "RPR022": [(joining_combine, "combine")],
    "RPR051": [(overwriting_state_combine, "combine"),
               (accumulating_state_combine, "combine")],
    "RPR061": [(counting_map, "map"), (make_audit_map(), "map"),
               (make_tally_reduce(), "reduce")],
    "RPR071": [(cached_cluster_map, "map"),
               (handle_stashing_reduce, "reduce"),
               (stale_store_read_map, "map")],
}

#: rule code -> [(function, role)] the rule must NOT flag.
NEAR_MISSES = {
    "RPR001": [(seeded_rng_map, "map"), (sleepy_map, "map")],
    "RPR002": [(sorted_set_map, "map")],
    "RPR003": [(method_id_map, "map")],
    "RPR011": [(ReadOnlySpec.lmap, "map"), (ReadOnlySpec.lreduce, "reduce")],
    "RPR012": [(copying_reduce, "reduce")],
    "RPR021": [(summing_combine, "combine"),
               (countdown_combine, "combine"),
               (mean_after_loop_combine, "combine")],
    "RPR022": [(sorted_join_combine, "combine")],
    "RPR051": [(copying_state_combine, "combine"),
               (overwriting_state_combine, "reduce")],
    "RPR061": [(local_tally_reduce, "reduce"),
               (make_lookup_map({}), "map")],
    "RPR071": [(local_cluster_map, "map"),
               (fresh_store_reduce, "reduce"),
               (global_round_counter_map, "map")],
}
