"""Worker lifecycle and correlated mid-phase deaths in the simulator.

Covers the Skywriting-style :class:`WorkerPool` bookkeeping (register /
heartbeat / mark-dead / reassign) and the scheduler semantics it
enables: a scripted death truncates in-flight tasks at the death clock,
invalidates the doomed node's completed map outputs, and re-queues the
lost work on the survivors no earlier than detection
(``death_clock + heartbeat_seconds``).
"""

from __future__ import annotations

import pytest

from repro.cluster import SimCluster
from repro.cluster.workerpool import WorkerInfo, WorkerPool
from repro.engine import NodeDeath, NodeFaultPlan


class TestWorkerPoolLifecycle:
    def test_registration_and_heartbeats(self):
        pool = WorkerPool(range(4))
        assert pool.alive_nodes == {0, 1, 2, 3}
        pool.heartbeat(2, 5.0)
        assert pool.workers[2].last_heartbeat == 5.0
        assert all(w.incarnation == 1 for w in pool.workers.values())

    def test_mark_dead_and_zombie_heartbeat(self):
        pool = WorkerPool(range(4))
        pool.mark_dead(1, 7.0)
        assert not pool.is_alive(1)
        assert pool.workers[1].died_at == 7.0
        # a partitioned worker's late beat must not resurrect it
        pool.heartbeat(1, 8.0)
        assert not pool.is_alive(1)
        assert pool.alive_nodes == {0, 2, 3}

    def test_expiry_sweep(self):
        plan = NodeFaultPlan(num_nodes=4, heartbeat_seconds=2.0)
        pool = WorkerPool(range(4), plan)
        pool.heartbeat(0, 10.0)
        pool.heartbeat(1, 10.0)
        # nodes 2 and 3 have been silent since registration at clock 0
        assert pool.expired(11.0) == [2, 3]
        assert WorkerInfo(0, last_heartbeat=3.0).expired(10.0, 2.0)

    def test_begin_round_replaces_dead_workers(self):
        pool = WorkerPool(range(4))
        pool.mark_dead(3, 6.0)
        pool.begin_round(1, 9.0)
        assert pool.is_alive(3)
        assert pool.workers[3].incarnation == 2
        assert pool.workers[3].registered_at == 9.0

    def test_deaths_armed_per_round_and_fire_once(self):
        plan = NodeFaultPlan.kill_node(2, round=1, at_seconds=4.0,
                                       num_nodes=4)
        pool = WorkerPool(range(4), plan)
        assert pool.pending_deaths() == {}          # round 0: nothing
        pool.begin_round(1, 10.0)
        assert pool.pending_deaths() == {2: 14.0}   # armed absolute clock
        assert pool.detection_clock(14.0) == 14.0 + plan.heartbeat_seconds
        pool.fire(2, 14.0)
        assert not pool.is_alive(2)
        assert (1, 2) in pool.fired
        assert pool.pending_deaths() == {}
        # a rollback replay of round 1 must not re-arm the fired death
        pool.begin_round(1, 20.0)
        assert pool.pending_deaths() == {}
        # but the worker was replaced for the (re-begun) round
        assert pool.is_alive(2)


def _plan_node(at=1.5, hb=3.0):
    return NodeFaultPlan.kill_node(1, at_seconds=at, num_nodes=8,
                                   heartbeat_seconds=hb)


class TestSimClusterDeaths:
    def test_mid_phase_kill_truncates_and_replays(self):
        cl = SimCluster(node_faults=_plan_node())
        healthy = SimCluster().run_map_phase([1.0] * 64, label="m")
        res = cl.run_map_phase([1.0] * 64, label="m")
        assert res.node_deaths == 1
        assert res.killed_tasks >= 1
        assert res.lost_seconds > 0
        assert res.recovery_seconds > 0
        assert res.makespan > healthy.makespan
        labels = [e.label for e in cl.trace.events]
        assert any(lab.endswith(":killed") for lab in labels)
        assert any(lab.endswith(":replay") for lab in labels)
        assert not cl.worker_pool.is_alive(1)

    def test_detection_latency_prices_recovery(self):
        """A longer heartbeat interval delays the re-queued work and
        stretches the phase by exactly that extra silence."""
        short = SimCluster(node_faults=_plan_node(hb=1.0))
        long = SimCluster(node_faults=_plan_node(hb=8.0))
        r_short = short.run_map_phase([1.0] * 64, label="m")
        r_long = long.run_map_phase([1.0] * 64, label="m")
        assert r_long.recovery_seconds > r_short.recovery_seconds
        assert r_long.makespan == pytest.approx(r_short.makespan + 7.0)

    def test_rack_kill_costs_more_than_node_kill(self):
        node = SimCluster(node_faults=_plan_node())
        rack = SimCluster(node_faults=NodeFaultPlan.kill_rack(
            0, at_seconds=1.5, num_nodes=8, nodes_per_rack=4))
        rn = node.run_map_phase([1.0] * 64, label="m")
        rr = rack.run_map_phase([1.0] * 64, label="m")
        assert rr.node_deaths == 4 > rn.node_deaths == 1
        assert rr.killed_tasks > rn.killed_tasks
        assert rr.lost_seconds > rn.lost_seconds
        assert rr.makespan > rn.makespan

    def test_completed_outputs_on_doomed_node_are_invalidated(self):
        """Kill after the first wave: the dead node's finished map
        outputs count as lost and are re-executed."""
        cl = SimCluster(node_faults=_plan_node(at=1.5))
        res = cl.run_map_phase([1.0] * 128, label="m")  # several waves
        assert res.node_deaths == 1
        assert res.lost_map_outputs >= 1

    def test_death_does_not_refire_and_fleet_recovers(self):
        plan = _plan_node()
        cl = SimCluster(node_faults=plan)
        first = cl.run_map_phase([1.0] * 64, label="m")
        assert first.node_deaths == 1
        # later phases of the same round run on survivors, death spent
        second = cl.run_map_phase([1.0] * 64, label="m2")
        assert second.node_deaths == 0
        assert not any(e.label.endswith(":killed")
                       for e in cl.trace.events if "m2" in e.label)
        # the next round replaces the dead worker
        cl.worker_pool.begin_round(1, cl.clock)
        assert cl.worker_pool.alive_nodes == set(range(8))

    def test_every_node_dead_is_an_error(self):
        cl = SimCluster(node_faults=NodeFaultPlan(num_nodes=8))
        for n in range(8):
            cl.worker_pool.fire(n, 0.0)
        with pytest.raises(RuntimeError, match="dead"):
            cl.run_map_phase([1.0] * 4, label="m")

    def test_whole_fleet_dying_mid_phase_is_an_error(self):
        plan = NodeFaultPlan(
            num_nodes=8,
            deaths=tuple(NodeDeath(n, at_seconds=0.0) for n in range(8)))
        cl = SimCluster(node_faults=plan)
        with pytest.raises(RuntimeError, match="died mid-phase"):
            cl.run_map_phase([1.0] * 4, label="m")

    def test_immortal_fleet_without_plan(self):
        cl = SimCluster()
        assert cl.worker_pool is None
        res = cl.run_map_phase([1.0] * 16, label="m")
        assert res.node_deaths == 0 and res.recovery_seconds == 0.0
