"""Tests for the online state store (Bigtable substitute, §VIII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    EC2_DEFAULTS,
    OnlineStoreModel,
    SimCluster,
    SimDFS,
    SimKVStore,
)


class TestOnlineStoreModel:
    def test_defaults_cheaper_than_dfs_roundtrip(self):
        m = OnlineStoreModel()
        for nbytes in (1, 10**4, 10**7):
            dfs = (EC2_DEFAULTS.dfs_write_seconds(nbytes)
                   + EC2_DEFAULTS.dfs_read_seconds(nbytes))
            assert m.roundtrip_seconds(nbytes) < dfs

    def test_latency_floor(self):
        m = OnlineStoreModel(op_latency_seconds=0.1)
        assert m.read_seconds(0) == pytest.approx(0.1)
        assert m.write_seconds(0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineStoreModel(write_bps=0)
        with pytest.raises(ValueError):
            OnlineStoreModel(op_latency_seconds=-1)
        with pytest.raises(ValueError):
            OnlineStoreModel().read_seconds(-1)


class TestSimKVStore:
    def test_put_get_roundtrip(self):
        store = SimKVStore()
        t_w = store.put("state", {"x": 1})
        value, t_r = store.get("state")
        assert value == {"x": 1}
        assert store.time_spent == pytest.approx(t_w + t_r)

    def test_missing_row(self):
        with pytest.raises(KeyError):
            SimKVStore().get("nope")

    def test_exists_and_len(self):
        store = SimKVStore()
        store.put("a", 1)
        assert store.exists("a") and not store.exists("b")
        assert len(store) == 1

    def test_checkpoint_and_restore(self):
        store = SimKVStore()
        store.put("ranks", np.arange(5))
        store.put("meta", "iteration-7")
        dfs = SimDFS(EC2_DEFAULTS)
        t = store.checkpoint(dfs)
        assert t > 0
        assert dfs.exists("ckpt/ranks")

        fresh = SimKVStore()
        fresh.restore(dfs)
        value, _ = fresh.get("ranks")
        assert np.array_equal(value, np.arange(5))
        value, _ = fresh.get("meta")
        assert value == "iteration-7"

    def test_checkpoint_costs_dfs_time(self):
        store = SimKVStore()
        store.put("big", np.zeros(10**6))
        dfs = SimDFS(EC2_DEFAULTS)
        t = store.checkpoint(dfs)
        # replicated write of 8 MB + touch must dominate the online put
        assert t > store.time_spent


class TestClusterIntegration:
    def test_charge_state_roundtrip_dispatch(self):
        cl = SimCluster()
        t_dfs = cl.charge_state_roundtrip(10**6, store="dfs")
        t_online = cl.charge_state_roundtrip(10**6, store="online")
        assert t_online < t_dfs
        with pytest.raises(ValueError, match="store"):
            cl.charge_state_roundtrip(1, store="carrier-pigeon")

    def test_charge_fixed(self):
        cl = SimCluster()
        cl.charge_fixed("custom", 5.0)
        assert cl.clock == pytest.approx(5.0)
        with pytest.raises(ValueError):
            cl.charge_fixed("bad", -1.0)
