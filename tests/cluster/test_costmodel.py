"""Tests for the cost model (EC2/HPC presets and conversions)."""

from __future__ import annotations

import pytest

from repro.cluster import CostModel, EC2_DEFAULTS, HPC_DEFAULTS, ZERO_COST, scaled_model


class TestCostModel:
    def test_defaults_are_positive(self):
        cm = CostModel()
        assert cm.map_op_seconds > 0
        assert cm.job_startup_seconds > 0

    def test_map_compute_linear(self):
        cm = CostModel()
        assert cm.map_compute_seconds(2000) == pytest.approx(
            2 * cm.map_compute_seconds(1000))

    def test_reduce_and_local_rates_differ(self):
        cm = EC2_DEFAULTS
        assert cm.local_compute_seconds(1000) < cm.map_compute_seconds(1000)

    def test_shuffle_zero_bytes_free(self):
        assert EC2_DEFAULTS.shuffle_seconds(0) == 0.0

    def test_shuffle_includes_latency(self):
        cm = EC2_DEFAULTS
        assert cm.shuffle_seconds(1) >= cm.shuffle_latency_seconds

    def test_shuffle_negative_rejected(self):
        with pytest.raises(ValueError):
            EC2_DEFAULTS.shuffle_seconds(-1)

    def test_dfs_write_charges_replication(self):
        cm = CostModel(dfs_replication=3, dfs_touch_seconds=0.0)
        single = CostModel(dfs_replication=1, dfs_touch_seconds=0.0)
        assert cm.dfs_write_seconds(10**6) == pytest.approx(
            3 * single.dfs_write_seconds(10**6))

    def test_dfs_write_includes_fixed_touch_cost(self):
        cm = CostModel(dfs_touch_seconds=2.0)
        # even a one-byte state file pays the commit/metadata cost
        assert cm.dfs_write_seconds(1) >= 2.0

    def test_dfs_read_faster_than_write(self):
        cm = EC2_DEFAULTS
        assert cm.dfs_read_seconds(10**6) < cm.dfs_write_seconds(10**6)

    def test_dfs_negative_rejected(self):
        with pytest.raises(ValueError):
            EC2_DEFAULTS.dfs_read_seconds(-5)
        with pytest.raises(ValueError):
            EC2_DEFAULTS.dfs_write_seconds(-5)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ValueError):
            CostModel(map_op_seconds=0)
        with pytest.raises(ValueError):
            CostModel(job_startup_seconds=-1)
        with pytest.raises(ValueError):
            CostModel(dfs_replication=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            EC2_DEFAULTS.map_op_seconds = 1.0  # type: ignore[misc]


class TestPresets:
    def test_hpc_overheads_far_cheaper(self):
        # the §II claim: barrier/startup dominate on cloud, not on HPC
        assert HPC_DEFAULTS.job_startup_seconds < EC2_DEFAULTS.job_startup_seconds / 100
        assert HPC_DEFAULTS.barrier_seconds < EC2_DEFAULTS.barrier_seconds / 100
        assert HPC_DEFAULTS.shuffle_bandwidth_bps > EC2_DEFAULTS.shuffle_bandwidth_bps * 10

    def test_zero_cost_only_compute(self):
        assert ZERO_COST.job_startup_seconds == 0.0
        assert ZERO_COST.shuffle_seconds(10**9) == 0.0
        assert ZERO_COST.dfs_write_seconds(10**9) == 0.0
        assert ZERO_COST.map_compute_seconds(100) > 0.0


class TestScaledModel:
    def test_scale_one_is_identity_on_overheads(self):
        s = scaled_model(EC2_DEFAULTS, overhead_scale=1.0)
        assert s.job_startup_seconds == EC2_DEFAULTS.job_startup_seconds
        assert s.barrier_seconds == EC2_DEFAULTS.barrier_seconds

    def test_scale_zero_removes_overheads(self):
        s = scaled_model(EC2_DEFAULTS, overhead_scale=0.0)
        assert s.job_startup_seconds == 0.0
        assert s.task_dispatch_seconds == 0.0

    def test_compute_rates_untouched(self):
        s = scaled_model(EC2_DEFAULTS, overhead_scale=0.25)
        assert s.map_op_seconds == EC2_DEFAULTS.map_op_seconds

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_model(EC2_DEFAULTS, overhead_scale=-0.1)

    def test_intermediate_scale_monotone(self):
        lo = scaled_model(EC2_DEFAULTS, overhead_scale=0.1)
        hi = scaled_model(EC2_DEFAULTS, overhead_scale=0.9)
        assert lo.job_startup_seconds < hi.job_startup_seconds
        assert lo.shuffle_seconds(10**7) < hi.shuffle_seconds(10**7)
