"""Tests for the partitioned StateStore subsystem (§VIII state path).

Pins the refactor's load-bearing guarantees:

* **Charge equivalence** — with uniform partitions and a single tablet,
  the partitioned charging reproduces the historical scalar
  ``charge_state_roundtrip`` numbers charge-for-charge (both backends,
  unit-level and end-to-end through an IterationLoop run).
* **Shape equivalence** — kv/block/hierarchical backends all report the
  same per-partition byte shape (one entry per partition, every round).
* **Skew** — a skewed byte vector's round time is strictly dominated by
  the hottest tablet, and more tablets shrink it.
* **Sharing** — a session's jobs charge one store instance; slot shares
  scale bandwidth-bound charges (the shuffle/DFS slot-share fix).
* **Deprecation** — ``DriverConfig(state_store="online")`` keeps
  working but warns once per process.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import PageRankBlockSpec, PageRankKVSpec
from repro.apps.sssp import SsspBlockSpec
from repro.cluster import (
    DFSStateStore,
    EC2_DEFAULTS,
    OnlineStateStore,
    OnlineStoreModel,
    RoundAccountant,
    SimCluster,
    StateStore,
    even_split,
    resolve_state_store,
)
from repro.core import (
    BlockBackend,
    DriverConfig,
    EngineBackend,
    HierarchicalBackend,
    HierarchyConfig,
    IterationLoop,
    Session,
    make_racks,
)
from repro.core import config as config_module
from repro.graph import (
    attach_random_weights,
    multilevel_partition,
    preferential_attachment,
)


@pytest.fixture(scope="module")
def workload():
    g = preferential_attachment(300, num_conn=3, locality_prob=0.92,
                                community_mean=40, seed=7)
    part = multilevel_partition(g, 4, seed=0)
    return g, part


# ----------------------------------------------------------------------
# Helpers / unit level
# ----------------------------------------------------------------------

class TestEvenSplit:
    def test_preserves_total_exactly(self):
        for total, parts in ((0, 3), (10, 3), (1 << 20, 7), (5, 8)):
            shares = even_split(total, parts)
            assert len(shares) == parts
            assert sum(shares) == total
            assert max(shares) - min(shares) <= 1

    def test_edge_cases(self):
        assert even_split(100, 0) == ()
        with pytest.raises(ValueError):
            even_split(-1, 2)
        with pytest.raises(ValueError):
            even_split(1, -1)


class TestDFSStateStore:
    def test_matches_legacy_scalar_charge(self):
        """Charge-for-charge: any split summing to the old scalar."""
        cm = EC2_DEFAULTS
        store = DFSStateStore(cost_model=cm)
        total = 1 << 20
        legacy = cm.dfs_write_seconds(total) + cm.dfs_read_seconds(total)
        for pb in ((total,), even_split(total, 4), (total - 5, 5)):
            assert store.round_trip(pb) == pytest.approx(legacy)

    def test_durable_no_checkpoint(self):
        store = DFSStateStore(cost_model=EC2_DEFAULTS)
        assert store.durable
        assert store.checkpoint((1 << 20,)) == 0.0

    def test_bind_adopts_cluster_model(self):
        cl = SimCluster()
        store = DFSStateStore().bind(cl)
        assert store.cost_model is cl.cost_model

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            DFSStateStore(cost_model=EC2_DEFAULTS).round_trip((-1, 5))


class TestOnlineStateStoreSharding:
    def test_single_tablet_matches_legacy_scalar(self):
        model = OnlineStoreModel()
        store = OnlineStateStore(num_tablets=1, model=model)
        total = 1 << 20
        for pb in ((total,), even_split(total, 4)):
            assert store.round_trip(pb) == pytest.approx(
                model.roundtrip_seconds(total))

    def test_uniform_bytes_balance_exactly(self):
        store = OnlineStateStore(num_tablets=4, model=OnlineStoreModel())
        tb = store.shard_bytes([100] * 8)
        assert tb == pytest.approx([200.0] * 4)

    def test_key_ranges_shard_skew(self):
        # partition 0 is hot: with 2 tablets its whole range lands on
        # tablet 0; with 8 tablets it spreads over tablets 0-1.
        pb = [800, 0, 0, 0]
        t2 = OnlineStateStore(num_tablets=2).shard_bytes(pb)
        assert t2 == pytest.approx([800.0, 0.0])
        t8 = OnlineStateStore(num_tablets=8).shard_bytes(pb)
        assert t8 == pytest.approx([400.0, 400.0] + [0.0] * 6)

    def test_more_tablets_speed_up_uniform_rounds(self):
        model = OnlineStoreModel()
        pb = even_split(1 << 24, 8)
        t1 = OnlineStateStore(1, model=model).round_trip(pb)
        t8 = OnlineStateStore(8, model=model).round_trip(pb)
        assert t8 < t1  # tablets serve in parallel

    def test_round_time_strictly_dominated_by_hottest_tablet(self):
        model = OnlineStoreModel()
        store = OnlineStateStore(num_tablets=4, model=model)
        pb = [512 << 20, 1 << 10, 1 << 10, 1 << 10]  # hot partition 0
        t = store.round_trip(pb)
        per_tablet = store.last_round_tablet_seconds
        assert t == pytest.approx(max(per_tablet))
        assert max(per_tablet) > 10 * sorted(per_tablet)[-2]

    def test_skew_slower_than_uniform_same_total(self):
        model = OnlineStoreModel()
        total = 1 << 24
        uniform = OnlineStateStore(4, model=model).round_trip(
            even_split(total, 4))
        skewed = OnlineStateStore(4, model=model).round_trip(
            (total - 300, 100, 100, 100))
        assert skewed > uniform

    def test_stats_accumulate_and_imbalance(self):
        store = OnlineStateStore(num_tablets=2, model=OnlineStoreModel())
        assert store.imbalance() == 1.0
        store.round_trip((600, 200))
        assert store.rounds == 1
        assert store.bytes_written == 800 and store.bytes_read == 800
        assert store.tablet_bytes == [1200, 400]  # write + read per tablet
        assert store.imbalance() == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineStateStore(num_tablets=0)
        with pytest.raises(ValueError):
            OnlineStateStore(2).round_trip((-5,))

    def test_checkpoint_prices_full_replicated_write(self):
        store = OnlineStateStore(2, model=OnlineStoreModel(),
                                 cost_model=EC2_DEFAULTS)
        pb = (1 << 20, 1 << 10)
        assert not store.durable
        assert store.checkpoint(pb) == pytest.approx(
            EC2_DEFAULTS.dfs_write_seconds(sum(pb)))


class TestPublishConsume:
    """The no-barrier publish/consume path (AsyncBackend's charges)."""

    def test_publish_prices_like_one_partition_write_round(self):
        model = OnlineStoreModel()
        a = OnlineStateStore(num_tablets=4, model=model)
        b = OnlineStateStore(num_tablets=4, model=model)
        nbytes = 1 << 20
        vec = [0.0, float(nbytes), 0.0, 0.0]
        assert a.publish(1, nbytes, version=1, num_partitions=4) == \
            pytest.approx(b.write_round(vec))
        assert a.bytes_written == nbytes
        assert a.versions == {1: 1}

    def test_consume_prices_like_read_round(self):
        model = OnlineStoreModel()
        a = OnlineStateStore(num_tablets=4, model=model)
        b = OnlineStateStore(num_tablets=4, model=model)
        b.last_round_tablet_seconds = [0.0] * 4
        pb = (1 << 20, 0, 1 << 10, 0)
        assert a.consume(pb) == pytest.approx(b.read_round(pb))
        assert a.bytes_read == sum(pb)

    def test_version_monotonicity_enforced(self):
        store = OnlineStateStore(num_tablets=2)
        store.publish(0, 100, version=3, num_partitions=2)
        # Same version republished (idempotent retry) is fine ...
        store.publish(0, 100, version=3, num_partitions=2)
        # ... as is skipping forward; going backwards is not.
        store.publish(0, 100, version=5, num_partitions=2)
        with pytest.raises(ValueError, match="backwards"):
            store.publish(0, 100, version=3, num_partitions=2)
        assert store.versions[0] == 5

    def test_negative_publish_bytes_rejected(self):
        with pytest.raises(ValueError):
            OnlineStateStore(2).publish(0, -1, version=1, num_partitions=2)

    def test_stale_read_accounting(self):
        store = OnlineStateStore(num_tablets=4)
        for p in range(2):
            for v in (1, 2, 3):
                store.publish(p, 256, version=v, num_partitions=2)
        assert store.stale_reads == 0
        # Reader got version 1 of partition 0 (two behind) and the
        # latest of partition 1.
        store.consume((512, 0), read_versions=(1, 3))
        assert store.stale_reads == 1
        assert store.max_staleness_served == 2
        # partition 0's key range spans tablets 0-1 of 4
        assert store.tablet_stale_reads == [1, 1, 0, 0]
        # Zero-byte slices never count as reads, stale or otherwise.
        store.consume((0, 0), read_versions=(1, 1))
        assert store.stale_reads == 1

    def test_fresh_reads_stay_unflagged(self):
        store = OnlineStateStore(num_tablets=2)
        store.publish(0, 100, version=4, num_partitions=2)
        store.consume((100, 0), read_versions=(4, 0))
        assert store.stale_reads == 0
        assert store.max_staleness_served == 0


class TestResolveStateStore:
    def test_strings_map_to_equivalent_backends(self):
        cl = SimCluster()
        dfs = resolve_state_store("dfs", cl)
        online = resolve_state_store("online", cl)
        assert isinstance(dfs, DFSStateStore)
        assert isinstance(online, OnlineStateStore)
        assert online.num_tablets == 1  # legacy scalar equivalence
        assert online.model is cl.online_model

    def test_instances_and_factories_pass_through(self):
        cl = SimCluster()
        inst = OnlineStateStore(4)
        assert resolve_state_store(inst, cl) is inst
        made = resolve_state_store(lambda: OnlineStateStore(2), cl)
        assert isinstance(made, OnlineStateStore) and made.num_tablets == 2

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_state_store("tape", None)
        with pytest.raises(TypeError):
            resolve_state_store(42, None)
        with pytest.raises(TypeError):
            resolve_state_store(lambda: "not a store", None)


# ----------------------------------------------------------------------
# End-to-end charge equivalence (the pinned acceptance criterion)
# ----------------------------------------------------------------------

def _state_events(cluster):
    return [e for e in cluster.trace.events if e.phase.endswith(":state")]


class TestChargeEquivalence:
    """With uniform partitions and one tablet the partitioned charging
    reproduces the old scalar ``state_round_trip`` numbers exactly."""

    def _run(self, workload, store_spec):
        g, part = workload
        cl = SimCluster()
        cfg = DriverConfig(mode="eager", state_store=store_spec,
                           checkpoint_every=None)
        res = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=cl), cfg).run()
        return res, cl

    def test_dfs_store_reproduces_scalar_charges(self, workload):
        g, part = workload
        res, cl = self._run(workload, DFSStateStore())
        nbytes = g.num_nodes * 8  # the full rank vector, every round
        expected = (EC2_DEFAULTS.dfs_write_seconds(nbytes)
                    + EC2_DEFAULTS.dfs_read_seconds(nbytes))
        events = _state_events(cl)
        assert len(events) == res.global_iters
        for e in events:
            assert e.end - e.start == pytest.approx(expected)
        # and the threaded per-partition vector sums to the old scalar
        for r in res.history:
            assert sum(r.state_partition_bytes) == nbytes
            assert len(r.state_partition_bytes) == part.k

    def test_single_tablet_online_reproduces_scalar_charges(self, workload):
        g, part = workload
        res, cl = self._run(workload, OnlineStateStore(num_tablets=1))
        nbytes = g.num_nodes * 8
        expected = cl.online_model.roundtrip_seconds(nbytes)
        for e in _state_events(cl):
            assert e.end - e.start == pytest.approx(expected)

    @pytest.mark.parametrize("legacy,modern", [
        ("dfs", DFSStateStore),
        ("online", lambda: OnlineStateStore(num_tablets=1)),
    ])
    def test_legacy_strings_equal_modern_instances(self, workload,
                                                   legacy, modern):
        old, _ = self._run(workload, legacy)
        new, _ = self._run(workload, modern())
        assert old.global_iters == new.global_iters
        assert old.sim_time == pytest.approx(new.sim_time)
        assert [r.sim_seconds for r in old.history] == pytest.approx(
            [r.sim_seconds for r in new.history])

    def test_checkpoints_unchanged_through_store(self, workload):
        res, cl = self._run(workload, DFSStateStore())
        g, part = workload
        cfg = DriverConfig(mode="eager",
                           state_store=OnlineStateStore(num_tablets=1),
                           checkpoint_every=2)
        ckpt_cl = SimCluster()
        IterationLoop(BlockBackend(PageRankBlockSpec(g, part),
                                   cluster=ckpt_cl), cfg).run()
        ckpts = [e for e in ckpt_cl.trace.events
                 if e.phase.endswith(":checkpoint")]
        assert ckpts
        nbytes = g.num_nodes * 8
        for e in ckpts:
            assert e.end - e.start == pytest.approx(
                EC2_DEFAULTS.dfs_write_seconds(nbytes))


class TestBackendShapeEquivalence:
    """kv / block / hierarchical backends all report the same
    per-partition byte shape: one entry per partition, every round."""

    def test_all_backends_same_shape(self, workload):
        g, part = workload
        cfg = DriverConfig(mode="eager")
        block = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            cfg).run()
        hier = IterationLoop(
            HierarchicalBackend(PageRankBlockSpec(g, part),
                                make_racks(part.k, 2),
                                hierarchy=HierarchyConfig(inner_rounds=1),
                                cluster=SimCluster()), cfg).run()
        kv = IterationLoop(
            EngineBackend(PageRankKVSpec(g, part), num_reducers=2),
            DriverConfig(mode="eager", max_global_iters=3)).run()
        for res in (block, hier, kv):
            for r in res.history:
                assert len(r.state_partition_bytes) == part.k
                assert all(b >= 0 for b in r.state_partition_bytes)
        # hierarchy with one inner round is the block path, byte for byte
        assert [r.state_partition_bytes for r in hier.history] == \
               [r.state_partition_bytes for r in block.history]

    def test_engine_path_fires_checkpoints_like_block_path(self, workload):
        """The kv path charges the non-durable store's periodic
        checkpoint through the same accountant tail as the block path
        (the pre-fix engine path silently skipped it)."""
        g, part = workload
        cl = SimCluster()
        from repro.engine import MapReduceRuntime

        cfg = DriverConfig(mode="eager",
                           state_store=OnlineStateStore(num_tablets=1),
                           checkpoint_every=2, max_global_iters=4)
        with MapReduceRuntime("serial", cluster=cl) as rt:
            res = IterationLoop(
                EngineBackend(PageRankKVSpec(g, part), runtime=rt,
                              num_reducers=2), cfg).run()
        ckpts = [e for e in cl.trace.events
                 if e.phase.endswith(":checkpoint")]
        assert len(ckpts) == res.global_iters // 2

    def test_frontier_apps_report_skewed_updates(self, workload):
        g, _ = workload
        wg = attach_random_weights(g, low=1.0, high=10.0, seed=11)
        wpart = multilevel_partition(wg, 4, seed=0)
        res = IterationLoop(
            BlockBackend(SsspBlockSpec(wg, wpart, source=0),
                         cluster=SimCluster()),
            DriverConfig(mode="eager")).run()
        vectors = [r.state_partition_bytes for r in res.history]
        # frontier-driven: the update volume varies across partitions
        # and across rounds (unlike the dense pagerank profile)
        assert any(len(set(v)) > 1 for v in vectors)
        # the final round's wave has receded: fewer bytes than the first
        assert sum(vectors[-1]) < sum(vectors[0])


# ----------------------------------------------------------------------
# Slot-share scaling (the ROADMAP shuffle/DFS gap)
# ----------------------------------------------------------------------

class TestSlotShareScaling:
    def test_bandwidth_charges_scale_with_share(self):
        def charges(share):
            cl = SimCluster()
            acct = RoundAccountant(cl, DriverConfig(mode="eager"))
            acct.slot_share = share
            return (acct.charge_shuffle(16 << 20),
                    acct.charge_dfs_roundtrip(16 << 20),
                    acct.charge_state_round((16 << 20,)))

        full = charges(1.0)
        half = charges(0.5)
        for f, h in zip(full, half):
            assert h > f
        # the bandwidth term exactly doubles (latency terms do not)
        cm = EC2_DEFAULTS
        assert half[0] - full[0] == pytest.approx(
            (16 << 20) / cm.shuffle_bandwidth_bps)

    def test_share_validation(self):
        with pytest.raises(ValueError):
            EC2_DEFAULTS.shuffle_seconds(1.0, share=0.0)
        with pytest.raises(ValueError):
            EC2_DEFAULTS.dfs_write_seconds(1.0, share=1.5)
        with pytest.raises(ValueError):
            OnlineStoreModel().write_seconds(1.0, share=-0.1)

    def test_fair_share_session_pays_contended_bandwidth(self, workload):
        """Two concurrent fair-share jobs see half the network, so each
        round (shuffle + state incl.) costs more than a solo run's."""
        from repro.apps import pagerank_spec

        g, part = workload
        solo = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            DriverConfig(mode="eager")).run()
        session = Session(cluster=SimCluster(), policy="fair")
        h1 = session.submit(pagerank_spec(g, part))
        session.submit(pagerank_spec(g, part))
        session.run()
        for solo_r, fair_r in zip(solo.history, h1.result.history):
            # identical math, strictly costlier rounds under contention
            assert fair_r.residual == solo_r.residual
            if h1.round_shares[fair_r.iteration].slot_share < 1.0:
                assert fair_r.sim_seconds > solo_r.sim_seconds


# ----------------------------------------------------------------------
# Session-level sharing
# ----------------------------------------------------------------------

class TestSessionSharedStore:
    def test_default_config_jobs_share_one_store(self, workload):
        from repro.apps import pagerank_spec

        g, part = workload
        session = Session(cluster=SimCluster(), policy="rr")
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(pagerank_spec(g, part))
        assert h1.accountant.state_store is h2.accountant.state_store
        session.run()
        store = h1.accountant.state_store
        assert store.rounds == h1.rounds + h2.rounds

    def test_explicit_session_store_contends_on_tablets(self, workload):
        from repro.apps import pagerank_spec, sssp_spec

        g, part = workload
        wg = attach_random_weights(g, low=1.0, high=10.0, seed=11)
        wpart = multilevel_partition(wg, 4, seed=0)
        store = OnlineStateStore(num_tablets=4)
        session = Session(cluster=SimCluster(), policy="fair",
                          state_store=store)
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(sssp_spec(wg, wpart, source=0))
        session.run()
        # both jobs' state flowed through the SAME tablets
        assert h1.accountant.state_store is store
        assert h2.accountant.state_store is store
        assert store.rounds == h1.rounds + h2.rounds
        assert sum(store.tablet_bytes) > 0

    def test_config_instance_wins_over_session_cache(self, workload):
        g, part = workload
        private = OnlineStateStore(num_tablets=2)
        session = Session(cluster=SimCluster())
        h = session.submit(
            BlockBackend(PageRankBlockSpec(g, part)),
            DriverConfig(mode="eager", state_store=private,
                         max_global_iters=2))
        session.run()
        assert h.accountant.state_store is private
        assert private.rounds == h.rounds

    def test_session_store_type_checked(self):
        with pytest.raises(TypeError, match="StateStore"):
            Session(state_store="online")


# ----------------------------------------------------------------------
# Deprecation hygiene
# ----------------------------------------------------------------------

class TestDeprecation:
    def test_online_string_warns_once(self, monkeypatch):
        monkeypatch.setattr(config_module, "_WARNED_ONLINE_STRING", False)
        with pytest.warns(DeprecationWarning, match="OnlineStateStore"):
            DriverConfig(state_store="online")
        # second construction is silent (once per process)
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            DriverConfig(state_store="online")

    def test_dfs_string_stays_silent(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            DriverConfig(state_store="dfs")

    def test_config_validation(self):
        with pytest.raises(ValueError, match="state_store"):
            DriverConfig(state_store="tape")
        with pytest.raises(ValueError, match="state_store"):
            DriverConfig(state_store=42)
        # instances and factories are accepted
        DriverConfig(state_store=DFSStateStore())
        DriverConfig(state_store=lambda: OnlineStateStore(4))

    def test_state_store_is_a_statestore(self):
        assert isinstance(DFSStateStore(), StateStore)
        assert isinstance(OnlineStateStore(), StateStore)


class TestAutoSplit:
    """Load-triggered tablet splitting: hot key ranges subdivide mid-run
    while the versioned tablet map keeps every ledger consistent."""

    #: 8 partitions, everything concentrated in partition 0's key range.
    SKEW = [8000.0, 10, 10, 10, 10, 10, 10, 10]

    def test_validation(self):
        with pytest.raises(ValueError, match="split_threshold"):
            OnlineStateStore(4, split_threshold=0)
        with pytest.raises(ValueError, match="max_tablets"):
            OnlineStateStore(8, split_threshold=100, max_tablets=4)

    def test_no_threshold_never_splits(self):
        store = OnlineStateStore(4)
        for _ in range(5):
            store.round_trip(self.SKEW)
        assert store.tablet_map_version == 0
        assert store.split_events == []
        assert store.num_tablets == 4

    def test_hot_tablet_splits_and_map_stays_consistent(self):
        store = OnlineStateStore(4, split_threshold=4000)
        for _ in range(4):
            store.round_trip(self.SKEW)
        assert store.num_tablets > 4
        assert store.tablet_map_version == len(store.split_events)
        # boundaries stay a strictly increasing 0..1 cover, and every
        # per-tablet ledger tracks the new map's width
        assert store.boundaries[0] == 0.0 and store.boundaries[-1] == 1.0
        assert all(a < b for a, b in
                   zip(store.boundaries, store.boundaries[1:]))
        assert len(store.boundaries) == store.num_tablets + 1
        assert len(store.tablet_bytes) == store.num_tablets
        assert len(store.tablet_stale_reads) == store.num_tablets
        assert len(store.tablets) == store.num_tablets
        for version, tablet, midpoint, rnd in store.split_events:
            assert 0.0 < midpoint < 1.0

    def test_max_tablets_caps_growth(self):
        store = OnlineStateStore(2, split_threshold=100, max_tablets=8)
        for _ in range(10):
            store.round_trip(self.SKEW)
        assert store.num_tablets == 8

    def test_sharding_conserves_bytes_across_splits(self):
        store = OnlineStateStore(4, split_threshold=2000)
        for _ in range(6):
            store.round_trip(self.SKEW)
        assert store.num_tablets > 4
        assert sum(store.shard_bytes(self.SKEW)) == pytest.approx(
            sum(self.SKEW))

    def test_splitting_shrinks_the_hot_round_time(self):
        """Subdividing the hot range spreads its bytes over more
        tablets, so the slowest-tablet round time drops."""
        frozen = OnlineStateStore(4)
        split = OnlineStateStore(4, split_threshold=4000)
        for _ in range(6):
            t_frozen = frozen.round_trip(self.SKEW)
            t_split = split.round_trip(self.SKEW)
        assert split.num_tablets > frozen.num_tablets
        assert t_split < t_frozen

    def test_uniform_load_unaffected_by_headroom_threshold(self):
        """With a threshold the uniform load never reaches, charges are
        identical to the never-splitting store."""
        uniform = [1000.0] * 8
        plain = OnlineStateStore(4)
        armed = OnlineStateStore(4, split_threshold=10**9)
        for _ in range(3):
            assert armed.round_trip(uniform) == pytest.approx(
                plain.round_trip(uniform))
        assert armed.tablet_map_version == 0

    def test_publish_consume_ledgers_survive_splits(self):
        """The async path: version ledgers are partition-keyed, so a
        split mid-stream neither loses versions nor corrupts staleness
        accounting."""
        store = OnlineStateStore(2, split_threshold=3000, max_tablets=16)
        for v in range(1, 5):
            for p in range(4):
                store.publish(p, 2000 if p == 0 else 50, version=v,
                              num_partitions=4)
        assert store.num_tablets > 2
        assert store.versions == {p: 4 for p in range(4)}
        # a stale read against the *new* map still lands on the hot
        # partition's (now multiple) tablets
        before = store.stale_reads
        store.consume((1000, 0, 0, 0), read_versions=(2, 4, 4, 4))
        assert store.stale_reads == before + 1
        assert sum(store.tablet_stale_reads) >= 1
        # publishing after the split keeps versions monotone
        store.publish(0, 10, version=5, num_partitions=4)
        assert store.versions[0] == 5

    def test_split_store_round_accounting_through_accountant(self):
        """RoundAccountant surfaces the live tablet map version and the
        split count for RoundRecord consumption."""
        cluster = SimCluster()
        store = OnlineStateStore(2, split_threshold=3000).bind(cluster)
        acct = RoundAccountant(cluster, DriverConfig(), job="t",
                               state_store=store)
        assert acct.tablet_map_version == 0
        for _ in range(4):
            acct.charge_state_round(self.SKEW)
        assert acct.tablet_splits == len(store.split_events) > 0
        assert acct.tablet_map_version == store.tablet_map_version


class TestTabletMerge:
    """Load-triggered tablet merging: adjacent cold ranges collapse so a
    receding workload doesn't strand a wide tablet map."""

    def test_validation(self):
        with pytest.raises(ValueError, match="merge_threshold"):
            OnlineStateStore(4, merge_threshold=0)
        with pytest.raises(ValueError, match="oscillate"):
            OnlineStateStore(4, split_threshold=100, merge_threshold=200)

    def test_unobserved_map_never_merges(self):
        """The cold-start guard: a map that has served nothing is
        unobserved, not cold — the first round must see the configured
        tablet count."""
        store = OnlineStateStore(8, merge_threshold=10 ** 9)
        store.round_trip([100.0] * 8)
        assert store.num_tablets == 8
        assert store.merge_events == []

    def test_cold_run_collapses_in_one_pass(self):
        """A run of adjacent cold tablets merges down at the next round
        boundary, floored at one tablet."""
        store = OnlineStateStore(8, merge_threshold=10 ** 9)
        store.round_trip([100.0] * 8)
        store.round_trip([100.0] * 8)
        assert store.num_tablets == 1
        assert store.boundaries == [0.0, 1.0]
        assert len(store.merge_events) == 7
        assert store.tablet_map_version == 7
        for version, tablet, removed, rnd in store.merge_events:
            assert 0.0 < removed < 1.0

    def test_partial_merge_keeps_hot_tablet(self):
        """Only the cold tail merges; the hot tablet and its boundaries
        survive untouched."""
        skew = [8000.0] + [10.0] * 7
        store = OnlineStateStore(8, merge_threshold=1000)
        store.round_trip(skew)
        store.round_trip(skew)
        assert store.num_tablets == 2
        assert store.boundaries[0] == 0.0
        assert store.boundaries[1] == pytest.approx(1 / 8)
        assert store.boundaries[-1] == 1.0

    def test_merge_conserves_ledgers_and_bytes(self):
        skew = [8000.0] + [10.0] * 7
        store = OnlineStateStore(8, merge_threshold=1000)
        store.round_trip(skew)
        total_bytes = sum(store.tablet_bytes)
        total_stale = sum(store.tablet_stale_reads)
        store.round_trip(skew)
        assert store.num_tablets == 2
        assert len(store.tablet_bytes) == 2
        assert len(store.last_round_tablet_seconds) == 2
        assert len(store.tablet_stale_reads) == 2
        assert len(store.tablets) == 2
        assert sum(store.tablet_stale_reads) == total_stale
        # cumulative bytes only grow (merge moved, round added)
        assert sum(store.tablet_bytes) > total_bytes
        assert sum(store.shard_bytes(skew)) == pytest.approx(sum(skew))

    def test_merge_absorbs_rows(self):
        """The survivor inherits the absorbed tablet's rows: reads keep
        working across the remap (key ranges are disjoint)."""
        store = OnlineStateStore(4, merge_threshold=10 ** 9)
        store.tablets[1].put("row-a", {"x": 1}, nbytes=64)
        store.tablets[3].put("row-b", {"y": 2}, nbytes=64)
        spent = sum(t.time_spent for t in store.tablets)
        store.round_trip([100.0] * 4)
        store.round_trip([100.0] * 4)
        assert store.num_tablets == 1
        survivor = store.tablets[0]
        assert survivor.get("row-a")[0] == {"x": 1}
        assert survivor.get("row-b")[0] == {"y": 2}
        assert survivor.time_spent > spent  # charges carried over

    def test_merge_surfaces_through_accountant(self):
        cluster = SimCluster()
        store = OnlineStateStore(4, merge_threshold=10 ** 9).bind(cluster)
        acct = RoundAccountant(cluster, DriverConfig(), job="t",
                               state_store=store)
        assert acct.tablet_merges == 0
        for _ in range(3):
            acct.charge_state_round([100.0] * 4)
        assert acct.tablet_merges == len(store.merge_events) == 3
        assert acct.tablet_map_version == store.tablet_map_version


class TestLoadAwareSplitPoint:
    """Bigtable splits where the data says to: the split key is the
    byte-weighted median of the observed load profile, not the range
    midpoint."""

    def test_flat_profile_splits_at_midpoint(self):
        store = OnlineStateStore(1, split_threshold=4000, max_tablets=2)
        store.round_trip([1000.0] * 8)
        store.round_trip([1000.0] * 8)
        assert store.num_tablets == 2
        assert store.split_events[0][2] == pytest.approx(0.5)

    def test_hot_partition_pulls_split_into_its_range(self):
        """Partition 2 of 8 holds nearly all the bytes, so the weighted
        median lands inside its key range [2/8, 3/8) — not at 0.5."""
        skew = [10.0, 10.0, 8000.0, 10.0, 10.0, 10.0, 10.0, 10.0]
        store = OnlineStateStore(1, split_threshold=4000, max_tablets=2)
        store.round_trip(skew)
        store.round_trip(skew)
        assert store.num_tablets == 2
        mid = store.split_events[0][2]
        assert 2 / 8 < mid < 3 / 8

    def test_unobserved_range_falls_back_to_midpoint(self):
        store = OnlineStateStore(4)
        assert store._split_point(1) == pytest.approx((0.25 + 0.5) / 2)

    def test_split_point_stays_strictly_inside_range(self):
        """All the mass at the very start of the range: the clamp keeps
        both children non-empty."""
        store = OnlineStateStore(1, split_threshold=100, max_tablets=4)
        store.round_trip([5000.0, 0.0, 0.0, 0.0])
        store.round_trip([5000.0, 0.0, 0.0, 0.0])
        assert store.num_tablets > 1
        assert all(a < b for a, b in
                   zip(store.boundaries, store.boundaries[1:]))
        for _, _, mid, _ in store.split_events:
            assert 0.0 < mid < 1.0
