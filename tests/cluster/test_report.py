"""Tests for the execution-trace phase-breakdown reports."""

from __future__ import annotations

import pytest

from repro.apps import pagerank
from repro.cluster import (
    SimCluster,
    format_breakdown,
    overhead_fraction,
    phase_breakdown,
)


@pytest.fixture()
def run_cluster(small_graph, small_partition):
    cl = SimCluster()
    pagerank(small_graph, small_partition, mode="eager", cluster=cl)
    return cl


class TestPhaseBreakdown:
    def test_rows_cover_known_phases(self, run_cluster):
        rows = phase_breakdown(run_cluster)
        names = {r.phase for r in rows}
        assert "startup" in names
        assert "map" in names
        assert "barrier" in names

    def test_shares_sum_reasonably(self, run_cluster):
        rows = phase_breakdown(run_cluster)
        total_share = sum(r.share for r in rows)
        # serial charges + per-slot-averaged task time <= clock
        assert 0.5 < total_share <= 1.01

    def test_sorted_descending(self, run_cluster):
        rows = phase_breakdown(run_cluster)
        secs = [r.seconds for r in rows]
        assert secs == sorted(secs, reverse=True)

    def test_classification(self, run_cluster):
        rows = {r.phase: r.kind for r in phase_breakdown(run_cluster)}
        assert rows["startup"] == "overhead"
        assert rows["barrier"] == "overhead"
        assert rows["map"] == "compute"

    def test_empty_cluster(self):
        assert phase_breakdown(SimCluster()) == []
        assert overhead_fraction(SimCluster()) == 0.0


class TestOverheadFraction:
    def test_papers_premise_holds(self, run_cluster):
        # §II: global synchronization overhead dominates iterative jobs
        # on cloud-like platforms
        assert overhead_fraction(run_cluster) > 0.5

    def test_bounded(self, run_cluster):
        assert 0.0 <= overhead_fraction(run_cluster) <= 1.0


class TestFormatBreakdown:
    def test_renders_table(self, run_cluster):
        out = format_breakdown(run_cluster, title="T")
        assert out.startswith("T")
        assert "startup" in out
        assert "(total clock)" in out
