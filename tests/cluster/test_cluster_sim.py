"""Tests for SimCluster scheduling, trace, nodes, and DFS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    CostModel,
    EC2_DEFAULTS,
    Event,
    SimCluster,
    SimDFS,
    SimNode,
    Trace,
    ZERO_COST,
    ec2_nodes,
    estimate_nbytes,
)


class TestSimNode:
    def test_defaults(self):
        n = SimNode(0)
        assert n.map_slots == 4 and n.reduce_slots == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            SimNode(0, map_slots=0)
        with pytest.raises(ValueError):
            SimNode(0, speed=0)
        with pytest.raises(ValueError):
            SimNode(0, reduce_slots=-1)

    def test_ec2_nodes_table1(self):
        nodes = ec2_nodes()
        assert len(nodes) == 8  # Table I: 8 instances
        assert all(n.speed == 1.0 for n in nodes)

    def test_ec2_nodes_speeds(self):
        nodes = ec2_nodes(2, speeds=[1.0, 0.5])
        assert nodes[1].speed == 0.5
        with pytest.raises(ValueError):
            ec2_nodes(2, speeds=[1.0])

    def test_ec2_nodes_count(self):
        with pytest.raises(ValueError):
            ec2_nodes(0)


class TestTrace:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            Event("map", "x", 0, 0, start=5.0, end=4.0)

    def test_makespan_and_phase_time(self):
        t = Trace()
        t.add(Event("map", "a", 0, 0, 0.0, 2.0))
        t.add(Event("map", "b", 0, 1, 0.0, 3.0))
        t.add(Event("shuffle", "s", -1, 0, 3.0, 4.0))
        assert t.makespan() == 4.0
        assert t.phase_time("map") == 5.0
        assert t.phases() == {"map": 5.0, "shuffle": 1.0}

    def test_empty_trace(self):
        t = Trace()
        assert t.makespan() == 0.0
        assert t.utilization(4) == 0.0

    def test_utilization_bounds(self):
        t = Trace()
        t.add(Event("map", "a", 0, 0, 0.0, 2.0))
        assert 0.0 < t.utilization(2) <= 1.0
        with pytest.raises(ValueError):
            t.utilization(0)

    def test_overlap_detection(self):
        t = Trace()
        t.add(Event("map", "a", 0, 0, 0.0, 2.0))
        t.add(Event("map", "b", 0, 0, 1.0, 3.0))
        with pytest.raises(AssertionError):
            t.check_no_overlap()

    def test_no_overlap_on_different_slots(self):
        t = Trace()
        t.add(Event("map", "a", 0, 0, 0.0, 2.0))
        t.add(Event("map", "b", 0, 1, 1.0, 3.0))
        t.check_no_overlap()


class TestDFS:
    def test_put_get_roundtrip(self):
        dfs = SimDFS(EC2_DEFAULTS)
        t_w = dfs.put("f", {"a": 1})
        value, t_r = dfs.get("f")
        assert value == {"a": 1}
        assert t_w > 0 and t_r > 0
        assert dfs.time_spent == pytest.approx(t_w + t_r)

    def test_get_missing(self):
        dfs = SimDFS(EC2_DEFAULTS)
        with pytest.raises(KeyError):
            dfs.get("nope")

    def test_delete_free(self):
        dfs = SimDFS(EC2_DEFAULTS)
        dfs.put("f", 1)
        before = dfs.time_spent
        dfs.delete("f")
        assert dfs.time_spent == before
        assert not dfs.exists("f")

    def test_explicit_nbytes(self):
        dfs = SimDFS(EC2_DEFAULTS)
        dfs.put("f", "x", nbytes=10**6)
        assert dfs.size_of("f") == 10**6

    def test_keys_sorted(self):
        dfs = SimDFS(ZERO_COST)
        dfs.put("b", 1)
        dfs.put("a", 2)
        assert dfs.keys() == ["a", "b"]
        assert len(dfs) == 2

    def test_zero_cost_model_free_io(self):
        dfs = SimDFS(ZERO_COST)
        dfs.put("f", np.zeros(1000))
        dfs.get("f")
        assert dfs.time_spent == 0.0


class TestEstimateNbytes:
    def test_ndarray_exact(self):
        assert estimate_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalars(self):
        assert estimate_nbytes(1) == 8
        assert estimate_nbytes(1.5) == 8
        assert estimate_nbytes(None) == 1

    def test_string_bytes(self):
        assert estimate_nbytes("abc") == 3
        assert estimate_nbytes(b"abcd") == 4

    def test_containers_recursive(self):
        assert estimate_nbytes([1, 2]) == 16
        assert estimate_nbytes({"a": 1}) == 9
        assert estimate_nbytes((1.0, "xy")) == 10

    def test_fallback_object(self):
        class Thing:
            pass

        assert estimate_nbytes(Thing()) == 32


class TestScheduling:
    def test_phase_makespan_at_least_lower_bound(self, cluster):
        costs = [3.0, 1.0, 4.0, 1.5, 9.0, 2.0, 6.0]
        lb = cluster.lower_bound_makespan(costs)
        res = cluster.run_map_phase(costs)
        assert res.makespan >= lb
        assert res.num_tasks == len(costs)
        assert res.total_work == pytest.approx(sum(costs))

    def test_trace_has_no_slot_overlap(self, cluster):
        cluster.run_map_phase([1.0] * 100)
        cluster.trace.check_no_overlap()

    def test_parallelism_speedup(self):
        # 32 map slots: 64 unit tasks should take ~2 units + overhead,
        # far less than the 64 serial units
        cl = SimCluster(ec2_nodes(), ZERO_COST)
        res = cl.run_map_phase([1.0] * 64)
        assert res.makespan == pytest.approx(2.0)

    def test_single_giant_task_bounds_makespan(self):
        cl = SimCluster(ec2_nodes(), ZERO_COST)
        res = cl.run_map_phase([100.0] + [0.1] * 10)
        assert res.makespan == pytest.approx(100.0)

    def test_dispatch_overhead_charged_per_task(self):
        cm = CostModel(task_dispatch_seconds=0.5)
        cl = SimCluster(ec2_nodes(1, map_slots=1), cm)
        res = cl.run_map_phase([0.0, 0.0, 0.0])
        assert res.makespan == pytest.approx(1.5)

    def test_heterogeneous_speeds(self):
        nodes = ec2_nodes(2, map_slots=1, speeds=[1.0, 4.0])
        cl = SimCluster(nodes, ZERO_COST)
        res = cl.run_map_phase([4.0, 4.0])
        # fast slot runs one task in 1s; slow one in 4s -> makespan 4
        assert res.makespan == pytest.approx(4.0)

    def test_empty_phase(self, cluster):
        res = cluster.run_map_phase([])
        assert res.makespan == 0.0
        assert cluster.clock == 0.0

    def test_negative_cost_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.run_map_phase([-1.0])

    def test_reduce_phase_uses_reduce_slots(self):
        cl = SimCluster(ec2_nodes(1, map_slots=8, reduce_slots=1), ZERO_COST)
        res = cl.run_reduce_phase([1.0, 1.0])
        assert res.makespan == pytest.approx(2.0)

    def test_clock_advances_across_phases(self, zero_cluster):
        zero_cluster.run_map_phase([1.0])
        t1 = zero_cluster.clock
        zero_cluster.run_map_phase([1.0])
        assert zero_cluster.clock == pytest.approx(t1 + 1.0)

    def test_no_reduce_slots_rejected(self):
        cl = SimCluster([SimNode(0, map_slots=1, reduce_slots=0)])
        with pytest.raises(ValueError, match="no reduce slots"):
            cl.run_reduce_phase([1.0])


class TestCharges:
    def test_job_startup(self, cluster):
        t = cluster.charge_job_startup()
        assert t == EC2_DEFAULTS.job_startup_seconds
        assert cluster.clock == pytest.approx(t)

    def test_shuffle_and_barrier(self, cluster):
        t1 = cluster.charge_shuffle(16 * 10**6)
        t2 = cluster.charge_barrier()
        assert cluster.clock == pytest.approx(t1 + t2)

    def test_dfs_roundtrip_charge(self, cluster):
        t = cluster.charge_dfs_roundtrip(10**6)
        expected = (EC2_DEFAULTS.dfs_write_seconds(10**6)
                    + EC2_DEFAULTS.dfs_read_seconds(10**6))
        assert t == pytest.approx(expected)

    def test_zero_charge_adds_no_event(self, zero_cluster):
        before = len(zero_cluster.trace)
        zero_cluster.charge_barrier()
        assert len(zero_cluster.trace) == before

    def test_reset(self, cluster):
        cluster.charge_job_startup()
        cluster.reset()
        assert cluster.clock == 0.0
        assert len(cluster.trace) == 0

    def test_cluster_needs_nodes(self):
        with pytest.raises(ValueError):
            SimCluster([])
