"""Simulated speculation: LATE estimates, straggler injection, and the
backup-scheduling win on the projected cluster.

The real engine races actual attempts (tests/engine/test_speculation.py);
here the cluster *schedules* projected backups, so every number is
deterministic and the makespan claims can be exact.
"""

from __future__ import annotations

import pytest

from repro.cluster import SimCluster, SpeculationConfig, ec2_nodes, late_threshold
from repro.engine import StragglerPlan


class TestLateThreshold:
    def test_median_default(self):
        # sorted [1..5] -> median 3 -> cut 1.5 * 3
        assert late_threshold([5, 1, 3, 2, 4],
                              slowdown_threshold=1.5) == pytest.approx(4.5)

    def test_mean_when_percentile_none(self):
        assert late_threshold([1.0, 3.0], slowdown_threshold=2.0,
                              percentile=None) == pytest.approx(4.0)

    def test_high_percentile(self):
        assert late_threshold([1.0, 1.0, 1.0, 10.0], slowdown_threshold=1.5,
                              percentile=1.0) == pytest.approx(15.0)

    def test_empty_is_zero(self):
        assert late_threshold([], slowdown_threshold=1.5) == 0.0


class TestSpeculationConfig:
    def test_defaults_validate(self):
        cfg = SpeculationConfig()
        assert cfg.slowdown_threshold > 1.0

    @pytest.mark.parametrize("kwargs", [
        {"slowdown_threshold": 1.0},
        {"percentile": 0.0},
        {"percentile": 1.5},
        {"min_completed_fraction": -0.1},
        {"check_interval": 0.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpeculationConfig(**kwargs)


class TestStragglerPlan:
    def test_node_factor_default_full_speed(self):
        plan = StragglerPlan(node_slowdown={2: 4.0})
        assert plan.node_factor(2) == 4.0
        assert plan.node_factor(0) == 1.0

    def test_stalls_are_deterministic(self):
        plan = StragglerPlan(stall_probability=0.3, stall_seconds=2.0, seed=7)
        first = [plan.transient_stall("map", i) for i in range(50)]
        again = [plan.transient_stall("map", i) for i in range(50)]
        assert first == again
        assert 0.0 < sum(first) < 50 * 2.0  # some stall, not all

    @pytest.mark.parametrize("kwargs", [
        {"stall_probability": 1.5},
        {"stall_seconds": -1.0},
        {"node_slowdown": {0: 0.5}},
        {"node_slowdown": {-1: 2.0}},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StragglerPlan(**kwargs)


def _slow_node_cluster(factor=4.0):
    return SimCluster(nodes=ec2_nodes(4),
                      stragglers=StragglerPlan(node_slowdown={0: factor}))


class TestStragglerScheduling:
    def test_slow_node_stretches_the_phase(self):
        uniform = SimCluster(nodes=ec2_nodes(4))
        base = uniform.run_map_phase([1.0] * 32).makespan
        skewed = _slow_node_cluster().run_map_phase([1.0] * 32).makespan
        assert skewed > base

    def test_speculation_recovers_most_of_the_loss(self):
        """Backups re-run the slow node's tail on idle fast slots."""
        plain = _slow_node_cluster().run_map_phase([1.0] * 32)
        spec = _slow_node_cluster().run_map_phase([1.0] * 32, speculate=True)
        assert spec.backups >= 1
        assert spec.backups_won >= 1
        assert spec.makespan < plain.makespan
        assert spec.wasted_seconds > 0.0  # losers did real duplicate work

    def test_speculation_noop_on_homogeneous_cluster(self):
        """No task runs late on a uniform cluster: no backups, and the
        phase charge is identical to the no-speculation schedule."""
        plain = SimCluster(nodes=ec2_nodes(4)).run_map_phase([1.0] * 32)
        spec = SimCluster(nodes=ec2_nodes(4)).run_map_phase(
            [1.0] * 32, speculate=True)
        assert spec.backups == 0
        assert spec.makespan == pytest.approx(plain.makespan)

    def test_reduce_phase_speculates_too(self):
        plain = _slow_node_cluster().run_reduce_phase([2.0] * 8)
        spec = _slow_node_cluster().run_reduce_phase([2.0] * 8,
                                                     speculate=True)
        assert spec.makespan <= plain.makespan

    def test_deterministic_replay(self):
        a = _slow_node_cluster().run_map_phase([1.0] * 32, speculate=True)
        b = _slow_node_cluster().run_map_phase([1.0] * 32, speculate=True)
        assert (a.makespan, a.backups, a.backups_won, a.wasted_seconds) == \
               (b.makespan, b.backups, b.backups_won, b.wasted_seconds)
