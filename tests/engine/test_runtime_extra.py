"""Additional engine runtime coverage: partitioner routing inside jobs,
unsorted reduce order, task-level accounting, and process executor."""

from __future__ import annotations

import pytest

from repro.cluster import SimCluster, ZERO_COST, ec2_nodes
from repro.engine import (
    Job,
    JobConf,
    MapReduceRuntime,
    RangePartitioner,
)


def emit_identity(key, value, ctx):
    ctx.emit(key, value)


def emit_sum(key, values, ctx):
    ctx.emit(key, sum(values))


def emit_value_keyed(key, value, ctx):
    ctx.emit(value, 1)


class TestRangePartitionedJob:
    def test_reducer_routing(self):
        # keys 0..9 routed by ranges [0,4), [4,8), [8,..)
        job = Job(emit_identity, emit_sum,
                  conf=JobConf(num_reducers=3, name="ranged"),
                  partitioner=RangePartitioner([4, 8]))
        splits = [[(i, 1) for i in range(10)]]
        res = MapReduceRuntime("serial").run(job, splits)
        assert res.as_dict() == {i: 1 for i in range(10)}

    def test_sorted_output_across_ranges(self):
        job = Job(emit_identity, emit_sum,
                  conf=JobConf(num_reducers=2, name="ranged"),
                  partitioner=RangePartitioner([5]))
        splits = [[(i, 1) for i in (9, 3, 7, 1)]]
        res = MapReduceRuntime("serial").run(job, splits)
        keys = [k for k, _ in res.output]
        # reducer 0 gets {1, 3} sorted, reducer 1 gets {7, 9} sorted:
        # concatenation is globally sorted for a range partitioner
        assert keys == sorted(keys)


class TestUnsortedReduce:
    def test_sort_keys_false_first_seen_order(self):
        job = Job(emit_value_keyed, emit_sum,
                  conf=JobConf(num_reducers=1, sort_keys=False))
        splits = [[(0, "zebra"), (1, "apple"), (2, "zebra")]]
        res = MapReduceRuntime("serial").run(job, splits)
        assert [k for k, _ in res.output] == ["zebra", "apple"]


class TestAccountingDetail:
    def test_map_phase_cost_scales_with_ops(self):
        cl1 = SimCluster(ec2_nodes(), ZERO_COST)
        rt1 = MapReduceRuntime("serial", cluster=cl1)
        job = Job(emit_identity, emit_sum, conf=JobConf(num_reducers=1))
        rt1.run(job, [[(i, 1) for i in range(10)]])
        t_small = cl1.clock

        cl2 = SimCluster(ec2_nodes(), ZERO_COST)
        rt2 = MapReduceRuntime("serial", cluster=cl2)
        rt2.run(job, [[(i, 1) for i in range(1000)]])
        assert cl2.clock > t_small

    def test_two_jobs_accumulate_on_one_cluster(self):
        cl = SimCluster()
        rt = MapReduceRuntime("serial", cluster=cl)
        job = Job(emit_identity, emit_sum, conf=JobConf(num_reducers=1))
        rt.run(job, [[(0, 1)]])
        after_one = cl.clock
        rt.run(job, [[(0, 1)]])
        assert cl.clock > after_one

    def test_job_names_label_the_trace(self):
        cl = SimCluster()
        rt = MapReduceRuntime("serial", cluster=cl)
        job = Job(emit_identity, emit_sum,
                  conf=JobConf(num_reducers=1, name="myjob"))
        rt.run(job, [[(0, 1)]])
        phases = {e.phase for e in cl.trace.events}
        assert any(p.startswith("myjob:") for p in phases)


class TestProcessExecutor:
    def test_process_pool_with_conf_variants(self):
        # module-level functions are picklable; exercise 2 reducers
        job = Job(emit_identity, emit_sum, conf=JobConf(num_reducers=2))
        splits = [[(i, i) for i in range(5)], [(i, i) for i in range(5, 9)]]
        res = MapReduceRuntime("processes", workers=2).run(job, splits)
        assert res.as_dict() == {i: i for i in range(9)}

    def test_process_pool_counters_merged(self):
        job = Job(emit_identity, emit_sum, conf=JobConf(num_reducers=2))
        splits = [[(i, i) for i in range(6)]]
        res = MapReduceRuntime("processes", workers=2).run(job, splits)
        assert res.counters.get("task.map.input.records") == 6
