"""Correlated failure domains on the real engine (NodeFaultPlan).

The paper's §II fault-tolerance story is deterministic replay of lost
map outputs; these tests inject whole-node and whole-rack deaths into
the thread/process executors and pin the §II guarantee: the job always
completes with output bitwise identical to a failure-free run, no
matter which domain died or what it took with it.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    Job,
    JobConf,
    MapReduceRuntime,
    NodeDeath,
    NodeFaultPlan,
    ShuffleBuffer,
)
from repro.engine.counters import LOST_MAP_OUTPUTS, NODE_DEATHS


def _word_map(key, value, ctx):
    for w in value.split():
        ctx.emit(w, 1)


def _splits(num=8):
    corpus = ["the quick brown fox", "jumps over the lazy dog",
              "the dog barks", "a quick fix", "lazy summer days",
              "fox and dog", "over and over", "the end"]
    return [[(m, corpus[m % len(corpus)])] for m in range(num)]


def _job(num_reducers=3):
    return Job(_word_map, "sum", conf=JobConf(num_reducers=num_reducers))


def _oracle(splits, num_reducers=3):
    with MapReduceRuntime("serial") as rt:
        return rt.run(_job(num_reducers), splits).output


class TestNodeFaultPlanModel:
    def test_none_is_empty(self):
        assert NodeFaultPlan.none().is_empty
        assert not NodeFaultPlan.kill_node(0).is_empty
        assert not NodeFaultPlan.random(0.1).is_empty

    def test_rack_topology(self):
        plan = NodeFaultPlan(num_nodes=8, nodes_per_rack=4)
        assert plan.node_rack(0) == 0
        assert plan.node_rack(3) == 0
        assert plan.node_rack(4) == 1
        assert plan.rack_nodes(1) == (4, 5, 6, 7)

    def test_rack_death_expands_to_all_rack_nodes(self):
        plan = NodeFaultPlan.kill_rack(1, round=2, num_nodes=8,
                                       nodes_per_rack=4)
        deaths = plan.deaths_in_round(2)
        assert sorted(deaths) == [4, 5, 6, 7]
        assert plan.deaths_in_round(0) == {}
        assert plan.deaths_in_round(3) == {}

    def test_node_death_is_single_domain(self):
        plan = NodeFaultPlan.kill_node(2, round=1)
        assert sorted(plan.deaths_in_round(1)) == [2]
        assert plan.deaths_in_round(0) == {}

    def test_random_mode_is_deterministic(self):
        a = NodeFaultPlan.random(0.5, seed=3)
        b = NodeFaultPlan.random(0.5, seed=3)
        for r in range(6):
            assert sorted(a.deaths_in_round(r)) == sorted(b.deaths_in_round(r))
        # probability 0 never kills; some round of p=0.5 over 8 nodes does
        assert all(not NodeFaultPlan.random(0.0).deaths_in_round(r)
                   for r in range(6))
        assert any(a.deaths_in_round(r) for r in range(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFaultPlan(num_nodes=0)
        with pytest.raises(ValueError):
            NodeFaultPlan(num_nodes=4, nodes_per_rack=8)
        with pytest.raises(ValueError):
            NodeFaultPlan(probability=1.0)
        with pytest.raises(ValueError):
            NodeFaultPlan(heartbeat_seconds=-1.0)
        with pytest.raises(ValueError):
            NodeFaultPlan.kill_node(9, num_nodes=8)
        with pytest.raises(ValueError):
            NodeFaultPlan.kill_rack(2, num_nodes=8, nodes_per_rack=4)
        with pytest.raises(ValueError):
            NodeDeath(node=-1)
        with pytest.raises(ValueError):
            NodeDeath(node=0, at_seconds=-0.5)


class TestEngineNodeDeaths:
    def test_serial_executor_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            MapReduceRuntime("serial",
                             node_faults=NodeFaultPlan.kill_node(0))

    def test_node_kill_replays_bitwise_identically(self):
        splits = _splits()
        plan = NodeFaultPlan.kill_node(1, after_completions=2, num_nodes=4)
        with MapReduceRuntime("threads", workers=3, node_faults=plan) as rt:
            res = rt.run(_job(), splits)
        assert res.counters.get(NODE_DEATHS) == 1
        assert res.output == _oracle(splits)

    def test_rack_kill_replays_bitwise_identically(self):
        splits = _splits()
        plan = NodeFaultPlan.kill_rack(0, after_completions=2,
                                       num_nodes=4, nodes_per_rack=2)
        with MapReduceRuntime("threads", workers=3, node_faults=plan) as rt:
            res = rt.run(_job(), splits)
        assert res.counters.get(NODE_DEATHS) == 2
        assert res.output == _oracle(splits)

    def test_completed_outputs_are_lineage_lost(self):
        """Killing a node late in the map phase invalidates its already
        completed outputs, which the runtime recomputes from lineage."""
        splits = _splits()
        plan = NodeFaultPlan.kill_node(0, after_completions=7, num_nodes=2)
        with MapReduceRuntime("threads", workers=4, node_faults=plan) as rt:
            res = rt.run(_job(), splits)
        assert res.counters.get(NODE_DEATHS) == 1
        assert res.counters.get(LOST_MAP_OUTPUTS) >= 1
        assert res.output == _oracle(splits)

    def test_death_fires_at_most_once_per_round(self):
        """The same runtime re-running the same round index must not
        re-kill the node — the rollback-replay invariant."""
        splits = _splits()
        plan = NodeFaultPlan.kill_node(1, round=0, after_completions=1,
                                       num_nodes=4)
        with MapReduceRuntime("threads", workers=3, node_faults=plan) as rt:
            first = rt.run(_job(), splits, round_index=0)
            replay = rt.run(_job(), splits, round_index=0)
            other = rt.run(_job(), splits, round_index=1)
        assert first.counters.get(NODE_DEATHS) == 1
        assert replay.counters.get(NODE_DEATHS) == 0
        assert other.counters.get(NODE_DEATHS) == 0
        assert first.output == replay.output == _oracle(splits)


class TestDeferMergeBuffer:
    """The defer-merge shuffle mode death rounds run under: parked
    contributions stay individually revocable until sealed."""

    def test_invalidate_and_readd(self):
        buf = ShuffleBuffer(num_maps=3, num_reducers=2, defer_merge=True)
        buf.add(0, [[("a", 1)], []])
        buf.add(1, [[("b", 2)], []])
        assert not buf.complete
        assert buf.invalidate(1)
        assert not buf.invalidate(1)      # already gone
        buf.add(1, [[("b", 5)], []])
        buf.add(2, [[], [("c", 3)]])
        assert buf.complete
        groups = buf.groups()
        assert groups[0] == [("a", [1]), ("b", [5])]
        assert groups[1] == [("c", [3])]

    def test_eager_buffer_rejects_invalidate(self):
        buf = ShuffleBuffer(num_maps=2, num_reducers=1)
        buf.add(0, [[("a", 1)]])
        with pytest.raises(RuntimeError, match="defer_merge"):
            buf.invalidate(0)

    def test_deferred_output_matches_eager(self):
        parts = [[[("x", 1)], [("y", 9)]], [[("x", 2)], []],
                 [[("z", 3)], [("y", 8)]]]
        eager = ShuffleBuffer(num_maps=3, num_reducers=2)
        defer = ShuffleBuffer(num_maps=3, num_reducers=2, defer_merge=True)
        for m, buckets in enumerate(parts):
            eager.add(m, [list(b) for b in buckets])
        # deferred buffers accept arrivals in any order
        for m in (2, 0, 1):
            defer.add(m, [list(b) for b in parts[m]])
        assert eager.groups() == defer.groups()
