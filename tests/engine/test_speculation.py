"""Engine speculation: real racing attempts, first result wins.

The contract under test is the oracle property from the scheduler's
docstring: with task runners being pure functions of their split, a
speculative run must be *bitwise identical* to the same job without
speculation — on the object path and the columnar path — while the
counters expose how much duplicate work the race cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SpeculationConfig
from repro.engine import FaultPlan, Job, JobConf, MapReduceRuntime
from repro.engine.counters import (
    SPECULATIVE_BACKUPS,
    SPECULATIVE_WASTED_TASKS,
    SPECULATIVE_WINS,
)

AGGRESSIVE = SpeculationConfig(slowdown_threshold=1.05, percentile=0.5,
                               min_completed_fraction=0.25,
                               check_interval=0.01)


def _obj_map(key, value, ctx):
    for k, v in value:
        ctx.emit(k, v)


def _col_map(key, value, ctx):
    keys, values = value
    ctx.emit_block(keys, values)


def _obj_splits(num=4, n=200, seed=3):
    rng = np.random.default_rng(seed)
    return [[(m, [(int(k), float(v)) for k, v in
                  zip(rng.integers(0, 50, n), rng.random(n))])]
            for m in range(num)]


def _col_splits(num=4, n=2000, seed=9):
    rng = np.random.default_rng(seed)
    return [[(m, (rng.integers(0, 300, n), rng.random(n)))]
            for m in range(num)]


def _run(splits, map_fn, *, executor="threads", speculate=None,
         fault_plan=None, **conf):
    with MapReduceRuntime(executor, workers=3, speculate=speculate,
                          fault_plan=fault_plan or FaultPlan.none()) as rt:
        return rt.run(Job(map_fn, "sum", combine_fn="sum",
                          conf=JobConf(num_reducers=3, **conf)), splits)


class TestRacingParity:
    def test_backup_wins_and_output_is_oracle_identical_object_path(self):
        splits = _obj_splits()
        stalled = FaultPlan(stalls={("map", 2): 0.5})
        spec = _run(splits, _obj_map, speculate=AGGRESSIVE,
                    fault_plan=stalled)
        oracle = _run(splits, _obj_map)
        assert spec.output == oracle.output
        assert spec.counters.get(SPECULATIVE_BACKUPS) >= 1
        assert (spec.counters.get(SPECULATIVE_WINS)
                + spec.counters.get(SPECULATIVE_WASTED_TASKS)) >= 1

    def test_columnar_path_oracle_identical_under_processes(self):
        splits = _col_splits()
        stalled = FaultPlan(stalls={("map", 1): 0.5})
        spec = _run(splits, _col_map, executor="processes",
                    speculate=AGGRESSIVE, fault_plan=stalled)
        oracle = _run(splits, _col_map, executor="serial")
        assert spec.output == oracle.output
        assert spec.counters.get(SPECULATIVE_BACKUPS) >= 1

    def test_reduce_phase_races_too(self):
        splits = _col_splits()
        stalled = FaultPlan(stalls={("reduce", 0): 0.4})
        spec = _run(splits, _col_map, speculate=AGGRESSIVE,
                    fault_plan=stalled)
        oracle = _run(splits, _col_map)
        assert spec.output == oracle.output
        assert spec.counters.get(SPECULATIVE_BACKUPS) >= 1

    def test_no_stragglers_no_backups(self):
        """A healthy run under a *sane* threshold launches no backups."""
        res = _run(_col_splits(), _col_map,
                   speculate=SpeculationConfig(slowdown_threshold=50.0,
                                               check_interval=0.01))
        assert res.counters.get(SPECULATIVE_BACKUPS) == 0
        assert res.output == _run(_col_splits(), _col_map).output


class TestRacingWithRetries:
    def test_backup_namespace_disjoint_from_retries(self):
        """A task that both fails and straggles: retries occupy attempts
        below max_attempts, its backup races above them, and the output
        still matches the clean oracle."""
        splits = _obj_splits()
        plan = FaultPlan(scripted={("map", 2): 1},
                         stalls={("map", 3): 0.5})
        spec = _run(splits, _obj_map, speculate=AGGRESSIVE,
                    fault_plan=plan, max_attempts=3)
        oracle = _run(splits, _obj_map)
        assert spec.output == oracle.output

    def test_speculation_off_by_default(self):
        with MapReduceRuntime("threads", workers=2) as rt:
            assert rt.speculation is None

    def test_bool_enables_defaults(self):
        with MapReduceRuntime("threads", workers=2, speculate=True) as rt:
            assert isinstance(rt.speculation, SpeculationConfig)

    def test_serial_executor_rejects_speculation(self):
        """No pool, no race: serial runs ignore/refuse speculation
        rather than deadlocking the monitor loop."""
        with MapReduceRuntime("serial", speculate=AGGRESSIVE) as rt:
            res = rt.run(Job(_obj_map, "sum",
                             conf=JobConf(num_reducers=2)), _obj_splits(2))
        assert res.counters.get(SPECULATIVE_BACKUPS) == 0
