"""Tests for the LPT, submission-order, and speculative scheduling policies."""

from __future__ import annotations

import pytest

from repro.cluster import ec2_nodes
from repro.engine import (
    fifo_schedule,
    lpt_schedule,
    speculative_schedule,
    submission_order_schedule,
)


class TestLpt:
    def test_single_slot_serialises(self):
        nodes = ec2_nodes(1, map_slots=1)
        out = lpt_schedule([1.0, 2.0, 3.0], nodes)
        assert out.makespan == pytest.approx(6.0)

    def test_parallel_slots(self):
        nodes = ec2_nodes(1, map_slots=3)
        out = lpt_schedule([1.0, 1.0, 1.0], nodes)
        assert out.makespan == pytest.approx(1.0)

    def test_lpt_quality(self):
        # LPT is within 4/3 of optimal; check a classic instance
        nodes = ec2_nodes(1, map_slots=2)
        out = lpt_schedule([3.0, 3.0, 2.0, 2.0, 2.0], nodes)
        assert out.makespan <= (3 + 3 + 2 + 2 + 2) / 2 * (4 / 3) + 1e-9

    def test_empty(self):
        out = lpt_schedule([], ec2_nodes(1))
        assert out.makespan == 0.0
        assert out.completion == ()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            lpt_schedule([-1.0], ec2_nodes(1))

    def test_speed_scaling(self):
        nodes = ec2_nodes(1, map_slots=1, speeds=[2.0])
        out = lpt_schedule([4.0], nodes)
        assert out.makespan == pytest.approx(2.0)

    def test_completion_per_task(self):
        nodes = ec2_nodes(1, map_slots=1)
        out = lpt_schedule([5.0, 1.0], nodes)
        # LPT runs the long task first
        assert out.completion[0] == pytest.approx(5.0)
        assert out.completion[1] == pytest.approx(6.0)


class TestSubmissionOrder:
    def test_runs_in_submission_order(self):
        nodes = ec2_nodes(1, map_slots=1)
        out = submission_order_schedule([1.0, 5.0], nodes)
        # true FIFO: the short early task is NOT displaced by the long one
        assert out.completion[0] == pytest.approx(1.0)
        assert out.completion[1] == pytest.approx(6.0)

    def test_differs_from_lpt_on_reordering_instance(self):
        nodes = ec2_nodes(1, map_slots=1)
        fifo = submission_order_schedule([1.0, 5.0], nodes)
        lpt = lpt_schedule([1.0, 5.0], nodes)
        assert fifo.completion != lpt.completion
        assert lpt.completion[1] == pytest.approx(5.0)  # LPT reorders

    def test_single_slot_completion_is_prefix_sums(self):
        nodes = ec2_nodes(1, map_slots=1)
        costs = [2.0, 0.5, 3.0, 1.0]
        out = submission_order_schedule(costs, nodes)
        running, expected = 0.0, []
        for c in costs:
            running += c
            expected.append(running)
        assert list(out.completion) == pytest.approx(expected)

    def test_equal_costs_match_lpt(self):
        nodes = ec2_nodes(2, map_slots=2)
        costs = [2.0] * 6
        assert (submission_order_schedule(costs, nodes).makespan
                == pytest.approx(lpt_schedule(costs, nodes).makespan))

    def test_empty(self):
        out = submission_order_schedule([], ec2_nodes(1))
        assert out.makespan == 0.0
        assert out.completion == ()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            submission_order_schedule([-1.0], ec2_nodes(1))


class TestFifoDeprecationShim:
    def test_warns_and_matches_lpt(self):
        nodes = ec2_nodes(1, map_slots=2)
        costs = [3.0, 1.0, 2.0]
        with pytest.warns(DeprecationWarning, match="LPT"):
            shim = fifo_schedule(costs, nodes)
        assert shim == lpt_schedule(costs, nodes)


class TestSpeculative:
    def test_no_stragglers_identical_to_lpt(self):
        nodes = ec2_nodes(2, map_slots=2)
        costs = [1.0] * 8
        assert (speculative_schedule(costs, nodes).makespan
                == lpt_schedule(costs, nodes).makespan)

    def test_straggler_node_mitigated(self):
        # node 1 is 10x slower: tasks landing there straggle; the backup
        # on a fast node must beat waiting for the slow copy
        nodes = ec2_nodes(2, map_slots=1, speeds=[1.0, 0.1])
        costs = [1.0] * 4
        base = lpt_schedule(costs, nodes)
        spec = speculative_schedule(costs, nodes)
        assert spec.backups > 0
        assert spec.makespan < base.makespan

    def test_never_worse_than_lpt(self):
        import itertools

        nodes = ec2_nodes(2, map_slots=2, speeds=[1.0, 0.25])
        for costs in itertools.product([0.5, 2.0, 8.0], repeat=4):
            f = lpt_schedule(list(costs), nodes)
            s = speculative_schedule(list(costs), nodes)
            assert s.makespan <= f.makespan + 1e-9

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            speculative_schedule([1.0], ec2_nodes(1), slowdown_threshold=1.0)

    def test_empty(self):
        out = speculative_schedule([], ec2_nodes(1))
        assert out.makespan == 0.0
        assert out.backups == 0
