"""Tests for the FIFO and speculative scheduling policies."""

from __future__ import annotations

import pytest

from repro.cluster import ec2_nodes
from repro.engine import fifo_schedule, speculative_schedule


class TestFifo:
    def test_single_slot_serialises(self):
        nodes = ec2_nodes(1, map_slots=1)
        out = fifo_schedule([1.0, 2.0, 3.0], nodes)
        assert out.makespan == pytest.approx(6.0)

    def test_parallel_slots(self):
        nodes = ec2_nodes(1, map_slots=3)
        out = fifo_schedule([1.0, 1.0, 1.0], nodes)
        assert out.makespan == pytest.approx(1.0)

    def test_lpt_quality(self):
        # LPT is within 4/3 of optimal; check a classic instance
        nodes = ec2_nodes(1, map_slots=2)
        out = fifo_schedule([3.0, 3.0, 2.0, 2.0, 2.0], nodes)
        assert out.makespan <= (3 + 3 + 2 + 2 + 2) / 2 * (4 / 3) + 1e-9

    def test_empty(self):
        out = fifo_schedule([], ec2_nodes(1))
        assert out.makespan == 0.0
        assert out.completion == ()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            fifo_schedule([-1.0], ec2_nodes(1))

    def test_speed_scaling(self):
        nodes = ec2_nodes(1, map_slots=1, speeds=[2.0])
        out = fifo_schedule([4.0], nodes)
        assert out.makespan == pytest.approx(2.0)

    def test_completion_per_task(self):
        nodes = ec2_nodes(1, map_slots=1)
        out = fifo_schedule([5.0, 1.0], nodes)
        # LPT runs the long task first
        assert out.completion[0] == pytest.approx(5.0)
        assert out.completion[1] == pytest.approx(6.0)


class TestSpeculative:
    def test_no_stragglers_identical_to_fifo(self):
        nodes = ec2_nodes(2, map_slots=2)
        costs = [1.0] * 8
        assert (speculative_schedule(costs, nodes).makespan
                == fifo_schedule(costs, nodes).makespan)

    def test_straggler_node_mitigated(self):
        # node 1 is 10x slower: tasks landing there straggle; the backup
        # on a fast node must beat waiting for the slow copy
        nodes = ec2_nodes(2, map_slots=1, speeds=[1.0, 0.1])
        costs = [1.0] * 4
        fifo = fifo_schedule(costs, nodes)
        spec = speculative_schedule(costs, nodes)
        assert spec.backups > 0
        assert spec.makespan < fifo.makespan

    def test_never_worse_than_fifo(self):
        import itertools

        nodes = ec2_nodes(2, map_slots=2, speeds=[1.0, 0.25])
        for costs in itertools.product([0.5, 2.0, 8.0], repeat=4):
            f = fifo_schedule(list(costs), nodes)
            s = speculative_schedule(list(costs), nodes)
            assert s.makespan <= f.makespan + 1e-9

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            speculative_schedule([1.0], ec2_nodes(1), slowdown_threshold=1.0)

    def test_empty(self):
        out = speculative_schedule([], ec2_nodes(1))
        assert out.makespan == 0.0
        assert out.backups == 0
