"""Tests for shuffle grouping and task runners."""

from __future__ import annotations

import pytest

from repro.engine import (
    FaultPlan,
    HashPartitioner,
    ShuffleBuffer,
    SimulatedTaskFailure,
    TaskContext,
    run_map_task,
    run_reduce_task,
    shuffle,
    shuffle_bytes,
)
from repro.engine.counters import (
    COMBINE_OUTPUT_RECORDS,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
)


class TestShuffle:
    def test_groups_all_values(self):
        buckets = [
            [[("a", 1)], [("b", 2)]],
            [[("a", 3)], [("c", 4)]],
        ]
        grouped = shuffle(buckets, 2)
        assert grouped[0] == [("a", [1, 3])]
        assert grouped[1] == [("b", [2]), ("c", [4])]

    def test_key_sorted(self):
        buckets = [[[("z", 1), ("a", 2), ("m", 3)]]]
        grouped = shuffle(buckets, 1)
        assert [k for k, _ in grouped[0]] == ["a", "m", "z"]

    def test_unsorted_preserves_first_seen_order(self):
        buckets = [[[("z", 1), ("a", 2)]]]
        grouped = shuffle(buckets, 1, sort_keys=False)
        assert [k for k, _ in grouped[0]] == ["z", "a"]

    def test_value_order_by_map_task(self):
        buckets = [
            [[("k", "m0-first"), ("k", "m0-second")]],
            [[("k", "m1")]],
        ]
        grouped = shuffle(buckets, 1)
        assert grouped[0][0][1] == ["m0-first", "m0-second", "m1"]

    def test_bucket_count_mismatch(self):
        with pytest.raises(ValueError, match="buckets"):
            shuffle([[[("a", 1)]]], 2)

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            shuffle([], 0)

    def test_empty_input(self):
        assert shuffle([], 3) == [[], [], []]

    def test_shuffle_bytes_counts_keys_and_values(self):
        buckets = [[[("ab", 1)]]]  # 2 bytes key + 8 bytes int
        assert shuffle_bytes(buckets) == 10

    def test_no_key_lost_large(self):
        # every emitted key must appear exactly once across reducers
        import random

        rng = random.Random(0)
        keys = [f"k{rng.randrange(100)}" for _ in range(1000)]
        part = HashPartitioner()
        buckets = [[[] for _ in range(4)] for _ in range(3)]
        for i, k in enumerate(keys):
            buckets[i % 3][part(k, 4)].append((k, i))
        grouped = shuffle(buckets, 4)
        seen = {}
        for r in range(4):
            for k, vs in grouped[r]:
                assert k not in seen
                seen[k] = len(vs)
        assert sum(seen.values()) == 1000
        assert set(seen) == set(keys)


class TestShuffleBuffer:
    BUCKETS = [
        [[("a", 1)], [("b", 2)]],
        [[("a", 3)], [("c", 4)]],
        [[("d", 5)], [("b", 6)]],
    ]

    def test_in_order_matches_shuffle(self):
        buf = ShuffleBuffer(3, 2)
        for m, b in enumerate(self.BUCKETS):
            buf.add(m, b)
        assert buf.groups() == shuffle(self.BUCKETS, 2)

    def test_out_of_order_matches_shuffle(self):
        # completion order of map tasks must not change the grouping
        buf = ShuffleBuffer(3, 2)
        for m in (2, 0, 1):
            buf.add(m, self.BUCKETS[m])
        assert buf.groups() == shuffle(self.BUCKETS, 2)

    def test_consumed_tracks_merged_prefix(self):
        buf = ShuffleBuffer(3, 2)
        buf.add(2, self.BUCKETS[2])
        assert buf.consumed == 0  # parked: map 0 and 1 still missing
        buf.add(0, self.BUCKETS[0])
        assert buf.consumed == 1
        buf.add(1, self.BUCKETS[1])
        assert buf.consumed == 3
        assert buf.complete

    def test_incomplete_groups_raises(self):
        buf = ShuffleBuffer(2, 1)
        buf.add(0, [[("a", 1)]])
        with pytest.raises(RuntimeError, match="incomplete"):
            buf.groups()

    def test_duplicate_add_rejected(self):
        buf = ShuffleBuffer(2, 1)
        buf.add(0, [[("a", 1)]])
        with pytest.raises(ValueError, match="already added"):
            buf.add(0, [[("a", 1)]])

    def test_index_out_of_range(self):
        buf = ShuffleBuffer(2, 1)
        with pytest.raises(ValueError, match="out of range"):
            buf.add(2, [[("a", 1)]])

    def test_bucket_count_mismatch(self):
        buf = ShuffleBuffer(1, 2)
        with pytest.raises(ValueError, match="buckets"):
            buf.add(0, [[("a", 1)]])

    def test_zero_maps_complete_immediately(self):
        buf = ShuffleBuffer(0, 3)
        assert buf.complete
        assert buf.groups() == [[], [], []]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShuffleBuffer(-1, 2)
        with pytest.raises(ValueError):
            ShuffleBuffer(1, 0)

    def test_unsorted_first_seen_order(self):
        buf = ShuffleBuffer(2, 1, sort_keys=False)
        buf.add(1, [[("a", 2)]])
        buf.add(0, [[("z", 1)]])
        # first-seen order follows map index, not arrival order
        assert [k for k, _ in buf.groups()[0]] == ["z", "a"]


class TestTaskContext:
    def test_emit_collects_and_counts_ops(self):
        ctx = TaskContext("t", 0)
        ctx.emit("k", 1)
        ctx.emit("k2", 2)
        assert ctx.output == [("k", 1), ("k2", 2)]
        assert ctx.ops == 2.0

    def test_add_ops(self):
        ctx = TaskContext("t", 0)
        ctx.add_ops(10)
        assert ctx.ops == 10.0
        with pytest.raises(ValueError):
            ctx.add_ops(-1)

    def test_incr_counter(self):
        ctx = TaskContext("t", 0)
        ctx.incr("app.custom", 3)
        assert ctx.counters.get("app.custom") == 3


def _emit_words(key, value, ctx):
    for w in value.split():
        ctx.emit(w, 1)


def _sum_reduce(key, values, ctx):
    ctx.emit(key, sum(values))


class TestRunMapTask:
    def test_output_bucketed_by_partitioner(self):
        res = run_map_task(0, 0, [(0, "a b a")], _emit_words, None,
                           HashPartitioner(), 4)
        all_pairs = [p for b in res.data for p in b]
        assert sorted(all_pairs) == [("a", 1), ("a", 1), ("b", 1)]
        part = HashPartitioner()
        for r, bucket in enumerate(res.data):
            for k, _ in bucket:
                assert part(k, 4) == r

    def test_counters(self):
        res = run_map_task(0, 0, [(0, "x y"), (1, "z")], _emit_words, None,
                           HashPartitioner(), 2)
        assert res.counters.get(MAP_INPUT_RECORDS) == 2
        assert res.counters.get(MAP_OUTPUT_RECORDS) == 3

    def test_combiner_aggregates(self):
        res = run_map_task(0, 0, [(0, "a a a b")], _emit_words, _sum_reduce,
                           HashPartitioner(), 1)
        pairs = sorted(res.data[0])
        assert pairs == [("a", 3), ("b", 1)]
        assert res.counters.get(COMBINE_OUTPUT_RECORDS) == 2

    def test_fault_injection(self):
        plan = FaultPlan.script({("map", 0): 1})
        with pytest.raises(SimulatedTaskFailure):
            run_map_task(0, 0, [], _emit_words, None, HashPartitioner(), 1, plan)
        # attempt 1 succeeds (deterministic replay)
        res = run_map_task(0, 1, [(0, "a")], _emit_words, None,
                           HashPartitioner(), 1, plan)
        assert res.data[0] == [("a", 1)]

    def test_nbytes_measured_worker_side(self):
        res = run_map_task(0, 0, [(0, "ab")], _emit_words, None,
                           HashPartitioner(), 2)
        assert res.nbytes == shuffle_bytes([res.data])
        assert res.nbytes == 10  # 2-byte key + 8-byte int

    def test_ops_include_input_and_emissions(self):
        res = run_map_task(0, 0, [(0, "a b")], _emit_words, None,
                           HashPartitioner(), 1)
        assert res.ops == pytest.approx(1 + 2)  # 1 record + 2 emits


class TestRunReduceTask:
    def test_reduces_groups(self):
        res = run_reduce_task(0, 0, [("a", [1, 2, 3]), ("b", [4])], _sum_reduce)
        assert res.data == [("a", 6), ("b", 4)]
        assert res.counters.get(REDUCE_INPUT_GROUPS) == 2

    def test_fault_injection(self):
        plan = FaultPlan.script({("reduce", 1): 2})
        with pytest.raises(SimulatedTaskFailure):
            run_reduce_task(1, 0, [], _sum_reduce, plan)
        with pytest.raises(SimulatedTaskFailure):
            run_reduce_task(1, 1, [], _sum_reduce, plan)
        res = run_reduce_task(1, 2, [("a", [1])], _sum_reduce, plan)
        assert res.data == [("a", 1)]


class TestFaultPlan:
    def test_none_never_fails(self):
        plan = FaultPlan.none()
        for attempt in range(5):
            plan.maybe_fail("map", 0, attempt)
        assert plan.is_empty

    def test_script_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.script({("bogus", 0): 1})
        with pytest.raises(ValueError):
            FaultPlan.script({("map", -1): 1})

    def test_random_plan_deterministic(self):
        a = FaultPlan.random(0.5, seed=1)
        b = FaultPlan.random(0.5, seed=1)
        for t in range(20):
            fa = fb = False
            try:
                a.maybe_fail("map", t, 0)
            except SimulatedTaskFailure:
                fa = True
            try:
                b.maybe_fail("map", t, 0)
            except SimulatedTaskFailure:
                fb = True
            assert fa == fb

    def test_random_plan_bounded_failures(self):
        plan = FaultPlan.random(0.99, seed=0, max_failures_per_task=2)
        plan.maybe_fail("map", 0, 2)  # attempts >= 2 always succeed

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan.random(1.0)
