"""Shared-memory transport: parity, ownership, and leak-freedom.

The shm transport is an *optimisation of the wire*, not of the shuffle:
every job routed through named segments must produce output bitwise
identical to the same job through the pickle pipe, and every segment a
job creates must be gone — clean finish, task retries, or abort — by
the time ``run`` returns (plus ``close()``/``__del__`` as backstops).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.engine import (
    FaultPlan,
    Job,
    JobConf,
    JobFailedError,
    MapReduceRuntime,
    NodeFaultPlan,
    ShmPickleRef,
)
from repro.cluster import SpeculationConfig
from repro.engine.counters import (
    LOST_MAP_OUTPUTS,
    NODE_DEATHS,
    SPECULATIVE_BACKUPS,
)
from repro.engine.shm import export_pickled

VOCAB = [f"word{i:03d}" for i in range(40)]


def _emit_block_map(key, value, ctx):
    keys, values = value
    ctx.emit_block(keys, values)


def _emit_words_map(key, value, ctx):
    words, counts = value
    ctx.emit_block(words, counts)


def _splits(num_splits=4, n=3000, seed=11):
    rng = np.random.default_rng(seed)
    return [
        [(m, (rng.integers(0, 500, n), rng.random(n)))]
        for m in range(num_splits)
    ]


def _word_splits(num_splits=3, n=2500, seed=5):
    rng = np.random.default_rng(seed)
    return [
        [(m, (np.array([VOCAB[i] for i in rng.integers(0, len(VOCAB), n)],
                       dtype=object),
              np.ones(n, dtype=np.float64)))]
        for m in range(num_splits)
    ]


def _live_segments() -> "set[str]":
    """Names of this machine's live repro shm segments (POSIX /dev/shm)."""
    return {p.rsplit("/", 1)[1] for p in glob.glob("/dev/shm/*reproshm-*")}


class TestCrossExecutorParity:
    """serial == threads == processes, segments or pipes, bit for bit."""

    @pytest.mark.parametrize("combine", [None, "sum"])
    def test_output_bitwise_identical(self, combine):
        splits = _splits()
        outputs = {}
        for executor in ("serial", "threads", "processes"):
            with MapReduceRuntime(executor, workers=2,
                                  shm_min_bytes=1024) as rt:
                res = rt.run(
                    Job(_emit_block_map, "sum", combine_fn=combine,
                        conf=JobConf(num_reducers=3)), splits)
                assert rt.segments.live_count == 0
            outputs[executor] = res.output
        assert outputs["serial"] == outputs["threads"]
        assert outputs["serial"] == outputs["processes"]

    def test_dictionary_blocks_ride_segments(self):
        """String-key (dictionary-encoded) jobs through the process pool."""
        splits = _word_splits()
        outs = {}
        for executor in ("serial", "processes"):
            with MapReduceRuntime(executor, workers=2,
                                  shm_min_bytes=1024) as rt:
                outs[executor] = rt.run(
                    Job(_emit_words_map, "sum", combine_fn="sum",
                        conf=JobConf(num_reducers=2)), splits).output
        assert outs["serial"] == outs["processes"]
        counts = dict(outs["processes"])
        assert set(counts) <= set(VOCAB)
        assert sum(counts.values()) == 3 * 2500

    def test_retried_tasks_replay_identically(self):
        """Out-of-order + retried arrivals leave the output unchanged."""
        splits = _splits()
        plan = FaultPlan.script({("map", 1): 1, ("map", 3): 2,
                                 ("reduce", 0): 1})
        with MapReduceRuntime("processes", workers=2, fault_plan=plan,
                              shm_min_bytes=1024) as rt:
            faulty = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                                conf=JobConf(num_reducers=3)), splits)
            assert rt.segments.live_count == 0
        with MapReduceRuntime("serial") as rt:
            clean = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                               conf=JobConf(num_reducers=3)), splits)
        assert faulty.output == clean.output


class TestSegmentLifecycle:
    def test_zero_segments_after_clean_job(self):
        before = _live_segments()
        with MapReduceRuntime("processes", workers=2,
                              shm_min_bytes=1024) as rt:
            rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                       conf=JobConf(num_reducers=3)), _splits())
            assert rt.segments.live_count == 0
        assert _live_segments() <= before

    def test_zero_segments_after_midjob_failure(self):
        """Task retries park fresh segments; none of them may leak."""
        before = _live_segments()
        plan = FaultPlan.script({("map", 0): 1, ("reduce", 1): 1})
        with MapReduceRuntime("processes", workers=2, fault_plan=plan,
                              shm_min_bytes=1024) as rt:
            rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                       conf=JobConf(num_reducers=3)), _splits())
            assert rt.segments.live_count == 0
        assert _live_segments() <= before

    def test_abort_sweep_reclaims_everything(self):
        """A job that dies mid-flight sweeps its whole namespace."""
        before = _live_segments()
        plan = FaultPlan.script({("map", 2): 99})  # exceeds max_attempts
        with MapReduceRuntime("processes", workers=2, fault_plan=plan,
                              shm_min_bytes=1024) as rt:
            with pytest.raises(JobFailedError):
                rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                           conf=JobConf(num_reducers=3, max_attempts=2)),
                       _splits())
            assert rt.segments.live_count == 0
        assert _live_segments() <= before


class TestSpeculativeCancellation:
    """Racing twins park segments under disjoint attempt names; whoever
    loses — cancelled in the queue, or completed and discarded — must
    leave /dev/shm exactly as a speculation-free run would."""

    #: Aggressive LATE knobs so a stalled task is backed up within a few
    #: check intervals of the fast siblings finishing.
    SPEC = SpeculationConfig(slowdown_threshold=1.05, percentile=0.5,
                             min_completed_fraction=0.25,
                             check_interval=0.01)

    def test_losing_twin_segments_swept(self):
        """One map task stalls; its unstalled backup wins, and the
        stalled primary completes later into the discard path."""
        splits = _splits()
        before = _live_segments()
        plan = FaultPlan(stalls={("map", 1): 0.6})
        with MapReduceRuntime("processes", workers=3, fault_plan=plan,
                              shm_min_bytes=1024,
                              speculate=self.SPEC) as rt:
            res = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                             conf=JobConf(num_reducers=3)), splits)
            assert res.counters.get(SPECULATIVE_BACKUPS) >= 1
            assert rt.segments.live_count == 0
        assert _live_segments() <= before
        with MapReduceRuntime("serial") as rt:
            oracle = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                                conf=JobConf(num_reducers=3)), splits)
        assert res.output == oracle.output

    def test_job_abort_with_backups_in_flight(self):
        """A task exhausts its attempts while a stalled sibling (and
        possibly its backup twin) is still racing: the abort sweep must
        reclaim primary *and* backup attempt namespaces."""
        splits = _splits()
        before = _live_segments()
        plan = FaultPlan(scripted={("map", 2): 99},
                         stalls={("map", 1): 0.8})
        with MapReduceRuntime("processes", workers=3, fault_plan=plan,
                              shm_min_bytes=1024,
                              speculate=self.SPEC) as rt:
            with pytest.raises(JobFailedError):
                rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                           conf=JobConf(num_reducers=3, max_attempts=2)),
                       splits)
            assert rt.segments.live_count == 0
        assert _live_segments() <= before


class TestNodeDeathSweep:
    """A node death atomically kills every attempt of its failure
    domain — primaries, LATE backups, and completed outputs alike — and
    the lineage replay must leave /dev/shm exactly as a failure-free
    run would, with the output bit for bit identical."""

    SPEC = SpeculationConfig(slowdown_threshold=1.05, percentile=0.5,
                             min_completed_fraction=0.25,
                             check_interval=0.01)

    def _oracle(self, splits, num_reducers=3):
        with MapReduceRuntime("serial") as rt:
            return rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                              conf=JobConf(num_reducers=num_reducers)),
                          splits)

    def test_node_kill_with_backups_in_flight(self):
        """Task 1 stalls long enough for a speculative twin to launch;
        its node then dies with both attempts in flight.  All domain
        attempts must be cancelled or discarded, the replay attempt must
        win, and no segment may survive."""
        splits = _splits()
        before = _live_segments()
        stall = FaultPlan(stalls={("map", 1): 0.5})
        plan = NodeFaultPlan.kill_node(1, after_completions=1, num_nodes=4)
        with MapReduceRuntime("processes", workers=3, fault_plan=stall,
                              node_faults=plan, shm_min_bytes=1024,
                              speculate=self.SPEC) as rt:
            res = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                             conf=JobConf(num_reducers=3)), splits)
            assert rt.segments.live_count == 0
        assert _live_segments() <= before
        assert res.counters.get(NODE_DEATHS) == 1
        assert res.output == self._oracle(splits).output

    def test_completed_outputs_invalidated_and_replayed(self):
        """The dead node already finished map work: those outputs are
        invalidated (lineage loss) and recomputed, bitwise identically."""
        splits = _splits(num_splits=8)
        before = _live_segments()
        plan = NodeFaultPlan.kill_node(0, after_completions=6, num_nodes=4)
        with MapReduceRuntime("processes", workers=3, node_faults=plan,
                              shm_min_bytes=1024) as rt:
            res = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                             conf=JobConf(num_reducers=3)), splits)
            assert rt.segments.live_count == 0
        assert _live_segments() <= before
        assert res.counters.get(NODE_DEATHS) == 1
        assert res.counters.get(LOST_MAP_OUTPUTS) >= 1
        assert res.output == self._oracle(splits).output

    def test_rack_kill_under_speculation(self):
        """A whole rack dies: every node's domain is swept in one fire,
        and the job still completes identically, leak-free."""
        splits = _splits(num_splits=8)
        before = _live_segments()
        plan = NodeFaultPlan.kill_rack(0, after_completions=2,
                                       num_nodes=4, nodes_per_rack=2)
        with MapReduceRuntime("processes", workers=3, node_faults=plan,
                              shm_min_bytes=1024, speculate=self.SPEC) as rt:
            res = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                             conf=JobConf(num_reducers=3)), splits)
            assert rt.segments.live_count == 0
        assert _live_segments() <= before
        assert res.counters.get(NODE_DEATHS) == 2
        assert res.output == self._oracle(splits).output


class TestPickleRef:
    def test_small_objects_pass_through(self):
        assert export_pickled("sum", "reproshm-test-tiny") == "sum"
        assert not glob.glob("/dev/shm/*reproshm-test-tiny*")

    def test_fat_payload_parks_and_caches(self):
        payload = {"arr": np.arange(50_000)}
        ref = export_pickled(payload, "reproshm-test-fat", min_bytes=1024)
        try:
            assert isinstance(ref, ShmPickleRef)
            first = ref.load()
            assert np.array_equal(first["arr"], payload["arr"])
            # Same name -> the cached object, no second attach/unpickle.
            assert ref.load() is first
        finally:
            from repro.engine.shm import _unlink_quietly

            assert _unlink_quietly("reproshm-test-fat")
