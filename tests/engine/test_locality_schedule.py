"""Tests for the locality-aware scheduler (§VII data placement)."""

from __future__ import annotations

import pytest

from repro.cluster import ec2_nodes
from repro.engine import locality_schedule, lpt_schedule


class TestLocalitySchedule:
    def test_all_local_when_slots_free(self):
        nodes = ec2_nodes(4, map_slots=2)
        costs = [1.0] * 4
        preferred = [0, 1, 2, 3]
        out = locality_schedule(costs, nodes, preferred, remote_penalty=5.0)
        # each task fits on its own node: no penalty anywhere
        assert out.makespan == pytest.approx(1.0)

    def test_penalty_when_forced_remote(self):
        # all tasks prefer node 0, which has one slot: the rest go remote
        nodes = ec2_nodes(2, map_slots=1)
        costs = [1.0, 1.0]
        out = locality_schedule(costs, nodes, [0, 0], remote_penalty=0.5)
        assert out.makespan == pytest.approx(1.5)  # remote task: 1.0 + 0.5

    def test_waits_for_local_slot_when_cheaper(self):
        # huge penalty: better to queue behind the local slot than go remote
        nodes = ec2_nodes(2, map_slots=1)
        costs = [1.0, 1.0]
        out = locality_schedule(costs, nodes, [0, 0], remote_penalty=100.0)
        assert out.makespan == pytest.approx(2.0)

    def test_zero_penalty_matches_lpt_makespan(self):
        nodes = ec2_nodes(3, map_slots=2)
        costs = [3.0, 1.0, 4.0, 1.5, 2.0]
        loc = locality_schedule(costs, nodes, [0] * 5, remote_penalty=0.0)
        lpt = lpt_schedule(costs, nodes)
        assert loc.makespan == pytest.approx(lpt.makespan)

    def test_queues_behind_local_slot_that_frees_later(self):
        # Both tasks prefer node 0 (one slot).  With a steep fetch
        # penalty, the second task must *wait* for the local slot to
        # free at t=4 (finishing at 5) rather than start immediately on
        # the remote node 1 (finishing at 1 + 5 = 6).
        nodes = ec2_nodes(2, map_slots=1)
        costs = [4.0, 1.0]
        out = locality_schedule(costs, nodes, [0, 0], remote_penalty=5.0)
        assert out.completion[0] == pytest.approx(4.0)
        assert out.completion[1] == pytest.approx(5.0)  # queued locally
        assert out.makespan == pytest.approx(5.0)
        assert out.makespan < 6.0  # the remote alternative it rejected

    def test_empty(self):
        out = locality_schedule([], ec2_nodes(1), [])
        assert out.makespan == 0.0

    def test_validation(self):
        nodes = ec2_nodes(2)
        with pytest.raises(ValueError, match="align"):
            locality_schedule([1.0], nodes, [0, 1])
        with pytest.raises(ValueError, match="not in the cluster"):
            locality_schedule([1.0], nodes, [9])
        with pytest.raises(ValueError, match="remote_penalty"):
            locality_schedule([1.0], nodes, [0], remote_penalty=-1)
        with pytest.raises(ValueError):
            locality_schedule([-1.0], nodes, [0])

    def test_locality_reduces_makespan_vs_ignoring_it(self):
        # placing on the preferred node avoids the fetch penalty entirely
        nodes = ec2_nodes(4, map_slots=1)
        costs = [2.0, 2.0, 2.0, 2.0]
        preferred = [0, 1, 2, 3]
        local = locality_schedule(costs, nodes, preferred, remote_penalty=1.0)
        # adversarial preference: everything on node 0 forces penalties
        remote = locality_schedule(costs, nodes, [0, 0, 0, 0],
                                   remote_penalty=1.0)
        assert local.makespan < remote.makespan
