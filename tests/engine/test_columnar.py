"""Equivalence tests: the columnar shuffle fast path vs the object path.

The contract under test is *byte identity*: any workload expressed as
typed batches must produce exactly the same grouped inputs, combined
values, routed buckets, measured bytes, and job output as the same
logical pairs pushed through the object-at-a-time path — the object
path is the oracle, the columnar path is only allowed to be faster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ColumnarBlock,
    ColumnarReduce,
    HashPartitioner,
    Job,
    JobConf,
    MapReduceRuntime,
    ShuffleBuffer,
    combine_columnar,
    hash_buckets,
    route_columnar,
    run_map_task,
    run_reduce_task,
    shuffle,
    shuffle_bytes,
    stable_hash,
)
from repro.engine.columnar import group_columnar, object_combiner
from repro.engine.counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_RECORDS,
)


def _random_block(rng, n, key_range=40, width=1):
    keys = rng.integers(-key_range, key_range, n)
    values = rng.random(n) if width == 1 else rng.random((n, width))
    return ColumnarBlock(keys, values)


class TestColumnarBlock:
    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnarBlock(np.zeros((2, 2), dtype=np.int64), np.zeros(4))
        with pytest.raises(ValueError):
            ColumnarBlock(np.zeros(3, dtype=np.int64), np.zeros(4))
        with pytest.raises(ValueError):
            ColumnarBlock(np.zeros(2, dtype=np.int64), np.zeros((2, 2, 2)))

    def test_nbytes_is_dtype_math_and_matches_estimate(self):
        rng = np.random.default_rng(0)
        for width in (1, 2, 3):
            block = _random_block(rng, 100, width=width)
            assert block.nbytes == 8 * 100 + 8 * 100 * width
            # dtype math == the object-path estimate of the same pairs
            assert block.nbytes == shuffle_bytes([[block.to_pairs()]])

    def test_to_pairs_types(self):
        block = ColumnarBlock([1, 2], [[1.0, 2.0], [3.0, 4.0]])
        pairs = block.to_pairs()
        assert pairs == [(1, (1.0, 2.0)), (2, (3.0, 4.0))]
        assert isinstance(pairs[0][0], int)
        assert isinstance(pairs[0][1][0], float)

    def test_concat_rejects_mixed_widths(self):
        with pytest.raises(ValueError, match="mixed"):
            ColumnarBlock.concat([ColumnarBlock([1], [1.0]),
                                  ColumnarBlock([1], [[1.0, 2.0]])])


class TestHashRouting:
    def test_hash_buckets_match_stable_hash(self):
        rng = np.random.default_rng(1)
        keys = np.concatenate([
            np.arange(-100, 100),
            rng.integers(-(2 ** 62), 2 ** 62, 500),
            np.array([0, -1, 2 ** 62, -(2 ** 62)]),
        ]).astype(np.int64)
        for r in (1, 2, 7, 64):
            expect = np.array([stable_hash(int(k)) % r for k in keys])
            assert np.array_equal(hash_buckets(keys, r), expect)

    def test_route_matches_object_buckets(self):
        rng = np.random.default_rng(2)
        block = _random_block(rng, 300)
        part = HashPartitioner()
        routed = route_columnar(block, 4, part)
        expect: list = [[] for _ in range(4)]
        for k, v in block.to_pairs():
            expect[part(k, 4)].append((k, v))
        for r in range(4):
            assert routed[r].to_pairs() == expect[r]

    def test_route_custom_partitioner_fallback(self):
        block = ColumnarBlock([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
        routed = route_columnar(block, 2, lambda k, r: k % r)
        assert routed[0].keys.tolist() == [0, 2]
        assert routed[1].keys.tolist() == [1, 3]

    def test_hash_partitioner_subclass_honoured(self):
        # an overridden __call__ must win over the vectorised FNV sweep
        class AllToZero(HashPartitioner):
            def __call__(self, key, num_reducers):
                return 0

        block = ColumnarBlock([3, 14, 15, 92], np.arange(4.0))
        routed = route_columnar(block, 4, AllToZero())
        assert len(routed[0]) == 4
        assert all(len(routed[r]) == 0 for r in (1, 2, 3))

    def test_non_integer_keys_rejected(self):
        # a forced int64 cast would merge keys the object path keeps
        # distinct (1.2 and 1.9 both truncating to 1)
        with pytest.raises(TypeError, match="integers"):
            ColumnarBlock(np.array([1.2, 1.9]), np.array([10.0, 20.0]))
        ColumnarBlock([], [])  # empty stays fine

    def test_string_keys_dictionary_encoded(self):
        # string keys are valid: the block interns them through a
        # StringDictionary and round-trips the original words
        block = ColumnarBlock(np.array(["b", "a", "b"], dtype=object),
                              [1.0, 2.0, 3.0])
        assert block.dictionary is not None
        assert block.keys.dtype == np.int64
        assert list(block.key_objects()) == ["b", "a", "b"]

    def test_route_rejects_out_of_range_partitioner(self):
        # a broken partitioner must fail loudly (the object path raises
        # IndexError), never silently drop records
        block = ColumnarBlock([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
        with pytest.raises(IndexError, match="outside"):
            route_columnar(block, 3, lambda k, r: k)
        with pytest.raises(IndexError, match="outside"):
            route_columnar(block, 3, lambda k, r: k - 2)


class TestCombine:
    @pytest.mark.parametrize("agg", ["sum", "min", "max"])
    @pytest.mark.parametrize("width", [1, 2])
    def test_matches_object_combiner_bitwise(self, agg, width):
        rng = np.random.default_rng(3)
        block = _random_block(rng, 400, key_range=25, width=width)
        combined = combine_columnar(block, agg)

        # object oracle: group by first emission, combine per group
        groups: dict = {}
        for k, v in block.to_pairs():
            groups.setdefault(k, []).append(v)
        oracle = object_combiner(agg)

        class _Ctx:
            def __init__(self):
                self.out = []

            def emit(self, k, v):
                self.out.append((k, v))

        ctx = _Ctx()
        for k, vs in groups.items():
            oracle(k, vs, ctx)
        assert combined.to_pairs() == ctx.out  # order AND bitwise values

    def test_unknown_agg_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            combine_columnar(ColumnarBlock([1], [1.0]), "median")


class TestColumnarShuffleBuffer:
    """groups() byte-identity across every buffer behaviour."""

    def _blocks(self, rng, num_maps, num_reducers, *, width=1, empty=()):
        per_map = []
        for m in range(num_maps):
            if m in empty:
                block = ColumnarBlock.empty(width)
            else:
                block = _random_block(rng, 50 + 10 * m, key_range=12,
                                      width=width)
            per_map.append(route_columnar(block, num_reducers))
        return per_map

    def _object_buckets(self, col_buckets):
        return [[b.to_pairs() for b in row] for row in col_buckets]

    @pytest.mark.parametrize("sort_keys", [True, False])
    @pytest.mark.parametrize("width", [1, 2])
    def test_groups_identical_to_object_shuffle(self, sort_keys, width):
        rng = np.random.default_rng(4)
        col = self._blocks(rng, 4, 3, width=width)
        assert (shuffle(col, 3, sort_keys=sort_keys)
                == shuffle(self._object_buckets(col), 3,
                           sort_keys=sort_keys))

    @pytest.mark.parametrize("order", [(2, 0, 3, 1), (3, 2, 1, 0)])
    def test_out_of_order_completion(self, order):
        rng = np.random.default_rng(5)
        col = self._blocks(rng, 4, 2)
        buf = ShuffleBuffer(4, 2)
        for m in order:
            buf.add(m, col[m])
        assert buf.columnar
        assert buf.groups() == shuffle(self._object_buckets(col), 2)

    def test_empty_buckets_and_empty_maps(self):
        rng = np.random.default_rng(6)
        col = self._blocks(rng, 3, 4, empty=(1,))
        assert shuffle(col, 4) == shuffle(self._object_buckets(col), 4)

    @pytest.mark.parametrize("agg", ["sum", "min"])
    def test_combiner_on_off(self, agg):
        """Map-side combining must not change grouped *keys*, and both
        paths must combine to bitwise-identical values."""
        rng = np.random.default_rng(7)
        raw = [_random_block(rng, 120, key_range=15) for _ in range(3)]
        col = [route_columnar(combine_columnar(b, agg), 2) for b in raw]
        obj = []
        for b in raw:
            res = run_map_task(0, 0, [(0, None)],
                               lambda k, v, ctx, _b=b: ctx.emit_block(
                                   _b.keys, _b.values),
                               agg, HashPartitioner(), 2, None, False)
            obj.append(res.data)
        assert shuffle(col, 2) == shuffle(obj, 2)
        # combiner off: plain routing equivalence
        col_off = [route_columnar(b, 2) for b in raw]
        obj_off = [[blk.to_pairs() for blk in row] for row in col_off]
        assert shuffle(col_off, 2) == shuffle(obj_off, 2)

    def test_mixing_representations_rejected(self):
        buf = ShuffleBuffer(2, 1)
        buf.add(0, [ColumnarBlock([1], [1.0])])
        with pytest.raises(ValueError, match="mix"):
            buf.add(1, [[("a", 1)]])
        buf2 = ShuffleBuffer(2, 1)
        buf2.add(0, [[("a", 1)]])
        with pytest.raises(ValueError, match="mix"):
            buf2.add(1, [ColumnarBlock([1], [1.0])])

    def test_empty_map_output_is_representation_neutral(self):
        # a map task that emitted nothing (empty split, drained
        # frontier) merges as a no-op in either mode — it must not drag
        # the shuffle into its default representation
        buf = ShuffleBuffer(3, 2)
        buf.add(0, [[], []])  # object-shaped empties first
        buf.add(1, [ColumnarBlock([1, 2], [1.0, 2.0]),
                    ColumnarBlock([3], [3.0])])
        buf.add(2, [ColumnarBlock.empty(), ColumnarBlock.empty()])
        assert buf.columnar
        assert buf.groups() == [[(1, [1.0]), (2, [2.0])], [(3, [3.0])]]

    def test_conditionally_columnar_job_survives_empty_split(self):
        # end to end: a columnar job whose map emits blocks only when it
        # has records must not crash on an empty split
        def conditional(key, value, ctx):
            if len(value):
                ctx.emit_block(np.asarray(value), np.ones(len(value)))

        rt = MapReduceRuntime("serial")
        res = rt.run(Job(conditional, "sum"),
                     [[(0, [1, 2, 1])], [(1, [])]])
        assert res.as_dict() == {1: 2.0, 2: 1.0}

    def test_columnar_groups_requires_columnar_mode(self):
        buf = ShuffleBuffer(1, 1)
        buf.add(0, [[("a", 1)]])
        with pytest.raises(RuntimeError, match="object-mode"):
            buf.columnar_groups()

    def test_columnar_groups_aggregate(self):
        blocks = [ColumnarBlock([3, 1, 3], [1.0, 2.0, 3.0]),
                  ColumnarBlock([1, 3], [4.0, 5.0])]
        groups = group_columnar(blocks)
        keys, rows = groups.aggregate("sum")
        assert keys.tolist() == [1, 3]
        assert rows.tolist() == [6.0, 9.0]
        keys, rows = groups.aggregate("min")
        assert rows.tolist() == [2.0, 1.0]


def _emit_block_map(key, value, ctx):
    # value carries the (keys, values) batch for this split
    ctx.emit_block(*value)


def _sum_reduce(key, values, ctx):
    ctx.emit(key, sum(values))


class TestColumnarTasks:
    def test_map_task_fast_path_vs_oracle(self):
        rng = np.random.default_rng(8)
        batch = (rng.integers(0, 30, 200), rng.random(200))
        fast = run_map_task(0, 0, [(0, batch)], _emit_block_map, "sum",
                            HashPartitioner(), 4)
        oracle = run_map_task(0, 0, [(0, batch)], _emit_block_map, "sum",
                              HashPartitioner(), 4, None, False)
        assert all(isinstance(b, ColumnarBlock) for b in fast.data)
        assert [b.to_pairs() for b in fast.data] == oracle.data
        assert fast.nbytes == oracle.nbytes
        for c in (MAP_OUTPUT_RECORDS, COMBINE_INPUT_RECORDS,
                  COMBINE_OUTPUT_RECORDS):
            assert fast.counters.get(c) == oracle.counters.get(c)

    def test_map_task_rejects_mixed_emission(self):
        def bad(key, value, ctx):
            ctx.emit("k", 1)
            ctx.emit_block([1], [1.0])

        with pytest.raises(RuntimeError, match="mixed"):
            run_map_task(0, 0, [(0, None)], bad, None, HashPartitioner(), 1)

    def test_map_task_columnar_requires_named_combiner(self):
        def cmb(k, vs, ctx):
            ctx.emit(k, sum(vs))

        batch = (np.array([1, 2]), np.array([1.0, 2.0]))
        with pytest.raises(TypeError, match="named combiner"):
            run_map_task(0, 0, [(0, batch)], _emit_block_map, cmb,
                         HashPartitioner(), 1)

    def test_reduce_task_vectorised_vs_object(self):
        blocks = [ColumnarBlock([2, 1, 2, 5], [1.0, 2.0, 3.0, 4.0])]
        groups = group_columnar(blocks)
        vec = run_reduce_task(0, 0, groups, "sum")
        obj = run_reduce_task(0, 0, groups.to_pairs(), "sum")
        assert isinstance(vec.data, ColumnarBlock)
        assert vec.data.to_pairs() == obj.data
        assert vec.nbytes == obj.nbytes
        assert (vec.counters.get(REDUCE_INPUT_RECORDS)
                == obj.counters.get(REDUCE_INPUT_RECORDS) == 4)

    def test_reduce_task_finish_epilogue(self):
        def clamp(keys, rows):
            return np.minimum(rows, 2.5)

        groups = group_columnar([ColumnarBlock([1, 1, 2], [1.0, 2.0, 9.0])])
        res = run_reduce_task(0, 0, groups, ColumnarReduce("sum", clamp))
        assert res.data.to_pairs() == [(1, 2.5), (2, 2.5)]

    def test_reduce_task_callable_materialises_columnar_groups(self):
        groups = group_columnar([ColumnarBlock([1, 1, 2], [1.0, 2.0, 3.0])])
        res = run_reduce_task(0, 0, groups, _sum_reduce)
        assert res.data == [(1, 3.0), (2, 3.0)]


class TestColumnarJobs:
    """Whole-job equivalence through the runtime, all executors."""

    def _splits(self, num_splits=3, n=150):
        rng = np.random.default_rng(9)
        return [
            [(m, (rng.integers(0, 40, n), rng.random(n)))]
            for m in range(num_splits)
        ]

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    @pytest.mark.parametrize("combine", [None, "sum"])
    def test_job_output_identical(self, executor, combine):
        splits = self._splits()
        with MapReduceRuntime(executor, workers=2) as rt:
            fast = rt.run(Job(_emit_block_map, "sum", combine_fn=combine,
                              conf=JobConf(num_reducers=3)), splits)
            oracle = rt.run(Job(_emit_block_map, "sum", combine_fn=combine,
                                conf=JobConf(num_reducers=3,
                                             columnar=False)), splits)
        assert fast.columnar_output is not None
        assert oracle.columnar_output is None
        assert fast.output == oracle.output
        # the columnar path measures output bytes for free (dtype math)
        # and must agree with the oracle estimate of the same pairs;
        # cluster-less object runs skip the scan entirely
        assert fast.output_nbytes == shuffle_bytes([[oracle.output]])
        assert oracle.output_nbytes == 0

    def test_eager_reduce_pipeline_identical(self):
        splits = self._splits()
        with MapReduceRuntime("threads", workers=3) as rt:
            eager = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                               conf=JobConf(num_reducers=4,
                                            eager_reduce=True)), splits)
            barrier = rt.run(Job(_emit_block_map, "sum", combine_fn="sum",
                                 conf=JobConf(num_reducers=4)), splits)
        assert eager.output == barrier.output

    def test_combiner_reduces_measured_shuffle_bytes(self):
        splits = self._splits(num_splits=2, n=400)
        rt = MapReduceRuntime("serial")
        from repro.engine.counters import SHUFFLE_BYTES

        with_c = rt.run(Job(_emit_block_map, "sum", combine_fn="sum"), splits)
        without = rt.run(Job(_emit_block_map, "sum"), splits)
        assert (with_c.counters.get(SHUFFLE_BYTES)
                < without.counters.get(SHUFFLE_BYTES))
        # pre-aggregation is invisible in the final result (up to float
        # association: the combiner sums per-task partials first)
        assert [k for k, _ in with_c.output] == [k for k, _ in without.output]
        assert np.allclose([v for _, v in with_c.output],
                           [v for _, v in without.output], rtol=1e-12)

    def test_worker_measured_bytes_match_oracle_scan(self):
        """TaskResult.nbytes (dtype math) == shuffle_bytes (full scan)."""
        splits = self._splits(num_splits=2)
        buf_bytes = []
        rt = MapReduceRuntime("serial")
        res = rt.run(Job(_emit_block_map, "sum"), splits)
        for m, split in enumerate(splits):
            task = run_map_task(m, 0, split, _emit_block_map, None,
                                HashPartitioner(), 8)
            buf_bytes.append((task.nbytes, shuffle_bytes([task.data])))
        assert all(measured == scanned for measured, scanned in buf_bytes)
        from repro.engine.counters import SHUFFLE_BYTES

        assert res.counters.get(SHUFFLE_BYTES) == sum(m for m, _ in buf_bytes)
