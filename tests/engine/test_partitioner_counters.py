"""Tests for the key partitioners and job counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Counters, HashPartitioner, RangePartitioner, stable_hash


class TestStableHash:
    def test_deterministic_per_type(self):
        assert stable_hash("word") == stable_hash("word")
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash(3.14) == stable_hash(3.14)
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_types_do_not_collide_trivially(self):
        # 1 (int), 1.0 (float), "1" (str) should hash differently
        values = {stable_hash(1), stable_hash("1"), stable_hash(1.0)}
        assert len(values) == 3

    def test_none_and_bool(self):
        assert stable_hash(None) == stable_hash(None)
        assert stable_hash(True) != stable_hash(False)

    def test_bytes(self):
        assert stable_hash(b"ab") == stable_hash(b"ab")
        assert stable_hash(b"ab") != stable_hash("ab")

    def test_numpy_scalars_match_python(self):
        assert stable_hash(np.int64(7)) == stable_hash(7)
        assert stable_hash(np.float64(2.5)) == stable_hash(2.5)

    def test_nested_tuples(self):
        assert stable_hash(((1, 2), 3)) == stable_hash(((1, 2), 3))

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="no stable hash"):
            stable_hash(object())

    def test_spread_over_buckets(self):
        # 1000 string keys should spread reasonably over 8 buckets
        part = HashPartitioner()
        counts = np.zeros(8, dtype=int)
        for i in range(1000):
            counts[part(f"key-{i}", 8)] += 1
        assert counts.min() > 60  # no pathological bucket


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner()
        for key in ("a", 1, (2, "b")):
            assert 0 <= p(key, 5) < 5

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            HashPartitioner()("k", 0)


class TestRangePartitioner:
    def test_routing(self):
        p = RangePartitioner([10, 20])
        assert p(5, 3) == 0
        assert p(10, 3) == 1
        assert p(15, 3) == 1
        assert p(25, 3) == 2

    def test_reducer_count_must_match(self):
        p = RangePartitioner([10])
        with pytest.raises(ValueError):
            p(5, 3)

    def test_unsorted_split_points_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner([20, 10])


class TestCounters:
    def test_incr_and_get(self):
        c = Counters()
        c.incr("x")
        c.incr("x", 4)
        assert c.get("x") == 5
        assert c["x"] == 5

    def test_unknown_counter_zero(self):
        assert Counters().get("nope") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().incr("x", -1)

    def test_merge_counters(self):
        a, b = Counters(), Counters()
        a.incr("x", 2)
        b.incr("x", 3)
        b.incr("y")
        a.merge(b)
        assert a.get("x") == 5 and a.get("y") == 1

    def test_merge_mapping(self):
        c = Counters()
        c.merge({"m": 7})
        assert c.get("m") == 7

    def test_as_dict_sorted(self):
        c = Counters()
        c.incr("b")
        c.incr("a")
        assert list(c.as_dict()) == ["a", "b"]

    def test_len(self):
        c = Counters()
        c.incr("a")
        c.incr("b")
        assert len(c) == 2
