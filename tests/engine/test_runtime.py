"""Tests for the MapReduce runtime: executors, retries, accounting."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import wordcount_job, wordcount_map, wordcount_reduce
from repro.cluster import SimCluster
from repro.engine import (
    FaultPlan,
    Job,
    JobConf,
    JobFailedError,
    MapReduceRuntime,
)
from repro.engine.counters import SHUFFLE_BYTES, TASK_RETRIES

DOCS = [
    [(0, "the quick brown fox"), (1, "jumps over the lazy dog")],
    [(2, "the dog barks")],
    [(3, "quick quick fox")],
]

EXPECTED = {
    "the": 3, "quick": 3, "brown": 1, "fox": 2, "jumps": 1,
    "over": 1, "lazy": 1, "dog": 2, "barks": 1,
}


class TestSerialRuntime:
    def test_wordcount(self):
        res = MapReduceRuntime("serial").run(wordcount_job(), DOCS)
        assert res.as_dict() == EXPECTED

    def test_without_combiner_same_result(self):
        res = MapReduceRuntime("serial").run(
            wordcount_job(use_combiner=False), DOCS)
        assert res.as_dict() == EXPECTED

    def test_output_sorted_within_reducer(self):
        job = Job(wordcount_map, wordcount_reduce,
                  conf=JobConf(num_reducers=1, sort_keys=True))
        res = MapReduceRuntime("serial").run(job, DOCS)
        keys = [k for k, _ in res.output]
        assert keys == sorted(keys)

    def test_counters_populated(self):
        res = MapReduceRuntime("serial").run(wordcount_job(), DOCS)
        assert res.counters.get("task.map.input.records") == 4
        assert res.counters.get(SHUFFLE_BYTES) > 0

    def test_empty_input(self):
        res = MapReduceRuntime("serial").run(wordcount_job(), [])
        assert res.output == []

    def test_empty_splits(self):
        res = MapReduceRuntime("serial").run(wordcount_job(), [[], []])
        assert res.output == []

    def test_sim_times_empty_without_cluster(self):
        res = MapReduceRuntime("serial").run(wordcount_job(), DOCS)
        assert res.sim_times == {}
        assert res.sim_time_total == 0.0


class TestParallelExecutors:
    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_equivalent_to_serial(self, executor):
        res = MapReduceRuntime(executor, workers=3).run(wordcount_job(), DOCS)
        assert res.as_dict() == EXPECTED

    def test_invalid_executor(self):
        with pytest.raises(ValueError, match="executor"):
            MapReduceRuntime("gpu")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            MapReduceRuntime("threads", workers=0)


class TestFaultTolerance:
    def test_map_retry_recovers(self):
        rt = MapReduceRuntime("serial",
                              fault_plan=FaultPlan.script({("map", 1): 2}))
        res = rt.run(wordcount_job(), DOCS)
        assert res.as_dict() == EXPECTED
        assert res.counters.get(TASK_RETRIES) == 2

    def test_reduce_retry_recovers(self):
        rt = MapReduceRuntime("serial",
                              fault_plan=FaultPlan.script({("reduce", 0): 1}))
        res = rt.run(wordcount_job(), DOCS)
        assert res.as_dict() == EXPECTED

    def test_exhausted_attempts_fail_job(self):
        rt = MapReduceRuntime("serial",
                              fault_plan=FaultPlan.script({("map", 0): 99}))
        with pytest.raises(JobFailedError):
            rt.run(wordcount_job(), DOCS)

    def test_random_faults_same_output(self):
        rt = MapReduceRuntime(
            "serial", fault_plan=FaultPlan.random(0.3, seed=5))
        res = rt.run(wordcount_job(), DOCS)
        assert res.as_dict() == EXPECTED

    @pytest.mark.parametrize("executor", ["threads"])
    def test_faults_under_parallel_executor(self, executor):
        rt = MapReduceRuntime(
            executor, fault_plan=FaultPlan.script({("map", 0): 1, ("reduce", 1): 1}))
        res = rt.run(wordcount_job(), DOCS)
        assert res.as_dict() == EXPECTED

    def test_non_simulated_errors_propagate(self):
        def bad_map(key, value, ctx):
            raise RuntimeError("app bug")

        job = Job(bad_map, wordcount_reduce)
        with pytest.raises(RuntimeError, match="app bug"):
            MapReduceRuntime("serial").run(job, DOCS)


class TestSimAccounting:
    def test_phases_charged(self):
        rt = MapReduceRuntime("serial", cluster=SimCluster())
        res = rt.run(wordcount_job(), DOCS)
        for phase in ("startup", "map", "shuffle", "reduce", "barrier", "dfs"):
            assert phase in res.sim_times
        assert res.sim_time_total > 0
        assert rt.cluster.clock == pytest.approx(res.sim_time_total)

    def test_startup_dominates_small_jobs(self):
        # the paper's premise: tiny jobs are all barrier/startup overhead
        rt = MapReduceRuntime("serial", cluster=SimCluster())
        res = rt.run(wordcount_job(), DOCS)
        assert res.sim_times["startup"] > res.sim_times["map"] / 2

    def test_more_data_costs_more_map_time(self):
        rt1 = MapReduceRuntime("serial", cluster=SimCluster())
        r_small = rt1.run(wordcount_job(), DOCS)
        big = [[(i, "word " * 200)] for i in range(20)]
        rt2 = MapReduceRuntime("serial", cluster=SimCluster())
        r_big = rt2.run(wordcount_job(), big)
        assert r_big.sim_times["map"] > r_small.sim_times["map"]

    def test_faulty_run_same_output_more_time(self):
        clean_rt = MapReduceRuntime("serial", cluster=SimCluster())
        clean = clean_rt.run(wordcount_job(), DOCS)
        faulty_rt = MapReduceRuntime(
            "serial", cluster=SimCluster(),
            fault_plan=FaultPlan.script({("map", 0): 1}))
        faulty = faulty_rt.run(wordcount_job(), DOCS)
        assert faulty.as_dict() == clean.as_dict()


class TestJobValidation:
    def test_map_fn_must_be_callable(self):
        with pytest.raises(TypeError):
            Job("not callable", wordcount_reduce)

    def test_reduce_fn_must_be_callable(self):
        with pytest.raises(TypeError):
            Job(wordcount_map, 42)

    def test_combiner_optional(self):
        Job(wordcount_map, wordcount_reduce, combine_fn=None)
        with pytest.raises(TypeError):
            Job(wordcount_map, wordcount_reduce, combine_fn=42)

    def test_named_aggregation_specs(self):
        # strings name built-in aggregations; unknown names are rejected
        Job(wordcount_map, "sum", combine_fn="sum")
        with pytest.raises(ValueError):
            Job(wordcount_map, wordcount_reduce, combine_fn="x")
        with pytest.raises(ValueError):
            Job(wordcount_map, "not-an-agg")

    def test_conf_validation(self):
        with pytest.raises(ValueError):
            JobConf(num_reducers=0)
        with pytest.raises(ValueError):
            JobConf(max_attempts=0)
