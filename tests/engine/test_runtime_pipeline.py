"""Tests for the persistent-pool, streaming-shuffle runtime pipeline.

Covers the pool lifecycle (one pool reused across phases, attempts, and
jobs; context-manager close), the ``eager_reduce`` streaming mode's
output equivalence with the barrier path, fault-injection retries under
the persistent pool, and the overlapped-shuffle accounting.
"""

from __future__ import annotations

import concurrent.futures
import os

import pytest

from repro.apps.wordcount import wordcount_job, wordcount_reduce
from repro.cluster import SimCluster
from repro.engine import (
    FaultPlan,
    Job,
    JobConf,
    JobFailedError,
    MapReduceRuntime,
)
from repro.engine.counters import SHUFFLE_BYTES, TASK_RETRIES

DOCS = [
    [(0, "the quick brown fox"), (1, "jumps over the lazy dog")],
    [(2, "the dog barks")],
    [(3, "quick quick fox")],
]


def _job(**conf_kwargs):
    job = wordcount_job()
    job.conf = JobConf(**conf_kwargs)
    return job


@pytest.fixture(scope="module")
def reference():
    return MapReduceRuntime("serial").run(wordcount_job(), DOCS)


class TestPersistentPool:
    def test_pool_object_reused_across_jobs(self, reference):
        rt = MapReduceRuntime("threads", workers=2)
        assert rt.pool is None  # lazy: no pool before the first run
        r1 = rt.run(wordcount_job(), DOCS)
        first = rt.pool
        assert first is not None
        r2 = rt.run(wordcount_job(), DOCS)
        assert rt.pool is first  # same pool object: no churn
        assert r1.as_dict() == r2.as_dict() == reference.as_dict()
        rt.close()

    def test_pool_reused_across_phases_and_attempts(self, reference):
        # map retries + the reduce phase all hit the one pool
        rt = MapReduceRuntime(
            "threads", workers=2,
            fault_plan=FaultPlan.script({("map", 1): 2, ("reduce", 0): 1}))
        res = rt.run(wordcount_job(), DOCS)
        pool = rt.pool
        assert pool is not None
        assert res.as_dict() == reference.as_dict()
        assert res.counters.get(TASK_RETRIES) == 3
        res2 = rt.run(wordcount_job(), DOCS)
        assert rt.pool is pool
        assert res2.as_dict() == reference.as_dict()
        rt.close()

    def test_serial_never_creates_pool(self):
        rt = MapReduceRuntime("serial")
        rt.run(wordcount_job(), DOCS)
        assert rt.pool is None

    def test_context_manager_closes_pool(self, reference):
        with MapReduceRuntime("threads", workers=2) as rt:
            res = rt.run(wordcount_job(), DOCS)
            assert rt.pool is not None
        assert rt.pool is None
        assert res.as_dict() == reference.as_dict()

    def test_close_idempotent_and_reopenable(self, reference):
        rt = MapReduceRuntime("threads", workers=2)
        rt.run(wordcount_job(), DOCS)
        rt.close()
        rt.close()
        assert rt.pool is None
        # a closed runtime lazily re-creates its pool
        res = rt.run(wordcount_job(), DOCS)
        assert res.as_dict() == reference.as_dict()
        assert rt.pool is not None
        rt.close()

    def test_legacy_churn_mode_no_persistent_pool(self, reference):
        rt = MapReduceRuntime("threads", workers=2, reuse_pool=False)
        res = rt.run(wordcount_job(), DOCS)
        assert rt.pool is None  # transient pools are torn down per batch
        assert res.as_dict() == reference.as_dict()


def _kill_worker_map(key, value, ctx):
    # hard-kill the worker process: simulates a segfault / OOM-kill
    os._exit(13)


class TestBrokenPoolRecovery:
    def test_process_pool_recreated_after_worker_crash(self, reference):
        # a dead worker breaks the executor; the runtime must discard it
        # (the old pool-per-batch code recovered for free) so healthy
        # jobs keep working afterwards
        rt = MapReduceRuntime("processes", workers=2)
        crash_job = Job(_kill_worker_map, wordcount_reduce)
        with pytest.raises(concurrent.futures.BrokenExecutor):
            rt.run(crash_job, DOCS)
        assert rt.pool is None  # broken pool was dropped, not kept
        res = rt.run(wordcount_job(), DOCS)  # lazily gets a fresh pool
        assert res.as_dict() == reference.as_dict()
        rt.close()


class TestEagerReduce:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_output_equivalent_to_barrier(self, executor, reference):
        with MapReduceRuntime(executor, workers=3) as rt:
            eager = rt.run(_job(num_reducers=4, eager_reduce=True), DOCS)
            barrier = rt.run(_job(num_reducers=4, eager_reduce=False), DOCS)
        assert eager.as_dict() == barrier.as_dict() == reference.as_dict()
        assert eager.output == barrier.output  # byte-identical order too
        assert (eager.counters.get(SHUFFLE_BYTES)
                == barrier.counters.get(SHUFFLE_BYTES))

    def test_eager_with_scripted_faults(self, reference):
        plan = FaultPlan.script({("map", 0): 1, ("map", 2): 2, ("reduce", 1): 1})
        with MapReduceRuntime("threads", workers=3, fault_plan=plan) as rt:
            res = rt.run(_job(num_reducers=4, eager_reduce=True), DOCS)
        assert res.as_dict() == reference.as_dict()
        assert res.counters.get(TASK_RETRIES) == 4

    def test_eager_with_random_faults(self, reference):
        plan = FaultPlan.random(0.4, seed=13)
        with MapReduceRuntime("threads", workers=3, fault_plan=plan) as rt:
            res = rt.run(_job(num_reducers=2, eager_reduce=True), DOCS)
        assert res.as_dict() == reference.as_dict()

    def test_eager_exhausted_attempts_fail_job(self):
        plan = FaultPlan.script({("map", 0): 99})
        with MapReduceRuntime("threads", workers=2, fault_plan=plan) as rt:
            with pytest.raises(JobFailedError):
                rt.run(_job(eager_reduce=True), DOCS)

    def test_eager_retry_counter_matches_barrier(self, reference):
        # retries are a function of the fault plan, not of the pipeline
        plan = FaultPlan.random(0.3, seed=21)
        with MapReduceRuntime("threads", workers=3, fault_plan=plan) as rt:
            eager = rt.run(_job(num_reducers=2, eager_reduce=True), DOCS)
            barrier = rt.run(_job(num_reducers=2, eager_reduce=False), DOCS)
        assert (eager.counters.get(TASK_RETRIES)
                == barrier.counters.get(TASK_RETRIES))


class TestOverlappedAccounting:
    def test_eager_shuffle_never_costlier(self):
        barrier = MapReduceRuntime("serial", cluster=SimCluster()).run(
            _job(eager_reduce=False), DOCS)
        eager = MapReduceRuntime("serial", cluster=SimCluster()).run(
            _job(eager_reduce=True), DOCS)
        assert eager.sim_times["shuffle"] <= barrier.sim_times["shuffle"]
        assert eager.sim_time_total <= barrier.sim_time_total
        # phases all present either way
        for phase in ("startup", "map", "shuffle", "reduce", "barrier", "dfs"):
            assert phase in eager.sim_times

    def test_overlap_is_residual(self):
        eager = MapReduceRuntime("serial", cluster=SimCluster()).run(
            _job(eager_reduce=True), DOCS)
        barrier = MapReduceRuntime("serial", cluster=SimCluster()).run(
            _job(eager_reduce=False), DOCS)
        hidden = min(barrier.sim_times["shuffle"], eager.sim_times["map"])
        assert eager.sim_times["shuffle"] == pytest.approx(
            barrier.sim_times["shuffle"] - hidden)

    def test_charge_overlapped_shuffle_validation(self):
        cl = SimCluster()
        with pytest.raises(ValueError):
            cl.charge_overlapped_shuffle(100.0, overlap_seconds=-1.0)

    def test_fully_hidden_transfer_charges_nothing(self):
        cl = SimCluster()
        before = cl.clock
        charged = cl.charge_overlapped_shuffle(8, overlap_seconds=1e9)
        assert charged == 0.0
        assert cl.clock == before
