"""Tests for repro.util: validation helpers, RNG plumbing, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    as_rng,
    ascii_table,
    check_array_1d,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    format_series,
    spawn_rngs,
)


class TestChecks:
    def test_check_positive_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", -3)

    def test_check_positive_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            check_positive("x", [1, 2])

    def test_check_positive_rejects_bool(self):
        # bool subclasses int (True > 0 holds), so without an explicit
        # rejection a flag passed where a count belongs slips through.
        with pytest.raises(TypeError, match="x must be a scalar number"):
            check_positive("x", True)
        with pytest.raises(TypeError, match="x must be a scalar number"):
            check_positive("x", np.bool_(True))

    def test_check_positive_accepts_numpy_scalars(self):
        check_positive("x", np.int64(3))
        check_positive("x", np.int32(3))
        check_positive("x", np.float64(0.5))
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", np.int64(0))
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", np.float64(-1.5))

    def test_check_positive_rejects_non_numeric_scalars(self):
        with pytest.raises(TypeError):
            check_positive("x", "3")
        with pytest.raises(TypeError):
            check_positive("x", np.str_("3"))
        with pytest.raises(TypeError):
            check_positive("x", 3 + 0j)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        check_non_negative("x", 2.5)
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_non_negative_rejects_bool(self):
        with pytest.raises(TypeError, match="x must be a scalar number"):
            check_non_negative("x", False)
        with pytest.raises(TypeError, match="x must be a scalar number"):
            check_non_negative("x", np.bool_(False))

    def test_check_non_negative_accepts_numpy_scalars(self):
        check_non_negative("x", np.int64(0))
        check_non_negative("x", np.float32(2.5))
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative("x", np.int64(-1))

    def test_check_in_range_inclusive(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 1.01, 0.0, 1.0)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)
        check_in_range("x", 0.5, 0.0, 1.0, inclusive=False)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_array_1d_passthrough_is_view(self):
        a = np.arange(5)
        out = check_array_1d("a", a)
        assert out is a

    def test_check_array_1d_rejects_2d(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            check_array_1d("a", np.zeros((2, 2)))

    def test_check_array_1d_length(self):
        check_array_1d("a", [1, 2, 3], length=3)
        with pytest.raises(ValueError, match="length 4"):
            check_array_1d("a", [1, 2, 3], length=4)

    def test_check_array_1d_dtype_kind(self):
        check_array_1d("a", np.zeros(3), dtype_kind="f")
        with pytest.raises(TypeError, match="dtype kind"):
            check_array_1d("a", np.zeros(3, dtype=np.int64), dtype_kind="f")


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_and_reproducible(self):
        kids1 = spawn_rngs(7, 3)
        kids2 = spawn_rngs(7, 3)
        for a, b in zip(kids1, kids2):
            assert np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))
        draws = [tuple(k.integers(0, 10**9, 4)) for k in spawn_rngs(7, 3)]
        assert len(set(draws)) == 3  # streams differ from each other

    def test_spawn_rngs_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_zero(self):
        assert spawn_rngs(0, 0) == []


class TestTables:
    def test_ascii_table_contains_cells(self):
        out = ascii_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        assert "a" in out and "bb" in out
        assert "2.5" in out and "x" in out

    def test_ascii_table_title(self):
        out = ascii_table(["h"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="row 0 has"):
            ascii_table(["a", "b"], [[1]])

    def test_ascii_table_column_alignment(self):
        out = ascii_table(["col"], [[123456]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # equal widths

    def test_format_series_pairs(self):
        out = format_series("Eager", [100, 200], [5, 7],
                            x_label="#partitions", y_label="iters")
        assert "series Eager" in out
        assert "#partitions=       100" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_format_series_float_formatting(self):
        out = format_series("s", [1], [3.14159265])
        assert "3.14159" in out
