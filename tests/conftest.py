"""Shared fixtures for the test suite.

Fixtures build small-but-structured inputs once per session; tests that
mutate inputs must copy them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimCluster, ZERO_COST, ec2_nodes
from repro.data import census_sample, gaussian_mixture
from repro.graph import (
    DiGraph,
    attach_random_weights,
    multilevel_partition,
    preferential_attachment,
)


@pytest.fixture(scope="session")
def small_graph() -> DiGraph:
    """A 400-node community-structured power-law digraph."""
    return preferential_attachment(
        400, num_conn=3, num_in=1, num_out=1,
        locality_prob=0.92, community_mean=40, seed=7,
    )


@pytest.fixture(scope="session")
def weighted_graph(small_graph: DiGraph) -> DiGraph:
    """The small graph with Uniform[1, 10) edge weights."""
    return attach_random_weights(small_graph, low=1.0, high=10.0, seed=11)


@pytest.fixture(scope="session")
def small_partition(small_graph: DiGraph):
    return multilevel_partition(small_graph, 4, seed=0)


@pytest.fixture(scope="session")
def weighted_partition(weighted_graph: DiGraph):
    return multilevel_partition(weighted_graph, 4, seed=0)


@pytest.fixture(scope="session")
def tiny_graph() -> DiGraph:
    """A hand-checkable 6-node graph.

    Edges: 0->1, 0->2, 1->2, 2->0, 3->4, 4->3, 5 isolated.
    Two weak components {0,1,2}, {3,4} and the singleton {5}.
    """
    return DiGraph(6, [0, 0, 1, 2, 3, 4], [1, 2, 2, 0, 4, 3])


@pytest.fixture()
def cluster() -> SimCluster:
    """A fresh default (EC2-like, 8 nodes) simulated cluster."""
    return SimCluster()


@pytest.fixture()
def zero_cluster() -> SimCluster:
    """A cluster whose cost model charges only pure compute."""
    return SimCluster(ec2_nodes(), ZERO_COST)


@pytest.fixture(scope="session")
def census_points() -> np.ndarray:
    return census_sample(3000, noise=0.35, num_profiles=8, seed=0)


@pytest.fixture(scope="session")
def blob_points():
    """Well-separated Gaussian blobs (points, labels)."""
    return gaussian_mixture(1200, 5, num_dims=3, spread=0.3, seed=5)
