"""Tests for PageRank: correctness against the oracle, General vs Eager
behaviour, and both execution paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import PageRankBlockSpec, pagerank, pagerank_reference
from repro.cluster import SimCluster
from repro.core import DriverConfig
from repro.graph import (
    DiGraph,
    chunk_partition,
    hash_partition,
    multilevel_partition,
    ring_graph,
)

TOL = 1e-5


@pytest.fixture(scope="module")
def ref(request):
    return None  # placeholder; per-graph references computed in tests


class TestCorrectness:
    def test_general_matches_oracle(self, small_graph, small_partition):
        res = pagerank(small_graph, small_partition, mode="general")
        expected = pagerank_reference(small_graph)
        assert np.abs(res.ranks - expected).max() < 10 * TOL
        assert res.converged

    def test_eager_matches_oracle(self, small_graph, small_partition):
        res = pagerank(small_graph, small_partition, mode="eager")
        expected = pagerank_reference(small_graph)
        assert np.abs(res.ranks - expected).max() < 100 * TOL

    def test_eager_and_general_same_fixed_point(self, small_graph, small_partition):
        gen = pagerank(small_graph, small_partition, mode="general")
        eag = pagerank(small_graph, small_partition, mode="eager")
        assert np.abs(gen.ranks - eag.ranks).max() < 100 * TOL

    def test_ring_graph_uniform_ranks(self):
        # a directed cycle is perfectly symmetric: all ranks equal 1
        g = ring_graph(10)
        res = pagerank(g, chunk_partition(g, 2), mode="eager")
        assert np.allclose(res.ranks, 1.0, atol=1e-4)

    def test_dangling_nodes_handled(self):
        # node 2 has no out-edges; no NaN/inf may appear
        g = DiGraph(3, [0, 1], [1, 2])
        res = pagerank(g, chunk_partition(g, 2), mode="eager")
        assert np.all(np.isfinite(res.ranks))
        # source-only node keeps the teleport mass
        assert res.ranks[0] == pytest.approx(0.15, abs=1e-3)

    def test_hub_ranks_high(self, small_graph, small_partition):
        res = pagerank(small_graph, small_partition, mode="eager")
        hub = int(small_graph.in_degree().argmax())
        # the max in-degree node need not be the absolute rank maximum
        # (rank weighs contributor quality), but it must be near the top
        assert res.ranks[hub] >= np.percentile(res.ranks, 95)

    def test_damping_parameter(self, small_graph, small_partition):
        lo = pagerank(small_graph, small_partition, mode="general", damping=0.5)
        hi = pagerank(small_graph, small_partition, mode="general", damping=0.95)
        # lower damping pulls ranks toward the uniform teleport value
        assert lo.ranks.std() < hi.ranks.std()
        assert lo.global_iters < hi.global_iters

    def test_invalid_args(self, small_graph, small_partition):
        with pytest.raises(ValueError):
            pagerank(small_graph, small_partition, damping=1.0)
        with pytest.raises(ValueError):
            PageRankBlockSpec(small_graph, small_partition, tol=0)
        with pytest.raises(ValueError):
            pagerank(small_graph, small_partition, path="quantum")


class TestPaperBehaviour:
    def test_general_iterations_independent_of_partitions(self, small_graph):
        # Figure 2: "the number of iterations does not change in the
        # general case"
        iters = []
        for k in (2, 8, 32):
            part = multilevel_partition(small_graph, k, seed=0)
            iters.append(pagerank(small_graph, part, mode="general").global_iters)
        assert len(set(iters)) == 1

    def test_eager_fewer_global_iterations(self, small_graph):
        part = multilevel_partition(small_graph, 4, seed=0)
        gen = pagerank(small_graph, part, mode="general")
        eag = pagerank(small_graph, part, mode="eager")
        assert eag.global_iters < gen.global_iters / 2

    def test_eager_iterations_grow_with_partitions(self, small_graph):
        few = multilevel_partition(small_graph, 4, seed=0)
        many = multilevel_partition(small_graph, 64, seed=0)
        it_few = pagerank(small_graph, few, mode="eager").global_iters
        it_many = pagerank(small_graph, many, mode="eager").global_iters
        assert it_few < it_many

    def test_eager_higher_serial_op_count(self, small_graph, small_partition):
        # §II: partial synchronization trades more serial operations for
        # fewer global synchronizations
        gen = pagerank(small_graph, small_partition, mode="general")
        eag = pagerank(small_graph, small_partition, mode="eager")
        assert eag.result.total_local_iters > gen.result.total_local_iters

    def test_eager_faster_in_sim_time(self, small_graph, small_partition):
        gen = pagerank(small_graph, small_partition, mode="general",
                       cluster=SimCluster())
        eag = pagerank(small_graph, small_partition, mode="eager",
                       cluster=SimCluster())
        assert eag.sim_time < gen.sim_time / 2

    def test_partition_size_one_degenerates_to_general(self, small_graph):
        # §V-B.4: "If the partition size is one ... Eager PageRank
        # becomes General PageRank"
        singletons = multilevel_partition(small_graph, small_graph.num_nodes)
        gen = pagerank(small_graph, singletons, mode="general")
        eag = pagerank(small_graph, singletons, mode="eager")
        assert eag.global_iters == gen.global_iters

    def test_one_partition_converges_in_one_global_round(self, small_graph):
        # §V-B.4: with one partition "its local MapReduce would compute
        # the final PageRanks of all the nodes"
        whole = multilevel_partition(small_graph, 1, seed=0)
        eag = pagerank(small_graph, whole, mode="eager",
                       config=DriverConfig(mode="eager", max_local_iters=5000))
        assert eag.global_iters <= 2

    def test_good_partition_beats_hash(self, small_graph):
        good = multilevel_partition(small_graph, 8, seed=0)
        bad = hash_partition(small_graph, 8)
        it_good = pagerank(small_graph, good, mode="eager").global_iters
        it_bad = pagerank(small_graph, bad, mode="eager").global_iters
        assert it_good <= it_bad


class TestKVPath:
    def test_kv_general_matches_block(self, small_graph, small_partition):
        kv = pagerank(small_graph, small_partition, mode="general", path="kv")
        block = pagerank(small_graph, small_partition, mode="general")
        assert np.abs(kv.ranks - block.ranks).max() < 100 * TOL
        assert kv.global_iters == block.global_iters

    def test_kv_eager_matches_oracle(self, small_graph, small_partition):
        kv = pagerank(small_graph, small_partition, mode="eager", path="kv")
        expected = pagerank_reference(small_graph)
        assert np.abs(kv.ranks - expected).max() < 100 * TOL

    def test_kv_eager_fewer_global_iters(self, small_graph, small_partition):
        gen = pagerank(small_graph, small_partition, mode="general", path="kv")
        eag = pagerank(small_graph, small_partition, mode="eager", path="kv")
        assert eag.global_iters < gen.global_iters / 2


class TestReference:
    def test_reference_fixed_point(self, small_graph):
        # the oracle's output satisfies eq. 1 to high accuracy
        ranks = pagerank_reference(small_graph, tol=1e-12)
        src, dst, _ = small_graph.edge_arrays()
        outdeg = small_graph.out_degree().astype(float)
        inv = np.where(outdeg > 0, 1 / np.maximum(outdeg, 1), 0)
        contrib = np.zeros(small_graph.num_nodes)
        np.add.at(contrib, dst, ranks[src] * inv[src])
        assert np.abs(0.15 + 0.85 * contrib - ranks).max() < 1e-9
