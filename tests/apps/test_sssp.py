"""Tests for SSSP: exactness against Dijkstra and paper behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import SsspBlockSpec, sssp, sssp_reference
from repro.cluster import SimCluster
from repro.graph import (
    DiGraph,
    chunk_partition,
    multilevel_partition,
    ring_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_matches_dijkstra(self, weighted_graph, weighted_partition, mode):
        res = sssp(weighted_graph, weighted_partition, mode=mode)
        expected = sssp_reference(weighted_graph)
        assert np.allclose(res.distances, expected, equal_nan=False)
        assert res.converged

    def test_source_distance_zero(self, weighted_graph, weighted_partition):
        res = sssp(weighted_graph, weighted_partition, source=5)
        assert res.distances[5] == 0.0

    def test_nondefault_source_matches_oracle(self, weighted_graph, weighted_partition):
        res = sssp(weighted_graph, weighted_partition, source=17, mode="eager")
        assert np.allclose(res.distances, sssp_reference(weighted_graph, source=17))

    def test_unreachable_nodes_stay_inf(self):
        # 0 -> 1; node 2 unreachable
        g = DiGraph(3, [0], [1], [2.0])
        res = sssp(g, chunk_partition(g, 2), mode="eager")
        assert res.distances.tolist() == [0.0, 2.0, np.inf]

    def test_ring_distances(self):
        g = ring_graph(6).with_weights(np.full(6, 1.0))
        res = sssp(g, chunk_partition(g, 3), mode="eager")
        assert res.distances.tolist() == [0, 1, 2, 3, 4, 5]

    def test_parallel_edges_take_min(self):
        g = DiGraph(2, [0, 0], [1, 1], [5.0, 2.0])
        res = sssp(g, chunk_partition(g, 1), mode="general")
        assert res.distances[1] == 2.0

    def test_monotone_nonincreasing_distances(self, weighted_graph, weighted_partition):
        # distances never increase across global iterations
        spec = SsspBlockSpec(weighted_graph, weighted_partition)
        state = spec.init_state()
        for _ in range(5):
            reports = [spec.local_solve(p, state, max_local_iters=3)
                       for p in range(weighted_partition.k)]
            new_state, _, _ = spec.global_combine(state, reports)
            finite = np.isfinite(state)
            assert np.all(new_state[finite] <= state[finite] + 1e-12)
            state = new_state

    def test_invalid_args(self, weighted_graph, weighted_partition):
        with pytest.raises(ValueError, match="source"):
            sssp(weighted_graph, weighted_partition, source=-1)
        with pytest.raises(ValueError, match="path"):
            sssp(weighted_graph, weighted_partition, path="bogus")

    def test_negative_weights_rejected(self):
        g = DiGraph(2, [0], [1], [-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            SsspBlockSpec(g, chunk_partition(g, 1))


class TestPaperBehaviour:
    def test_general_iterations_independent_of_partitions(self, weighted_graph):
        iters = {
            k: sssp(weighted_graph, multilevel_partition(weighted_graph, k, seed=0),
                    mode="general").global_iters
            for k in (2, 8, 32)
        }
        assert len(set(iters.values())) == 1

    def test_eager_fewer_global_iterations(self, weighted_graph, weighted_partition):
        gen = sssp(weighted_graph, weighted_partition, mode="general")
        eag = sssp(weighted_graph, weighted_partition, mode="eager")
        assert eag.global_iters < gen.global_iters

    def test_eager_iterations_grow_with_partitions(self, weighted_graph):
        few = multilevel_partition(weighted_graph, 2, seed=0)
        many = multilevel_partition(weighted_graph, 64, seed=0)
        assert (sssp(weighted_graph, few, mode="eager").global_iters
                <= sssp(weighted_graph, many, mode="eager").global_iters)

    def test_eager_faster_in_sim_time(self, weighted_graph, weighted_partition):
        gen = sssp(weighted_graph, weighted_partition, mode="general",
                   cluster=SimCluster())
        eag = sssp(weighted_graph, weighted_partition, mode="eager",
                   cluster=SimCluster())
        assert eag.sim_time < gen.sim_time

    def test_general_rounds_bound_by_hops(self, weighted_graph, weighted_partition):
        # Bellman-Ford needs (max shortest-path hop count + 1) rounds
        gen = sssp(weighted_graph, weighted_partition, mode="general")
        assert gen.global_iters <= weighted_graph.num_nodes


class TestKVPath:
    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_kv_matches_dijkstra(self, weighted_graph, weighted_partition, mode):
        res = sssp(weighted_graph, weighted_partition, mode=mode, path="kv")
        assert np.allclose(res.distances, sssp_reference(weighted_graph))

    def test_kv_eager_fewer_rounds(self, weighted_graph, weighted_partition):
        gen = sssp(weighted_graph, weighted_partition, mode="general", path="kv")
        eag = sssp(weighted_graph, weighted_partition, mode="eager", path="kv")
        assert eag.global_iters < gen.global_iters
