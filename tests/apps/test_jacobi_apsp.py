"""Tests for the §VI generality apps: async Jacobi solver and landmark APSP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    JacobiBlockSpec,
    SparseSystem,
    estimate_pair_distance,
    jacobi_solve,
    landmark_apsp,
    make_diagonally_dominant_system,
    sssp_reference,
)
from repro.cluster import SimCluster
from repro.graph import Partition, chunk_partition, multilevel_partition


@pytest.fixture(scope="module")
def system_and_partition():
    from repro.graph import preferential_attachment

    g = preferential_attachment(400, num_conn=3, locality_prob=0.94,
                                community_mean=40, seed=7)
    part = multilevel_partition(g, 4, seed=0)
    return make_diagonally_dominant_system(part, seed=1), part


class TestSparseSystem:
    def test_validation(self):
        with pytest.raises(ValueError, match="nonzero"):
            SparseSystem(2, np.array([0]), np.array([1]), np.array([1.0]),
                         np.array([0.0, 1.0]), np.zeros(2))
        with pytest.raises(ValueError, match="diag"):
            SparseSystem(2, np.array([0]), np.array([0]), np.array([1.0]),
                         np.ones(2), np.zeros(2))
        with pytest.raises(ValueError, match="equal length"):
            SparseSystem(2, np.array([0]), np.array([1, 1]), np.array([1.0]),
                         np.ones(2), np.zeros(2))

    def test_generated_system_dominant(self, system_and_partition):
        system, _ = system_and_partition
        assert system.is_diagonally_dominant()

    def test_dense_accumulates_duplicates(self):
        s = SparseSystem(2, np.array([0, 0]), np.array([1, 1]),
                         np.array([1.0, 2.0]), np.array([10.0, 10.0]),
                         np.zeros(2))
        assert s.dense()[0, 1] == 3.0

    def test_residual_norm_zero_at_solution(self, system_and_partition):
        system, _ = system_and_partition
        x = np.linalg.solve(system.dense(), system.b)
        assert system.residual_norm(x) < 1e-9

    def test_dominance_validation(self, system_and_partition):
        _, part = system_and_partition
        with pytest.raises(ValueError):
            make_diagonally_dominant_system(part, dominance=1.0)


class TestJacobiSolver:
    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_solves_system(self, system_and_partition, mode):
        system, part = system_and_partition
        exact = np.linalg.solve(system.dense(), system.b)
        res = jacobi_solve(system, part, mode=mode, tol=1e-10)
        assert np.abs(res.x - exact).max() < 1e-7
        assert res.converged
        assert res.residual_norm < 1e-6

    def test_eager_fewer_global_iterations(self, system_and_partition):
        system, part = system_and_partition
        gen = jacobi_solve(system, part, mode="general")
        eag = jacobi_solve(system, part, mode="eager")
        assert eag.global_iters < gen.global_iters

    def test_eager_faster_sim_time(self, system_and_partition):
        system, part = system_and_partition
        gen = jacobi_solve(system, part, mode="general", cluster=SimCluster())
        eag = jacobi_solve(system, part, mode="eager", cluster=SimCluster())
        assert eag.sim_time < gen.sim_time

    def test_rejects_non_dominant_system(self, system_and_partition):
        _, part = system_and_partition
        n = part.graph.num_nodes
        bad = SparseSystem(n, np.array([0]), np.array([1]), np.array([5.0]),
                           np.ones(n), np.zeros(n))
        with pytest.raises(ValueError, match="dominant"):
            JacobiBlockSpec(bad, part)

    def test_size_mismatch_rejected(self, system_and_partition):
        system, part = system_and_partition
        from repro.graph import ring_graph

        other = chunk_partition(ring_graph(5), 2)
        with pytest.raises(ValueError, match="match"):
            JacobiBlockSpec(system, other)


class TestLandmarkApsp:
    @pytest.fixture(scope="class")
    def apsp(self, weighted_graph, weighted_partition):
        return landmark_apsp(weighted_graph, weighted_partition,
                             num_landmarks=3, mode="eager", seed=0)

    def test_landmark_rows_exact(self, apsp, weighted_graph):
        for i, l in enumerate(apsp.landmarks):
            assert np.allclose(apsp.dist_from[i],
                               sssp_reference(weighted_graph, source=int(l)))

    def test_reverse_rows_exact(self, apsp, weighted_graph):
        rev = weighted_graph.reverse()
        for i, l in enumerate(apsp.landmarks):
            assert np.allclose(apsp.dist_to[i],
                               sssp_reference(rev, source=int(l)))

    def test_pair_estimate_is_upper_bound(self, apsp, weighted_graph):
        exact_from_5 = sssp_reference(weighted_graph, source=5)
        est = estimate_pair_distance(apsp, 5, 40)
        assert est >= exact_from_5[40] - 1e-9

    def test_landmark_pair_exact(self, apsp, weighted_graph):
        l = int(apsp.landmarks[0])
        exact = sssp_reference(weighted_graph, source=l)
        assert estimate_pair_distance(apsp, l, 17) == pytest.approx(exact[17])

    def test_eager_cheaper_than_general(self, weighted_graph, weighted_partition):
        gen = landmark_apsp(weighted_graph, weighted_partition,
                            num_landmarks=2, mode="general",
                            cluster=SimCluster(), seed=0)
        eag = landmark_apsp(weighted_graph, weighted_partition,
                            num_landmarks=2, mode="eager",
                            cluster=SimCluster(), seed=0)
        assert eag.sim_time < gen.sim_time
        assert eag.global_iters < gen.global_iters

    def test_validation(self, weighted_graph, weighted_partition):
        with pytest.raises(ValueError):
            landmark_apsp(weighted_graph, weighted_partition, num_landmarks=0)
        with pytest.raises(ValueError):
            landmark_apsp(weighted_graph, weighted_partition,
                          num_landmarks=weighted_graph.num_nodes + 1)
