"""Tests for the record-at-a-time K-Means spec (§IV API path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import KMeansKVSpec, kmeans_reference, sse
from repro.core import AsyncMapReduceSpec, DriverConfig, run_iterative_kv
from repro.data import gaussian_mixture


@pytest.fixture(scope="module")
def pts():
    points, _ = gaussian_mixture(400, 4, num_dims=3, spread=0.3, seed=5)
    return points


def _centroids(state, k):
    return np.stack([state[("c", j)] for j in range(k)])


class TestKMeansKV:
    def test_registered_as_async_spec(self, pts):
        spec = KMeansKVSpec(pts, 3, seed=0)
        assert isinstance(spec, AsyncMapReduceSpec)

    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_reaches_reference_quality(self, pts, mode):
        spec = KMeansKVSpec(pts, 4, num_partitions=3, threshold=1e-3, seed=2)
        res = run_iterative_kv(spec, DriverConfig(mode=mode))
        got = sse(pts, _centroids(res.state, 4))
        ref = sse(pts, kmeans_reference(pts, 4, threshold=1e-3, seed=2))
        assert got <= 1.05 * ref
        assert res.converged

    def test_eager_fewer_global_iterations(self, pts):
        gen = run_iterative_kv(
            KMeansKVSpec(pts, 4, num_partitions=3, threshold=1e-3, seed=2),
            DriverConfig(mode="general"))
        eag = run_iterative_kv(
            KMeansKVSpec(pts, 4, num_partitions=3, threshold=1e-3, seed=2),
            DriverConfig(mode="eager"))
        assert eag.global_iters < gen.global_iters

    def test_initial_state_uses_data_points(self, pts):
        spec = KMeansKVSpec(pts, 3, seed=7)
        state = spec.initial_state()
        for j in range(3):
            c = state[("c", j)]
            assert any(np.array_equal(c, p) for p in pts[:50]) or \
                (c == pts).all(axis=1).any()

    def test_partition_input_contains_centroids_and_points(self, pts):
        spec = KMeansKVSpec(pts, 3, num_partitions=4, seed=0)
        xs = spec.partition_input(0, spec.initial_state())
        tags = [k[0] for k, _ in xs]
        assert tags.count("c") == 3
        assert tags.count("pt") > 0

    def test_validation(self, pts):
        with pytest.raises(ValueError):
            KMeansKVSpec(pts, 0)
        with pytest.raises(ValueError):
            KMeansKVSpec(np.zeros((0, 2)), 1)

    def test_local_convergence_definition(self, pts):
        spec = KMeansKVSpec(pts, 2, threshold=0.5, seed=1)
        state = spec.initial_state()
        same = dict(state)
        assert spec.local_converged(state, same)
        moved = dict(state)
        moved[("c", 0)] = state[("c", 0)] + 10.0
        assert not spec.local_converged(state, moved)
