"""Tests for connected components and wordcount."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    components_reference,
    connected_components,
    wordcount,
)
from repro.cluster import SimCluster
from repro.engine import MapReduceRuntime
from repro.graph import DiGraph, chunk_partition, multilevel_partition


class TestComponents:
    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_matches_scipy(self, small_graph, small_partition, mode):
        res = connected_components(small_graph, small_partition, mode=mode)
        assert np.array_equal(res.labels, components_reference(small_graph))

    def test_tiny_graph_components(self, tiny_graph):
        res = connected_components(tiny_graph, chunk_partition(tiny_graph, 2),
                                   mode="eager")
        assert res.num_components == 3
        assert res.labels.tolist() == [0, 0, 0, 3, 3, 5]

    def test_direction_ignored(self):
        # a one-way edge still joins its endpoints weakly
        g = DiGraph(2, [0], [1])
        res = connected_components(g, chunk_partition(g, 2), mode="eager")
        assert res.num_components == 1

    def test_eager_fewer_iterations(self, small_graph, small_partition):
        gen = connected_components(small_graph, small_partition, mode="general")
        eag = connected_components(small_graph, small_partition, mode="eager")
        assert eag.global_iters <= gen.global_iters

    def test_sim_time_accounted(self, small_graph, small_partition):
        res = connected_components(small_graph, small_partition, mode="eager",
                                   cluster=SimCluster())
        assert res.sim_time > 0

    def test_labels_are_component_minima(self, small_graph, small_partition):
        res = connected_components(small_graph, small_partition, mode="eager")
        # every label is the smallest node id in its component
        for lbl in np.unique(res.labels):
            members = np.flatnonzero(res.labels == lbl)
            assert members.min() == lbl


class TestWordcount:
    def test_counts(self):
        res = wordcount(["a b a", "c b"])
        assert res.as_dict() == {"a": 2, "b": 2, "c": 1}

    def test_case_and_punctuation(self):
        res = wordcount(["Hello, hello WORLD!"])
        assert res.as_dict() == {"hello": 2, "world": 1}

    def test_splits_param(self):
        res = wordcount(["a"] * 10, splits=3)
        assert res.as_dict() == {"a": 10}
        with pytest.raises(ValueError):
            wordcount(["a"], splits=0)

    def test_combiner_equivalence(self):
        docs = ["x y z x", "y y", "z"]
        with_c = wordcount(docs, use_combiner=True)
        without = wordcount(docs, use_combiner=False)
        assert with_c.as_dict() == without.as_dict()

    def test_combiner_reduces_shuffle(self):
        docs = ["token token token token"] * 5
        with_c = wordcount(docs, use_combiner=True)
        without = wordcount(docs, use_combiner=False)
        assert (with_c.counters.get("job.shuffle.bytes")
                < without.counters.get("job.shuffle.bytes"))

    def test_custom_runtime(self):
        rt = MapReduceRuntime("threads", workers=2)
        res = wordcount(["w w"], runtime=rt)
        assert res.as_dict() == {"w": 2}


class TestWordcountColumnar:
    """String keys ride the columnar path via dictionary encoding."""

    DOCS = ["the quick brown fox", "the lazy dog", "the fox", "dog dog dog"]

    def test_counts_match_classic(self):
        fast = wordcount(self.DOCS, columnar=True)
        classic = wordcount(self.DOCS)
        assert {k: int(v) for k, v in fast.as_dict().items()} \
            == classic.as_dict()

    def test_bitwise_vs_forced_object_path(self):
        """The same columnar job through JobConf(columnar=False) is the
        oracle: identical words, counts, and order."""
        import dataclasses

        from repro.apps import wordcount_job

        docs = [(i, d) for i, d in enumerate(self.DOCS)]
        rt = MapReduceRuntime("serial")
        for use_combiner in (True, False):
            fast_job = wordcount_job(columnar=True,
                                     use_combiner=use_combiner)
            fast = rt.run(fast_job, [docs])
            oracle_job = dataclasses.replace(
                fast_job, conf=dataclasses.replace(fast_job.conf,
                                                   columnar=False))
            oracle = rt.run(oracle_job, [docs])
            assert fast.output == oracle.output

    def test_all_executors_agree(self):
        outs = []
        for executor in ("serial", "threads", "processes"):
            with MapReduceRuntime(executor, workers=2) as rt:
                outs.append(wordcount(self.DOCS, runtime=rt,
                                      columnar=True).output)
        assert outs[0] == outs[1] == outs[2]

    def test_empty_documents(self):
        assert wordcount([]).as_dict() == {}
        assert wordcount([""]).as_dict() == {}
