"""Tests for K-Means: Lloyd correctness, General vs Eager behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    KMeansBlockSpec,
    assign_points,
    kmeans,
    kmeans_reference,
    sse,
)
from repro.cluster import SimCluster


class TestAssignAndSse:
    def test_assign_nearest(self):
        pts = np.array([[0.0], [1.0], [10.0]])
        cents = np.array([[0.5], [9.0]])
        assert assign_points(pts, cents).tolist() == [0, 0, 1]

    def test_assign_blockwise_matches_direct(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(500, 8))
        cents = rng.normal(size=(7, 8))
        direct = np.argmin(((pts[:, None, :] - cents[None]) ** 2).sum(-1), axis=1)
        assert np.array_equal(assign_points(pts, cents), direct)

    def test_assign_validation(self):
        with pytest.raises(ValueError):
            assign_points(np.zeros(3), np.zeros((2, 1)))
        with pytest.raises(ValueError, match="dimension"):
            assign_points(np.zeros((3, 2)), np.zeros((2, 3)))

    def test_sse_zero_at_centroids(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert sse(pts, pts.copy()) == 0.0

    def test_sse_positive(self, blob_points):
        pts, _ = blob_points
        cents = pts[:5]
        assert sse(pts, cents) > 0


class TestCorrectness:
    def test_general_equals_serial_lloyd(self, census_points):
        # count-weighted combine makes the distributed general mode an
        # exact Lloyd step, so it matches the serial oracle step for step
        got = kmeans(census_points, 6, mode="general", threshold=1e-3,
                     num_partitions=13, seed=4)
        expected = kmeans_reference(census_points, 6, threshold=1e-3, seed=4)
        assert np.allclose(got.centroids, expected, atol=1e-8)

    def test_centroids_are_weighted_means(self, census_points):
        res = kmeans(census_points, 5, mode="general", threshold=1e-4, seed=1)
        assignment = assign_points(census_points, res.centroids)
        for j in range(5):
            members = census_points[assignment == j]
            if len(members):
                # one more Lloyd step moves each centroid by < threshold-ish
                assert np.linalg.norm(res.centroids[j] - members.mean(0)) < 0.05

    def test_general_objective_nonincreasing(self, census_points):
        spec = KMeansBlockSpec(census_points, 6, num_partitions=8,
                               threshold=1e-6, seed=2,
                               oscillation_detection=False)
        state = spec.init_state()
        prev_obj = sse(census_points, state)
        for _ in range(8):
            reports = [spec.local_solve(p, state, max_local_iters=1)
                       for p in range(spec.num_partitions())]
            state, _, _ = spec.global_combine(state, reports)
            obj = sse(census_points, state)
            assert obj <= prev_obj + 1e-6
            prev_obj = obj

    def test_eager_quality_comparable(self, census_points):
        gen = kmeans(census_points, 6, mode="general", threshold=1e-3, seed=4)
        eag = kmeans(census_points, 6, mode="eager", threshold=1e-3, seed=4)
        assert sse(census_points, eag.centroids) <= 1.1 * sse(census_points, gen.centroids)

    def test_recovers_separated_blobs(self, blob_points):
        pts, labels = blob_points
        res = kmeans(pts, 5, mode="eager", threshold=1e-3,
                     num_partitions=6, seed=0)
        # every true cluster centre should be near some found centroid
        for c in range(5):
            centre = pts[labels == c].mean(0)
            dmin = np.linalg.norm(res.centroids - centre, axis=1).min()
            assert dmin < 1.0

    def test_deterministic_given_seed(self, census_points):
        a = kmeans(census_points, 4, mode="eager", seed=9)
        b = kmeans(census_points, 4, mode="eager", seed=9)
        assert np.array_equal(a.centroids, b.centroids)
        assert a.global_iters == b.global_iters

    def test_validation(self, census_points):
        with pytest.raises(ValueError):
            KMeansBlockSpec(census_points, 0)
        with pytest.raises(ValueError):
            KMeansBlockSpec(census_points, 3, threshold=0)
        with pytest.raises(ValueError):
            KMeansBlockSpec(census_points, 3, weighting="median")
        with pytest.raises(ValueError):
            KMeansBlockSpec(np.zeros((0, 2)), 1)

    def test_k_one(self, census_points):
        res = kmeans(census_points, 1, mode="general", threshold=1e-6, seed=0)
        assert np.allclose(res.centroids[0], census_points.mean(0), atol=1e-6)


class TestPaperBehaviour:
    def test_eager_fewer_global_iterations(self, census_points):
        gen = kmeans(census_points, 6, mode="general", threshold=0.05, seed=4)
        eag = kmeans(census_points, 6, mode="eager", threshold=0.05, seed=4)
        assert eag.global_iters < gen.global_iters

    def test_iterations_grow_as_threshold_shrinks(self, census_points):
        loose = kmeans(census_points, 6, mode="general", threshold=0.5, seed=4)
        tight = kmeans(census_points, 6, mode="general", threshold=0.01, seed=4)
        assert loose.global_iters <= tight.global_iters

    def test_eager_faster_in_sim_time(self, census_points):
        gen = kmeans(census_points, 6, mode="general", threshold=0.05,
                     cluster=SimCluster(), seed=4)
        eag = kmeans(census_points, 6, mode="eager", threshold=0.05,
                     cluster=SimCluster(), seed=4)
        assert eag.sim_time < gen.sim_time

    def test_repartitioning_happens_in_eager(self, census_points):
        spec = KMeansBlockSpec(census_points, 4, num_partitions=6,
                               reshuffle_every=2, seed=0)
        before = [p.copy() for p in spec._parts]
        spec.on_global_iteration(2, None)
        after = spec._parts
        assert any(not np.array_equal(b, a) for b, a in zip(before, after))

    def test_no_repartitioning_when_disabled(self, census_points):
        spec = KMeansBlockSpec(census_points, 4, num_partitions=6,
                               reshuffle_every=0, seed=0)
        before = [p.copy() for p in spec._parts]
        spec.on_global_iteration(2, None)
        assert all(np.array_equal(b, a) for b, a in zip(before, spec._parts))

    def test_uniform_weighting_mode_runs(self, census_points):
        res = kmeans(census_points, 4, mode="eager", weighting="uniform", seed=0)
        assert np.all(np.isfinite(res.centroids))

    def test_empty_cluster_keeps_previous_centroid(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]])
        spec = KMeansBlockSpec(pts, 2, num_partitions=1, threshold=1e-6,
                               seed=1, oscillation_detection=False)
        state = np.array([[0.05, 0.05], [100.0, 100.0]])  # far centroid empty
        reports = [spec.local_solve(0, state, max_local_iters=1)]
        new_state, _, _ = spec.global_combine(state, reports)
        assert np.allclose(new_state[1], [100.0, 100.0])
