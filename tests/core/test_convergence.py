"""Tests for the convergence criteria."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CentroidShiftCriterion,
    InfNormCriterion,
    L2NormCriterion,
    UnchangedCriterion,
    combine_any,
)


class TestInfNorm:
    def test_converges_below_tol(self):
        c = InfNormCriterion(1e-3)
        assert not c.update(np.zeros(3), np.array([0.1, 0.0, 0.0]))
        assert c.update(np.zeros(3), np.array([1e-4, 0.0, 0.0]))

    def test_residual_is_max_abs(self):
        c = InfNormCriterion(1e-3)
        c.update(np.array([1.0, 2.0]), np.array([1.5, 1.0]))
        assert c.last_residual == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            InfNormCriterion(1.0).update(np.zeros(2), np.zeros(3))

    def test_empty_converges(self):
        assert InfNormCriterion(1.0).update(np.zeros(0), np.zeros(0))

    def test_bad_tol(self):
        with pytest.raises(ValueError):
            InfNormCriterion(0.0)

    def test_reset(self):
        c = InfNormCriterion(1.0)
        c.update(np.zeros(1), np.ones(1))
        c.reset()
        assert c.last_residual == float("inf")


class TestL2Norm:
    def test_residual(self):
        c = L2NormCriterion(1.0)
        c.update(np.zeros(2), np.array([3.0, 4.0]))
        assert c.last_residual == pytest.approx(5.0)

    def test_convergence(self):
        c = L2NormCriterion(0.1)
        assert c.update(np.ones(4), np.ones(4) + 0.01)


class TestUnchanged:
    def test_identical_converges(self):
        c = UnchangedCriterion()
        assert c.update(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_change_not_converged(self):
        c = UnchangedCriterion()
        assert not c.update(np.array([1.0]), np.array([1.1]))

    def test_inf_to_inf_is_unchanged(self):
        c = UnchangedCriterion()
        inf = np.inf
        assert c.update(np.array([inf, 1.0]), np.array([inf, 1.0]))

    def test_inf_to_finite_is_change(self):
        c = UnchangedCriterion()
        assert not c.update(np.array([np.inf]), np.array([5.0]))


class TestCentroidShift:
    def test_threshold_stop(self):
        c = CentroidShiftCriterion(0.5)
        prev = np.zeros((2, 3))
        assert not c.update(prev, prev + 1.0)
        assert c.update(prev, prev + 0.1)

    def test_residual_is_max_row_norm(self):
        c = CentroidShiftCriterion(1e-9)
        prev = np.zeros((2, 2))
        curr = np.array([[3.0, 4.0], [0.0, 0.1]])
        c.update(prev, curr)
        assert c.last_residual == pytest.approx(5.0)

    def test_oscillation_detected_on_plateau(self):
        c = CentroidShiftCriterion(1e-6, window=3)
        prev = np.zeros((1, 1))
        # residuals: decreasing then bouncing around 0.5 forever
        seq = [4.0, 2.0, 1.0, 0.5, 0.55, 0.52, 0.57, 0.51, 0.56, 0.53]
        fired = None
        for i, r in enumerate(seq):
            if c.update(prev, prev + r):
                fired = i
                break
        assert fired is not None and fired >= 5
        assert c.oscillated

    def test_steady_decrease_not_oscillation(self):
        c = CentroidShiftCriterion(1e-9, window=3)
        prev = np.zeros((1, 1))
        for r in [1.0, 0.5, 0.25, 0.12, 0.06, 0.03, 0.015, 0.008]:
            assert not c.update(prev, prev + r)
        assert not c.oscillated

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            CentroidShiftCriterion(1.0).update(np.zeros(3), np.zeros(3))

    def test_reset_clears_history(self):
        c = CentroidShiftCriterion(1e-6, window=2)
        prev = np.zeros((1, 1))
        for r in [1.0, 1.0, 1.0, 1.0]:
            c.update(prev, prev + r)
        c.reset()
        assert not c.oscillated
        assert c.last_residual == float("inf")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CentroidShiftCriterion(1.0, window=1)


class TestCombineAny:
    def test_any_fires(self):
        c = combine_any(InfNormCriterion(1e-6), UnchangedCriterion())
        assert c.update(np.array([1.0]), np.array([1.0]))  # unchanged fires

    def test_none_fires(self):
        c = combine_any(InfNormCriterion(1e-6), UnchangedCriterion())
        assert not c.update(np.array([1.0]), np.array([2.0]))

    def test_last_residual_min(self):
        c = combine_any(InfNormCriterion(1e-6), L2NormCriterion(1e-6))
        c.update(np.zeros(2), np.array([3.0, 4.0]))
        assert c.last_residual == pytest.approx(4.0)  # inf-norm < l2

    def test_reset(self):
        c = combine_any(InfNormCriterion(1e-6))
        c.update(np.zeros(1), np.ones(1))
        c.reset()
        assert c.last_residual == float("inf")
