"""End-to-end tests: the engine path's columnar fast lane vs the oracle.

``EngineBackend`` auto-opts columnar-capable specs (PageRank, SSSP) into
typed-batch shuffles with map-side combiners; ``columnar=False`` forces
the historical object path.  These tests pin that the fast lane changes
*nothing observable* — same fixed point, same round structure — except
the shuffle volume, which the combiner strictly shrinks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import PageRankKVSpec, pagerank_reference
from repro.apps.sssp import SsspKVSpec, sssp_reference
from repro.cluster import SimCluster
from repro.core import DriverConfig, EngineBackend, IterationLoop
from repro.engine import MapReduceRuntime
from repro.graph import (
    attach_random_weights,
    multilevel_partition,
    preferential_attachment,
)


@pytest.fixture(scope="module")
def setup():
    g = preferential_attachment(200, num_conn=2, locality_prob=0.9,
                                community_mean=25, seed=11)
    part = multilevel_partition(g, 3, seed=0)
    wg = attach_random_weights(g, seed=2)
    return g, part, wg


def _run(spec, *, columnar, mode="eager", runtime=None, **cfg):
    backend = EngineBackend(spec, columnar=columnar, runtime=runtime)
    return IterationLoop(backend, DriverConfig(mode=mode, **cfg)).run()


class TestPageRankColumnar:
    def test_auto_opt_in(self, setup):
        g, part, _ = setup
        assert EngineBackend(PageRankKVSpec(g, part)).columnar is True
        assert EngineBackend(PageRankKVSpec(g, part),
                             columnar=False).columnar is False

    def test_same_fixed_point_as_object_path(self, setup):
        g, part, _ = setup
        fast = _run(PageRankKVSpec(g, part), columnar=True)
        oracle = _run(PageRankKVSpec(g, part), columnar=False)
        assert fast.converged and oracle.converged
        assert fast.global_iters == oracle.global_iters
        ra = np.array([fast.state[u][0] for u in range(g.num_nodes)])
        rb = np.array([oracle.state[u][0] for u in range(g.num_nodes)])
        assert np.allclose(ra, rb)
        assert np.allclose(ra, pagerank_reference(g), atol=1e-3)

    def test_combiner_ships_fewer_shuffle_bytes(self, setup):
        """The partial-aggregation lever (§V-B): every RoundRecord of a
        combiner-enabled columnar run crosses the shuffle with fewer
        bytes than the object path's tagged records."""
        g, part, _ = setup
        fast = _run(PageRankKVSpec(g, part), columnar=True)
        oracle = _run(PageRankKVSpec(g, part), columnar=False)
        assert len(fast.history) == len(oracle.history)
        for rec_f, rec_o in zip(fast.history, oracle.history):
            assert 0 < rec_f.shuffle_bytes < rec_o.shuffle_bytes

    def test_round_records_shape_compatible(self, setup):
        g, part, _ = setup
        spec = PageRankKVSpec(g, part)
        res = _run(spec, columnar=True)
        for rec in res.history:
            assert len(rec.local_iters) == spec.num_partitions()
            assert all(li >= 1 for li in rec.local_iters)
            assert len(rec.state_partition_bytes) == spec.num_partitions()
            assert sum(rec.state_partition_bytes) > 0

    def test_general_mode(self, setup):
        g, part, _ = setup
        res = _run(PageRankKVSpec(g, part), columnar=True, mode="general",
                   max_global_iters=3)
        for rec in res.history:
            assert rec.local_iters == (1, 1, 1)

    def test_sim_time_accumulates_on_cluster(self, setup):
        g, part, _ = setup
        cl = SimCluster()
        rt = MapReduceRuntime("serial", cluster=cl)
        res = _run(PageRankKVSpec(g, part), columnar=True, runtime=rt)
        assert res.sim_time == pytest.approx(cl.clock)
        assert res.sim_time > 0

    def test_threads_executor_matches_serial(self, setup):
        g, part, _ = setup
        serial = _run(PageRankKVSpec(g, part), columnar=True)
        with MapReduceRuntime("threads", workers=2) as rt:
            threaded = _run(PageRankKVSpec(g, part), columnar=True,
                            runtime=rt)
        assert threaded.global_iters == serial.global_iters
        ra = np.array([serial.state[u][0] for u in range(g.num_nodes)])
        rb = np.array([threaded.state[u][0] for u in range(g.num_nodes)])
        assert np.array_equal(ra, rb)

    def test_non_columnar_spec_cannot_force_opt_in(self, setup):
        g, part, _ = setup

        class Stripped(PageRankKVSpec):
            supports_columnar = False

        with pytest.raises(ValueError, match="columnar"):
            EngineBackend(Stripped(g, part), columnar=True)


class TestSsspColumnar:
    def test_identical_distances_and_rounds(self, setup):
        """min-aggregation is exact, so the columnar run is bit-identical
        to the object path, round for round."""
        g, part, wg = setup
        wpart = multilevel_partition(wg, 3, seed=0)
        fast = _run(SsspKVSpec(wg, wpart), columnar=True)
        oracle = _run(SsspKVSpec(wg, wpart), columnar=False)
        assert fast.global_iters == oracle.global_iters
        d_f = np.array([fast.state[u][0] for u in range(wg.num_nodes)])
        d_o = np.array([oracle.state[u][0] for u in range(wg.num_nodes)])
        assert np.array_equal(d_f, d_o)
        ref = sssp_reference(wg, source=0)
        finite = np.isfinite(ref)
        assert np.allclose(d_f[finite], ref[finite])
        # Byte volumes track the different encodings (fixed 2-column
        # rows vs 1-char tags + payload), so unlike PageRank the
        # columnar run is not unconditionally smaller — but once the
        # frontier saturates and the "min" combiner has duplicates to
        # fold, it is.
        assert fast.history[-1].shuffle_bytes < oracle.history[-1].shuffle_bytes
