"""Tests for the §VIII future-work extensions: hierarchical sync,
granularity autotuning, and the online state store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import PageRankBlockSpec, pagerank_reference
from repro.cluster import SimCluster
from repro.core import (
    DriverConfig,
    HierarchyConfig,
    autotune_partitions,
    make_racks,
    run_iterative_block,
    run_iterative_hierarchical,
)
from repro.graph import multilevel_partition


@pytest.fixture(scope="module")
def setup(request):
    from repro.graph import preferential_attachment

    g = preferential_attachment(800, num_conn=3, locality_prob=0.94,
                                community_mean=60, seed=4)
    part = multilevel_partition(g, 8, seed=0)
    return g, part


class TestMakeRacks:
    def test_contiguous_cover(self):
        racks = make_racks(10, 3)
        assert sorted(p for r in racks for p in r) == list(range(10))
        for rack in racks:
            assert rack == list(range(rack[0], rack[-1] + 1))

    def test_more_racks_than_partitions(self):
        racks = make_racks(2, 5)
        assert len(racks) == 2

    def test_clamp_pins_one_partition_per_rack(self):
        # num_racks > num_partitions clamps to num_partitions (documented
        # in the make_racks docstring): no rack is ever empty, and the
        # result is shorter than requested.
        racks = make_racks(3, 10)
        assert racks == [[0], [1], [2]]
        assert all(rack for rack in racks)
        assert len(make_racks(1, 7)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_racks(0, 2)
        with pytest.raises(ValueError):
            make_racks(5, 0)


class TestHierarchicalDriver:
    def test_same_fixed_point_as_flat(self, setup):
        g, part = setup
        ref = pagerank_reference(g)
        h = run_iterative_hierarchical(
            PageRankBlockSpec(g, part), DriverConfig(mode="eager"),
            make_racks(8, 2), hierarchy=HierarchyConfig(inner_rounds=3))
        assert np.abs(np.asarray(h.state) - ref).max() < 1e-3
        assert h.converged

    def test_fewer_global_iterations_than_flat(self, setup):
        g, part = setup
        flat = run_iterative_block(PageRankBlockSpec(g, part),
                                   DriverConfig(mode="eager"))
        hier = run_iterative_hierarchical(
            PageRankBlockSpec(g, part), DriverConfig(mode="eager"),
            make_racks(8, 2), hierarchy=HierarchyConfig(inner_rounds=3))
        assert hier.global_iters < flat.global_iters

    def test_faster_in_sim_time(self, setup):
        g, part = setup
        flat = run_iterative_block(PageRankBlockSpec(g, part),
                                   DriverConfig(mode="eager"),
                                   cluster=SimCluster())
        hier = run_iterative_hierarchical(
            PageRankBlockSpec(g, part), DriverConfig(mode="eager"),
            make_racks(8, 2), hierarchy=HierarchyConfig(inner_rounds=3),
            cluster=SimCluster())
        assert hier.sim_time < flat.sim_time

    def test_single_inner_round_close_to_flat_iterates(self, setup):
        g, part = setup
        flat = run_iterative_block(PageRankBlockSpec(g, part),
                                   DriverConfig(mode="eager"))
        hier = run_iterative_hierarchical(
            PageRankBlockSpec(g, part), DriverConfig(mode="eager"),
            make_racks(8, 2), hierarchy=HierarchyConfig(inner_rounds=1))
        # one inner round = plain eager driver (same iterates)
        assert hier.global_iters == flat.global_iters

    def test_rejects_non_scoped_spec(self, census_points):
        from repro.apps import KMeansBlockSpec

        spec = KMeansBlockSpec(census_points, 3, num_partitions=4)
        with pytest.raises(ValueError, match="partition-scoped"):
            run_iterative_hierarchical(spec, DriverConfig(mode="eager"),
                                       make_racks(4, 2))

    def test_rejects_bad_rack_cover(self, setup):
        g, part = setup
        with pytest.raises(ValueError, match="cover"):
            run_iterative_hierarchical(
                PageRankBlockSpec(g, part), DriverConfig(mode="eager"),
                [[0, 1], [2, 3]])  # misses partitions 4..7

    def test_hierarchy_config_validation(self):
        with pytest.raises(ValueError):
            HierarchyConfig(inner_rounds=0)
        with pytest.raises(ValueError):
            HierarchyConfig(rack_startup_seconds=-1)
        with pytest.raises(ValueError):
            HierarchyConfig(rack_shuffle_speedup=0)


class TestAutotune:
    def test_picks_a_reasonable_candidate(self, setup):
        g, _ = setup

        def factory(k):
            return PageRankBlockSpec(g, multilevel_partition(g, k, seed=0))

        report = autotune_partitions(factory, [2, 8, 64], probe_iters=3)
        assert report.best_k in (2, 8, 64)
        # full runs confirm the tuner's choice is not the worst one
        times = {}
        for k in (2, 8, 64):
            res = run_iterative_block(factory(k), DriverConfig(mode="eager"),
                                      cluster=SimCluster())
            times[k] = res.sim_time
        worst = max(times, key=times.get)
        assert report.best_k != worst or len(set(times.values())) == 1

    def test_probe_cheaper_than_full_run(self, setup):
        g, part = setup

        def factory(k):
            return PageRankBlockSpec(g, multilevel_partition(g, k, seed=0))

        report = autotune_partitions(factory, [8], probe_iters=3)
        full = run_iterative_block(factory(8), DriverConfig(mode="eager"),
                                   cluster=SimCluster())
        assert report.probe_seconds < full.sim_time

    def test_ranking_sorted(self, setup):
        g, _ = setup

        def factory(k):
            return PageRankBlockSpec(g, multilevel_partition(g, k, seed=0))

        report = autotune_partitions(factory, [2, 8], probe_iters=2)
        ranked = report.ranking()
        assert ranked[0].predicted_seconds <= ranked[-1].predicted_seconds

    def test_validation(self, setup):
        g, _ = setup

        def factory(k):
            return PageRankBlockSpec(g, multilevel_partition(g, k, seed=0))

        with pytest.raises(ValueError):
            autotune_partitions(factory, [])
        with pytest.raises(ValueError):
            autotune_partitions(factory, [2], probe_iters=1)
        with pytest.raises(ValueError):
            autotune_partitions(factory, [2], target_residual=0)


class TestOnlineStateStore:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriverConfig(state_store="tape")
        with pytest.raises(ValueError):
            DriverConfig(checkpoint_every=-1)
        with pytest.raises(ValueError):
            DriverConfig(checkpoint_every=0)  # None disables, not 0
        with pytest.raises(ValueError):
            DriverConfig(checkpoint_every=2.5)
        with pytest.raises(ValueError):
            DriverConfig(charge_local_ops_at="gpu")
        DriverConfig(checkpoint_every=None)  # the disable spelling

    def test_online_store_cheaper_than_dfs(self, setup):
        g, part = setup
        dfs = run_iterative_block(
            PageRankBlockSpec(g, part),
            DriverConfig(mode="eager", state_store="dfs"),
            cluster=SimCluster())
        online = run_iterative_block(
            PageRankBlockSpec(g, part),
            DriverConfig(mode="eager", state_store="online",
                         checkpoint_every=None),
            cluster=SimCluster())
        assert online.global_iters == dfs.global_iters  # same algorithm
        assert online.sim_time < dfs.sim_time

    def test_checkpoints_cost_something(self, setup):
        g, part = setup
        no_ckpt = run_iterative_block(
            PageRankBlockSpec(g, part),
            DriverConfig(mode="eager", state_store="online",
                         checkpoint_every=None),
            cluster=SimCluster())
        ckpt = run_iterative_block(
            PageRankBlockSpec(g, part),
            DriverConfig(mode="eager", state_store="online",
                         checkpoint_every=2),
            cluster=SimCluster())
        assert ckpt.sim_time > no_ckpt.sim_time

    def test_results_identical_across_stores(self, setup):
        g, part = setup
        a = run_iterative_block(PageRankBlockSpec(g, part),
                                DriverConfig(mode="eager", state_store="dfs"))
        b = run_iterative_block(PageRankBlockSpec(g, part),
                                DriverConfig(mode="eager", state_store="online"))
        assert np.array_equal(np.asarray(a.state), np.asarray(b.state))
