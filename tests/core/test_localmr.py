"""Tests for the local MapReduce loop (Figure 1) and the emitters."""

from __future__ import annotations

import pytest

from repro.core import (
    AsyncMapReduceSpec,
    GlobalReduceContext,
    LocalMapContext,
    LocalReduceContext,
    run_local_mapreduce,
)


class TestEmitters:
    def test_local_map_context(self):
        ctx = LocalMapContext()
        ctx.emit_local_intermediate("k", 1)
        assert ctx.intermediate == [("k", 1)]
        assert ctx.ops == 1.0
        ctx.add_ops(5)
        assert ctx.ops == 6.0
        with pytest.raises(ValueError):
            ctx.add_ops(-1)

    def test_local_reduce_context(self):
        ctx = LocalReduceContext()
        ctx.emit_local("k", 2)
        assert ctx.local_output == [("k", 2)]
        assert ctx.ops == 1.0

    def test_global_reduce_context(self):
        ctx = GlobalReduceContext()
        ctx.emit("k", 3)
        assert ctx.output == [("k", 3)]
        assert ctx.ops == 1.0


class CountdownSpec(AsyncMapReduceSpec):
    """Toy spec: every value decrements toward zero, one unit per local
    iteration.  Locally converged when all values reach zero."""

    def lmap(self, key, value, ctx):
        ctx.emit_local_intermediate(key, max(0, value - 1))

    def lreduce(self, key, values, ctx):
        ctx.emit_local(key, values[0])

    def greduce(self, key, values, ctx):
        ctx.emit(key, values[0])

    def initial_state(self):
        return {}

    def num_partitions(self):
        return 1

    def partition_input(self, part_id, state):
        return []

    def state_from_output(self, output, prev_state):
        return dict(output)

    def local_converged(self, prev_table, curr_table):
        return all(v == 0 for v in curr_table.values())

    def global_converged(self, prev, curr):
        return True, 0.0


class TestRunLocalMapReduce:
    def test_iterates_to_local_convergence(self):
        res = run_local_mapreduce(CountdownSpec(), [("a", 3), ("b", 1)],
                                  max_local_iters=100)
        assert res.table == {"a": 0, "b": 0}
        assert res.local_iters == 3  # bounded by the largest countdown
        assert res.converged

    def test_iteration_cap(self):
        res = run_local_mapreduce(CountdownSpec(), [("a", 10)],
                                  max_local_iters=4)
        assert res.local_iters == 4
        assert not res.converged
        assert res.table == {"a": 6}

    def test_single_iteration_is_general_mode(self):
        res = run_local_mapreduce(CountdownSpec(), [("a", 5)],
                                  max_local_iters=1)
        assert res.table == {"a": 4}
        assert res.local_iters == 1

    def test_per_iter_ops_recorded(self):
        res = run_local_mapreduce(CountdownSpec(), [("a", 2), ("b", 2)],
                                  max_local_iters=100)
        assert len(res.per_iter_ops) == res.local_iters
        assert all(op > 0 for op in res.per_iter_ops)
        assert res.total_ops == pytest.approx(sum(res.per_iter_ops))

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate key"):
            run_local_mapreduce(CountdownSpec(), [("a", 1), ("a", 2)],
                                max_local_iters=1)

    def test_bad_max_iters(self):
        with pytest.raises(ValueError):
            run_local_mapreduce(CountdownSpec(), [], max_local_iters=0)

    def test_entries_not_reemitted_persist(self):
        class Partial(CountdownSpec):
            def lmap(self, key, value, ctx):
                if key != "static":
                    ctx.emit_local_intermediate(key, max(0, value - 1))

            def local_converged(self, prev_table, curr_table):
                return curr_table.get("a") == 0

        res = run_local_mapreduce(Partial(), [("a", 2), ("static", 99)],
                                  max_local_iters=10)
        assert res.table["static"] == 99  # untouched entry survived
        assert res.table["a"] == 0

    def test_before_local_iteration_hook_called(self):
        calls = []

        class Hooked(CountdownSpec):
            def before_local_iteration(self, table):
                calls.append(dict(table))

        run_local_mapreduce(Hooked(), [("a", 2)], max_local_iters=10)
        assert len(calls) == 2
        assert calls[0] == {"a": 2}
