"""No-barrier iteration (repro.core.async_backend).

Pins the three guarantees the async backend ships with:

* ``staleness=0`` **is** the barrier — state bitwise equal to
  :class:`BlockBackend`, round records dataclass-equal, accountant
  charges identical phase for phase.
* bounded staleness still reaches the synchronous fixed point, and the
  recorded version vectors never violate the bound.
* the Chazan–Miranker gap is real — a Jacobi system with
  ``rho(M) < 1 < rho(|M|)`` contracts under the barrier, oscillates
  divergently under pure chaos, and the :class:`DivergenceDetector`
  rescues the chaotic run by tightening the bound to 0.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.jacobi import (
    SparseSystem,
    jacobi_solve,
    make_diagonally_dominant_system,
)
from repro.apps.pagerank import PageRankBlockSpec, pagerank_reference
from repro.apps.sssp import SsspBlockSpec, sssp_reference
from repro.cluster import OnlineStateStore, SimCluster
from repro.core import (
    AsyncBackend,
    BlockBackend,
    DivergenceDetector,
    DriverConfig,
    IterationLoop,
    resolve_block_backend,
)
from repro.graph import DiGraph, Partition, multilevel_partition, \
    preferential_attachment


@pytest.fixture(scope="module")
def workload():
    g = preferential_attachment(300, num_conn=3, locality_prob=0.92,
                                community_mean=40, seed=7)
    part = multilevel_partition(g, 4, seed=0)
    return g, part


def oscillating_system():
    """``x <- Mx + b`` with ``M = 0.55 * K`` for the skew matrix ``K``:
    ``rho(M) = 0.95 < 1`` (synchronous Jacobi contracts) but
    ``rho(|M|) = 1.1 > 1`` (chaotic iteration can diverge) — the
    Chazan–Miranker gap, one partition per unknown."""
    c = 0.55
    m = c * np.array([[0.0, 1.0, -1.0],
                      [-1.0, 0.0, 1.0],
                      [1.0, -1.0, 0.0]])
    rows, cols = np.nonzero(m)
    system = SparseSystem(n=3, rows=rows, cols=cols, vals=-m[rows, cols],
                          diag=np.ones(3),
                          b=np.array([1.0, -0.5, 0.25]))
    g = DiGraph(3, rows, cols)
    part = Partition(graph=g, assign=np.arange(3), k=3)
    assert np.max(np.abs(np.linalg.eigvals(m))) < 1.0
    assert np.max(np.abs(np.linalg.eigvals(np.abs(m)))) > 1.0
    return system, part


class TestBarrierParity:
    """``AsyncBackend(staleness=0)`` reproduces ``BlockBackend`` exactly."""

    CFG = DriverConfig(mode="eager",
                       state_store=lambda: OnlineStateStore(num_tablets=2),
                       checkpoint_every=2)

    def _run_pair(self, spec_factory, config):
        block_cl, async_cl = SimCluster(), SimCluster()
        block = IterationLoop(
            BlockBackend(spec_factory(), cluster=block_cl), config).run()
        asyn = IterationLoop(
            AsyncBackend(spec_factory(), staleness=0, cluster=async_cl),
            config).run()
        return block, asyn, block_cl, async_cl

    def test_bitwise_state_and_records(self, workload):
        g, part = workload
        block, asyn, block_cl, async_cl = self._run_pair(
            lambda: PageRankBlockSpec(g, part), self.CFG)
        assert asyn.global_iters == block.global_iters
        assert np.array_equal(np.asarray(asyn.state), np.asarray(block.state))
        # At staleness=0 from the start no async round ever ran, so the
        # records carry no logical clocks and compare dataclass-equal.
        assert asyn.history == block.history

    def test_charge_for_charge(self, workload):
        g, part = workload
        block, asyn, block_cl, async_cl = self._run_pair(
            lambda: PageRankBlockSpec(g, part), self.CFG)
        assert asyn.sim_time == block.sim_time
        assert async_cl.trace.phases() == block_cl.trace.phases()
        assert any("checkpoint" in p for p in async_cl.trace.phases())

    def test_resolver_parity_spelling(self, workload):
        g, part = workload
        be = resolve_block_backend(PageRankBlockSpec(g, part),
                                   backend="async", staleness=0)
        assert isinstance(be, AsyncBackend)
        assert be.staleness == 0


class TestBoundedStaleness:
    def test_pagerank_reaches_sync_fixed_point(self, workload):
        g, part = workload
        ref = pagerank_reference(g)
        for bound in (1, 3, None):
            res = IterationLoop(
                AsyncBackend(PageRankBlockSpec(g, part, tol=1e-7),
                             staleness=bound,
                             phase=(0.0, 0.3, 0.6, 0.9)),
                DriverConfig(mode="eager")).run()
            assert res.converged, bound
            assert np.abs(np.asarray(res.state) - ref).max() < 1e-3, bound

    def test_sssp_exact_at_any_bound(self, workload):
        g, part = workload
        ref = sssp_reference(g, source=0)
        for bound in (0, 2, None):
            res = IterationLoop(
                AsyncBackend(SsspBlockSpec(g, part, source=0),
                             staleness=bound,
                             phase=(0.0, 0.3, 0.6, 0.9)),
                DriverConfig(mode="eager")).run()
            assert np.array_equal(np.asarray(res.state), ref), bound

    def test_version_vector_respects_bound(self, workload):
        g, part = workload
        bound = 2
        res = IterationLoop(
            AsyncBackend(PageRankBlockSpec(g, part), staleness=bound,
                         pace=(1.0, 1.4, 1.9, 2.6)),
            DriverConfig(mode="eager")).run()
        stale = [r.max_staleness for r in res.history]
        assert all(r.partition_clocks == (r.iteration + 1,) * part.k
                   for r in res.history)
        assert all(s <= bound for s in stale)
        # Heterogeneous pace makes reads actually stale, or the async
        # machinery was never exercised.
        assert max(stale) > 0

    def test_unbounded_reads_drift_past_any_finite_bound(self, workload):
        g, part = workload
        res = IterationLoop(
            AsyncBackend(PageRankBlockSpec(g, part, tol=1e-7),
                         staleness=None, pace=(1.0, 1.0, 1.0, 4.0)),
            DriverConfig(mode="eager")).run()
        assert max(r.max_staleness for r in res.history) > 2

    def test_bounded_staleness_waits_cost_time(self, workload):
        """A tight bound drags fast partitions behind the slow one, so
        the same heterogeneous schedule finishes earlier (in simulated
        seconds per round) the looser the bound."""
        g, part = workload
        pace = (1.0, 1.0, 1.0, 3.0)

        def run(bound):
            cl = SimCluster()
            cfg = DriverConfig(mode="eager",
                               state_store=OnlineStateStore(num_tablets=4))
            res = IterationLoop(
                AsyncBackend(PageRankBlockSpec(g, part), staleness=bound,
                             cluster=cl, pace=pace), cfg).run()
            return res.sim_time / res.global_iters

        assert run(None) <= run(1) * (1 + 1e-9)


class TestDivergenceRescue:
    def test_sync_converges_chaos_diverges(self):
        system, part = oscillating_system()
        sync = jacobi_solve(system, part, tol=1e-6, staleness=0,
                            require_dominant=False,
                            config=DriverConfig(mode="eager",
                                                max_global_iters=800))
        assert sync.converged

        chaos = jacobi_solve(system, part, tol=1e-6, staleness=None,
                             phase=(0.0, 0.34, 0.67),
                             require_dominant=False,
                             config=DriverConfig(mode="eager",
                                                 max_global_iters=200))
        assert not chaos.converged
        residuals = [r.residual for r in chaos.result.history]
        assert residuals[-1] > 10 * residuals[0]

    def test_detector_rescues_chaotic_run(self):
        system, part = oscillating_system()
        det = DivergenceDetector()
        res = jacobi_solve(system, part, tol=1e-6, staleness=None,
                           phase=(0.0, 0.34, 0.67), detector=det,
                           require_dominant=False,
                           config=DriverConfig(mode="eager",
                                               max_global_iters=800))
        assert res.converged
        assert res.residual_norm < 1e-4
        # The observable trace: unbounded -> fallback -> halved -> ... -> 0.
        assert det.events
        assert det.events[0][1] is None
        assert det.events[-1][2] == 0

    def test_detector_unit_behavior(self):
        det = DivergenceDetector(window=3, chaotic_fallback=4)
        # Non-contraction across the window tightens None -> fallback.
        assert det.observe(0, 1.0, None) is None
        assert det.observe(1, 0.9, None) is None
        assert det.observe(2, 1.1, None) == 4
        # The window resets: two more observations are needed.
        assert det.observe(3, 1.0, 4) == 4
        assert det.observe(4, 1.0, 4) == 4
        assert det.observe(5, 1.0, 4) == 2
        # Non-finite residuals tighten immediately; 0 is a fixed point.
        assert det.observe(6, math.inf, 2) == 1
        assert det.observe(7, math.nan, 1) == 0
        assert det.observe(8, math.inf, 0) == 0
        assert det.events == [(2, None, 4), (5, 4, 2), (6, 2, 1), (7, 1, 0)]

    def test_detector_validation(self):
        with pytest.raises(ValueError, match="window"):
            DivergenceDetector(window=1)
        with pytest.raises(ValueError, match="chaotic_fallback"):
            DivergenceDetector(chaotic_fallback=0)


class TestValidation:
    def test_staleness_and_shape_validation(self, workload):
        g, part = workload
        spec = PageRankBlockSpec(g, part)
        with pytest.raises(ValueError, match="staleness"):
            AsyncBackend(spec, staleness=-1)
        with pytest.raises(ValueError, match="pace"):
            AsyncBackend(spec, pace=(1.0,))
        with pytest.raises(ValueError, match="pace"):
            AsyncBackend(spec, pace=(1.0, 0.0, 1.0, 1.0))
        with pytest.raises(ValueError, match="phase"):
            AsyncBackend(spec, phase=(0.0, -1.0, 0.0, 0.0))

    def test_spec_must_opt_in(self, workload):
        g, part = workload

        class NoAsync(PageRankBlockSpec):
            supports_async = False

        with pytest.raises(ValueError, match="supports_async"):
            AsyncBackend(NoAsync(g, part), staleness=1)

    def test_needs_online_store_when_charged(self, workload):
        g, part = workload
        be = AsyncBackend(PageRankBlockSpec(g, part), staleness=1,
                          cluster=SimCluster())
        with pytest.raises(ValueError, match="OnlineStateStore"):
            IterationLoop(be, DriverConfig(mode="eager",
                                           state_store="dfs")).run()
        # staleness=0 is the barrier path: any store works.
        ok = IterationLoop(
            AsyncBackend(PageRankBlockSpec(g, part), staleness=0,
                         cluster=SimCluster()),
            DriverConfig(mode="eager", state_store="dfs")).run()
        assert ok.converged

    def test_resolver_rejects_misuse(self, workload):
        g, part = workload
        spec = PageRankBlockSpec(g, part)
        with pytest.raises(ValueError, match="backend"):
            resolve_block_backend(spec, backend="engine")
        with pytest.raises(ValueError, match="async backend only"):
            resolve_block_backend(spec, backend="block", pace=(1.0,) * 4)
        # Nonzero staleness implies async regardless of the name.
        assert isinstance(resolve_block_backend(spec, staleness=3),
                          AsyncBackend)
        assert isinstance(resolve_block_backend(spec, staleness=None),
                          AsyncBackend)
        assert isinstance(resolve_block_backend(spec), BlockBackend)


class TestAsyncCharges:
    def test_async_rounds_cost_less_than_barrier_rounds(self, workload):
        """The no-barrier round drops per-round job startup and the
        reduce wave; with a cluster attached the per-round simulated
        cost must come out below the barrier path's."""
        g, part = workload

        def run(staleness):
            cl = SimCluster()
            cfg = DriverConfig(mode="eager",
                               state_store=OnlineStateStore(num_tablets=4))
            res = IterationLoop(
                AsyncBackend(PageRankBlockSpec(g, part), staleness=staleness,
                             cluster=cl), cfg).run()
            return res, cl

        barrier, _ = run(0)
        asyn, cl = run(1)
        assert (asyn.sim_time / asyn.global_iters
                < barrier.sim_time / barrier.global_iters)
        # Startup is charged once, not per round.
        startup = [p for p in cl.trace.phases() if "startup" in p]
        assert len(startup) == 1

    def test_store_staleness_stats(self, workload):
        g, part = workload
        store = OnlineStateStore(num_tablets=4)
        cfg = DriverConfig(mode="eager", state_store=store)
        res = IterationLoop(
            AsyncBackend(PageRankBlockSpec(g, part), staleness=3,
                         cluster=SimCluster(), pace=(1.0, 1.5, 2.1, 2.9)),
            cfg).run()
        assert res.converged
        assert store.stale_reads > 0
        assert 1 <= store.max_staleness_served <= 3
        assert sum(store.tablet_stale_reads) >= store.stale_reads

    def test_jacobi_async_with_cluster_converges(self, workload):
        g, part = workload
        system = make_diagonally_dominant_system(part, seed=3)
        res = jacobi_solve(system, part, staleness=2,
                           cluster=SimCluster(),
                           config=DriverConfig(
                               mode="eager",
                               state_store=OnlineStateStore(num_tablets=4)))
        assert res.converged
        assert res.residual_norm < 1e-4
