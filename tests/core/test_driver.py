"""Tests for DriverConfig and the block/kv iterative drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import (
    BlockSpec,
    DriverConfig,
    EAGER,
    GENERAL,
    LocalSolveReport,
    run_iterative_block,
)


class TestDriverConfig:
    def test_presets(self):
        assert GENERAL.mode == "general"
        assert EAGER.mode == "eager"
        assert GENERAL.effective_local_iters == 1
        assert EAGER.effective_local_iters == EAGER.max_local_iters

    def test_validation(self):
        with pytest.raises(ValueError):
            DriverConfig(mode="fast")
        with pytest.raises(ValueError):
            DriverConfig(max_global_iters=0)
        with pytest.raises(ValueError):
            DriverConfig(max_local_iters=0)
        with pytest.raises(ValueError):
            DriverConfig(charge_local_ops_at="gpu")

    def test_frozen(self):
        with pytest.raises(Exception):
            EAGER.mode = "general"  # type: ignore[misc]


class GeometricSpec(BlockSpec):
    """Scalar toy: x <- x/2 per local iteration in a single partition;
    convergence when the step is below tol.  Deterministic and exactly
    analysable, for driver-behaviour tests."""

    def __init__(self, *, tol: float = 1e-3, parts: int = 2) -> None:
        self.tol = tol
        self.parts = parts
        self.hook_calls: list[int] = []

    def num_partitions(self):
        return self.parts

    def init_state(self):
        return np.full(self.parts, 1.0)

    def local_solve(self, part_id, state, *, max_local_iters):
        x = float(state[part_id])
        ops = []
        iters = 0
        while iters < max_local_iters:
            nxt = x / 2
            ops.append(4.0)
            iters += 1
            step = abs(nxt - x)
            x = nxt
            if step < self.tol:
                break
        return LocalSolveReport(partition=part_id, updates=x,
                                local_iters=iters, per_iter_ops=ops,
                                shuffle_bytes=8)

    def global_combine(self, state, reports):
        new = state.copy()
        for r in reports:
            new[r.partition] = r.updates
        return new, 1.0, 0

    def global_converged(self, prev, curr):
        res = float(np.abs(curr - prev).max())
        return res < self.tol, res

    def on_global_iteration(self, iteration, state):
        self.hook_calls.append(iteration)
        return None


class TestBlockDriver:
    def test_eager_fewer_global_iters_than_general(self):
        gen = run_iterative_block(GeometricSpec(), GENERAL)
        eag = run_iterative_block(GeometricSpec(), EAGER)
        assert eag.global_iters < gen.global_iters
        assert gen.converged and eag.converged

    def test_same_fixed_point(self):
        gen = run_iterative_block(GeometricSpec(), GENERAL)
        eag = run_iterative_block(GeometricSpec(), EAGER)
        assert np.allclose(gen.state, eag.state, atol=1e-2)

    def test_history_records(self):
        res = run_iterative_block(GeometricSpec(), EAGER)
        assert len(res.history) == res.global_iters
        assert res.history[0].iteration == 0
        assert all(len(r.local_iters) == 2 for r in res.history)
        assert res.total_local_iters > res.global_iters  # locals iterated

    def test_history_disabled(self):
        cfg = DriverConfig(mode="eager", record_history=False)
        res = run_iterative_block(GeometricSpec(), cfg)
        assert res.history == []

    def test_max_global_iters_cap(self):
        cfg = DriverConfig(mode="general", max_global_iters=3)
        res = run_iterative_block(GeometricSpec(tol=1e-12), cfg)
        assert res.global_iters == 3
        assert not res.converged

    def test_hook_called_every_iteration(self):
        spec = GeometricSpec()
        res = run_iterative_block(spec, GENERAL)
        assert spec.hook_calls == list(range(res.global_iters))

    def test_residuals_decreasing(self):
        res = run_iterative_block(GeometricSpec(), GENERAL)
        r = res.residuals
        assert all(a >= b for a, b in zip(r, r[1:]))


class TestBlockDriverAccounting:
    def test_sim_time_positive_and_monotone_in_iters(self):
        gen = run_iterative_block(GeometricSpec(), GENERAL, cluster=SimCluster())
        eag = run_iterative_block(GeometricSpec(), EAGER, cluster=SimCluster())
        assert gen.sim_time > eag.sim_time > 0
        # startup overhead dominates this toy: time ~ iterations
        ratio = gen.sim_time / eag.sim_time
        iter_ratio = gen.global_iters / eag.global_iters
        assert ratio == pytest.approx(iter_ratio, rel=0.35)

    def test_round_sim_seconds_sum_to_total(self):
        cl = SimCluster()
        res = run_iterative_block(GeometricSpec(), EAGER, cluster=cl)
        assert sum(r.sim_seconds for r in res.history) == pytest.approx(res.sim_time)

    def test_no_cluster_no_time(self):
        res = run_iterative_block(GeometricSpec(), EAGER)
        assert res.sim_time == 0.0
        assert all(r.sim_seconds == 0.0 for r in res.history)

    def test_eager_schedule_no_slower_than_lockstep(self):
        eager_on = run_iterative_block(
            GeometricSpec(), DriverConfig(mode="eager", eager_schedule=True),
            cluster=SimCluster())
        eager_off = run_iterative_block(
            GeometricSpec(), DriverConfig(mode="eager", eager_schedule=False),
            cluster=SimCluster())
        # identical iteration counts; lockstep pays more dispatches
        assert eager_on.global_iters == eager_off.global_iters
        assert eager_on.sim_time <= eager_off.sim_time

    def test_local_rate_cheaper_when_configured(self):
        at_map = run_iterative_block(
            GeometricSpec(), DriverConfig(mode="eager", charge_local_ops_at="map"),
            cluster=SimCluster())
        at_local = run_iterative_block(
            GeometricSpec(), DriverConfig(mode="eager", charge_local_ops_at="local"),
            cluster=SimCluster())
        assert at_local.sim_time <= at_map.sim_time

    def test_shuffle_bytes_recorded(self):
        res = run_iterative_block(GeometricSpec(), EAGER, cluster=SimCluster())
        assert all(r.shuffle_bytes == 16 for r in res.history)
