"""Checkpoint rollback and lineage recovery through the iteration loop.

A node death mid-round loses the un-checkpointed tablets its node
served, so :class:`IterationLoop` must restore the last periodic
checkpoint and replay forward — and the replayed run must land on the
*same* iterates as a failure-free run (the paper's §II determinism
guarantee, lifted from one job to the whole iterative driver).  These
tests pin the rollback arithmetic (``rounds_replayed``), the
cadence/recovery-time tradeoff, and the surfacing of every recovery
statistic through :class:`RoundRecord`.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.apps.pagerank import PageRankKVSpec
from repro.cluster import (
    EC2_DEFAULTS,
    OnlineStateStore,
    SimCluster,
)
from repro.core import (
    BlockBackend,
    BlockSpec,
    DriverConfig,
    EngineBackend,
    IterationLoop,
    LocalSolveReport,
)
from repro.engine import MapReduceRuntime, NodeFaultPlan
from repro.graph import multilevel_partition, preferential_attachment

#: Slow maps so a mid-wave kill always catches tasks in flight.
CM = replace(EC2_DEFAULTS, map_op_seconds=0.5)


class GeoSpec(BlockSpec):
    """Each partition halves its slot toward zero — one op per round,
    so the round structure (and therefore the rollback arithmetic) is
    exactly predictable."""

    partition_scoped_state = True

    def __init__(self, parts: int = 12) -> None:
        self.parts = parts

    def num_partitions(self):
        return self.parts

    def init_state(self):
        return np.full(self.parts, 1.0)

    def local_solve(self, part_id, state, *, max_local_iters):
        x = float(state[part_id])
        ops = []
        iters = 0
        while iters < max_local_iters:
            x = x / 2
            ops.append(4.0)
            iters += 1
        return LocalSolveReport(partition=part_id, updates=x,
                                local_iters=iters, per_iter_ops=ops,
                                shuffle_bytes=8)

    def global_combine(self, state, reports):
        new = state.copy()
        for r in reports:
            new[r.partition] = r.updates
        return new, 1.0, 64

    def global_converged(self, prev, curr):
        res = float(np.abs(curr - prev).max())
        return res < 1e-9, res


def _run(parts=12, *, node_faults=None, checkpoint_every=4,
         state_store=None, rounds=20):
    cfg = DriverConfig(mode="eager", max_global_iters=rounds,
                       max_local_iters=1,
                       checkpoint_every=checkpoint_every,
                       state_store=(state_store if state_store is not None
                                    else OnlineStateStore(num_tablets=4)))
    cl = SimCluster(cost_model=CM, node_faults=node_faults)
    return IterationLoop(BlockBackend(GeoSpec(parts), cluster=cl), cfg).run()


class TestRollbackOnSimPath:
    def test_recovery_stats_surface_in_round_record(self):
        plan = NodeFaultPlan.kill_node(1, round=11, at_seconds=1.0,
                                       num_nodes=8)
        res = _run(node_faults=plan, checkpoint_every=4)
        rec = res.history[11]
        assert rec.node_deaths == 1
        assert rec.rounds_replayed == 11 % 4 + 1 == 4
        assert rec.recovery_seconds > 0
        # only the death round pays recovery
        assert all(r.rounds_replayed == 0 for i, r in enumerate(res.history)
                   if i != 11)
        assert all(r.node_deaths == 0 for i, r in enumerate(res.history)
                   if i != 11)

    def test_rollback_is_bitwise_faithful(self):
        base = _run()
        for cadence in (2, 4, 6, 12):
            plan = NodeFaultPlan.kill_node(1, round=11, at_seconds=1.0,
                                           num_nodes=8)
            res = _run(node_faults=plan, checkpoint_every=cadence)
            assert np.array_equal(res.state, base.state)
            assert len(res.history) == len(base.history)

    def test_recovery_shrinks_with_tighter_cadence(self):
        """The ISSUE gate: kill at round 11, sweep the checkpoint
        cadence — recovery time must strictly improve as checkpoints
        tighten, because fewer rounds need replaying."""
        costs = []
        for cadence in (2, 4, 6, 12):
            plan = NodeFaultPlan.kill_node(1, round=11, at_seconds=1.0,
                                           num_nodes=8)
            res = _run(node_faults=plan, checkpoint_every=cadence)
            rec = res.history[11]
            assert rec.rounds_replayed == 11 % cadence + 1
            costs.append(rec.recovery_seconds)
        assert costs == sorted(costs)
        assert len(set(costs)) == len(costs)  # strictly increasing

    def test_rack_kill_costs_more_than_node_kill(self):
        node = NodeFaultPlan.kill_node(1, round=11, at_seconds=1.0,
                                       num_nodes=8)
        rack = NodeFaultPlan.kill_rack(0, round=11, at_seconds=1.0,
                                       num_nodes=8, nodes_per_rack=4)
        rn = _run(parts=64, node_faults=node)
        rr = _run(parts=64, node_faults=rack)
        assert rr.history[11].node_deaths == 4
        assert rn.history[11].node_deaths == 1
        assert (rr.history[11].recovery_seconds
                > rn.history[11].recovery_seconds)
        base = _run(parts=64)
        assert np.array_equal(rn.state, base.state)
        assert np.array_equal(rr.state, base.state)

    def test_durable_store_skips_rollback(self):
        """A replicated-DFS store loses nothing to a node death: the
        death is priced and recorded, but no rounds are replayed."""
        plan = NodeFaultPlan.kill_node(1, round=11, at_seconds=1.0,
                                       num_nodes=8)
        res = _run(node_faults=plan, state_store="dfs")
        rec = res.history[11]
        assert rec.node_deaths == 1
        assert rec.rounds_replayed == 0
        assert np.array_equal(res.state, _run(state_store="dfs").state)

    def test_tablet_merges_surface_per_round(self):
        store = OnlineStateStore(num_tablets=4, merge_threshold=10 ** 9)
        res = _run(state_store=store, rounds=6)
        assert sum(r.tablet_merges for r in res.history) \
            == len(store.merge_events) > 0


class TestRollbackOnEnginePath:
    """The real engine is clusterless here, so a node death costs no
    simulated tablets — deaths and lineage losses still surface through
    the RoundRecord, and the output stays bitwise identical."""

    @pytest.fixture(scope="class")
    def workload(self):
        g = preferential_attachment(200, num_conn=3, locality_prob=0.9,
                                    community_mean=40, seed=3)
        part = multilevel_partition(g, 4, seed=0)
        return g, part

    def test_engine_death_mid_loop_is_bitwise_identical(self, workload):
        g, part = workload
        cfg = DriverConfig(mode="eager", max_global_iters=30)
        with MapReduceRuntime("serial") as rt:
            base = IterationLoop(
                EngineBackend(PageRankKVSpec(g, part), runtime=rt),
                cfg).run()
        plan = NodeFaultPlan.kill_node(1, round=2, after_completions=1,
                                       num_nodes=4)
        with MapReduceRuntime("threads", workers=3, node_faults=plan) as rt:
            res = IterationLoop(
                EngineBackend(PageRankKVSpec(g, part), runtime=rt),
                cfg).run()
        assert res.converged and base.converged
        rec = res.history[2]
        assert rec.node_deaths == 1
        assert rec.rounds_replayed == 0  # nothing simulated was lost
        assert all(r.node_deaths == 0 for i, r in enumerate(res.history)
                   if i != 2)
        assert res.state == base.state
