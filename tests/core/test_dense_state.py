"""DenseKVState: the dict-shaped array container and its app parity.

The dense state is a drop-in for the kv path's per-node dict — same
Mapping surface, same values — so every assertion here is equality
against the dict oracle, not closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import pagerank, sssp
from repro.core import DenseKVState


class TestContainer:
    def test_mapping_surface_matches_dict(self):
        rows = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        state = DenseKVState(rows)
        oracle = {i: tuple(rows[i]) for i in range(3)}
        assert len(state) == len(oracle)
        assert list(state) == list(oracle)
        assert dict(state.items()) == oracle
        assert state[1] == oracle[1]
        assert 2 in state and 3 not in state

    def test_scatter_is_copy_plus_assign(self):
        state = DenseKVState(np.zeros((4, 1)))
        new = state.scatter(np.array([2, 0]), np.array([[5.0], [7.0]]))
        assert new is not state
        assert state.column(0).tolist() == [0.0, 0.0, 0.0, 0.0]
        assert new.column(0).tolist() == [7.0, 0.0, 5.0, 0.0]

    def test_scatter_pairs_matches_dict_update(self):
        state = DenseKVState(np.zeros((3, 2)))
        out = [(1, (2.0, 3.0)), (0, (4.0, 5.0))]
        new = state.scatter_pairs(out)
        oracle = dict(state.items())
        oracle.update({k: tuple(v) for k, v in out})
        assert dict(new.items()) == oracle

    def test_1d_rows_normalised(self):
        state = DenseKVState(np.arange(3, dtype=np.float64))
        assert state.width == 1
        assert state[2] == (2.0,)


class TestAppParity:
    """dense_state=True reproduces the dict path's values exactly."""

    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_pagerank_identical(self, small_graph, small_partition, mode):
        dense = pagerank(small_graph, small_partition, mode=mode, path="kv",
                         dense_state=True)
        sparse = pagerank(small_graph, small_partition, mode=mode, path="kv")
        assert dense.global_iters == sparse.global_iters
        assert dense.converged == sparse.converged
        np.testing.assert_array_equal(dense.ranks, sparse.ranks)

    @pytest.mark.parametrize("mode", ["general", "eager"])
    def test_sssp_identical(self, weighted_graph, mode):
        from repro.graph import multilevel_partition

        part = multilevel_partition(weighted_graph, 4, seed=0)
        dense = sssp(weighted_graph, part, source=0, mode=mode, path="kv",
                     dense_state=True)
        sparse = sssp(weighted_graph, part, source=0, mode=mode, path="kv")
        assert dense.global_iters == sparse.global_iters
        np.testing.assert_array_equal(dense.distances, sparse.distances)
