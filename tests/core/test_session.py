"""Tests for the Session/Job API (repro.core.session, repro.core.jobsched).

Covers: single-job equivalence with a private IterationLoop (session
overhead is zero), the interleaving-invariance guarantee (per-job round
records identical to sequential runs on private clusters — only the
simulated timestamps differ), the scheduling policies' contracts (FIFO
convoy, round-robin alternation, fair-share slot splitting), per-job
cost attribution on the shared timeline, and the deprecation shims over
``run_iterative_*``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import kmeans_spec, pagerank_spec, sssp_spec
from repro.apps.pagerank import PageRankBlockSpec, PageRankKVSpec
from repro.apps.sssp import SsspBlockSpec
from repro.cluster import SimCluster
from repro.core import (
    AdaptiveSyncPolicy,
    BlockBackend,
    DriverConfig,
    EngineBackend,
    HierarchicalBackend,
    IterationLoop,
    JobSpec,
    Session,
    make_policy,
    make_racks,
    run_iterative_block,
    run_iterative_hierarchical,
    run_iterative_kv,
)
from repro.data import census_sample
from repro.engine import MapReduceRuntime
from repro.graph import (
    attach_random_weights,
    multilevel_partition,
    preferential_attachment,
)


@pytest.fixture(scope="module")
def workload():
    g = preferential_attachment(300, num_conn=3, locality_prob=0.92,
                                community_mean=40, seed=7)
    part = multilevel_partition(g, 4, seed=0)
    return g, part


@pytest.fixture(scope="module")
def weighted_workload(workload):
    g, _ = workload
    wg = attach_random_weights(g, low=1.0, high=10.0, seed=11)
    return wg, multilevel_partition(wg, 4, seed=0)


def _history_key(result):
    """The scheduling-invariant part of a run's round records."""
    return [(r.iteration, r.residual, r.local_iters, r.shuffle_bytes)
            for r in result.history]


# ----------------------------------------------------------------------
# Single-job sessions
# ----------------------------------------------------------------------

class TestSingleJobSession:
    def test_matches_private_loop_exactly(self, workload):
        g, part = workload
        solo = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            DriverConfig(mode="eager")).run()

        session = Session(cluster=SimCluster())
        handle = session.submit(BlockBackend(PageRankBlockSpec(g, part)),
                                DriverConfig(mode="eager"), name="pr")
        session.run()

        assert handle.done and handle.result.converged == solo.converged
        assert handle.result.global_iters == solo.global_iters
        assert np.allclose(np.asarray(handle.result.state),
                           np.asarray(solo.state))
        assert _history_key(handle.result) == _history_key(solo)
        assert handle.result.sim_time == pytest.approx(solo.sim_time)

    def test_submit_registers_without_running(self, workload):
        g, part = workload
        session = Session(cluster=SimCluster())
        handle = session.submit(pagerank_spec(g, part))
        assert handle.status == "queued"
        assert handle.rounds == 0 and handle.result is None
        assert session.scheduler.clock == 0.0  # nothing charged yet
        session.run()
        assert handle.done

    def test_spec_defaults_and_overrides(self, workload):
        g, part = workload
        spec = pagerank_spec(g, part, mode="general")
        session = Session(cluster=SimCluster())
        assert session.submit(spec).loop.config.mode == "general"
        override = DriverConfig(mode="eager", max_global_iters=3)
        h = session.submit(spec, override, name="capped")
        assert h.loop.config is override and h.name == "capped"

    def test_engine_job_shares_session_runtime(self, workload):
        g, part = workload
        session = Session()
        backend = EngineBackend(PageRankKVSpec(g, part),
                                runtime=session.runtime, num_reducers=2)
        handle = session.submit(backend, DriverConfig(mode="eager"))
        session.run()
        assert handle.result.converged
        # the session-owned runtime survives the job (pool reuse) ...
        assert session.runtime is backend.runtime
        session.close()

    def test_submit_validation(self, workload):
        g, part = workload
        session = Session(cluster=SimCluster())
        with pytest.raises(ValueError, match="explicit config"):
            session.submit(BlockBackend(PageRankBlockSpec(g, part)))
        with pytest.raises(TypeError):
            session.submit(object())
        with pytest.raises(ValueError, match="different cluster"):
            session.submit(
                BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
                DriverConfig())
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            Session(policy="lottery")

    def test_loop_stepwise_protocol_guards(self, workload):
        g, part = workload
        loop = IterationLoop(BlockBackend(PageRankBlockSpec(g, part)),
                             DriverConfig(mode="eager"))
        with pytest.raises(RuntimeError, match="before start"):
            loop.step()
        loop.run()
        assert loop.finished
        with pytest.raises(RuntimeError, match="after the run finished"):
            loop.step()


# ----------------------------------------------------------------------
# Interleaving invariance (two jobs, one cluster == private clusters)
# ----------------------------------------------------------------------

class TestInterleavingInvariance:
    @pytest.mark.parametrize("policy", ["fifo", "rr", "fair"])
    def test_round_records_match_sequential_runs(self, policy, workload,
                                                 weighted_workload):
        g, part = workload
        wg, wpart = weighted_workload

        solo_pr = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            DriverConfig(mode="eager")).run()
        solo_sp = IterationLoop(
            BlockBackend(SsspBlockSpec(wg, wpart, source=0),
                         cluster=SimCluster()),
            DriverConfig(mode="eager")).run()

        session = Session(cluster=SimCluster(), policy=policy)
        h_pr = session.submit(pagerank_spec(g, part))
        h_sp = session.submit(sssp_spec(wg, wpart, source=0))
        session.run()

        # identical iterates and per-round records (residuals,
        # local_iters, shuffle bytes) — only simulated timestamps differ
        assert np.allclose(np.asarray(h_pr.result.state),
                           np.asarray(solo_pr.state))
        assert np.allclose(np.asarray(h_sp.result.state),
                           np.asarray(solo_sp.state))
        assert _history_key(h_pr.result) == _history_key(solo_pr)
        assert _history_key(h_sp.result) == _history_key(solo_sp)

    def test_fair_share_rounds_cost_more_but_same_math(self, workload):
        """Contention shows up in sim_seconds, never in the iterates."""
        g, part = workload
        solo = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            DriverConfig(mode="eager")).run()
        session = Session(cluster=SimCluster(), policy="fair")
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(pagerank_spec(g, part))
        session.run()
        assert _history_key(h1.result) == _history_key(solo)
        # while both jobs pend, each holds half the slots, so each
        # job's rounds take longer than the solo run's
        assert h1.result.sim_time > solo.sim_time


# ----------------------------------------------------------------------
# Scheduling policies
# ----------------------------------------------------------------------

class TestSchedulingPolicies:
    def test_fifo_runs_one_job_at_a_time(self, workload, weighted_workload):
        g, part = workload
        wg, wpart = weighted_workload
        session = Session(cluster=SimCluster(), policy="fifo")
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(sssp_spec(wg, wpart))
        session.run()
        # the convoy: job 2 waits exactly until job 1 finishes
        assert h1.queue_wait == 0.0
        assert h2.queue_wait == pytest.approx(h1.finished_at)
        assert h2.started_at >= h1.finished_at
        assert all(s == 1.0 for s in h1.slot_shares + h2.slot_shares)

    def test_fifo_priority_overrides_submission_order(self, workload,
                                                      weighted_workload):
        g, part = workload
        wg, wpart = weighted_workload
        session = Session(cluster=SimCluster(), policy="fifo")
        low = session.submit(pagerank_spec(g, part), priority=0)
        high = session.submit(sssp_spec(wg, wpart), priority=5)
        session.run()
        assert high.queue_wait == 0.0
        assert low.started_at >= high.finished_at

    def test_round_robin_alternates_rounds(self, workload):
        g, part = workload
        session = Session(cluster=SimCluster(), policy="rr")
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(pagerank_spec(g, part))
        # two steps: one round each, strictly alternating
        session.step()
        assert (h1.rounds, h2.rounds) == (1, 0)
        session.step()
        assert (h1.rounds, h2.rounds) == (1, 1)
        session.run()
        assert h1.done and h2.done
        # time-slicing: full cluster during your turn
        assert all(s == 1.0 for s in h1.slot_shares)

    def test_fair_share_splits_slots_and_grows_shares(self, workload):
        g, part = workload
        session = Session(cluster=SimCluster(), policy="fair")
        long_job = session.submit(pagerank_spec(g, part))
        short = session.submit(
            pagerank_spec(g, part, config=DriverConfig(mode="eager",
                                                       max_global_iters=2)))
        session.run()
        # while both pend each holds half the slots; once the short job
        # finishes the long one gets the whole cluster back
        assert short.slot_shares == [0.5, 0.5]
        assert long_job.slot_shares[0] == 0.5
        assert long_job.slot_shares[-1] == 1.0
        # concurrent batches: both jobs start immediately
        assert long_job.queue_wait == 0.0 and short.queue_wait == 0.0

    def test_policy_instances_accepted(self, workload):
        from repro.core import FairSharePolicy

        g, part = workload
        session = Session(cluster=SimCluster(), policy=FairSharePolicy())
        session.submit(pagerank_spec(g, part))
        assert session.run()[0].done

    def test_make_policy_aliases(self):
        assert make_policy("rr").name == "round-robin"
        assert make_policy("fair-share").name == "fair"
        assert make_policy("fifo").name == "fifo"


# ----------------------------------------------------------------------
# Per-job attribution and contention metrics
# ----------------------------------------------------------------------

class TestContentionMetrics:
    def test_per_job_charging_splits_the_shared_clock(self, workload,
                                                      weighted_workload):
        g, part = workload
        wg, wpart = weighted_workload
        cluster = SimCluster()
        session = Session(cluster=cluster, policy="fifo")
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(sssp_spec(wg, wpart))
        session.run()
        # under FIFO the timeline is a pure concatenation, so the
        # audited per-job charges partition the final clock exactly
        assert h1.charged_seconds + h2.charged_seconds == pytest.approx(
            cluster.clock)
        assert h1.charged_seconds == pytest.approx(h1.busy_seconds)
        assert h1.result.sim_time == pytest.approx(h1.busy_seconds)

    def test_job_labels_prefix_the_shared_trace(self, workload):
        g, part = workload
        cluster = SimCluster()
        session = Session(cluster=cluster, policy="fair")
        session.submit(pagerank_spec(g, part, name="alpha"))
        session.submit(pagerank_spec(g, part, name="beta"))
        session.run()
        phases = {e.phase.split(":", 1)[0] for e in cluster.trace.events}
        assert {"alpha", "beta"} <= phases

    def test_engine_jobs_charge_their_session_accountant(self, workload):
        """Engine-path charges flow through the job's own accountant:
        attribution, job-prefixed trace labels, and the scheduler's
        slot share all apply to EngineBackend jobs too."""
        g, part = workload
        cluster = SimCluster()
        cfg = DriverConfig(mode="eager", max_global_iters=2)
        with Session(cluster=cluster, policy="rr") as session:
            h1 = session.submit(
                EngineBackend(PageRankKVSpec(g, part),
                              runtime=session.runtime, num_reducers=2),
                cfg, name="kv-a")
            h2 = session.submit(
                EngineBackend(PageRankKVSpec(g, part),
                              runtime=session.runtime, num_reducers=2),
                cfg, name="kv-b")
            session.run()
        for h in (h1, h2):
            assert h.charged_seconds == pytest.approx(h.busy_seconds)
            assert h.charged_seconds > 0
        phases = {e.phase.split(":", 1)[0] for e in cluster.trace.events}
        assert {"kv-a", "kv-b"} <= phases

    def test_shared_sync_policy_copied_per_job(self, workload):
        """One AdaptiveSyncPolicy instance submitted twice must not
        cross-feed budgets between interleaved jobs."""
        g, part = workload
        shared = AdaptiveSyncPolicy()
        spec = pagerank_spec(g, part, sync_policy=shared)
        session = Session(cluster=SimCluster(), policy="rr")
        h1 = session.submit(spec)
        h2 = session.submit(spec)
        assert h1.loop.sync_policy is not h2.loop.sync_policy
        session.run()
        solo_policy = AdaptiveSyncPolicy()
        solo = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            DriverConfig(mode="eager"), sync_policy=solo_policy).run()
        for h in (h1, h2):
            assert h.rounds == solo.global_iters
            assert h.loop.sync_policy.budgets == solo_policy.budgets
            assert _history_key(h.result) == _history_key(solo)

    def test_phase_breakdown_merges_job_prefixed_labels(self, workload):
        from repro.cluster.report import phase_breakdown

        g, part = workload
        cluster = SimCluster()
        session = Session(cluster=cluster, policy="fair")
        session.submit(pagerank_spec(g, part, name="alpha"))
        session.submit(pagerank_spec(g, part, name="beta"))
        session.run()
        names = [row.phase for row in phase_breakdown(cluster)]
        # per-iteration and per-job prefixes collapse to phase names
        assert "map" in names
        assert not any("iter" in n or "alpha" in n or "beta" in n
                       for n in names)

    def test_makespan_and_mean_latency(self, workload):
        g, part = workload
        session = Session(cluster=SimCluster(), policy="fair")
        h1 = session.submit(pagerank_spec(g, part))
        h2 = session.submit(pagerank_spec(g, part))
        session.run()
        assert session.makespan() == pytest.approx(
            max(h.finished_at for h in (h1, h2)))
        assert session.mean_latency() == pytest.approx(
            (h1.makespan + h2.makespan) / 2)
        for h in (h1, h2):
            assert h.makespan >= h.busy_seconds > 0
            assert len(h.round_shares) == h.rounds == h.result.global_iters

    def test_fair_beats_fifo_on_mean_latency_for_convoys(self, workload):
        """The headline economics: short jobs stop paying for convoys."""
        g, part = workload

        def mix(policy):
            session = Session(cluster=SimCluster(), policy=policy)
            session.submit(pagerank_spec(g, part, mode="general"))  # long
            session.submit(pagerank_spec(
                g, part, config=DriverConfig(mode="eager")))         # short
            session.run()
            return session.mean_latency()

        assert mix("fair") < mix("fifo")


# ----------------------------------------------------------------------
# Deprecated single-job shims
# ----------------------------------------------------------------------

class TestDeprecatedShims:
    def test_run_iterative_block_warns_and_matches_session(self, workload):
        g, part = workload
        with pytest.warns(DeprecationWarning, match="Session.submit"):
            old = run_iterative_block(PageRankBlockSpec(g, part),
                                      DriverConfig(mode="eager"),
                                      cluster=SimCluster())
        session = Session(cluster=SimCluster())
        handle = session.submit(BlockBackend(PageRankBlockSpec(g, part)),
                                DriverConfig(mode="eager"))
        session.run()
        new = handle.result
        assert np.allclose(np.asarray(old.state), np.asarray(new.state))
        assert _history_key(old) == _history_key(new)
        assert old.sim_time == pytest.approx(new.sim_time)

    def test_run_iterative_kv_warns_and_matches_session(self, workload):
        g, part = workload
        cfg = DriverConfig(mode="eager", max_global_iters=3)
        with pytest.warns(DeprecationWarning, match="Session.submit"):
            old = run_iterative_kv(PageRankKVSpec(g, part), cfg,
                                   num_reducers=2)
        session = Session()
        handle = session.submit(
            EngineBackend(PageRankKVSpec(g, part), runtime=session.runtime,
                          num_reducers=2), cfg)
        session.run()
        session.close()
        new = handle.result
        assert old.global_iters == new.global_iters
        assert _history_key(old) == _history_key(new)

    def test_run_iterative_hierarchical_warns_and_matches_session(
            self, workload):
        g, part = workload
        cfg = DriverConfig(mode="eager")
        racks = make_racks(part.k, 2)
        with pytest.warns(DeprecationWarning, match="Session.submit"):
            old = run_iterative_hierarchical(
                PageRankBlockSpec(g, part), cfg, racks,
                cluster=SimCluster())
        session = Session(cluster=SimCluster())
        handle = session.submit(
            HierarchicalBackend(PageRankBlockSpec(g, part), racks), cfg)
        session.run()
        new = handle.result
        assert np.allclose(np.asarray(old.state), np.asarray(new.state))
        assert _history_key(old) == _history_key(new)
        assert old.sim_time == pytest.approx(new.sim_time)

    def test_shim_warning_blames_the_caller_line(self, workload):
        """stacklevel: the warning points at the *calling* line in this
        file, never at driver.py (where the shim and its helper live)."""
        import inspect

        g, part = workload
        cfg = DriverConfig(mode="eager", max_global_iters=2)
        spec = PageRankBlockSpec(g, part)
        with pytest.warns(DeprecationWarning,
                          match="run_iterative_block is deprecated") as rec:
            expected = inspect.currentframe().f_lineno + 1
            run_iterative_block(spec, cfg)
        w = [m for m in rec.list
             if issubclass(m.category, DeprecationWarning)][0]
        assert w.filename == __file__
        assert w.lineno == expected
        assert "driver.py" not in w.filename

    def test_hierarchical_shim_warning_blames_the_caller_line(self, workload):
        """The hierarchy.py shim imports driver's helper; the warning
        must still land on the caller, not on hierarchy.py."""
        import inspect

        g, part = workload
        cfg = DriverConfig(mode="eager", max_global_iters=2)
        spec = PageRankBlockSpec(g, part)
        racks = make_racks(part.k, 2)
        with pytest.warns(
                DeprecationWarning,
                match="run_iterative_hierarchical is deprecated") as rec:
            expected = inspect.currentframe().f_lineno + 1
            run_iterative_hierarchical(spec, cfg, racks)
        w = [m for m in rec.list
             if issubclass(m.category, DeprecationWarning)][0]
        assert w.filename == __file__
        assert w.lineno == expected

    def test_kv_shim_warning_blames_the_caller_line(self, workload):
        import inspect

        g, part = workload
        cfg = DriverConfig(mode="eager", max_global_iters=1)
        spec = PageRankKVSpec(g, part)
        with pytest.warns(DeprecationWarning,
                          match="run_iterative_kv is deprecated") as rec:
            expected = inspect.currentframe().f_lineno + 1
            run_iterative_kv(spec, cfg, num_reducers=2)
        w = [m for m in rec.list
             if issubclass(m.category, DeprecationWarning)][0]
        assert w.filename == __file__
        assert w.lineno == expected

    def test_shims_accept_sync_policy(self, workload):
        g, part = workload
        policy = AdaptiveSyncPolicy()
        with pytest.warns(DeprecationWarning):
            res = run_iterative_block(PageRankBlockSpec(g, part),
                                      DriverConfig(mode="eager"),
                                      sync_policy=policy)
        assert res.converged and len(policy.budgets) == res.global_iters


# ----------------------------------------------------------------------
# Heterogeneous three-job session (the acceptance scenario)
# ----------------------------------------------------------------------

class TestHeterogeneousSession:
    def test_three_app_kinds_one_cluster(self, workload, weighted_workload):
        g, part = workload
        wg, wpart = weighted_workload
        pts = census_sample(600, seed=0)
        cluster = SimCluster()
        with Session(cluster=cluster, policy="fair") as session:
            handles = [
                session.submit(pagerank_spec(g, part)),
                session.submit(kmeans_spec(pts, 4, num_partitions=4, seed=0)),
                session.submit(sssp_spec(wg, wpart)),
            ]
            session.run()
        assert all(h.done and h.result.converged for h in handles)
        assert sum(h.charged_seconds for h in handles) > 0
        # all three charged the ONE shared timeline
        assert cluster.clock >= max(h.finished_at for h in handles)
