"""Tests for the spec API plumbing and gmap/greduce engine wrappers."""

from __future__ import annotations

import pytest

from repro.core import GmapFunction, GreduceFunction, LocalSolveReport
from repro.core.gmap import LOCAL_ITER_COUNTER, LOCAL_OPS_COUNTER
from repro.engine import TaskContext

from tests.core.test_localmr import CountdownSpec


class TestLocalSolveReport:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalSolveReport(partition=0, updates=None, local_iters=-1)
        with pytest.raises(ValueError, match="per_iter_ops"):
            LocalSolveReport(partition=0, updates=None, local_iters=2,
                             per_iter_ops=[1.0])
        with pytest.raises(ValueError):
            LocalSolveReport(partition=0, updates=None, local_iters=0,
                             shuffle_bytes=-1)

    def test_total_ops(self):
        r = LocalSolveReport(partition=0, updates=None, local_iters=2,
                             per_iter_ops=[3.0, 4.0])
        assert r.total_ops == 7.0


class TestGmapFunction:
    def test_runs_local_loop_and_emits(self):
        gmap = GmapFunction(CountdownSpec(), max_local_iters=100)
        ctx = TaskContext("m0", 0)
        gmap(0, [("a", 2), ("b", 1)], ctx)
        assert dict(ctx.output) == {"a": 0, "b": 0}
        assert ctx.counters.get(LOCAL_ITER_COUNTER) == 2
        assert ctx.counters.get(LOCAL_OPS_COUNTER) > 0
        assert ctx.ops > 0  # local work charged to the task

    def test_general_mode_single_step(self):
        gmap = GmapFunction(CountdownSpec(), max_local_iters=1)
        ctx = TaskContext("m0", 0)
        gmap(0, [("a", 3)], ctx)
        assert dict(ctx.output) == {"a": 2}

    def test_invalid_max_iters(self):
        with pytest.raises(ValueError):
            GmapFunction(CountdownSpec(), max_local_iters=0)

    def test_custom_gmap_emit(self):
        class Custom(CountdownSpec):
            def gmap_emit(self, table, part_id):
                return [(("tagged", k), v) for k, v in table.items()]

        gmap = GmapFunction(Custom(), max_local_iters=10)
        ctx = TaskContext("m0", 0)
        gmap(0, [("a", 1)], ctx)
        assert ctx.output == [(("tagged", "a"), 0)]


class TestGreduceFunction:
    def test_delegates_to_spec(self):
        greduce = GreduceFunction(CountdownSpec())
        ctx = TaskContext("r0", 0)
        greduce("a", [5], ctx)
        assert ctx.output == [("a", 5)]
        assert ctx.ops >= 1
