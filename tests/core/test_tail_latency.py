"""Speculation + auto-split through the driver core.

Ties the tail-latency machinery end to end: ``DriverConfig.speculate``
reaches the accountant's phase charges, per-round ``RoundRecord`` deltas
expose backups and tablet splits, and the converged state is untouched
either way (speculation and splitting change *time*, never *values*).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import PageRankBlockSpec
from repro.cluster import (
    OnlineStateStore,
    SimCluster,
    SpeculationConfig,
    ec2_nodes,
)
from repro.core import BlockBackend, DriverConfig, Session
from repro.engine import StragglerPlan
from repro.graph import multilevel_partition, preferential_attachment


@pytest.fixture(scope="module")
def workload():
    g = preferential_attachment(300, num_conn=3, locality_prob=0.92,
                                community_mean=40, seed=7)
    part = multilevel_partition(g, 4, seed=0)
    return g, part


def _straggler_cluster():
    return SimCluster(nodes=ec2_nodes(4),
                      stragglers=StragglerPlan(node_slowdown={0: 4.0}))


def _run(cluster, cfg, workload, **store_kw):
    g, part = workload
    session = Session(cluster=cluster, **store_kw)
    handle = session.submit(BlockBackend(PageRankBlockSpec(g, part)), cfg)
    session.run()
    return handle.result


class TestDriverConfigSpeculate:
    def test_defaults_off(self):
        assert DriverConfig().speculate is False

    def test_accepts_bool_and_config(self):
        assert DriverConfig(speculate=True).speculate is True
        cfg = SpeculationConfig(slowdown_threshold=2.0)
        assert DriverConfig(speculate=cfg).speculate is cfg

    def test_rejects_other_types(self):
        with pytest.raises(ValueError, match="speculate"):
            DriverConfig(speculate="yes")


class TestRoundRecordStats:
    def test_speculation_stats_surface_per_round(self, workload):
        res = _run(_straggler_cluster(), DriverConfig(speculate=True),
                   workload)
        assert sum(r.backups for r in res.history) >= 1
        assert sum(r.backups_won for r in res.history) >= 1
        assert sum(r.wasted_seconds for r in res.history) > 0.0

    def test_no_speculation_records_zeros(self, workload):
        res = _run(_straggler_cluster(), DriverConfig(), workload)
        assert all(r.backups == 0 and r.backups_won == 0
                   and r.wasted_seconds == 0.0 for r in res.history)
        assert all(r.tablet_splits == 0 for r in res.history)

    def test_values_identical_and_time_reduced(self, workload):
        """Speculation is a pure scheduling change on the simulated
        path: same per-round values and round count, smaller charge."""
        plain = _run(_straggler_cluster(), DriverConfig(), workload)
        spec = _run(_straggler_cluster(), DriverConfig(speculate=True),
                    workload)
        assert np.array_equal(plain.state, spec.state)
        assert len(plain.history) == len(spec.history)
        assert spec.sim_time < plain.sim_time

    def test_tablet_splits_surface_per_round(self, workload):
        store = OnlineStateStore(2, split_threshold=2000)
        res = _run(SimCluster(), DriverConfig(), workload,
                   state_store=store)
        splits = sum(r.tablet_splits for r in res.history)
        assert splits == len(store.split_events)
        if splits:
            assert res.history[-1].tablet_map_version == \
                store.tablet_map_version

    def test_split_and_frozen_stores_converge_identically(self, workload):
        frozen = OnlineStateStore(2)
        splitting = OnlineStateStore(2, split_threshold=2000)
        a = _run(SimCluster(), DriverConfig(), workload, state_store=frozen)
        b = _run(SimCluster(), DriverConfig(), workload,
                 state_store=splitting)
        assert np.array_equal(a.state, b.state)
