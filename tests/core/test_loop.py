"""Tests for the unified iteration core (repro.core.loop).

Covers the backend-equivalence guarantees the unification was built to
provide: kv-vs-block round-record shape compatibility, the pinned
charge-for-charge identity of hierarchy-with-``inner_rounds=1`` against
the plain eager block driver (including the combine's ``extra_bytes``
shuffle and the online store's periodic checkpoint, which the
pre-unification hierarchical driver dropped), and the adaptive
synchronization policy the single-loop seam enables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import PageRankBlockSpec, PageRankKVSpec, pagerank_reference
from repro.cluster import RoundAccountant, SimCluster
from repro.core import (
    AdaptiveSyncPolicy,
    BlockBackend,
    BlockSpec,
    DriverConfig,
    EngineBackend,
    HierarchicalBackend,
    HierarchyConfig,
    IterationLoop,
    LocalSolveReport,
    make_racks,
)
from repro.engine import MapReduceRuntime
from repro.graph import multilevel_partition, preferential_attachment


@pytest.fixture(scope="module")
def workload():
    g = preferential_attachment(300, num_conn=3, locality_prob=0.92,
                                community_mean=40, seed=7)
    part = multilevel_partition(g, 4, seed=0)
    return g, part


class ScopedGeometricSpec(BlockSpec):
    """Partition-scoped toy: each partition halves its slot toward 0.

    ``global_combine`` reports nonzero ``extra_bytes`` so tests can pin
    the combine-shuffle charge, and the state is partition-scoped so the
    hierarchical backend accepts it.
    """

    partition_scoped_state = True

    def __init__(self, *, parts: int = 4, tol: float = 1e-4,
                 extra_bytes: int = 64) -> None:
        self.parts = parts
        self.tol = tol
        self.extra_bytes = extra_bytes

    def num_partitions(self):
        return self.parts

    def init_state(self):
        return np.full(self.parts, 1.0)

    def local_solve(self, part_id, state, *, max_local_iters):
        x = float(state[part_id])
        ops = []
        iters = 0
        while iters < max_local_iters:
            nxt = x / 2
            ops.append(4.0)
            iters += 1
            step = abs(nxt - x)
            x = nxt
            if step < self.tol:
                break
        return LocalSolveReport(partition=part_id, updates=x,
                                local_iters=iters, per_iter_ops=ops,
                                shuffle_bytes=8)

    def global_combine(self, state, reports):
        new = state.copy()
        for r in reports:
            new[r.partition] = r.updates
        return new, 1.0, self.extra_bytes

    def global_converged(self, prev, curr):
        res = float(np.abs(curr - prev).max())
        return res < self.tol, res


class TestKvBlockEquivalence:
    """Satellite: the same PageRank workload through EngineBackend and
    BlockBackend produces shape-compatible round records."""

    def test_round_record_shapes_match(self, workload):
        g, part = workload
        cfg = DriverConfig(mode="eager")
        with MapReduceRuntime("serial", cluster=SimCluster()) as rt:
            kv = IterationLoop(
                EngineBackend(PageRankKVSpec(g, part), runtime=rt), cfg).run()
        block = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part), cluster=SimCluster()),
            cfg).run()

        assert kv.converged and block.converged
        for res in (kv, block):
            # one local-iteration count per partition, every round
            assert all(len(r.local_iters) == part.k for r in res.history)
            assert all(min(r.local_iters) >= 1 for r in res.history)
            # every round ships data and costs simulated time
            assert all(r.shuffle_bytes > 0 for r in res.history)
            assert all(r.sim_seconds > 0 for r in res.history)
            # the sim clock is monotone and accounted round by round
            assert res.sim_time == pytest.approx(
                sum(r.sim_seconds for r in res.history))

    def test_same_fixed_point(self, workload):
        g, part = workload
        cfg = DriverConfig(mode="eager")
        kv = IterationLoop(EngineBackend(PageRankKVSpec(g, part)), cfg).run()
        block = IterationLoop(
            BlockBackend(PageRankBlockSpec(g, part)), cfg).run()
        ref = pagerank_reference(g)
        kv_ranks = np.array([kv.state[u][0] for u in range(g.num_nodes)])
        assert np.abs(kv_ranks - ref).max() < 1e-3
        assert np.abs(np.asarray(block.state) - ref).max() < 1e-3


class TestHierarchyBlockParity:
    """Satellite: hierarchy with ``inner_rounds=1`` charges identically
    to the plain eager block driver — including the ``extra_bytes``
    shuffle and the online store's periodic checkpoint that the
    pre-unification hierarchical driver silently dropped."""

    CFG = DriverConfig(mode="eager", state_store="online", checkpoint_every=2)

    def _run_pair(self, spec_factory, racks, config):
        flat_cl, hier_cl = SimCluster(), SimCluster()
        flat = IterationLoop(
            BlockBackend(spec_factory(), cluster=flat_cl), config).run()
        hier = IterationLoop(
            HierarchicalBackend(spec_factory(), racks,
                                hierarchy=HierarchyConfig(inner_rounds=1),
                                cluster=hier_cl), config).run()
        return flat, hier, flat_cl, hier_cl

    def test_pinned_identical_charges_toy(self):
        flat, hier, flat_cl, hier_cl = self._run_pair(
            lambda: ScopedGeometricSpec(), make_racks(4, 2), self.CFG)
        assert hier.global_iters == flat.global_iters
        assert np.array_equal(np.asarray(hier.state), np.asarray(flat.state))
        assert hier.sim_time == flat.sim_time
        # phase-by-phase: same labels, same totals (extra-bytes shuffle
        # and checkpoint events included)
        assert hier_cl.trace.phases() == flat_cl.trace.phases()
        assert any("shuffle+" in p for p in hier_cl.trace.phases())
        assert any("checkpoint" in p for p in hier_cl.trace.phases())
        # round-for-round history identity
        assert [(r.sim_seconds, r.shuffle_bytes, r.local_iters)
                for r in hier.history] == \
               [(r.sim_seconds, r.shuffle_bytes, r.local_iters)
                for r in flat.history]

    def test_pinned_identical_charges_pagerank(self, workload):
        g, part = workload
        flat, hier, flat_cl, hier_cl = self._run_pair(
            lambda: PageRankBlockSpec(g, part), make_racks(part.k, 2),
            DriverConfig(mode="eager"))
        assert hier.global_iters == flat.global_iters
        assert hier.sim_time == flat.sim_time
        assert hier_cl.trace.phases() == flat_cl.trace.phases()

    def test_inner_rounds_add_rack_charges_only(self):
        cfg = DriverConfig(mode="eager")
        cl = SimCluster()
        res = IterationLoop(
            HierarchicalBackend(ScopedGeometricSpec(), make_racks(4, 2),
                                hierarchy=HierarchyConfig(inner_rounds=3),
                                cluster=cl), cfg).run()
        assert res.converged
        racks_phases = [p for p in cl.trace.phases() if p.endswith(":racks")]
        assert racks_phases  # inner rounds 2..n were charged


class TestAdaptiveSyncPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSyncPolicy(initial_budget=0)
        with pytest.raises(ValueError):
            AdaptiveSyncPolicy(grow=1.0)
        with pytest.raises(ValueError):
            AdaptiveSyncPolicy(shrink=1.0)
        with pytest.raises(ValueError):
            AdaptiveSyncPolicy(fast_contraction=1.0)

    def test_same_fixed_point_and_adapts(self, workload):
        g, part = workload
        policy = AdaptiveSyncPolicy()
        ada = IterationLoop(BlockBackend(PageRankBlockSpec(g, part)),
                            DriverConfig(mode="eager"),
                            sync_policy=policy).run()
        assert ada.converged
        assert np.abs(np.asarray(ada.state) - pagerank_reference(g)).max() < 1e-3
        assert len(policy.budgets) == ada.global_iters
        assert len(set(policy.budgets)) > 1  # the budget actually moved
        assert all(1 <= b <= DriverConfig(mode="eager").max_local_iters
                   for b in policy.budgets)

    def test_general_mode_pins_budget_to_one(self):
        policy = AdaptiveSyncPolicy(initial_budget=16)
        res = IterationLoop(BlockBackend(ScopedGeometricSpec()),
                            DriverConfig(mode="general"),
                            sync_policy=policy).run()
        assert res.converged
        assert set(policy.budgets) == {1}
        # identical to the plain general run
        plain = IterationLoop(BlockBackend(ScopedGeometricSpec()),
                              DriverConfig(mode="general")).run()
        assert res.global_iters == plain.global_iters

    def test_policy_reset_between_runs(self, workload):
        g, part = workload
        policy = AdaptiveSyncPolicy()
        first = IterationLoop(BlockBackend(PageRankBlockSpec(g, part)),
                              DriverConfig(mode="eager"),
                              sync_policy=policy).run()
        budgets_first = list(policy.budgets)
        second = IterationLoop(BlockBackend(PageRankBlockSpec(g, part)),
                               DriverConfig(mode="eager"),
                               sync_policy=policy).run()
        assert policy.budgets == budgets_first  # deterministic re-run
        assert second.global_iters == first.global_iters


class TestRoundAccountant:
    def test_inactive_charges_are_noops(self):
        acct = RoundAccountant(None, DriverConfig(mode="eager"))
        assert not acct.active
        assert acct.clock == 0.0
        assert acct.charge_job_startup() == 0.0
        assert acct.charge_shuffle(1 << 20) == 0.0
        assert acct.charge_map_phase([], label="x") == 0.0
        assert acct.charge_global_sync(iteration=0, extra_bytes=64,
                                       reduce_ops=1.0,
                                       state_partition_bytes=(100,),
                                       label="x") == 0.0

    def test_composites_require_config(self):
        acct = RoundAccountant(SimCluster())
        with pytest.raises(ValueError, match="DriverConfig"):
            acct.charge_map_phase([], label="x")

    def test_checkpoint_only_with_online_store(self):
        def total(config):
            cl = SimCluster()
            acct = RoundAccountant(cl, config)
            for it in range(4):
                acct.charge_global_sync(iteration=it, extra_bytes=0,
                                        reduce_ops=100.0,
                                        state_partition_bytes=(1 << 16,),
                                        label=f"iter{it}")
            return cl.clock, cl.trace.phases()

        dfs_time, dfs_phases = total(DriverConfig(mode="eager",
                                                  state_store="dfs"))
        on_time, on_phases = total(DriverConfig(
            mode="eager", state_store="online", checkpoint_every=2))
        assert not any("checkpoint" in p for p in dfs_phases)
        assert sum("checkpoint" in p for p in on_phases) == 2
