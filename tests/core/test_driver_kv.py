"""Tests for the record-at-a-time iterative driver (run_iterative_kv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import PageRankKVSpec
from repro.cluster import SimCluster
from repro.core import DriverConfig, run_iterative_kv
from repro.engine import MapReduceRuntime
from repro.graph import multilevel_partition, preferential_attachment


@pytest.fixture(scope="module")
def kv_setup():
    g = preferential_attachment(200, num_conn=2, locality_prob=0.9,
                                community_mean=25, seed=11)
    part = multilevel_partition(g, 3, seed=0)
    return g, part


class TestKvDriver:
    def test_history_recorded(self, kv_setup):
        g, part = kv_setup
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="eager"))
        assert len(res.history) == res.global_iters
        assert all(r.shuffle_bytes > 0 for r in res.history)
        assert res.history[-1].residual < 1e-5

    def test_local_iters_recorded_per_partition(self, kv_setup):
        # one entry per partition (block-path-compatible shape), not a
        # 1-tuple of the aggregate counter
        g, part = kv_setup
        spec = PageRankKVSpec(g, part)
        res = run_iterative_kv(spec, DriverConfig(mode="eager"))
        for rec in res.history:
            assert len(rec.local_iters) == spec.num_partitions()
            assert all(li >= 1 for li in rec.local_iters)
        # total_local_iters still sums over partitions and rounds
        assert res.total_local_iters == sum(
            sum(r.local_iters) for r in res.history)
        # eager mode really does iterate locally: some round has a
        # partition doing more than one local step
        assert any(max(r.local_iters) > 1 for r in res.history)

    def test_general_mode_one_local_iter_per_partition(self, kv_setup):
        g, part = kv_setup
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="general",
                                            max_global_iters=3))
        for rec in res.history:
            assert rec.local_iters == (1, 1, 1)

    def test_eager_reduce_pipeline_same_results(self, kv_setup):
        g, part = kv_setup
        base = run_iterative_kv(PageRankKVSpec(g, part),
                                DriverConfig(mode="eager"))
        eager = run_iterative_kv(PageRankKVSpec(g, part),
                                 DriverConfig(mode="eager"),
                                 eager_reduce=True)
        assert eager.global_iters == base.global_iters
        ra = np.array([base.state[u][0] for u in range(g.num_nodes)])
        rb = np.array([eager.state[u][0] for u in range(g.num_nodes)])
        assert np.allclose(ra, rb)

    def test_supplied_runtime_kept_open_with_one_pool(self, kv_setup):
        g, part = kv_setup
        rt = MapReduceRuntime("threads", workers=2)
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="eager"), runtime=rt)
        assert res.converged
        # the driver reused (and did not close) the caller's runtime
        assert rt.pool is not None
        pool = rt.pool
        run_iterative_kv(PageRankKVSpec(g, part),
                         DriverConfig(mode="eager"), runtime=rt)
        assert rt.pool is pool
        rt.close()

    def test_history_disabled(self, kv_setup):
        g, part = kv_setup
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="eager", record_history=False))
        assert res.history == []

    def test_residuals_eventually_below_tol(self, kv_setup):
        g, part = kv_setup
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="eager"))
        assert res.converged
        rs = res.residuals
        assert rs[0] > rs[-1]

    def test_sim_time_accumulates_on_cluster(self, kv_setup):
        g, part = kv_setup
        cl = SimCluster()
        rt = MapReduceRuntime("serial", cluster=cl)
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="eager"), runtime=rt)
        assert res.sim_time == pytest.approx(cl.clock)
        assert res.sim_time > 0

    def test_max_global_iters_cap(self, kv_setup):
        g, part = kv_setup
        res = run_iterative_kv(PageRankKVSpec(g, part),
                               DriverConfig(mode="general", max_global_iters=2))
        assert res.global_iters == 2
        assert not res.converged

    def test_num_reducers_configurable(self, kv_setup):
        g, part = kv_setup
        a = run_iterative_kv(PageRankKVSpec(g, part),
                             DriverConfig(mode="eager"), num_reducers=2)
        b = run_iterative_kv(PageRankKVSpec(g, part),
                             DriverConfig(mode="eager"), num_reducers=8)
        # reducer count is an execution detail: same results
        ra = np.array([a.state[u][0] for u in range(g.num_nodes)])
        rb = np.array([b.state[u][0] for u in range(g.num_nodes)])
        assert np.allclose(ra, rb)
        assert a.global_iters == b.global_iters

    def test_on_global_iteration_hook(self, kv_setup):
        g, part = kv_setup
        calls = []

        class Hooked(PageRankKVSpec):
            def on_global_iteration(self, iteration, state):
                calls.append(iteration)
                return None

        res = run_iterative_kv(Hooked(g, part), DriverConfig(mode="eager"))
        assert calls == list(range(res.global_iters))

    def test_hook_can_replace_state(self, kv_setup):
        g, part = kv_setup

        class Resetting(PageRankKVSpec):
            def on_global_iteration(self, iteration, state):
                if iteration == 0:
                    # returning a new state object must be honoured
                    return dict(state)
                return None

        res = run_iterative_kv(Resetting(g, part), DriverConfig(mode="eager"))
        assert res.converged
