"""Tests for graph traversal utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    bfs_levels,
    bfs_order,
    grid_graph,
    hop_diameter_estimate,
    reachable_from,
    ring_graph,
    weakly_connected,
)


class TestBfsLevels:
    def test_ring_levels(self):
        g = ring_graph(5)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self):
        g = DiGraph(3, [0], [1])
        assert bfs_levels(g, 0).tolist() == [0, 1, -1]

    def test_undirected_mode(self):
        g = DiGraph(3, [1], [0])  # only 1 -> 0
        assert bfs_levels(g, 0).tolist() == [0, -1, -1]
        assert bfs_levels(g, 0, undirected=True).tolist() == [0, 1, -1]

    def test_grid_manhattan(self):
        g = grid_graph(4, 4)
        levels = bfs_levels(g, 0)
        # hop distance on a grid = manhattan distance from the corner
        for r in range(4):
            for c in range(4):
                assert levels[r * 4 + c] == r + c

    def test_source_validation(self):
        with pytest.raises(IndexError):
            bfs_levels(ring_graph(3), 5)

    def test_matches_scipy(self, small_graph):
        import scipy.sparse as sp
        import scipy.sparse.csgraph as csg

        src, dst, _ = small_graph.edge_arrays()
        mat = sp.csr_matrix((np.ones(len(src)), (src, dst)),
                            shape=(small_graph.num_nodes,) * 2)
        expected = csg.shortest_path(mat, indices=7, unweighted=True,
                                     method="D")
        got = bfs_levels(small_graph, 7).astype(float)
        got[got < 0] = np.inf
        assert np.array_equal(got, expected)


class TestBfsOrder:
    def test_permutation(self, small_graph):
        order = bfs_order(small_graph)
        assert sorted(order.tolist()) == list(range(small_graph.num_nodes))

    def test_starts_at_source(self, small_graph):
        assert bfs_order(small_graph, source=13)[0] == 13

    def test_deterministic(self, small_graph):
        assert np.array_equal(bfs_order(small_graph), bfs_order(small_graph))

    def test_empty_graph(self):
        assert len(bfs_order(DiGraph(0, [], []))) == 0


class TestReachability:
    def test_reachable_mask(self):
        g = DiGraph(4, [0, 1], [1, 2])
        assert reachable_from(g, 0).tolist() == [True, True, True, False]

    def test_weakly_connected_true(self, small_graph):
        assert weakly_connected(small_graph)

    def test_weakly_connected_false(self):
        g = DiGraph(4, [0, 2], [1, 3])
        assert not weakly_connected(g)

    def test_empty_graph_connected(self):
        assert weakly_connected(DiGraph(0, [], []))


class TestDiameter:
    def test_ring_lower_bound(self):
        g = ring_graph(10)
        # sampling BFS on a directed ring always sees eccentricity 9
        assert hop_diameter_estimate(g, samples=3, seed=0) == 9

    def test_bounded_by_n(self, small_graph):
        d = hop_diameter_estimate(small_graph, samples=4, seed=0)
        assert 0 < d < small_graph.num_nodes

    def test_empty(self):
        assert hop_diameter_estimate(DiGraph(0, [], [])) == 0
