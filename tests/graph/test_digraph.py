"""Tests for the CSR digraph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DiGraph


@pytest.fixture()
def g() -> DiGraph:
    # 0->1(2.0), 0->2, 1->2, 2->0, 3->3? no self loops here; 3 isolated.
    return DiGraph(4, [0, 0, 1, 2], [1, 2, 2, 0], [2.0, 1.0, 1.0, 5.0])


class TestConstruction:
    def test_counts(self, g):
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_empty_graph(self):
        g = DiGraph(3, [], [])
        assert g.num_edges == 0
        assert g.out_degree().tolist() == [0, 0, 0]

    def test_zero_nodes(self):
        g = DiGraph(0, [], [])
        assert g.num_nodes == 0

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1, [], [])

    def test_out_of_range_src_rejected(self):
        with pytest.raises(ValueError, match="src"):
            DiGraph(2, [2], [0])

    def test_out_of_range_dst_rejected(self):
        with pytest.raises(ValueError, match="dst"):
            DiGraph(2, [0], [5])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(2, [0], [1], [1.0, 2.0])

    def test_default_weights_are_one(self):
        g = DiGraph(2, [0], [1])
        assert g.out_w.tolist() == [1.0]

    def test_parallel_edges_preserved(self):
        g = DiGraph(2, [0, 0], [1, 1])
        assert g.num_edges == 2
        assert g.successors(0).tolist() == [1, 1]

    def test_edges_sorted_by_src(self, g):
        src = g.edge_src
        assert np.all(src[:-1] <= src[1:])

    def test_from_adjacency_mapping(self):
        g = DiGraph.from_adjacency({0: [1, 2], 2: [0]})
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.successors(0).tolist() == [1, 2]

    def test_from_adjacency_sequence(self):
        g = DiGraph.from_adjacency([[1], [0], []])
        assert g.num_nodes == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_from_adjacency_num_nodes_override(self):
        g = DiGraph.from_adjacency({0: [1]}, num_nodes=10)
        assert g.num_nodes == 10

    def test_from_weighted_edges(self):
        g = DiGraph.from_weighted_edges(3, [(0, 1, 2.5), (1, 2, 0.5)])
        assert g.out_weights(0).tolist() == [2.5]

    def test_from_weighted_edges_empty(self):
        g = DiGraph.from_weighted_edges(3, [])
        assert g.num_edges == 0


class TestAccessors:
    def test_out_degree(self, g):
        assert g.out_degree().tolist() == [2, 1, 1, 0]

    def test_in_degree(self, g):
        assert g.in_degree().tolist() == [1, 1, 2, 0]

    def test_successors_view(self, g):
        assert g.successors(0).tolist() == [1, 2]
        assert g.successors(3).tolist() == []

    def test_out_weights_aligned(self, g):
        assert g.out_weights(0).tolist() == [2.0, 1.0]

    def test_successors_out_of_range(self, g):
        with pytest.raises(IndexError):
            g.successors(4)
        with pytest.raises(IndexError):
            g.successors(-1)

    def test_predecessors(self, g):
        assert sorted(g.predecessors(2).tolist()) == [0, 1]
        assert g.predecessors(3).tolist() == []

    def test_in_csr_consistency(self, g):
        in_ptr, in_src, in_w = g.in_csr()
        assert in_ptr[-1] == g.num_edges
        # total weight conserved
        assert in_w.sum() == g.out_w.sum()

    def test_has_edge(self, g):
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edges_iterator_matches_arrays(self, g):
        triples = list(g.edges())
        assert len(triples) == g.num_edges
        assert (0, 1, 2.0) in triples

    def test_adjacency_dict_roundtrip(self, g):
        adj = g.adjacency_dict()
        g2 = DiGraph.from_adjacency(adj, num_nodes=g.num_nodes)
        assert g2.num_edges == g.num_edges

    def test_edge_arrays_are_views(self, g):
        src, dst, w = g.edge_arrays()
        assert src is g.edge_src and dst is g.out_dst and w is g.out_w


class TestTransforms:
    def test_with_weights(self, g):
        g2 = g.with_weights(np.full(4, 9.0))
        assert g2.out_weights(0).tolist() == [9.0, 9.0]
        # structure unchanged
        assert g2.successors(0).tolist() == g.successors(0).tolist()

    def test_with_weights_wrong_length(self, g):
        with pytest.raises(ValueError):
            g.with_weights(np.ones(3))

    def test_reverse_degrees_swap(self, g):
        r = g.reverse()
        assert r.out_degree().tolist() == g.in_degree().tolist()
        assert r.in_degree().tolist() == g.out_degree().tolist()

    def test_reverse_twice_is_identity(self, g):
        assert g.reverse().reverse() == g

    def test_undirected_csr_symmetric(self, g):
        ptr, nbr, w = g.undirected_csr()
        # every undirected edge appears from both endpoints
        src = np.repeat(np.arange(g.num_nodes), np.diff(ptr))
        pairs = set(zip(src.tolist(), nbr.tolist()))
        for u, v in list(pairs):
            assert (v, u) in pairs

    def test_undirected_csr_merges_duplicates(self):
        # 0->1 and 1->0 merge into one undirected edge of weight 2 per side
        g = DiGraph(2, [0, 1], [1, 0], [1.0, 1.0])
        ptr, nbr, w = g.undirected_csr()
        assert len(nbr) == 2  # one neighbour entry per endpoint
        assert w.tolist() == [2.0, 2.0]

    def test_undirected_csr_drops_self_loops(self):
        g = DiGraph(2, [0, 0], [0, 1])
        ptr, nbr, _ = g.undirected_csr()
        src = np.repeat(np.arange(2), np.diff(ptr))
        assert not np.any(src == nbr)


class TestDunder:
    def test_eq(self, g):
        same = DiGraph(4, [0, 0, 1, 2], [1, 2, 2, 0], [2.0, 1.0, 1.0, 5.0])
        assert g == same

    def test_neq_weights(self, g):
        other = DiGraph(4, [0, 0, 1, 2], [1, 2, 2, 0], [1.0, 1.0, 1.0, 5.0])
        assert g != other

    def test_not_hashable(self, g):
        with pytest.raises(TypeError):
            hash(g)

    def test_eq_non_graph(self, g):
        assert g != "graph"
