"""Tests for the partitioners and the Partition structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    Partition,
    bfs_partition,
    chunk_partition,
    grid_graph,
    hash_partition,
    multilevel_partition,
    partition_graph,
    random_partition,
)

ALL_METHODS = ("multilevel", "bfs", "chunk", "hash", "random")


class TestPartitionStructure:
    def test_parts_cover_all_nodes(self, small_graph):
        p = hash_partition(small_graph, 5)
        assert sum(len(part) for part in p.parts()) == small_graph.num_nodes
        joined = np.sort(np.concatenate(p.parts()))
        assert np.array_equal(joined, np.arange(small_graph.num_nodes))

    def test_part_sizes_match_parts(self, small_graph):
        p = random_partition(small_graph, 7, seed=0)
        sizes = p.part_sizes()
        for i, part in enumerate(p.parts()):
            assert len(part) == sizes[i]

    def test_parts_cached_across_accesses(self, small_graph):
        # the derived node arrays are built lazily exactly once; hot
        # paths (per-round partition_input, the columnar gmap caches)
        # call parts() repeatedly and must not pay a recompute
        p = hash_partition(small_graph, 5)
        first = p.parts()
        assert p.parts() is first
        assert all(a is b for a, b in zip(p.parts(), first))

    def test_cut_edge_mask_cached_across_accesses(self, small_graph):
        p = random_partition(small_graph, 3, seed=1)
        mask = p.cut_edge_mask()
        assert p.cut_edge_mask() is mask
        # dependent statistics reuse the cached mask, not a recompute
        assert p.edge_cut() == int(mask.sum())

    def test_edge_cut_definition(self, tiny_graph):
        # split {0,1,2} vs {3,4,5}: no edges cross
        p = Partition(tiny_graph, np.array([0, 0, 0, 1, 1, 1]), 2)
        assert p.edge_cut() == 0
        # split {0,1} vs rest: edges 0->2,1->2,2->0 cross
        p2 = Partition(tiny_graph, np.array([0, 0, 1, 1, 1, 1]), 2)
        assert p2.edge_cut() == 3

    def test_cut_fraction_empty_graph(self):
        g = DiGraph(3, [], [])
        p = hash_partition(g, 2)
        assert p.cut_fraction() == 0.0

    def test_boundary_and_internal_partition_nodes(self, tiny_graph):
        p = Partition(tiny_graph, np.array([0, 0, 1, 1, 1, 1]), 2)
        boundary = set(p.boundary_nodes().tolist())
        assert boundary == {0, 1, 2}
        internal = set(p.internal_nodes().tolist())
        assert internal == {3, 4, 5}
        assert boundary | internal == set(range(6))

    def test_balance_perfect(self, small_graph):
        p = chunk_partition(small_graph, 4)
        assert p.balance() == pytest.approx(1.0, abs=0.02)

    def test_balance_with_k_exceeding_n(self):
        g = DiGraph(3, [0], [1])
        p = Partition(g, np.array([0, 1, 2]), 10)
        assert p.balance() == pytest.approx(1.0)

    def test_nonempty_parts(self):
        g = DiGraph(3, [0], [1])
        p = Partition(g, np.array([0, 0, 2]), 5)
        assert p.nonempty_parts() == 2

    def test_invalid_assign_shape(self, tiny_graph):
        with pytest.raises(ValueError, match="shape"):
            Partition(tiny_graph, np.zeros(3, dtype=np.int64), 2)

    def test_invalid_part_ids(self, tiny_graph):
        with pytest.raises(ValueError, match="outside"):
            Partition(tiny_graph, np.array([0, 0, 0, 0, 0, 9]), 2)

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            Partition(tiny_graph, np.zeros(6, dtype=np.int64), 0)

    def test_validate_passes(self, small_graph):
        multilevel_partition(small_graph, 3, seed=0).validate()


class TestPartitioners:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_is_a_valid_cover(self, small_graph, method):
        p = partition_graph(small_graph, 6, method=method)
        p.validate()
        assert p.k == 6
        assert p.part_sizes().sum() == small_graph.num_nodes

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_k_equals_one(self, small_graph, method):
        p = partition_graph(small_graph, 1, method=method)
        assert p.edge_cut() == 0
        assert p.nonempty_parts() == 1

    def test_k_at_least_n_gives_singletons(self, small_graph):
        p = multilevel_partition(small_graph, small_graph.num_nodes * 2)
        assert np.array_equal(p.assign, np.arange(small_graph.num_nodes))

    def test_hash_partition_formula(self, small_graph):
        p = hash_partition(small_graph, 3)
        assert np.array_equal(p.assign, np.arange(small_graph.num_nodes) % 3)

    def test_chunk_partition_contiguous(self, small_graph):
        p = chunk_partition(small_graph, 5)
        assert np.all(np.diff(p.assign) >= 0)  # non-decreasing part ids

    def test_random_partition_balanced(self, small_graph):
        p = random_partition(small_graph, 8, seed=0)
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_bfs_partition_balanced(self, small_graph):
        p = bfs_partition(small_graph, 8, seed=0)
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_bfs_partition_empty_graph(self):
        g = DiGraph(0, [], [])
        p = bfs_partition(g, 3)
        assert p.part_sizes().sum() == 0

    def test_multilevel_balance_tolerance(self, small_graph):
        p = multilevel_partition(small_graph, 8, balance_tol=0.1, seed=0)
        assert p.balance() <= 1.25

    def test_multilevel_beats_hash_on_cut(self, small_graph):
        ml = multilevel_partition(small_graph, 8, seed=0)
        h = hash_partition(small_graph, 8)
        assert ml.edge_cut() < h.edge_cut()

    def test_locality_methods_beat_oblivious_on_community_graph(self, small_graph):
        # the ablation's premise: locality-aware partitioning cuts less
        for good in ("multilevel", "chunk"):
            for bad in ("hash", "random"):
                g_cut = partition_graph(small_graph, 8, method=good).cut_fraction()
                b_cut = partition_graph(small_graph, 8, method=bad).cut_fraction()
                assert g_cut < b_cut, f"{good} should beat {bad}"

    def test_multilevel_on_grid(self):
        # a 2-way split of a grid should cut roughly one row/column's
        # worth of edges, far less than half of all edges
        g = grid_graph(16, 16)
        p = multilevel_partition(g, 2, seed=0)
        assert p.cut_fraction() < 0.2
        assert p.balance() < 1.2

    def test_multilevel_deterministic_with_seed(self, small_graph):
        a = multilevel_partition(small_graph, 4, seed=9)
        b = multilevel_partition(small_graph, 4, seed=9)
        assert np.array_equal(a.assign, b.assign)

    def test_unknown_method_rejected(self, small_graph):
        with pytest.raises(ValueError, match="unknown partitioner"):
            partition_graph(small_graph, 2, method="metis")

    def test_k_zero_rejected(self, small_graph):
        with pytest.raises(ValueError):
            multilevel_partition(small_graph, 0)

    def test_disconnected_graph_handled(self):
        # two disjoint triangles plus isolated nodes
        g = DiGraph(8, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3])
        for method in ALL_METHODS:
            p = partition_graph(g, 2, method=method)
            p.validate()

    def test_multilevel_odd_k(self, small_graph):
        p = multilevel_partition(small_graph, 5, seed=0)
        assert p.k == 5
        assert p.nonempty_parts() == 5
