"""Tests for the graph generators (Table II inputs and helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    GRAPH_A_SPEC,
    GRAPH_B_SPEC,
    attach_random_weights,
    complete_digraph,
    fit_power_law,
    grid_graph,
    hub_spoke_ratio,
    make_paper_graph,
    preferential_attachment,
    random_digraph,
    ring_graph,
    star_graph,
)


class TestPreferentialAttachment:
    def test_node_count(self):
        g = preferential_attachment(500, seed=0)
        assert g.num_nodes == 500

    def test_edge_count_scales_with_params(self):
        g1 = preferential_attachment(500, num_conn=2, seed=0)
        g2 = preferential_attachment(500, num_conn=5, seed=0)
        assert g2.num_edges > g1.num_edges

    def test_deterministic_with_seed(self):
        a = preferential_attachment(300, seed=42)
        b = preferential_attachment(300, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = preferential_attachment(300, seed=1)
        b = preferential_attachment(300, seed=2)
        assert a != b

    def test_no_self_loops(self):
        g = preferential_attachment(400, seed=3)
        src, dst, _ = g.edge_arrays()
        assert not np.any(src == dst)

    def test_heavy_tailed_in_degree(self):
        g = preferential_attachment(3000, num_conn=3, seed=0)
        ind = g.in_degree()
        # a genuine hubs-and-spokes profile: top 1% of nodes hold far
        # more than 1% of the in-degree mass
        assert hub_spoke_ratio(ind) > 0.03
        fit = fit_power_law(ind, xmin=max(1, int(np.median(ind[ind > 0]))))
        assert 1.5 < fit.alpha < 5.0

    def test_community_mode_reduces_cross_edges(self):
        plain = preferential_attachment(1000, seed=0)
        comm = preferential_attachment(1000, locality_prob=0.94,
                                       community_mean=50, seed=0)
        # compare contiguous-chunk cut fractions
        from repro.graph import chunk_partition

        cut_plain = chunk_partition(plain, 8).cut_fraction()
        cut_comm = chunk_partition(comm, 8).cut_fraction()
        assert cut_comm < cut_plain * 0.8

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            preferential_attachment(0)
        with pytest.raises(ValueError):
            preferential_attachment(10, num_conn=0)
        with pytest.raises(ValueError):
            preferential_attachment(10, locality_prob=1.5)
        with pytest.raises(ValueError):
            preferential_attachment(10, community_mean=0)

    def test_locality_window_mode(self):
        g = preferential_attachment(800, locality_prob=0.9,
                                    locality_window=40, seed=0)
        src, dst, _ = g.edge_arrays()
        # most edges span less than a few windows
        spans = np.abs(src - dst)
        assert np.median(spans) < 120


class TestPaperGraphs:
    def test_specs_match_table2(self):
        assert GRAPH_A_SPEC["num_nodes"] == 280_000
        assert GRAPH_B_SPEC["num_nodes"] == 100_000

    def test_scaled_graph_a(self):
        g = make_paper_graph("A", scale=0.01, seed=0)
        assert g.num_nodes == 2800
        # Table II: ~3M edges at 280K nodes -> mean degree ~10.7
        assert 7 <= g.num_edges / g.num_nodes <= 14

    def test_scaled_graph_b_denser(self):
        a = make_paper_graph("A", scale=0.01, seed=0)
        b = make_paper_graph("B", scale=0.028, seed=0)  # same node count
        assert b.num_edges / b.num_nodes > a.num_edges / a.num_nodes

    def test_unknown_graph_rejected(self):
        with pytest.raises(ValueError, match="'A' or 'B'"):
            make_paper_graph("C")

    def test_minimum_size_floor(self):
        g = make_paper_graph("A", scale=1e-9, seed=0)
        assert g.num_nodes >= 64


class TestSimpleGenerators:
    def test_ring(self):
        g = ring_graph(5)
        assert g.num_edges == 5
        assert g.successors(4).tolist() == [0]

    def test_grid_bidirectional(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(0, 4) and g.has_edge(4, 0)
        assert not g.has_edge(0, 5)

    def test_grid_edge_count(self):
        rows, cols = 3, 4
        g = grid_graph(rows, cols)
        expected = 2 * (rows * (cols - 1) + cols * (rows - 1))
        assert g.num_edges == expected

    def test_star(self):
        g = star_graph(6)
        assert g.num_nodes == 7
        assert g.out_degree()[0] == 6
        assert np.all(g.out_degree()[1:] == 1)

    def test_complete(self):
        g = complete_digraph(4)
        assert g.num_edges == 12
        src, dst, _ = g.edge_arrays()
        assert not np.any(src == dst)

    def test_random_digraph_counts(self):
        g = random_digraph(50, 200, seed=0)
        assert g.num_nodes == 50
        assert g.num_edges == 200

    def test_random_digraph_no_self_loops(self):
        g = random_digraph(10, 500, seed=1)
        src, dst, _ = g.edge_arrays()
        assert not np.any(src == dst)

    def test_random_digraph_allows_self_loops_when_asked(self):
        g = random_digraph(5, 2000, seed=2, allow_self_loops=True)
        src, dst, _ = g.edge_arrays()
        assert np.any(src == dst)


class TestRandomWeights:
    def test_weight_range(self, small_graph):
        g = attach_random_weights(small_graph, low=1.0, high=10.0, seed=0)
        assert g.out_w.min() >= 1.0
        assert g.out_w.max() < 10.0

    def test_structure_preserved(self, small_graph):
        g = attach_random_weights(small_graph, seed=0)
        assert g.num_edges == small_graph.num_edges
        assert np.array_equal(g.out_dst, small_graph.out_dst)

    def test_deterministic(self, small_graph):
        a = attach_random_weights(small_graph, seed=5)
        b = attach_random_weights(small_graph, seed=5)
        assert np.array_equal(a.out_w, b.out_w)

    def test_rejects_bad_range(self, small_graph):
        with pytest.raises(ValueError):
            attach_random_weights(small_graph, low=5.0, high=5.0)
        with pytest.raises(ValueError, match="negative"):
            attach_random_weights(small_graph, low=-1.0, high=1.0)
