"""Tests for power-law fitting, adjacency I/O, and graph metrics."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    degree_histogram,
    dumps_adjacency,
    fit_power_law,
    hub_spoke_ratio,
    loads_adjacency,
    multilevel_partition,
    partition_quality,
    preferential_attachment,
    read_adjacency,
    summarize_graph,
    write_adjacency,
)


class TestPowerLaw:
    def test_recovers_known_exponent(self):
        rng = np.random.default_rng(0)
        # discrete power-law sample via inverse transform (alpha = 2.5)
        u = rng.random(200_000)
        xs = np.floor((1 - u) ** (-1 / 1.5)).astype(np.int64)
        # fit the tail (the discrete MLE is accurate for xmin >> 1)
        fit = fit_power_law(xs, xmin=10)
        assert fit.alpha == pytest.approx(2.5, abs=0.25)

    def test_tail_size_reported(self):
        fit = fit_power_law(np.array([1, 2, 3, 10, 20]), xmin=2)
        assert fit.n_tail == 4

    def test_ignores_below_xmin(self):
        d = np.array([0, 0, 0, 5, 6, 7, 8])
        fit = fit_power_law(d, xmin=5)
        assert fit.n_tail == 4

    def test_too_few_observations(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_power_law(np.array([5]), xmin=1)

    def test_bad_xmin(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1, 2, 3]), xmin=0)

    def test_degree_histogram(self):
        vals, counts = degree_histogram(np.array([1, 1, 2, 5]))
        assert vals.tolist() == [1, 2, 5]
        assert counts.tolist() == [2, 1, 1]

    def test_degree_histogram_empty(self):
        vals, counts = degree_histogram(np.array([], dtype=np.int64))
        assert len(vals) == 0 and len(counts) == 0

    def test_hub_spoke_ratio_uniform_low(self):
        flat = np.full(1000, 5.0)
        assert hub_spoke_ratio(flat) == pytest.approx(0.01, abs=0.005)

    def test_hub_spoke_ratio_concentrated_high(self):
        d = np.ones(1000)
        d[0] = 10_000
        assert hub_spoke_ratio(d) > 0.5

    def test_hub_spoke_ratio_empty_and_zero(self):
        assert hub_spoke_ratio(np.array([])) == 0.0
        assert hub_spoke_ratio(np.zeros(5)) == 0.0


class TestAdjacencyIO:
    def test_roundtrip_unweighted(self, tiny_graph):
        text = dumps_adjacency(tiny_graph)
        g2 = loads_adjacency(text)
        assert g2 == tiny_graph

    def test_roundtrip_weighted(self):
        g = DiGraph(3, [0, 1], [1, 2], [2.5, 0.125])
        g2 = loads_adjacency(dumps_adjacency(g))
        assert g2 == g

    def test_roundtrip_trailing_isolated_node(self):
        g = DiGraph(5, [0], [1])  # nodes 2..4 isolated
        g2 = loads_adjacency(dumps_adjacency(g))
        assert g2.num_nodes == 5

    def test_file_roundtrip(self, tmp_path, small_graph):
        path = tmp_path / "graph.adj"
        write_adjacency(small_graph, path)
        g2 = read_adjacency(path)
        assert g2 == small_graph

    def test_stream_roundtrip(self, tiny_graph):
        buf = io.StringIO()
        write_adjacency(tiny_graph, buf)
        buf.seek(0)
        assert read_adjacency(buf) == tiny_graph

    def test_comments_and_blanks_ignored(self):
        g = loads_adjacency("# a comment\n\n0 1 2\n1 2\n")
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_infers_node_count_without_header(self):
        g = loads_adjacency("0 7\n")
        assert g.num_nodes == 8

    def test_bad_source_token(self):
        with pytest.raises(ValueError, match="line 1"):
            loads_adjacency("abc 1\n")

    def test_roundtrip_preferential(self):
        g = preferential_attachment(200, seed=0)
        assert loads_adjacency(dumps_adjacency(g)) == g


class TestMetrics:
    def test_summary_fields(self, small_graph):
        s = summarize_graph(small_graph)
        assert s.num_nodes == small_graph.num_nodes
        assert s.num_edges == small_graph.num_edges
        assert s.max_in_degree == small_graph.in_degree().max()
        assert s.mean_degree == pytest.approx(
            small_graph.num_edges / small_graph.num_nodes)
        assert 1.0 < s.powerlaw_alpha < 10.0

    def test_summary_rows_render(self, small_graph):
        rows = summarize_graph(small_graph).rows()
        names = [r[0] for r in rows]
        assert "Nodes" in names and "Edges" in names

    def test_partition_quality(self, small_graph):
        p = multilevel_partition(small_graph, 4, seed=0)
        q = partition_quality(p)
        assert q.k == 4
        assert q.edge_cut == p.edge_cut()
        assert 0.0 <= q.cut_fraction <= 1.0
        assert q.boundary_nodes == len(p.boundary_nodes())
        assert 0.0 <= q.boundary_fraction <= 1.0
        assert q.nonempty_parts == 4
