"""repro — reproduction of "Asynchronous Algorithms in MapReduce".

Kambatla, Rapolu, Jagannathan, Grama (IEEE CLUSTER 2010): partial
synchronizations and eager scheduling for iterative MapReduce
applications, evaluated on PageRank, Single-Source Shortest Path and
K-Means.

Subpackages
-----------
``repro.core``
    The paper's contribution: the two-level (local/global) MapReduce
    API (``lmap``/``lreduce``/``gmap``/``greduce``), partial
    synchronization, eager scheduling, convergence criteria and the
    iterative driver.
``repro.engine``
    A complete MapReduce runtime (jobs, tasks, shuffle, combiners,
    counters, fault tolerance via deterministic replay, serial/thread/
    process executors) — the Hadoop substitute.
``repro.cluster``
    The simulated 8-node EC2 testbed: cost model, slots and list
    scheduling, network/DFS charges, execution traces.
``repro.graph``
    CSR digraphs, preferential-attachment generators (Table II),
    multilevel/BFS/hash partitioners (the Metis substitute), power-law
    fitting.
``repro.apps``
    PageRank, SSSP, K-Means (General + Eager), connected components,
    wordcount.
``repro.data``
    Synthetic census stand-in and point-cloud generators.
``repro.bench``
    Sweeps and reports regenerating every table and figure.

Quickstart
----------
>>> from repro.graph import make_paper_graph, multilevel_partition
>>> from repro.apps import pagerank
>>> from repro.cluster import SimCluster
>>> g = make_paper_graph("A", scale=0.01, seed=0)
>>> part = multilevel_partition(g, 8, seed=0)
>>> eager = pagerank(g, part, mode="eager", cluster=SimCluster())
>>> general = pagerank(g, part, mode="general", cluster=SimCluster())
>>> eager.global_iters < general.global_iters
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
