"""repro — reproduction of "Asynchronous Algorithms in MapReduce".

Kambatla, Rapolu, Jagannathan, Grama (IEEE CLUSTER 2010): partial
synchronizations and eager scheduling for iterative MapReduce
applications, evaluated on PageRank, Single-Source Shortest Path and
K-Means.

Subpackages
-----------
``repro.core``
    The paper's contribution and the public API.  Lead with the
    **Session API** (``repro.core.session``): a ``Session`` owns one
    shared simulated cluster + persistent runtime, ``session.submit``
    registers iterative jobs (from the apps' ``*_spec`` factories or
    bare backends) and a pluggable scheduler (FIFO / round-robin /
    fair-share, ``repro.core.jobsched``) drives them all to
    convergence with per-job results and contention metrics.
    Underneath: the two-level (local/global) MapReduce API
    (``lmap``/``lreduce``/``gmap``/``greduce``), partial
    synchronization, eager scheduling, convergence criteria and the
    round-re-entrant ``IterationLoop``.
``repro.engine``
    A complete MapReduce runtime (jobs, tasks, shuffle, combiners,
    counters, fault tolerance via deterministic replay, serial/thread/
    process executors) — the Hadoop substitute.
``repro.cluster``
    The simulated 8-node EC2 testbed: cost model, slots and list
    scheduling (with per-job slot shares), network/DFS charges,
    execution traces, per-job charge attribution
    (``RoundAccountant``).
``repro.graph``
    CSR digraphs, preferential-attachment generators (Table II),
    multilevel/BFS/hash partitioners (the Metis substitute), power-law
    fitting.
``repro.apps``
    PageRank, SSSP, K-Means (General + Eager), connected components,
    wordcount — each with an immediate runner and a submittable
    ``*_spec`` factory.
``repro.data``
    Synthetic census stand-in and point-cloud generators.
``repro.bench``
    Sweeps and reports regenerating every table and figure.

Quickstart
----------
>>> from repro.graph import make_paper_graph, multilevel_partition
>>> from repro.apps import pagerank_spec, sssp_spec
>>> from repro.cluster import SimCluster
>>> from repro.core import Session
>>> g = make_paper_graph("A", scale=0.01, seed=0)
>>> part = multilevel_partition(g, 8, seed=0)
>>> with Session(cluster=SimCluster(), policy="fair") as session:
...     eager = session.submit(pagerank_spec(g, part, mode="eager"))
...     general = session.submit(pagerank_spec(g, part, mode="general"))
...     _ = session.run()
>>> eager.result.global_iters < general.result.global_iters
True

(The one-shot runners — ``pagerank(g, part, mode="eager",
cluster=SimCluster())`` et al. — remain for single-job use.)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
