"""Benchmark harness: experiment definitions for every table and figure.

Each figure of the paper corresponds to one sweep function here; the
files under ``benchmarks/`` call these, print the same series the paper
plots, and assert the qualitative shape (who wins, monotonicity, rough
factors).  Results are memoised per (experiment, scale) so the paired
figures that share a sweep (iterations + time from the same runs, e.g.
Figs 2 & 4) compute it once.

Scaling
-------
The paper's inputs (Table II: 280K/100K nodes, ~3M edges; 200K census
rows) and its partition axis (100..6400) are reproduced at a
configurable scale.  ``REPRO_SCALE`` controls it: ``full`` (paper size),
a float (fraction), or unset (the laptop default, 0.1 for graphs).  The
*partition counts are scaled with the graph* so each sweep point keeps
the paper's partition-size regime (e.g. paper's 100 partitions of a 280K
graph = 2800 nodes/partition); reports show the paper-equivalent count.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field

import numpy as np

from repro.apps import kmeans, pagerank, sssp
from repro.cluster import EC2_DEFAULTS, SimCluster, ec2_nodes
from repro.core import DriverConfig
from repro.data import census_sample
from repro.graph import (
    DiGraph,
    Partition,
    attach_random_weights,
    make_paper_graph,
    partition_graph,
)
from repro.util import ascii_table, format_series

__all__ = [
    "graph_scale",
    "kmeans_rows",
    "scaled_partitions",
    "PAPER_PARTITION_COUNTS",
    "PAPER_KMEANS_THRESHOLDS",
    "PAPER_KMEANS_PARTITIONS",
    "SweepPoint",
    "SweepResult",
    "get_graph",
    "get_partition",
    "pagerank_sweep",
    "sssp_sweep",
    "kmeans_sweep",
    "make_cluster",
    "report_sweep",
    "speedup_summary",
]

#: Figure 2-7 x axis (number of partitions).
PAPER_PARTITION_COUNTS = (100, 200, 400, 800, 1600, 3200, 6400)
#: Figure 8-9 x axis (convergence threshold delta).
PAPER_KMEANS_THRESHOLDS = (0.1, 0.01, 0.001, 0.0001)
#: Figure 8-9 partition count ("a fixed number of partitions (52)").
PAPER_KMEANS_PARTITIONS = 52

_DEFAULT_GRAPH_SCALE = 0.1
_DEFAULT_KMEANS_ROWS = 100_000


def graph_scale() -> float:
    """Graph scale from ``REPRO_SCALE`` (``full`` -> 1.0; default 0.1)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return _DEFAULT_GRAPH_SCALE
    if raw.lower() == "full":
        return 1.0
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"REPRO_SCALE must be in (0, 1] or 'full', got {raw!r}")
    return value


def kmeans_rows() -> int:
    """Census rows for the K-Means figures, honouring ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if raw.lower() == "full":
        return 200_000
    if raw:
        return max(5_000, int(200_000 * float(raw)))
    return _DEFAULT_KMEANS_ROWS


def scaled_partitions(scale: float) -> "list[tuple[int, int]]":
    """(paper_k, effective_k) pairs keeping the partition-size regime."""
    return [(k, max(2, int(round(k * scale)))) for k in PAPER_PARTITION_COUNTS]


def make_cluster() -> SimCluster:
    """A fresh Table I testbed (8 EC2 XL nodes, EC2-like cost model)."""
    return SimCluster(ec2_nodes(), EC2_DEFAULTS)


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a figure, for one implementation."""

    x: object              # paper-axis value (partitions or threshold)
    effective_x: object    # the actually-used value after scaling
    mode: str              # "general" | "eager"
    iterations: int
    sim_time: float
    converged: bool
    extra: dict = field(default_factory=dict)


@dataclass
class SweepResult:
    """All points of one experiment (both modes)."""

    name: str
    points: "list[SweepPoint]"

    def series(self, mode: str, *, value: str = "iterations") -> "tuple[list, list]":
        xs = [p.x for p in self.points if p.mode == mode]
        ys = [getattr(p, value) for p in self.points if p.mode == mode]
        return xs, ys

    def point(self, mode: str, x: object) -> SweepPoint:
        for p in self.points:
            if p.mode == mode and p.x == x:
                return p
        raise KeyError(f"no point mode={mode} x={x}")


# ----------------------------------------------------------------------
# Cached inputs
# ----------------------------------------------------------------------

@functools.lru_cache(maxsize=8)
def _graph_cached(which: str, scale: float, weighted: bool) -> DiGraph:
    g = make_paper_graph(which, scale=scale, seed=0)
    if weighted:
        g = attach_random_weights(g, low=1.0, high=10.0, seed=1)
    return g


def get_graph(which: str, scale: float, *, weighted: bool = False) -> DiGraph:
    """Table II graph at the given scale (optionally with SSSP weights).

    Memoised: repeated calls with the same arguments return the *same*
    object, so figure pairs sharing inputs share memory too.
    """
    return _graph_cached(which, float(scale), bool(weighted))


@functools.lru_cache(maxsize=64)
def _partition_cached(which: str, scale: float, k: int, weighted: bool,
                      method: str) -> Partition:
    return partition_graph(get_graph(which, scale, weighted=weighted), k,
                           method=method, seed=0)


def get_partition(which: str, scale: float, k: int, *, weighted: bool = False,
                  method: str = "multilevel") -> Partition:
    """Cached locality-enhancing partition (the paper's one-time Metis run)."""
    return _partition_cached(which, float(scale), int(k), bool(weighted),
                             method)


# ----------------------------------------------------------------------
# Sweeps (Figures 2-9)
# ----------------------------------------------------------------------

@functools.lru_cache(maxsize=8)
def pagerank_sweep(which: str, *, scale: "float | None" = None,
                   method: str = "multilevel",
                   eager_schedule: bool = True) -> SweepResult:
    """Figures 2/3 (iterations) and 4/5 (time): PageRank vs #partitions."""
    s = scale if scale is not None else graph_scale()
    g = get_graph(which, s)
    points: list[SweepPoint] = []
    for paper_k, k in scaled_partitions(s):
        if k > g.num_nodes:
            continue
        part = get_partition(which, s, k, method=method)
        for mode in ("general", "eager"):
            cfg = DriverConfig(mode=mode, eager_schedule=eager_schedule)
            res = pagerank(g, part, cluster=make_cluster(), config=cfg)
            points.append(SweepPoint(
                x=paper_k, effective_x=k, mode=mode,
                iterations=res.global_iters, sim_time=res.sim_time,
                converged=res.converged,
                extra={"cut_fraction": part.cut_fraction()},
            ))
    return SweepResult(name=f"pagerank-{which}", points=points)


@functools.lru_cache(maxsize=8)
def sssp_sweep(*, scale: "float | None" = None, method: str = "multilevel",
               source: int = 0) -> SweepResult:
    """Figures 6 (iterations) and 7 (time): SSSP on Graph A vs #partitions."""
    s = scale if scale is not None else graph_scale()
    g = get_graph("A", s, weighted=True)
    points: list[SweepPoint] = []
    for paper_k, k in scaled_partitions(s):
        if k > g.num_nodes:
            continue
        part = get_partition("A", s, k, weighted=True, method=method)
        for mode in ("general", "eager"):
            res = sssp(g, part, source=source, mode=mode, cluster=make_cluster())
            points.append(SweepPoint(
                x=paper_k, effective_x=k, mode=mode,
                iterations=res.global_iters, sim_time=res.sim_time,
                converged=res.converged,
                extra={"cut_fraction": part.cut_fraction()},
            ))
    return SweepResult(name="sssp-A", points=points)


@functools.lru_cache(maxsize=8)
def kmeans_sweep(*, rows: "int | None" = None, k: int = 8,
                 partitions: "int | None" = None) -> SweepResult:
    """Figures 8 (iterations) and 9 (time): K-Means vs threshold delta.

    ``partitions`` defaults to the paper's 52 scaled by ``REPRO_SCALE``
    — the same partition-size-preserving rule the graph sweeps use.  At
    smoke scales the fixed paper count would slice a few thousand rows
    into partitions too small to aggregate, which both distorts the
    figure shape and starves the per-partition K-Means updates.
    """
    n = rows if rows is not None else kmeans_rows()
    if partitions is None:
        partitions = max(2, int(round(PAPER_KMEANS_PARTITIONS
                                      * graph_scale())))
    pts = census_sample(n, noise=0.35, num_profiles=12, seed=0)
    points: list[SweepPoint] = []
    for thr in PAPER_KMEANS_THRESHOLDS:
        for mode in ("general", "eager"):
            res = kmeans(pts, k, mode=mode, threshold=thr,
                         num_partitions=partitions, cluster=make_cluster(),
                         seed=3)
            points.append(SweepPoint(
                x=thr, effective_x=thr, mode=mode,
                iterations=res.global_iters, sim_time=res.sim_time,
                converged=res.converged,
            ))
    return SweepResult(name="kmeans", points=points)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def report_sweep(result: SweepResult, *, value: str = "iterations",
                 x_label: str = "#partitions", title: str = "") -> str:
    """Render a figure's two series (Eager / General) like the paper plots."""
    out = []
    if title:
        out.append(title)
    headers = [x_label, "Eager", "General", "General/Eager"]
    xs_e, ys_e = result.series("eager", value=value)
    xs_g, ys_g = result.series("general", value=value)
    assert xs_e == xs_g
    rows = []
    for x, e, g in zip(xs_e, ys_e, ys_g):
        ratio = g / e if e else float("inf")
        rows.append([x, e, g, f"{ratio:.2f}x"])
    out.append(ascii_table(headers, rows))
    for mode in ("eager", "general"):
        xs, ys = result.series(mode, value=value)
        out.append(format_series(mode.capitalize(), xs, ys,
                                 x_label=x_label, y_label=value))
    return "\n".join(out)


def speedup_summary(result: SweepResult, *, value: str = "sim_time") -> "dict[str, float]":
    """Mean/max/min General-over-Eager ratio across the sweep."""
    xs_e, ys_e = result.series("eager", value=value)
    _, ys_g = result.series("general", value=value)
    ratios = np.array([g / e for g, e in zip(ys_g, ys_e) if e])
    if len(ratios) == 0:
        return {"mean": float("nan"), "max": float("nan"), "min": float("nan")}
    return {
        "mean": float(ratios.mean()),
        "max": float(ratios.max()),
        "min": float(ratios.min()),
    }
