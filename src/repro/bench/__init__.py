"""Benchmark harness: sweeps, caching, and report formatting for
every table and figure of the paper (see DESIGN.md's experiment index).
"""

from repro.bench.harness import (
    PAPER_KMEANS_PARTITIONS,
    PAPER_KMEANS_THRESHOLDS,
    PAPER_PARTITION_COUNTS,
    SweepPoint,
    SweepResult,
    get_graph,
    get_partition,
    graph_scale,
    kmeans_rows,
    kmeans_sweep,
    make_cluster,
    pagerank_sweep,
    report_sweep,
    scaled_partitions,
    speedup_summary,
    sssp_sweep,
)

__all__ = [
    "PAPER_PARTITION_COUNTS",
    "PAPER_KMEANS_THRESHOLDS",
    "PAPER_KMEANS_PARTITIONS",
    "SweepPoint",
    "SweepResult",
    "graph_scale",
    "kmeans_rows",
    "scaled_partitions",
    "get_graph",
    "get_partition",
    "pagerank_sweep",
    "sssp_sweep",
    "kmeans_sweep",
    "make_cluster",
    "report_sweep",
    "speedup_summary",
]
