"""Runtime property probes for combine functions.

Static rules (:mod:`repro.analysis.rules`) catch syntactic smells; the
probes here check the *semantic* contract directly: a combine function
folds partial aggregates that arrive in arbitrary order and grouping,
so permuting or regrouping its inputs must not change its output.
That property is what licenses map-side combining today and the
arbitrary-arrival asynchronous discipline the ROADMAP's ``AsyncBackend``
will add.

:func:`probe_commutative` exercises a combiner against random
permutations and regroupings of sampled value lists.  It accepts every
spelling the engine does:

* a named aggregation string (``"sum"`` / ``"min"`` / ``"max"``),
* a classic ``fn(key, values, ctx)`` function emitting via ``ctx``,
* a plain fold ``fn(values) -> value``.

Floating-point folds are compared with tolerances (permutations of a
float sum differ in the last ulps by design), so the probe checks
*semantic* order-insensitivity, not bit equality.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

__all__ = [
    "ProbeResult",
    "probe_commutative",
    "probe_permutation_invariant",
    "results_equal",
]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one property probe."""

    #: Human-readable name of the probed function.
    function: str
    #: Number of (sample, permutation/regrouping) checks executed.
    checks: int
    #: Descriptions of every failed check (empty when the probe passed).
    failures: "tuple[str, ...]" = field(default=())

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} failures"
        return f"probe({self.function}): {self.checks} checks, {status}"


def results_equal(a: Any, b: Any, *, rtol: float = 1e-9,
                  atol: float = 1e-12) -> bool:
    """Recursive equality with float tolerance.

    Floats and float arrays compare with ``rtol``/``atol``; sequences
    compare elementwise; everything else compares with ``==``.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.shape != b_arr.shape:
            return False
        if a_arr.dtype.kind in "fc" or b_arr.dtype.kind in "fc":
            return bool(np.allclose(a_arr, b_arr, rtol=rtol, atol=atol,
                                    equal_nan=True))
        return bool(np.array_equal(a_arr, b_arr))
    if isinstance(a, float) or isinstance(b, float):
        try:
            return bool(np.isclose(a, b, rtol=rtol, atol=atol,
                                   equal_nan=True))
        except TypeError:
            return a == b
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(results_equal(a[k], b[k], rtol=rtol, atol=atol)
                        for k in a))
    if (isinstance(a, (list, tuple)) and isinstance(b, (list, tuple))):
        return (len(a) == len(b)
                and all(results_equal(x, y, rtol=rtol, atol=atol)
                        for x, y in zip(a, b)))
    return a == b


class _Pairs(list):
    """Marker for a multi-emission combiner result (not regroupable)."""


class _CaptureCtx:
    """Minimal TaskContext stand-in: records emissions, counts nothing."""

    __slots__ = ("pairs",)

    def __init__(self) -> None:
        self.pairs: "list[tuple[Any, Any]]" = []

    def emit(self, key: Any, value: Any) -> None:
        self.pairs.append((key, value))

    # Accounting hooks job functions may call; no-ops here.
    def incr(self, counter: str, amount: int = 1) -> None:
        pass

    def add_ops(self, n: float) -> None:
        pass


def _fold_for(fn: Any, trial_values: list
              ) -> "tuple[str, Callable[[Any, list], Any]]":
    """Normalise a combiner spelling to ``(name, fold(key, values))``."""
    if isinstance(fn, str):
        from repro.engine.columnar import resolve_agg

        ufunc = resolve_agg(fn)

        def agg_fold(key: Any, values: list) -> Any:
            return ufunc.reduce(np.asarray(values, dtype=np.float64))

        return f"agg:{fn}", agg_fold

    if not callable(fn):
        raise TypeError(
            f"combine function must be callable or a named aggregation, "
            f"got {type(fn).__name__}")
    name = getattr(fn, "__qualname__", None) or type(fn).__name__

    def ctx_fold(key: Any, values: list) -> Any:
        ctx = _CaptureCtx()
        out = fn(key, list(values), ctx)
        if len(ctx.pairs) == 1:
            # The canonical combiner shape: one partial per key.  Return
            # the bare value so regroupings can feed partials back in.
            return ctx.pairs[0][1]
        if ctx.pairs:
            # Multi-emission: compare in a canonical order; regrouping
            # is skipped for these (partials are not re-foldable).
            return _Pairs(sorted(ctx.pairs, key=repr))
        return out

    def plain_fold(key: Any, values: list) -> Any:
        return fn(list(values))

    # Classic (key, values, ctx) vs plain values->value fold: decide by
    # trying the 3-arg form once on the first sample — signature
    # inspection misleads for builtins, *args, and bound methods.
    try:
        ctx_fold(0, list(trial_values))
    except TypeError:
        try:
            plain_fold(0, list(trial_values))
        except TypeError:
            raise TypeError(
                f"cannot call {name}: expected fn(key, values, ctx) or "
                f"fn(values)") from None
        except Exception:
            pass  # called fine, failed in the body: plain spelling
        return name, plain_fold
    except Exception:
        pass  # called fine, failed in the body: classic spelling
    return name, ctx_fold


def _default_samples(rng: random.Random) -> "list[list[Any]]":
    """Value lists spanning the shapes combiners see in practice."""
    samples: "list[list[Any]]" = [
        [1.0], [0.0, 0.0], [1, 2, 3, 4, 5],
        [-3.5, 2.25, 7.75, -1.0], [1e6, -1e6, 3.0, 4.0],
    ]
    for n in (2, 3, 7, 16):
        samples.append([rng.uniform(-100.0, 100.0) for _ in range(n)])
        samples.append([rng.randrange(-50, 50) for _ in range(n)])
    return samples


def _regroupings(values: list, rng: random.Random,
                 rounds: int) -> "list[list[list]]":
    """Random partitions of ``values`` into contiguous chunks."""
    out = []
    for _ in range(rounds):
        if len(values) < 2:
            out.append([list(values)])
            continue
        cuts = sorted(rng.sample(range(1, len(values)),
                                 rng.randrange(1, len(values))))
        out.append([values[a:b] for a, b in
                    itertools.pairwise([0, *cuts, len(values)])])
    return out


def probe_commutative(fn: Any,
                      samples: "Optional[Sequence[Sequence[Any]]]" = None,
                      *, rounds: int = 8, seed: int = 2010,
                      rtol: float = 1e-9, atol: float = 1e-12,
                      key: Any = 0, regroup: bool = True) -> ProbeResult:
    """Check that a combiner is order- and grouping-insensitive.

    For every sample value list the probe compares the fold of the
    original order against ``rounds`` random permutations (commutativity)
    and ``rounds`` random regroupings folded in two stages — chunks
    first, then the chunk results (associativity + idempotence of the
    combine with respect to itself, i.e. the map-side-combining
    contract).

    Parameters
    ----------
    fn:
        Combiner in any engine spelling (see module docstring).
    samples:
        Value lists to fold; defaults to a built-in deterministic mix of
        float and int lists.
    rounds:
        Permutations and regroupings tried per sample.
    seed:
        Seed for the sample/permutation RNG — the probe itself obeys the
        determinism rules it enforces.
    key:
        Key passed to classic ``(key, values, ctx)`` combiners.
    regroup:
        Also check two-stage regrouped folds.  Disable for combiners
        that are order-insensitive but not decomposable — e.g. a
        ``",".join(sorted(values))`` whose partials are strings, not
        re-foldable values.

    Returns
    -------
    ProbeResult
        ``result.ok`` is True when every check agreed within tolerance.
    """
    rng = random.Random(seed)
    if samples is None:
        samples = _default_samples(rng)
    samples = [list(s) for s in samples]
    name, fold = _fold_for(fn, samples[0] if samples else [1.0, 2.0])

    checks = 0
    failures: "list[str]" = []
    for sample in samples:
        values = list(sample)
        try:
            reference = fold(key, values)
        except Exception as exc:  # sample outside the fn's domain
            failures.append(
                f"fold of {values!r} raised {type(exc).__name__}: {exc}")
            checks += 1
            continue

        for _ in range(rounds):
            permuted = list(values)
            rng.shuffle(permuted)
            checks += 1
            got = fold(key, permuted)
            if not results_equal(got, reference, rtol=rtol, atol=atol):
                failures.append(
                    f"permutation changed the result: fold({values!r}) = "
                    f"{reference!r} but fold({permuted!r}) = {got!r}")
                break

        if not regroup or isinstance(reference, _Pairs):
            continue  # partials are not re-foldable values
        for grouping in _regroupings(values, rng, rounds):
            checks += 1
            try:
                partials = [fold(key, chunk) for chunk in grouping]
                got = fold(key, partials)
            except Exception as exc:
                failures.append(
                    f"regrouped fold over {grouping!r} raised "
                    f"{type(exc).__name__}: {exc}")
                break
            if not results_equal(got, reference, rtol=rtol, atol=atol):
                failures.append(
                    f"regrouping changed the result: fold({values!r}) = "
                    f"{reference!r} but refolding {grouping!r} = {got!r}")
                break

    return ProbeResult(function=name, checks=checks,
                       failures=tuple(failures))


def probe_permutation_invariant(call: "Callable[[list], Any]",
                                items: "Sequence[Any]", *,
                                rounds: int = 8, seed: int = 2010,
                                rtol: float = 1e-9, atol: float = 1e-12,
                                name: str = "call") -> ProbeResult:
    """Check ``call(items)`` is invariant under permutations of ``items``.

    The generic form of :func:`probe_commutative` for functions that
    consume a whole collection at once — e.g. a block spec's
    ``global_combine(state, reports)``, where worker reports arrive in
    scheduler-dependent order.  ``call`` must build any mutable state
    fresh on each invocation.
    """
    rng = random.Random(seed)
    items = list(items)
    reference = call(list(items))
    checks = 0
    failures: "list[str]" = []
    for _ in range(rounds):
        permuted = list(items)
        rng.shuffle(permuted)
        checks += 1
        got = call(permuted)
        if not results_equal(got, reference, rtol=rtol, atol=atol):
            failures.append(
                f"permuting the inputs changed the result: {reference!r} "
                f"vs {got!r}")
            break
    return ProbeResult(function=name, checks=checks,
                       failures=tuple(failures))
