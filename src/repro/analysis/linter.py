"""Linting runtime objects: jobs, specs, backends, bare callables.

This module turns the static rules (:mod:`~repro.analysis.rules`), the
process-hazard scan (RPR031) and the columnar-eligibility explainer
(RPR041) into one entry point per engine object:

* :func:`lint_callable` — one function in one role,
* :func:`lint_job` — an engine :class:`~repro.engine.job.Job` (follows
  :class:`~repro.core.gmap.GmapFunction`/``GreduceFunction`` wrappers
  back to their spec),
* :func:`lint_spec` — an :class:`~repro.core.api.AsyncMapReduceSpec` or
  :class:`~repro.core.api.BlockSpec`,
* :func:`lint_backend` — an :class:`~repro.core.loop.IterationBackend`,

each returning a :class:`LintReport`.  :func:`enforce` applies the
``lint="off"|"warn"|"strict"`` knob shared by
:class:`~repro.engine.job.JobConf` and ``Session.submit``: ``warn``
emits a :class:`LintWarning` per finding, ``strict`` raises
:class:`LintError` when any error-severity finding is present — before
any task runs.
"""

from __future__ import annotations

import ast
import inspect
import io
import pickle
import random
import textwrap
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import FunctionLint, analyze_function

__all__ = [
    "LINT_MODES",
    "LintError",
    "LintReport",
    "LintWarning",
    "enforce",
    "lint_backend",
    "lint_callable",
    "lint_job",
    "lint_spec",
]

#: The three enforcement levels of the ``lint`` knob.
LINT_MODES = ("off", "warn", "strict")


class LintWarning(UserWarning):
    """Emitted per finding under ``lint="warn"``."""


def _plural(n: int, noun: str) -> str:
    return f"{n} {noun}" if n == 1 else f"{n} {noun}s"


@dataclass(frozen=True)
class LintReport:
    """All findings for one linted object."""

    #: What was linted (job/spec name) — used in messages.
    subject: str
    findings: "tuple[Finding, ...]"

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def by_severity(self, severity: Severity) -> "tuple[Finding, ...]":
        return tuple(f for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> "tuple[Finding, ...]":
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> "tuple[Finding, ...]":
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when nothing at WARNING severity or above was found."""
        return not any(f.severity >= Severity.WARNING for f in self.findings)

    def format(self) -> str:
        if not self.findings:
            return f"{self.subject}: clean"
        lines = [f.format() for f in self.findings]
        lines.append(
            f"{self.subject}: {_plural(len(self.findings), 'finding')} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)")
        return "\n".join(lines)


class LintError(ValueError):
    """Raised by ``lint="strict"`` before any task of the job runs."""

    def __init__(self, report: LintReport) -> None:
        self.report = report
        errors = report.errors
        summary = "; ".join(
            f"{f.code} {f.message} [{f.function}]" for f in errors[:3])
        if len(errors) > 3:
            summary += f"; and {len(errors) - 3} more"
        super().__init__(
            f"lint=strict rejected {report.subject}: "
            f"{_plural(len(errors), 'error-severity finding')} — {summary}")


def enforce(report: LintReport, mode: str) -> LintReport:
    """Apply a lint mode to a report; returns the report for chaining."""
    if mode not in LINT_MODES:
        raise ValueError(f"lint must be one of {LINT_MODES}, got {mode!r}")
    if mode == "off":
        return report
    if mode == "strict" and report.errors:
        raise LintError(report)
    for finding in report.findings:
        if finding.severity >= Severity.WARNING:
            warnings.warn(f"{report.subject}: {finding.format()} "
                          f"(hint: {finding.hint})",
                          LintWarning, stacklevel=3)
    return report


# ----------------------------------------------------------------------
# Static analysis of a runtime callable
# ----------------------------------------------------------------------

def _qualname(fn: Any) -> str:
    return (getattr(fn, "__qualname__", None)
            or getattr(fn, "__name__", None)
            or type(fn).__name__)


def _static_findings(fn: Any, role: str, qualname: str) -> "list[Finding]":
    """Run the AST rules over a live callable's source, best effort.

    Builtins, C extensions, and lambdas whose enclosing expression does
    not parse standalone yield no static findings (the hazard scan and
    runtime probes still apply).
    """
    try:
        lines, first_line = inspect.getsourcelines(fn)
        filename = inspect.getsourcefile(fn) or "<unknown>"
    except (OSError, TypeError):
        return []
    try:
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except SyntaxError:
        return []
    node = next((n for n in ast.walk(tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
                None)
    if node is None:
        return []
    return analyze_function(FunctionLint(
        node=node, role=role, qualname=qualname, filename=filename,
        line_offset=first_line - 1))


# ----------------------------------------------------------------------
# RPR031 — process-executor hazards
# ----------------------------------------------------------------------

def _lock_types() -> "tuple[type, ...]":
    import threading

    return (type(threading.Lock()), type(threading.RLock()),
            threading.Event, threading.Condition, threading.Semaphore,
            threading.Barrier)


#: Engine/cluster handle types that must never ride inside a job
#: function shipped to a worker process (matched by type name so the
#: check stays import-light).
_HANDLE_TYPE_NAMES = frozenset({
    "SimCluster", "MapReduceRuntime", "Session", "SessionScheduler",
    "JobHandle", "IterationLoop", "StateStore", "DFSStateStore",
    "OnlineStateStore", "ThreadPoolExecutor", "ProcessPoolExecutor",
})


def _known_hazard(value: Any) -> Optional[str]:
    """Why ``value`` must not be captured by a job function, or None."""
    if isinstance(value, _lock_types()):
        return f"a synchronization primitive ({type(value).__name__})"
    if isinstance(value, io.IOBase):
        return "an open file object"
    if isinstance(value, (np.random.Generator, np.random.RandomState)):
        return (f"a live numpy RNG ({type(value).__name__}) — its stream "
                f"diverges across processes and replays")
    if isinstance(value, random.Random):
        return "a live random.Random — its stream diverges across replays"
    for klass in type(value).__mro__:
        if klass.__name__ in _HANDLE_TYPE_NAMES:
            return f"a {klass.__name__} handle"
    return None


def _captures(fn: Any) -> "Iterable[tuple[str, Any]]":
    """``(where, value)`` pairs of everything a callable carries along."""
    if inspect.ismethod(fn):
        yield f"bound instance {type(fn.__self__).__name__}", fn.__self__
        fn = fn.__func__
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                yield f"closure cell {name!r}", cell.cell_contents
            except ValueError:  # empty cell
                continue
    for default in getattr(fn, "__defaults__", None) or ():
        yield "default argument", default
    for name, default in (getattr(fn, "__kwdefaults__", None) or {}).items():
        yield f"default argument {name!r}", default
    if not inspect.isroutine(fn) and hasattr(fn, "__dict__"):
        for name, value in vars(fn).items():
            yield f"attribute {name!r}", value


def _hazard_findings(fn: Any, qualname: str, *,
                     pickle_probe: bool = True) -> "list[Finding]":
    """RPR031: state the callable captures that cannot ship to a worker.

    Known-bad types (locks, files, live RNGs, cluster/runtime handles)
    are reported by name; anything else captured in a closure cell or
    default is pickle-probed when ``pickle_probe`` is on.  Attributes of
    callable *objects* get the type check only — probing would serialise
    whole graphs.
    """
    findings: "list[Finding]" = []
    filename, line = "<unknown>", 0
    try:
        line = inspect.getsourcelines(fn)[1]
        filename = inspect.getsourcefile(fn) or "<unknown>"
    except (OSError, TypeError):
        pass
    seen: "set[int]" = set()

    def scan(where: str, value: Any, depth: int, probe: bool) -> None:
        if id(value) in seen:
            return
        seen.add(id(value))
        hazard = _known_hazard(value)
        if hazard is not None:
            findings.append(Finding(
                code="RPR031",
                message=f"{where} holds {hazard}",
                function=qualname, filename=filename, line=line))
            return
        if (probe and not inspect.isroutine(value)
                and not inspect.isclass(value)
                and not inspect.ismodule(value)):
            try:
                pickle.dumps(value)
            except Exception as exc:
                findings.append(Finding(
                    code="RPR031",
                    message=f"{where} is not picklable "
                            f"({type(exc).__name__}: {exc})",
                    function=qualname, filename=filename, line=line))
                return
        # Recurse one level for picklable-but-wrong captures (a live
        # RNG pickles fine; its stream still diverges across replays).
        if depth > 0 and hasattr(value, "__dict__") \
                and not inspect.ismodule(value) and not inspect.isclass(value):
            for name, attr in vars(value).items():
                scan(f"{where}.{name}", attr, depth - 1, False)

    for where, value in _captures(fn):
        scan(where, value, 1, pickle_probe)
    return findings


# ----------------------------------------------------------------------
# RPR041 — columnar eligibility explainer
# ----------------------------------------------------------------------

def _info(message: str, subject: Any) -> Finding:
    filename, line = "<unknown>", 0
    try:
        target = subject if inspect.isroutine(subject) else type(subject)
        line = inspect.getsourcelines(target)[1]
        filename = inspect.getsourcefile(target) or "<unknown>"
    except (OSError, TypeError):
        pass
    return Finding(code="RPR041", message=message,
                   function=_qualname(subject), filename=filename, line=line)


def explain_columnar_spec(spec: Any) -> "list[Finding]":
    """Why an :class:`AsyncMapReduceSpec` is not on the columnar path."""
    from repro.core.api import AsyncMapReduceSpec, BlockSpec

    if isinstance(spec, BlockSpec):
        return []  # block specs are already vectorised end to end
    if not isinstance(spec, AsyncMapReduceSpec):
        return []
    findings: "list[Finding]" = []
    cls = type(spec)
    if not getattr(spec, "supports_columnar", False):
        findings.append(_info(
            "spec does not set supports_columnar=True, so every round "
            "ships records pair-at-a-time", spec))
    for hook in ("gmap_emit_columnar", "columnar_reduce"):
        if getattr(cls, hook) is getattr(AsyncMapReduceSpec, hook):
            findings.append(_info(
                f"spec does not override {hook}() "
                f"(required for the columnar fast path)", spec))
    if (getattr(spec, "supports_columnar", False)
            and getattr(spec, "columnar_combine", None) is None):
        findings.append(_info(
            "spec sets no columnar_combine, so duplicate keys ship "
            "unfolded through the shuffle (declare 'sum'/'min'/'max' "
            "when the reduce is one of them)", spec))
    return findings


def explain_columnar_job(job: Any) -> "list[Finding]":
    """Why an engine :class:`Job` is not on the columnar fast path."""
    from repro.engine.columnar import ColumnarReduce

    findings: "list[Finding]" = []
    if not job.conf.columnar:
        findings.append(_info(
            "JobConf.columnar=False forces the object path even for "
            "typed batches", job.map_fn))
    if callable(job.reduce_fn) and not isinstance(job.reduce_fn,
                                                  ColumnarReduce):
        findings.append(_info(
            "reduce_fn is an opaque callable; a named aggregation "
            "('sum'/'min'/'max') or ColumnarReduce would run vectorised",
            job.reduce_fn))
    if job.combine_fn is not None and callable(job.combine_fn):
        findings.append(_info(
            "combine_fn is an opaque callable; columnar map-side "
            "combining needs a named aggregation", job.combine_fn))
    try:
        src = textwrap.dedent(inspect.getsource(job.map_fn))
    except (OSError, TypeError):
        src = ""
    if src and "emit_block" not in src:
        findings.append(_info(
            "map_fn never calls ctx.emit_block — typed batches are what "
            "the columnar shuffle routes vectorised (string keys "
            "qualify too: emit_block dictionary-encodes them through a "
            "StringDictionary)", job.map_fn))
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def lint_callable(fn: Any, role: str, *,
                  qualname: "str | None" = None) -> "list[Finding]":
    """Static rules + hazard scan for one callable in one role."""
    name = qualname or _qualname(fn)
    findings = _static_findings(fn, role, name)
    findings.extend(_hazard_findings(fn, name))
    return findings


#: AsyncMapReduceSpec / BlockSpec methods linted when implemented, with
#: their roles ("gmap_emit" orders the global shuffle's input, so it
#: follows the map rules).
_SPEC_METHODS = (
    ("lmap", "map"),
    ("lreduce", "reduce"),
    ("greduce", "reduce"),
    ("gmap_emit", "map"),
    ("global_combine", "combine"),
)


def lint_spec(spec: Any) -> LintReport:
    """Lint every user function of a §IV spec (either flavour)."""
    from repro.core.api import AsyncMapReduceSpec, BlockSpec

    findings: "list[Finding]" = []
    cls = type(spec)
    for method, role in _SPEC_METHODS:
        impl = getattr(cls, method, None)
        if impl is None:
            continue
        # Skip framework defaults (e.g. the base gmap_emit): only code
        # the user wrote gets linted.
        for base in (AsyncMapReduceSpec, BlockSpec):
            if getattr(base, method, None) is impl:
                impl = None
                break
        if impl is None or getattr(impl, "__isabstractmethod__", False):
            continue
        findings.extend(_static_findings(
            impl, role, f"{cls.__name__}.{method}"))
    findings.extend(_hazard_findings(spec, cls.__name__, pickle_probe=False))
    findings.extend(explain_columnar_spec(spec))
    return LintReport(subject=cls.__name__, findings=_dedupe(findings))


def lint_job(job: Any) -> LintReport:
    """Lint an engine :class:`~repro.engine.job.Job`.

    Spec-wrapping callables (:class:`~repro.core.gmap.GmapFunction`,
    ``GreduceFunction``) are followed back to their spec so the real
    user functions are what gets analyzed.
    """
    from repro.core.gmap import GmapFunction, GreduceFunction

    findings: "list[Finding]" = []
    specs: "list[Any]" = []

    def visit(fn: Any, role: str) -> None:
        if isinstance(fn, (GmapFunction, GreduceFunction)):
            if not any(fn.spec is s for s in specs):
                specs.append(fn.spec)
            return
        findings.extend(lint_callable(fn, role))

    visit(job.map_fn, "map")
    if callable(job.reduce_fn):
        visit(job.reduce_fn, "reduce")
    if job.combine_fn is not None and callable(job.combine_fn):
        visit(job.combine_fn, "combine")
    for spec in specs:
        findings.extend(lint_spec(spec).findings)
    if not specs:
        # Spec-backed jobs already carry spec-level columnar findings.
        findings.extend(explain_columnar_job(job))
    return LintReport(subject=job.conf.name, findings=_dedupe(findings))


def lint_backend(backend: Any) -> LintReport:
    """Lint an :class:`~repro.core.loop.IterationBackend` via its spec."""
    spec = getattr(backend, "spec", None)
    if spec is None:
        return LintReport(subject=type(backend).__name__, findings=())
    report = lint_spec(spec)
    return LintReport(subject=f"{type(backend).__name__}"
                              f"({report.subject})",
                      findings=report.findings)


def _dedupe(findings: "Iterable[Finding]") -> "tuple[Finding, ...]":
    seen: "set[Finding]" = set()
    out: "list[Finding]" = []
    for f in findings:
        if f not in seen:
            seen.add(f)
            out.append(f)
    return tuple(out)
