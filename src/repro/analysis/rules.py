"""AST rules over user job functions.

:func:`analyze_function` runs the static rule families of
:mod:`repro.analysis.findings` over one parsed ``def``.  The rules are
deliberately *narrow*: each pattern is a construct whose presence in a
map/reduce/combine function is near-certain to break deterministic
replay, order-insensitive combining, or process-executor shipping —
the analyzer's job is to prove the bundled and user specs clean, so a
false positive is as much a bug as a false negative.  (The runtime
:mod:`~repro.analysis.probe` complements these with property testing
for the semantic cases no static rule can decide.)

Which rules run depends on the function's *role*:

========  ==========================================================
role      rules
========  ==========================================================
map       RPR001, RPR002, RPR003, RPR011, RPR061 (captured
          accumulators double-count under re-execution), RPR071
          (cached cluster/store handles go stale across recovery)
reduce    the above + RPR012 (mutation of the aliased ``values``)
combine   the above + RPR021/RPR022 (commutativity/associativity)
          + RPR051 (in-place state writes, unsafe without the barrier)
========  ==========================================================

Role assignment is by function name (see :func:`role_for_name`): the
engine API's ``map_fn``/``reduce_fn``/``combine_fn``, the §IV spec
methods ``lmap``/``lreduce``/``greduce``, the block-spec
``global_combine``, and the ``*_map``/``*_reduce``/``*_combine``
naming convention the bundled apps follow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.analysis.findings import Finding

__all__ = ["FunctionLint", "analyze_function", "role_for_name", "ROLES"]

#: The three job-function roles the analyzer knows.
ROLES = ("map", "reduce", "combine")

#: Exact function names -> role.
_EXACT_ROLE = {
    "lmap": "map",
    "map_fn": "map",
    "gmap": "map",
    "lreduce": "reduce",
    "greduce": "reduce",
    "reduce_fn": "reduce",
    "combine_fn": "combine",
    "global_combine": "combine",
}

#: Name-suffix conventions -> role (checked after the exact table).
_SUFFIX_ROLE = (
    ("_combiner", "combine"),
    ("_combine", "combine"),
    ("_reduce", "reduce"),
    ("_map", "map"),
)


def role_for_name(name: str) -> Optional[str]:
    """The lint role a function name implies, or ``None``."""
    role = _EXACT_ROLE.get(name)
    if role is not None:
        return role
    for suffix, srole in _SUFFIX_ROLE:
        if name.endswith(suffix) and name != suffix:
            return srole
    return None


@dataclass(frozen=True)
class FunctionLint:
    """One function to analyze: its AST plus reporting context."""

    node: ast.AST  # FunctionDef / AsyncFunctionDef
    role: str
    qualname: str
    filename: str = "<unknown>"
    #: Added to snippet-relative line numbers (0 when the AST came from
    #: the whole file; ``firstlineno - 1`` when from a dedented snippet).
    line_offset: int = 0


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _references(node: ast.AST, name: str) -> bool:
    """True when the expression mentions ``name`` anywhere."""
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


def _target_names(target: ast.AST) -> "set[str]":
    """Names bound by a loop target (handles tuple unpacking)."""
    return {n.id for n in ast.walk(target)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)}


def _positional_args(fn: ast.AST) -> "list[str]":
    args = fn.args  # type: ignore[attr-defined]
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _values_param(fn: ast.AST) -> Optional[str]:
    """The ``values`` parameter of a reduce/combine-shaped signature.

    Both spellings put it second after dropping a leading ``self``:
    ``(key, values, ctx)`` and ``global_combine(self, state, reports)``.
    """
    names = _positional_args(fn)
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[1] if len(names) >= 2 else None


def _iterates_set(iter_node: ast.AST) -> bool:
    """True when a loop's iterable is a set expression."""
    if isinstance(iter_node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(iter_node, ast.Call):
        return _dotted(iter_node.func) in ("set", "frozenset")
    return False


def _loops(fn: ast.AST) -> "Iterator[tuple[ast.AST, ast.AST]]":
    """All ``(target_or_None, iterable)`` pairs: for-loops and
    comprehension generators."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.target, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.target, gen.iter


# ----------------------------------------------------------------------
# RPR001 — nondeterministic calls
# ----------------------------------------------------------------------

#: Call targets that are nondeterministic regardless of arguments.
_NONDET_EXACT = frozenset({
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: time-module clock reads (``time.sleep`` does not change output).
_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})

#: numpy RNG constructors that are deterministic *when seeded*.
_SEEDED_OK = frozenset({"default_rng", "SeedSequence", "RandomState",
                        "Generator", "seed"})


def _nondet_call(call: ast.Call) -> Optional[str]:
    """A description of why this call is nondeterministic, or None."""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    if dotted in _NONDET_EXACT:
        return f"call to {dotted}()"
    root, _, rest = dotted.partition(".")
    if root == "random" and rest:
        return f"call to {dotted}() (process-global random state)"
    if root == "secrets" and rest:
        return f"call to {dotted}() (entropy source)"
    if root == "time" and rest in _TIME_FNS:
        return f"call to {dotted}() (clock read)"
    if root in ("np", "numpy"):
        sub = rest.split(".")
        if len(sub) >= 2 and sub[0] == "random":
            fn = sub[-1]
            if fn in _SEEDED_OK:
                if call.args or call.keywords:
                    return None  # explicitly seeded: deterministic
                return (f"call to {dotted}() without a seed")
            return f"call to {dotted}() (global numpy RNG)"
    return None


def _check_nondeterminism(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            why = _nondet_call(node)
            if why is not None:
                yield "RPR001", f"nondeterministic {why}", node
            elif (_dotted(node.func) == "id" and node.args
                    and not node.keywords):
                yield ("RPR003",
                       "id() varies across processes and replay attempts",
                       node)


# ----------------------------------------------------------------------
# RPR002 — set-iteration emission order
# ----------------------------------------------------------------------

def _check_set_iteration(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    for _target, iter_node in _loops(info.node):
        if _iterates_set(iter_node):
            yield ("RPR002",
                   "iteration over a set: emission order depends on hash "
                   "seeding (wrap in sorted(...))",
                   iter_node)


# ----------------------------------------------------------------------
# RPR011 — writes that escape the task
# ----------------------------------------------------------------------

def _self_name(fn: ast.AST) -> Optional[str]:
    names = _positional_args(fn)
    return names[0] if names and names[0] in ("self", "cls") else None


def _is_self_attr(node: ast.AST, self_name: Optional[str]) -> bool:
    """True for ``self.x`` / ``self.x[...]`` (arbitrarily nested)."""
    if self_name is None:
        return False
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    # The chain must terminate at the method's self parameter... but the
    # first hop off self is what makes it instance state, so require at
    # least one Attribute above (checked by the caller's node type).
    return isinstance(node, ast.Name) and node.id == self_name


def _check_purity(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    fn = info.node
    self_name = _self_name(fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            yield ("RPR011",
                   f"'global {', '.join(node.names)}' in a job function",
                   node)
        elif isinstance(node, ast.Nonlocal):
            yield ("RPR011",
                   f"'nonlocal {', '.join(node.names)}' in a job function",
                   node)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if (isinstance(t, (ast.Attribute, ast.Subscript))
                        and _is_self_attr(t, self_name)):
                    yield ("RPR011",
                           f"write to {self_name} state from a job function",
                           t)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if (isinstance(t, (ast.Attribute, ast.Subscript))
                        and _is_self_attr(t, self_name)):
                    yield ("RPR011",
                           f"delete of {self_name} state from a job function",
                           t)


# ----------------------------------------------------------------------
# RPR012 — mutation of the aliased values list
# ----------------------------------------------------------------------

_MUTATORS = frozenset({
    "sort", "append", "extend", "insert", "pop", "remove", "clear",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
})


def _check_values_mutation(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    values = _values_param(info.node)
    if values is None:
        return
    for node in ast.walk(info.node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == values
                and node.func.attr in _MUTATORS):
            yield ("RPR012",
                   f"{values}.{node.func.attr}() mutates the aliased "
                   f"values list in place",
                   node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if (isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == values):
                    yield ("RPR012",
                           f"assignment into {values}[...] mutates the "
                           f"aliased values list",
                           t)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if (isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == values):
                    yield ("RPR012",
                           f"del {values}[...] mutates the aliased values "
                           f"list",
                           t)


# ----------------------------------------------------------------------
# RPR021/RPR022 — combiner algebra
# ----------------------------------------------------------------------

_NONCOMM_OPS = (ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)
_OPERATOR_NONCOMM = frozenset({
    "operator.sub", "operator.truediv", "operator.floordiv",
    "operator.mod", "operator.pow", "operator.isub", "operator.itruediv",
})


def _op_name(op: ast.AST) -> str:
    return {ast.Sub: "-", ast.Div: "/", ast.FloorDiv: "//",
            ast.Mod: "%", ast.Pow: "**"}.get(type(op), "?")


def _lambda_is_noncommutative(lam: ast.Lambda) -> bool:
    """``lambda a, b: a - b`` style folds."""
    body = lam.body
    params = [a.arg for a in lam.args.args]
    return (isinstance(body, ast.BinOp)
            and isinstance(body.op, _NONCOMM_OPS)
            and len(params) == 2
            and _references(body, params[0])
            and _references(body, params[1]))


def _check_combiner_algebra(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    fn = info.node
    values = _values_param(fn)
    if values is None:
        return

    # Accumulation via a non-commutative operator inside a loop over the
    # partial values.  Index bookkeeping (`i -= 1`) is exempt because
    # the operand must involve the loop variable or the values list.
    for target, iter_node in _loops(fn):
        if not _references(iter_node, values):
            continue
        loop_names = _target_names(target) | {values}
        body = getattr(iter_node, "parent_body", None)
        # Walk the whole loop body (for-loops only; comprehension
        # accumulation cannot aug-assign).
        owner = next((n for n in ast.walk(fn)
                      if isinstance(n, (ast.For, ast.AsyncFor))
                      and n.iter is iter_node), None)
        if owner is None:
            continue
        del body
        for node in ast.walk(owner):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, _NONCOMM_OPS)
                    and any(_references(node.value, nm)
                            for nm in loop_names)):
                yield ("RPR021",
                       f"'{_op_name(node.op)}=' accumulation over {values} "
                       f"is not commutative",
                       node)
            elif (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, _NONCOMM_OPS)
                    and _references(node.value.left, node.targets[0].id)
                    and any(_references(node.value.right, nm)
                            for nm in loop_names)):
                yield ("RPR021",
                       f"'acc = acc {_op_name(node.value.op)} v' "
                       f"accumulation over {values} is not commutative",
                       node)

    for node in ast.walk(fn):
        # functools.reduce with a non-commutative fold.
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("reduce", "functools.reduce") and node.args:
                fold = node.args[0]
                fold_dotted = _dotted(fold)
                if fold_dotted in _OPERATOR_NONCOMM:
                    yield ("RPR021",
                           f"reduce({fold_dotted}, ...) is order-sensitive",
                           node)
                elif (isinstance(fold, ast.Lambda)
                        and _lambda_is_noncommutative(fold)):
                    yield ("RPR021",
                           "reduce() with a non-commutative lambda fold",
                           node)
            # Order-dependent join over the raw values.
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join" and node.args):
                arg = node.args[0]
                sorted_wrapped = any(
                    isinstance(n, ast.Call)
                    and _dotted(n.func) in ("sorted", "list.sort")
                    for n in ast.walk(arg))
                if _references(arg, values) and not sorted_wrapped:
                    yield ("RPR022",
                           f"join over {values} concatenates in arrival "
                           f"order",
                           node)
        # values[0] - values[1] style positional arithmetic.
        elif (isinstance(node, ast.BinOp)
                and isinstance(node.op, _NONCOMM_OPS)
                and isinstance(node.left, ast.Subscript)
                and isinstance(node.left.value, ast.Name)
                and node.left.value.id == values
                and isinstance(node.right, ast.Subscript)
                and isinstance(node.right.value, ast.Name)
                and node.right.value.id == values):
            yield ("RPR021",
                   f"positional arithmetic {values}[i] "
                   f"{_op_name(node.op)} {values}[j] assumes an arrival "
                   f"order",
                   node)


# ----------------------------------------------------------------------
# RPR051 — async-unsafe in-place state update
# ----------------------------------------------------------------------

def _state_param(fn: ast.AST) -> Optional[str]:
    """The ``state`` parameter of a combine-shaped signature: first
    positional after dropping a leading ``self``
    (``global_combine(self, state, reports)``)."""
    names = _positional_args(fn)
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if len(names) >= 2 else None


def _check_async_safety(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    """Subscript stores into the *state argument itself* while folding
    the partial values.

    Under the barrier this merely aliases the previous round's state;
    under :class:`~repro.core.AsyncBackend` the same array is a live
    view other partitions consume mid-fold, so partial writes leak.
    Writes into a local copy (``new = state.copy()``) never match: the
    target name must be the state parameter, not a derived local.
    """
    fn = info.node
    state = _state_param(fn)
    values = _values_param(fn)
    if state is None or values is None:
        return
    for owner in ast.walk(fn):
        if not isinstance(owner, (ast.For, ast.AsyncFor)):
            continue
        if not _references(owner.iter, values):
            continue
        for node in ast.walk(owner):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if (isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == state):
                    yield ("RPR051",
                           f"write into {state}[...] while folding {values}: "
                           f"the async backend shares this view with "
                           f"concurrent readers",
                           t)


# ----------------------------------------------------------------------
# RPR061 — re-execution safety (captured mutable accumulators)
# ----------------------------------------------------------------------

#: Module-ish roots whose "mutator"-named attributes are ordinary
#: functions (``np.append`` returns a new array, ``random.shuffle`` is
#: RPR001's business) — never accumulator containers.
_MODULE_ROOTS = frozenset({
    "np", "numpy", "math", "os", "sys", "time", "heapq", "operator",
    "itertools", "functools", "collections", "random", "bisect", "json",
})


def _bound_names(fn: ast.AST) -> "set[str]":
    """Names bound inside the function: parameters, assignment/loop/
    ``with``/``except`` targets, nested defs, and imports.

    ``global``/``nonlocal`` declarations *unbind* their names — writes
    through them outlive the attempt exactly like closure mutation.
    """
    args = fn.args  # type: ignore[attr-defined]
    bound = set(_positional_args(fn))
    bound.update(a.arg for a in args.kwonlyargs)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared: "set[str]" = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if node is not fn:
                bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).partition(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
    return bound - declared


def _check_reexecution_safety(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    """Mutation of a container the function did not create or receive.

    A name that is neither a parameter nor bound anywhere in the body is
    a closure cell or module global; ``acc.append(...)`` or
    ``acc[k] += v`` through it accumulates across *attempts*.  The
    engine re-executes tasks — retry after a fault, and a speculative
    backup copy races the original with both running to completion — so
    the accumulator counts some inputs twice.  Containers created
    locally die with the attempt and never match.
    """
    fn = info.node
    bound = _bound_names(fn)

    def _free_root(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Name) and node.id not in bound
                and node.id not in _MODULE_ROOTS):
            return node.id
        return None

    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS):
            name = _free_root(node.func.value)
            if name is not None:
                yield ("RPR061",
                       f"{name}.{node.func.attr}() accumulates into "
                       f"captured state; a re-executed attempt (retry or "
                       f"speculative backup) repeats the update",
                       node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Subscript):
                    name = _free_root(t.value)
                    if name is not None:
                        yield ("RPR061",
                               f"store into captured {name}[...]; a "
                               f"re-executed attempt (retry or speculative "
                               f"backup) repeats the update",
                               t)


# ----------------------------------------------------------------------
# RPR071 — cached cluster/store handles (stale across failure recovery)
# ----------------------------------------------------------------------

#: Constructors whose result is a live execution-substrate handle.
_HANDLE_FACTORIES = frozenset({
    "SimCluster", "MapReduceRuntime", "Session", "WorkerPool",
    "OnlineStateStore", "DFSStateStore", "SimKVStore", "SimDFS",
})

#: Name fragments that mark an identifier as handle-like.  Deliberately
#: narrow: a free name must *look like* infrastructure before its use
#: is flagged, so captured plain data stays clean.
_HANDLE_FRAGMENTS = ("cluster", "runtime", "session", "kvstore",
                     "statestore", "state_store", "worker_pool", "store")


def _handleish_name(name: str) -> bool:
    lowered = name.lower()
    return any(frag in lowered for frag in _HANDLE_FRAGMENTS)


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_handle_expr(node: ast.AST) -> bool:
    """True when an expression evaluates to a cluster/store handle:
    a known constructor call, or a name/attribute that reads like one."""
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        return name in _HANDLE_FACTORIES or (
            name is not None and _handleish_name(name))
    name = _terminal_name(node)
    return name is not None and _handleish_name(name)


def _check_handle_caching(info: FunctionLint) -> "Iterator[tuple[str, str, ast.AST]]":
    """Cluster/store handles cached across task attempts.

    Failure recovery makes a cached handle silently wrong: a node death
    revives the worker under a new incarnation, tablet maps remap on
    splits/merges, and the process executor gives every worker its own
    divergent copy.  Two shapes are flagged: *storing* a handle where
    it outlives the attempt (assignment through a ``global``/
    ``nonlocal`` name, or a store into a captured container), and
    *using* a handle-named free name (the read side of the same cache).
    """
    fn = info.node
    bound = _bound_names(fn)
    declared: "set[str]" = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)

    def _free(name: "Optional[str]") -> bool:
        return name is not None and name not in bound \
            and name not in _MODULE_ROOTS

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            value = node.value
            if not _is_handle_expr(value):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Name) and t.id in declared:
                    yield ("RPR071",
                           f"handle cached in global {t.id}: a replayed "
                           f"attempt after a node death reuses the "
                           f"pre-failure handle",
                           t)
                elif isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = t
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if _free(_terminal_name(root)):
                        yield ("RPR071",
                               f"handle stored into captured "
                               f"{_terminal_name(root)}: the cache "
                               f"outlives the attempt and failure "
                               f"recovery",
                               t)
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and isinstance(node.func.value, ast.Name)):
            root = node.func.value.id
            if _free(root) and _handleish_name(root):
                yield ("RPR071",
                       f"call through cached handle {root}: after a node "
                       f"death the revived worker (new incarnation) no "
                       f"longer matches this handle's state",
                       node)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

_CHECKS_BY_ROLE = {
    "map": (_check_nondeterminism, _check_set_iteration, _check_purity,
            _check_reexecution_safety, _check_handle_caching),
    "reduce": (_check_nondeterminism, _check_set_iteration, _check_purity,
               _check_values_mutation, _check_reexecution_safety,
               _check_handle_caching),
    "combine": (_check_nondeterminism, _check_set_iteration, _check_purity,
                _check_values_mutation, _check_combiner_algebra,
                _check_async_safety, _check_reexecution_safety,
                _check_handle_caching),
}


def analyze_function(info: FunctionLint) -> "list[Finding]":
    """Run every static rule for ``info.role`` over one function AST."""
    if info.role not in _CHECKS_BY_ROLE:
        raise ValueError(f"role must be one of {ROLES}, got {info.role!r}")
    findings: "list[Finding]" = []
    for check in _CHECKS_BY_ROLE[info.role]:
        for code, message, node in check(info):
            findings.append(Finding(
                code=code,
                message=message,
                function=info.qualname,
                filename=info.filename,
                line=getattr(node, "lineno", 0) + info.line_offset,
            ))
    findings.sort(key=lambda f: (f.line, f.code))
    return findings


def iter_role_functions(tree: ast.AST) -> "Iterable[tuple[str, str, ast.AST]]":
    """Yield ``(role, qualname, node)`` for every role-named ``def`` in a
    parsed module, including methods and nested functions."""
    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.stack: "list[str]" = []
            self.found: "list[tuple[str, str, ast.AST]]" = []

        def _visit_scope(self, node: ast.AST, name: str) -> None:
            self.stack.append(name)
            self.generic_visit(node)
            self.stack.pop()

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._visit_scope(node, node.name)

        def _visit_function(self, node: ast.AST, name: str) -> None:
            role = role_for_name(name)
            if role is not None:
                qual = ".".join((*self.stack, name))
                self.found.append((role, qual, node))
            self._visit_scope(node, name)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._visit_function(node, node.name)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._visit_function(node, node.name)

    visitor = _Visitor()
    visitor.visit(tree)
    return visitor.found
