"""Static + runtime analysis of user job functions ("repro lint").

The paper's relaxation spectrum — eager-synchronous through fully
asynchronous — is only correct when the user's map/combine/reduce
functions are pure, deterministic, order-insensitive, and safe to ship
to worker processes.  This package checks those properties *before* any
task runs:

* :mod:`~repro.analysis.findings` — the ``RPR0xx`` rule catalog
  (code, severity, fix hint) and the :class:`Finding` record.
* :mod:`~repro.analysis.rules` — AST rules over one function.
* :mod:`~repro.analysis.linter` — linting live objects (``Job``, specs,
  backends) plus the ``lint="off"|"warn"|"strict"`` enforcement knob.
* :mod:`~repro.analysis.discovery` — static lint over files,
  directories, modules, and bundled app names (the CLI path).
* :mod:`~repro.analysis.probe` — runtime property probes
  (:func:`probe_commutative`): random permutations and regroupings of
  sampled values must leave a combiner's result unchanged.

See ``docs/lint_rules.md`` for the catalog with bad/good examples.
"""

from repro.analysis.discovery import lint_path, lint_source, lint_targets
from repro.analysis.findings import Finding, RULES, Rule, Severity
from repro.analysis.linter import (
    LINT_MODES,
    LintError,
    LintReport,
    LintWarning,
    enforce,
    lint_backend,
    lint_callable,
    lint_job,
    lint_spec,
)
from repro.analysis.probe import (
    ProbeResult,
    probe_commutative,
    probe_permutation_invariant,
    results_equal,
)

__all__ = [
    "LINT_MODES",
    "RULES",
    "Finding",
    "LintError",
    "LintReport",
    "LintWarning",
    "ProbeResult",
    "Rule",
    "Severity",
    "enforce",
    "lint_backend",
    "lint_callable",
    "lint_job",
    "lint_path",
    "lint_source",
    "lint_spec",
    "lint_targets",
    "probe_commutative",
    "probe_permutation_invariant",
    "results_equal",
]
