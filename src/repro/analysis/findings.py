"""The lint rule catalog and its findings.

Every rule has an ``RPR0xx`` code, a severity, and a fix hint.  The
codes are grouped by family:

* ``RPR00x`` — **nondeterminism**: the function's emissions depend on
  wall-clock time, random state, hash-seeded iteration order, or object
  identity, so two replays of the same task produce different output.
  Deterministic replay is the engine's *only* fault-tolerance mechanism
  (a failed attempt is re-executed and must yield identical results),
  and the relaxed/asynchronous synchronization disciplines additionally
  reorder when tasks observe each other's output.
* ``RPR01x`` — **purity**: the function writes state that outlives the
  task (globals, closure cells, ``self`` attributes) or mutates the
  aliased ``values`` list the shuffle buffer hands it and then reuses.
* ``RPR02x`` — **combiner algebra**: a combine function folds *partial*
  aggregates that arrive in arbitrary order and grouping (map-side
  combining today; arbitrary-arrival asynchronous execution tomorrow),
  so it must be commutative and associative.
* ``RPR03x`` — **process-executor hazards**: state captured by the
  function (closure cells, defaults, attributes of a callable object)
  that cannot — or must not — be pickled to a worker process.
* ``RPR04x`` — **columnar eligibility** (informational): why a job or
  spec is not riding the engine's columnar fast path.
* ``RPR05x`` — **async safety**: constructs that are correct under the
  barrier (every input is exactly one round old) but wrong under the
  no-barrier :class:`~repro.core.AsyncBackend`, where a combine's state
  argument is a live mixed-version view shared with concurrent readers.
* ``RPR06x`` — **re-execution safety**: state a task function would
  update more than once when the engine runs it more than once — which
  it does, by design, on retry-after-failure *and* for speculative
  backup copies of stragglers (two attempts of one task race and both
  run to completion; only one result is taken, but side effects are
  not un-done).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Rule", "Finding", "RULES"]


class Severity(enum.IntEnum):
    """Finding severity; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"severity must be one of "
                f"{[s.name.lower() for s in cls]}, got {name!r}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One entry of the lint catalog."""

    code: str
    title: str
    severity: Severity
    hint: str


@dataclass(frozen=True)
class Finding:
    """One rule violation located in one job function."""

    code: str
    message: str
    #: Name of the offending function (qualified where known).
    function: str
    #: Source file of the function ("<unknown>" when unavailable).
    filename: str = "<unknown>"
    #: 1-based line in :attr:`filename` (0 when unavailable).
    line: int = 0

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    @property
    def hint(self) -> str:
        return self.rule.hint

    def format(self) -> str:
        """``file:line: CODE severity message [function] (hint)``."""
        loc = f"{self.filename}:{self.line}" if self.line else self.filename
        return (f"{loc}: {self.code} {self.severity} {self.message} "
                f"[{self.function}]")

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` shape)."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "function": self.function,
            "file": self.filename,
            "line": self.line,
            "hint": self.hint,
        }


def _catalog(*rules: Rule) -> "dict[str, Rule]":
    out: "dict[str, Rule]" = {}
    for rule in rules:
        if rule.code in out:
            raise ValueError(f"duplicate rule code {rule.code}")
        out[rule.code] = rule
    return out


#: The rule catalog, keyed by code.  ``docs/lint_rules.md`` documents
#: each entry with a triggering and a near-miss example; the fixture
#: specs in ``tests/analysis/lint_fixtures.py`` pin both.
RULES: "dict[str, Rule]" = _catalog(
    Rule(
        code="RPR001",
        title="nondeterministic call in a job function",
        severity=Severity.ERROR,
        hint="seed randomness outside the job (np.random.default_rng(seed)) "
             "and pass results in as data; never read clocks or entropy "
             "inside map/reduce/combine",
    ),
    Rule(
        code="RPR002",
        title="emission order depends on set iteration",
        severity=Severity.WARNING,
        hint="iterate sorted(the_set) so replayed attempts and reordered "
             "arrivals emit in one canonical order",
    ),
    Rule(
        code="RPR003",
        title="key derived from id()",
        severity=Severity.ERROR,
        hint="id() changes across processes and replays; key on the "
             "record's own contents instead",
    ),
    Rule(
        code="RPR011",
        title="write to state outside the task",
        severity=Severity.ERROR,
        hint="emit results through ctx instead of assigning to globals, "
             "nonlocals, or self attributes — task writes to shared state "
             "are lost under process executors and duplicated under retries",
    ),
    Rule(
        code="RPR012",
        title="mutation of the aliased values list",
        severity=Severity.ERROR,
        hint="the ShuffleBuffer reuses the list it hands to reduce/combine; "
             "copy it first (e.g. sorted(values)) instead of sorting or "
             "appending in place",
    ),
    Rule(
        code="RPR021",
        title="non-commutative accumulation in a combine function",
        severity=Severity.ERROR,
        hint="combiners fold partial aggregates arriving in arbitrary order "
             "and grouping; restructure subtraction/division as a "
             "commutative fold (e.g. sum the negations, divide once in the "
             "reduce)",
    ),
    Rule(
        code="RPR022",
        title="order-dependent string concatenation in a combine function",
        severity=Severity.WARNING,
        hint="join over sorted(values) so the concatenation has one "
             "canonical result under any arrival order",
    ),
    Rule(
        code="RPR031",
        title="captured state unsafe for the process executor",
        severity=Severity.ERROR,
        hint="job functions are pickled to worker processes; capture plain "
             "data, not locks, open files, live RNGs, or cluster/runtime "
             "handles",
    ),
    Rule(
        code="RPR041",
        title="job not eligible for the columnar fast path",
        severity=Severity.INFO,
        hint="emit typed batches (ctx.emit_block) and declare aggregations "
             "by name ('sum'/'min'/'max') — see repro.engine.columnar",
    ),
    Rule(
        code="RPR051",
        title="in-place state write in a combine function",
        severity=Severity.WARNING,
        hint="the async backend hands combine a live state view that "
             "concurrent partitions are still reading; fold into a copy "
             "(new = state.copy()) or a commutative-monotone elementwise "
             "fold (np.minimum) and return it",
    ),
    Rule(
        code="RPR061",
        title="mutable accumulator outlives the task attempt",
        severity=Severity.WARNING,
        hint="the engine re-executes tasks (retry after failure, "
             "speculative backup copies of stragglers), so a closed-over "
             "list/dict/set accumulated into by the task double-counts; "
             "accumulate in a local and emit through ctx instead",
    ),
    Rule(
        code="RPR071",
        title="cluster/store handle cached outside the task attempt",
        severity=Severity.WARNING,
        hint="a cluster/runtime/store handle cached in a module global "
             "(or closure) outlives failure recovery: after a node death "
             "the worker is revived under a new incarnation and tablets "
             "remap, but the cached handle still points at pre-failure "
             "state; construct handles per attempt or take them from "
             "the framework each call",
    ),
)
