"""Static lint over source targets: files, directories, modules, apps.

This is the ``repro lint`` entry path: targets are resolved to ``.py``
files, parsed (never imported or executed), and every role-named
function — ``lmap``/``lreduce``/``greduce``/``global_combine``, the
engine's ``map_fn``/``reduce_fn``/``combine_fn``, and the
``*_map``/``*_reduce``/``*_combine`` convention — is run through the
static rule families.  Rules needing live objects (the RPR031 hazard
scan, the runtime probes) apply on the ``Job``/``Session`` path
instead; see :mod:`repro.analysis.linter`.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    FunctionLint,
    analyze_function,
    iter_role_functions,
)

__all__ = ["lint_source", "lint_path", "lint_targets", "resolve_target"]


def lint_source(source: str, filename: str = "<string>") -> "list[Finding]":
    """Lint every role-named function in a source string."""
    tree = ast.parse(source, filename=filename)
    findings: "list[Finding]" = []
    for role, qualname, node in iter_role_functions(tree):
        findings.extend(analyze_function(FunctionLint(
            node=node, role=role, qualname=qualname, filename=filename)))
    findings.sort(key=lambda f: (f.filename, f.line, f.code))
    return findings


def lint_path(path: "Path | str") -> "list[Finding]":
    """Lint one ``.py`` file or every ``.py`` file under a directory."""
    path = Path(path)
    if path.is_dir():
        findings: "list[Finding]" = []
        for py in sorted(path.rglob("*.py")):
            findings.extend(lint_path(py))
        return findings
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _module_origin(name: str) -> "Path | None":
    """Source file of an importable module, without executing it.

    (``find_spec`` imports parent *packages*; for ``repro.*`` those are
    already loaded, and for third-party targets that is the accepted
    cost of dotted-name resolution.)
    """
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin in (None, "built-in", "frozen"):
        return None
    origin = Path(spec.origin)
    return origin if origin.suffix == ".py" else None


def resolve_target(target: str) -> "list[Path]":
    """Resolve one CLI target to source files.

    Accepted spellings, tried in order: a path to a ``.py`` file or a
    directory, a dotted module name (``repro.apps.pagerank``), or a bare
    bundled-app name (``pagerank``).  Unknown targets raise
    ``ValueError`` (the CLI maps that to exit code 2).
    """
    path = Path(target)
    if path.is_dir():
        return sorted(path.rglob("*.py"))
    if path.is_file():
        if path.suffix != ".py":
            raise ValueError(f"cannot lint non-Python file {target!r}")
        return [path]
    for name in (target, f"repro.apps.{target}"):
        origin = _module_origin(name)
        if origin is not None:
            return [origin]
    raise ValueError(
        f"cannot resolve lint target {target!r}: not a file, directory, "
        f"module, or bundled app name")


def lint_targets(targets: "Sequence[str] | Iterable[str]"
                 ) -> "list[Finding]":
    """Resolve and lint every target; deduplicates shared files."""
    files: "list[Path]" = []
    seen: "set[Path]" = set()
    for target in targets:
        for path in resolve_target(target):
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(path)
    findings: "list[Finding]" = []
    for path in files:
        findings.extend(lint_path(path))
    return findings
