"""Asynchronous Jacobi linear solver — the §VI generality claim, realised.

    "PageRank, which relies on an asynchronous mat-vec, is representative
    of eigenvalue solvers ...  Asynchronous mat-vecs form the core of
    iterative linear system solvers."  (§VI, Generality of Proposed
    Extensions)

This module solves ``A x = b`` for (strictly row-) diagonally-dominant
sparse ``A`` with the Jacobi iteration ``x <- D^-1 (b - R x)``, cast
into the same General/Eager pairing as PageRank: the **general** mode
performs one synchronous Jacobi sweep per global round; the **eager**
mode iterates each partition's block to local convergence against
frozen remote values (block-Jacobi / asynchronous iteration — the
chaotic-relaxation literature the paper cites [1, 9] guarantees
convergence for contraction mappings regardless of the update
schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import SimCluster
from repro.core import (
    BlockSpec,
    DriverConfig,
    IterationLoop,
    IterativeResult,
    LocalSolveReport,
    resolve_block_backend,
)
from repro.graph import Partition

__all__ = ["SparseSystem", "JacobiBlockSpec", "JacobiResult", "jacobi_solve",
           "jacobi_spec", "make_diagonally_dominant_system"]

RECORD_BYTES = 16


@dataclass(frozen=True)
class SparseSystem:
    """A sparse linear system ``A x = b`` in COO form.

    ``rows``/``cols``/``vals`` hold the off-diagonal entries; ``diag``
    the diagonal (must be nonzero), ``b`` the right-hand side.
    """

    n: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    diag: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        for name in ("rows", "cols", "vals"):
            if getattr(self, name).ndim != 1:
                raise ValueError(f"{name} must be 1-D")
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("rows/cols/vals must have equal length")
        if self.diag.shape != (self.n,) or self.b.shape != (self.n,):
            raise ValueError("diag and b must have shape (n,)")
        if np.any(self.diag == 0):
            raise ValueError("diagonal entries must be nonzero")
        if len(self.rows) and (self.rows.min() < 0 or self.rows.max() >= self.n
                               or self.cols.min() < 0 or self.cols.max() >= self.n):
            raise ValueError("row/col indices out of range")
        if len(self.rows) and np.any(self.rows == self.cols):
            raise ValueError("diagonal entries belong in diag, not the COO part")

    def is_diagonally_dominant(self) -> bool:
        """Strict row diagonal dominance (sufficient for Jacobi/async
        convergence)."""
        offsum = np.zeros(self.n)
        np.add.at(offsum, self.rows, np.abs(self.vals))
        return bool(np.all(np.abs(self.diag) > offsum))

    def dense(self) -> np.ndarray:
        """Materialise A (tests/small systems only).

        Duplicate COO entries accumulate, consistent with the scatter-add
        semantics of the solver kernels.
        """
        a = np.zeros((self.n, self.n))
        np.add.at(a, (self.rows, self.cols), self.vals)
        np.add.at(a, (np.arange(self.n), np.arange(self.n)), self.diag)
        return a

    def residual_norm(self, x: np.ndarray) -> float:
        """``||A x - b||_inf`` for a candidate solution."""
        ax = self.diag * x
        np.add.at(ax, self.rows, self.vals * x[self.cols])
        return float(np.abs(ax - self.b).max())


def make_diagonally_dominant_system(
    partition: Partition, *, dominance: float = 1.5,
    seed: "int | np.random.Generator | None" = 0,
) -> SparseSystem:
    """Build a diagonally-dominant system with the sparsity pattern of a
    partitioned graph (so the same locality structure applies).

    Off-diagonal ``A[u, v]`` is a random negative coupling for every
    graph edge ``u -> v``; the diagonal is ``dominance`` times the row's
    absolute off-diagonal sum (a Laplacian-like, well-conditioned
    system).
    """
    from repro.util import as_rng

    if dominance <= 1.0:
        raise ValueError("dominance must be > 1 for strict dominance")
    g = partition.graph
    rng = as_rng(seed)
    src, dst, _ = g.edge_arrays()
    keep = src != dst
    rows, cols = src[keep], dst[keep]
    vals = -rng.uniform(0.5, 1.5, size=len(rows))
    offsum = np.zeros(g.num_nodes)
    np.add.at(offsum, rows, np.abs(vals))
    diag = dominance * np.maximum(offsum, 1.0)
    b = rng.uniform(-1.0, 1.0, size=g.num_nodes)
    return SparseSystem(n=g.num_nodes, rows=rows, cols=cols, vals=vals,
                        diag=diag, b=b)


@dataclass
class JacobiResult:
    """Solution plus run statistics."""

    x: np.ndarray
    global_iters: int
    converged: bool
    sim_time: float
    residual_norm: float
    result: IterativeResult


class JacobiBlockSpec(BlockSpec):
    """Block-Jacobi solver over a graph partition's sparsity structure."""

    #: Each partition owns a disjoint slice of the unknown vector.
    partition_scoped_state = True
    #: Slice-overwrite combine + frozen-remote solves tolerate
    #: mixed-round neighbour state (chaotic relaxation, the literature
    #: the paper cites for exactly this kernel).
    supports_async = True

    def __init__(self, system: SparseSystem, partition: Partition, *,
                 tol: float = 1e-8, local_tol: "float | None" = None,
                 require_dominant: bool = True) -> None:
        if system.n != partition.graph.num_nodes:
            raise ValueError("system size must match the partitioned graph")
        if tol <= 0:
            raise ValueError("tol must be > 0")
        if require_dominant and not system.is_diagonally_dominant():
            raise ValueError(
                "Jacobi requires a (strictly) diagonally dominant system"
            )
        self.system = system
        self.partition = partition
        self.tol = tol
        self.local_tol = local_tol if local_tol is not None else tol
        assign = partition.assign
        parts = partition.parts()
        self._blocks = []
        rows, cols = system.rows, system.cols
        for p in range(partition.k):
            nodes = parts[p]
            local_of = np.full(system.n, -1, dtype=np.int64)
            local_of[nodes] = np.arange(len(nodes))
            in_p_row = assign[rows] == p
            in_p_col = assign[cols] == p
            internal = in_p_row & in_p_col
            external = in_p_row & ~in_p_col
            self._blocks.append((
                nodes,
                local_of[rows[internal]], local_of[cols[internal]],
                system.vals[internal],
                local_of[rows[external]], cols[external],
                system.vals[external],
            ))

    def num_partitions(self) -> int:
        return self.partition.k

    def init_state(self) -> np.ndarray:
        return np.zeros(self.system.n, dtype=np.float64)

    def local_solve(self, part_id: int, state: np.ndarray, *,
                    max_local_iters: int) -> LocalSolveReport:
        nodes, i_r, i_c, i_v, e_r, e_c, e_v = self._blocks[part_id]
        if len(nodes) == 0:
            return LocalSolveReport(partition=part_id, updates=(nodes, nodes),
                                    local_iters=0, per_iter_ops=[],
                                    shuffle_bytes=0, update_nbytes=0)
        sysm = self.system
        # Frozen remote coupling: b_eff = b - R_ext x_ext.
        b_eff = sysm.b[nodes].copy()
        if len(e_r):
            np.add.at(b_eff, e_r, -e_v * state[e_c])
        diag = sysm.diag[nodes]
        x = state[nodes].copy()
        per_iter_ops: list[float] = []
        iters = 0
        while iters < max_local_iters:
            rx = np.zeros(len(nodes))
            if len(i_r):
                np.add.at(rx, i_r, i_v * x[i_c])
            x_new = (b_eff - rx) / diag
            per_iter_ops.append(float(len(i_r) + len(nodes)))
            iters += 1
            delta = float(np.abs(x_new - x).max())
            x = x_new
            if delta < self.local_tol:
                break
        records = len(nodes) + len(e_r)
        # Dense update: the whole solution slice is rewritten through
        # the state store each round (partition-size distribution).
        return LocalSolveReport(partition=part_id, updates=(nodes, x),
                                local_iters=iters, per_iter_ops=per_iter_ops,
                                shuffle_bytes=records * RECORD_BYTES,
                                update_nbytes=int(x.nbytes))

    def global_combine(self, state, reports):
        new_state = state.copy()
        records = 0
        for r in reports:
            nodes, x = r.updates
            new_state[nodes] = x
            records += r.shuffle_bytes // RECORD_BYTES
        return new_state, float(records), 0

    def global_converged(self, prev, curr):
        residual = float(np.abs(curr - prev).max()) if len(prev) else 0.0
        return residual < self.tol, residual

    def state_nbytes(self, state) -> int:
        return int(np.asarray(state).nbytes)


def jacobi_solve(
    system: SparseSystem,
    partition: Partition,
    *,
    mode: str = "eager",
    tol: float = 1e-8,
    cluster: "SimCluster | None" = None,
    config: "DriverConfig | None" = None,
    backend: str = "block",
    staleness: "int | None" = 0,
    pace=None,
    phase=None,
    detector=None,
    require_dominant: bool = True,
) -> JacobiResult:
    """Solve ``A x = b`` with the General or Eager block-Jacobi scheme.

    ``backend="async"`` (or any nonzero ``staleness``) runs without a
    barrier; ``pace``/``phase``/``detector`` are the async timeline and
    safety knobs (see :class:`~repro.core.AsyncBackend`).
    ``require_dominant=False`` skips the dominance precondition — only
    sensible for divergence studies of the chaotic path.
    """
    cfg = config if config is not None else DriverConfig(mode=mode)
    spec = JacobiBlockSpec(system, partition, tol=tol,
                           require_dominant=require_dominant)
    be = resolve_block_backend(spec, backend=backend, staleness=staleness,
                               cluster=cluster, pace=pace, phase=phase,
                               detector=detector)
    res = IterationLoop(be, cfg).run()
    x = np.asarray(res.state)
    return JacobiResult(x=x, global_iters=res.global_iters,
                        converged=res.converged, sim_time=res.sim_time,
                        residual_norm=system.residual_norm(x), result=res)


def jacobi_spec(
    system: SparseSystem,
    partition: Partition,
    *,
    mode: str = "eager",
    tol: float = 1e-8,
    config: "DriverConfig | None" = None,
    name: "str | None" = None,
    backend: str = "block",
    staleness: "int | None" = 0,
) -> "JobSpec":
    """A submittable block-Jacobi solve for
    :meth:`~repro.core.Session.submit`; the final iterate is
    ``np.asarray(handle.result.state)``."""
    from repro.core.session import JobSpec

    cfg = config if config is not None else DriverConfig(mode=mode)
    return JobSpec(
        name=name if name is not None else "jacobi",
        config=cfg,
        make_backend=lambda session: resolve_block_backend(
            JacobiBlockSpec(system, partition, tol=tol),
            backend=backend, staleness=staleness,
            cluster=session.cluster),
    )
