"""PageRank: General and Eager formulations (§V-B of the paper).

The rank of a node is ``PR_d = (1 - chi) + chi * sum_{(s,d) in E}
PR_s / outdeg_s`` (the paper's eq. 1; damping ``chi = 0.85``, all ranks
initialised to 1, convergence when the infinity norm of the change drops
below 1e-5).

* **General** (§V-B.1): every global iteration performs one synchronous
  update — the paper's *competitive* baseline where each map operates on
  a complete partition rather than a single adjacency list.
* **Eager** (§V-B.2): each gmap iterates its partition's ranks to local
  convergence against frozen remote contributions, then one global
  synchronization propagates ranks across partitions.  Mathematically
  this is a block-Jacobi (asynchronous power-method) iteration: the fixed
  point is unchanged, the serial operation count is higher, and the
  number of *global* synchronizations is much lower — exactly the
  tradeoff of §II.

Two implementations share that math:

* :class:`PageRankBlockSpec` — vectorised (CSR per partition), used by
  the benchmark sweeps.
* :class:`PageRankKVSpec` — the record-at-a-time §IV API (lmap/lreduce/
  greduce) on the real engine, used by the correctness tests.

:func:`pagerank` is the high-level entry point; :func:`pagerank_reference`
is an independent dense power-iteration oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import SimCluster
from repro.core import (
    AdaptiveSyncPolicy,
    AsyncMapReduceSpec,
    BlockSpec,
    DenseKVState,
    DriverConfig,
    EngineBackend,
    IterationLoop,
    IterativeResult,
    LocalSolveReport,
    resolve_block_backend,
)
from repro.engine import MapReduceRuntime
from repro.graph import DiGraph, Partition

__all__ = [
    "PageRankBlockSpec",
    "PageRankKVSpec",
    "PageRankResult",
    "pagerank",
    "pagerank_spec",
    "pagerank_reference",
]

#: Bytes of one shuffled (key, value) record in our cost accounting.
RECORD_BYTES = 16


@dataclass
class PageRankResult:
    """Ranks plus run statistics."""

    ranks: np.ndarray
    global_iters: int
    converged: bool
    sim_time: float
    result: IterativeResult


class _PartitionCSR:
    """Per-partition edge structure for the vectorised local solve."""

    __slots__ = ("nodes", "local_of", "int_src", "int_dst", "ext_src",
                 "ext_dst", "out_cut_edges", "out_edges")

    def __init__(self, graph: DiGraph, assign: np.ndarray, part_id: int,
                 nodes: np.ndarray) -> None:
        self.nodes = nodes
        n = graph.num_nodes
        local_of = np.full(n, -1, dtype=np.int64)
        local_of[nodes] = np.arange(len(nodes))
        self.local_of = local_of
        src, dst, _ = graph.edge_arrays()
        in_p_dst = assign[dst] == part_id
        in_p_src = assign[src] == part_id
        internal = in_p_src & in_p_dst
        incoming = ~in_p_src & in_p_dst
        self.int_src = local_of[src[internal]]
        self.int_dst = local_of[dst[internal]]
        self.ext_src = src[incoming]          # global ids of remote sources
        self.ext_dst = local_of[dst[incoming]]
        self.out_cut_edges = int((in_p_src & ~in_p_dst).sum())
        self.out_edges = int(in_p_src.sum())


class PageRankBlockSpec(BlockSpec):
    """Vectorised PageRank over a :class:`~repro.graph.Partition`.

    ``local_solve`` runs damped Jacobi sweeps on the partition's internal
    edges with the external contribution vector frozen; in general mode
    (``max_local_iters == 1``) a single sweep makes the whole scheme the
    classic synchronous power iteration.
    """

    #: Each partition owns a disjoint node slice of the state vector.
    partition_scoped_state = True
    #: The asynchronous power method tolerates mixed-round neighbour
    #: ranks (§VI: "PageRank ... relies on an asynchronous mat-vec");
    #: the combine overwrites disjoint slices, so arrival order is
    #: irrelevant.
    supports_async = True

    def __init__(self, graph: DiGraph, partition: Partition, *,
                 damping: float = 0.85, tol: float = 1e-5,
                 local_tol: "float | None" = None) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tol <= 0:
            raise ValueError("tol must be > 0")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.tol = tol
        self.local_tol = local_tol if local_tol is not None else tol
        outdeg = graph.out_degree().astype(np.float64)
        # Dangling nodes contribute nothing (the paper's eq. 1 divides by
        # outlinks only for actual source nodes); avoid div-by-zero.
        self.inv_outdeg = np.where(outdeg > 0, 1.0 / np.maximum(outdeg, 1), 0.0)
        parts = partition.parts()
        self._csr = [
            _PartitionCSR(graph, partition.assign, p, parts[p])
            for p in range(partition.k)
        ]

    # -- BlockSpec interface --------------------------------------------
    def num_partitions(self) -> int:
        return self.partition.k

    def init_state(self) -> np.ndarray:
        """All nodes start with PageRank 1 (§V-B)."""
        return np.ones(self.graph.num_nodes, dtype=np.float64)

    def local_solve(self, part_id: int, state: np.ndarray, *,
                    max_local_iters: int) -> LocalSolveReport:
        csr = self._csr[part_id]
        nodes = csr.nodes
        if len(nodes) == 0:
            return LocalSolveReport(partition=part_id, updates=(nodes, nodes),
                                    local_iters=0, per_iter_ops=[],
                                    shuffle_bytes=0, update_nbytes=0)
        d = self.damping
        x = state[nodes].copy()
        # Frozen external contributions from remote partitions.
        b_ext = np.zeros(len(nodes), dtype=np.float64)
        if len(csr.ext_src):
            np.add.at(b_ext, csr.ext_dst,
                      state[csr.ext_src] * self.inv_outdeg[csr.ext_src])
        base = (1.0 - d) + d * b_ext
        inv_out_local = self.inv_outdeg[nodes]

        per_iter_ops: list[float] = []
        iters = 0
        while iters < max_local_iters:
            contrib = np.zeros(len(nodes), dtype=np.float64)
            if len(csr.int_src):
                np.add.at(contrib, csr.int_dst, x[csr.int_src] * inv_out_local[csr.int_src])
            x_new = base + d * contrib
            per_iter_ops.append(float(len(csr.int_src) + len(nodes)))
            iters += 1
            delta = float(np.abs(x_new - x).max())
            x = x_new
            if delta < self.local_tol:
                break

        # Shuffle volume: at local convergence the gmap emits one rank
        # record per node plus one contribution record per outgoing cut
        # edge.  The general baseline (single local sweep) instead ships a
        # contribution per *every* outgoing edge — the full intermediate
        # volume the paper's general formulation pays each iteration.
        if max_local_iters == 1:
            records = csr.out_edges + len(nodes)
        else:
            records = csr.out_cut_edges + len(nodes)
        # State-store traffic: every rank in the partition's slice is
        # rewritten each round (dense update), so the per-partition
        # distribution is the partition-size profile — and the vector
        # sums to state_nbytes exactly, keeping aggregate charges
        # identical to the historical scalar accounting.
        return LocalSolveReport(partition=part_id, updates=(nodes, x),
                                local_iters=iters, per_iter_ops=per_iter_ops,
                                shuffle_bytes=records * RECORD_BYTES,
                                update_nbytes=int(x.nbytes))

    def global_combine(self, state, reports):
        new_state = state.copy()
        records = 0
        for r in reports:
            nodes, x = r.updates
            new_state[nodes] = x
            records += r.shuffle_bytes // RECORD_BYTES
        # greduce touches every shuffled record once.
        return new_state, float(records), 0

    def global_converged(self, prev, curr):
        residual = float(np.abs(curr - prev).max()) if len(prev) else 0.0
        return residual < self.tol, residual

    def state_nbytes(self, state) -> int:
        return int(np.asarray(state).nbytes)


# ----------------------------------------------------------------------
# Record-at-a-time (§IV API) implementation
# ----------------------------------------------------------------------

class PageRankKVSpec(AsyncMapReduceSpec):
    """PageRank through lmap/lreduce/greduce on the real engine.

    Hashtable layout per partition: ``node -> (rank, ext_contrib,
    internal_adj, external_adj, inv_outdeg)`` where ``ext_contrib`` is
    the frozen sum of remote contributions from the previous global
    round and the adjacency splits are precomputed once from the
    partition (the off-line locality-enhancing step).

    Global state: ``ranks`` dict ``node -> (rank, ext_contrib)`` — or,
    with ``dense_state=True``, a :class:`~repro.core.DenseKVState`
    holding the same ``(rank, ext_contrib)`` rows as one ``(n, 2)``
    float64 array, so a columnar round folds its output back in with a
    single scatter instead of rebuilding ~n tuples.  Both
    representations hold bit-identical values; the dict stays the
    oracle.

    The spec opts into the engine's columnar shuffle fast path: the
    gmap's boundary data becomes ``(node, (rank, contribution))`` rows —
    a rank record ``(rank, 0)`` from the owning partition plus one
    ``(0, contribution)`` row per outgoing cut edge — so ``greduce``
    collapses to a per-key segmented **sum** and the map-side ``"sum"``
    combiner (§V-B's partial aggregation) pre-folds each partition's
    contributions to one row per remote target before the shuffle.
    """

    supports_columnar = True
    columnar_combine = "sum"

    def __init__(self, graph: DiGraph, partition: Partition, *,
                 damping: float = 0.85, tol: float = 1e-5,
                 dense_state: bool = False) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.graph = graph
        self.partition = partition
        self.damping = damping
        self.tol = tol
        self.dense_state = dense_state
        outdeg = graph.out_degree().astype(np.float64)
        self._inv_outdeg = np.where(outdeg > 0, 1.0 / np.maximum(outdeg, 1), 0.0)
        assign = partition.assign
        # node -> ([internal successors], [external successors])
        self._internal_adj: dict[int, list[int]] = {}
        self._external_adj: dict[int, list[int]] = {}
        for u in range(graph.num_nodes):
            succ = graph.successors(u)
            same = assign[succ] == assign[u]
            self._internal_adj[u] = succ[same].tolist()
            self._external_adj[u] = succ[~same].tolist()
        #: part_id -> static emission arrays for the columnar gmap.
        self._col_cache: dict = {}

    # -- iteration plumbing ----------------------------------------------
    def initial_state(self) -> dict:
        """All ranks 1, with external contributions consistent with that
        (so the first global round matches the block/general trajectory
        exactly rather than starting from zero remote input)."""
        ext = np.zeros(self.graph.num_nodes, dtype=np.float64)
        src, dst, _ = self.graph.edge_arrays()
        assign = self.partition.assign
        cross = assign[src] != assign[dst]
        np.add.at(ext, dst[cross], self._inv_outdeg[src[cross]])
        if self.dense_state:
            rows = np.column_stack([np.ones_like(ext), ext])
            return DenseKVState(rows)
        return {u: (1.0, float(ext[u])) for u in range(self.graph.num_nodes)}

    def num_partitions(self) -> int:
        return self.partition.k

    def partition_input(self, part_id: int, state: dict) -> list:
        xs = []
        for u in self.partition.parts()[part_id]:
            u = int(u)
            rank, ext = state[u]
            xs.append((u, (rank, ext, self._internal_adj[u],
                           self._external_adj[u], float(self._inv_outdeg[u]))))
        return xs

    # -- the four user functions ------------------------------------------
    def lmap(self, key, value, ctx) -> None:
        rank, ext, internal, external, inv_out = value
        # Push rank to internal neighbours; carry the record to the
        # reducer so it can rebuild the node entry.
        ctx.emit_local_intermediate(key, ("rec", value))
        for v in internal:
            ctx.emit_local_intermediate(v, ("c", rank * inv_out))

    def lreduce(self, key, values, ctx) -> None:
        rec = None
        contrib = 0.0
        for tag, payload in values:
            if tag == "rec":
                rec = payload
            else:
                contrib += payload
        if rec is None:
            return  # contribution to a node outside this partition's table
        _, ext, internal, external, inv_out = rec
        new_rank = (1.0 - self.damping) + self.damping * (contrib + ext)
        ctx.emit_local(key, (new_rank, ext, internal, external, inv_out))

    def greduce(self, key, values, ctx) -> None:
        rank = 0.0
        ext = 0.0
        for tag, payload in values:
            if tag == "rank":
                rank = payload
            else:  # "c": remote contribution for the *next* round
                ext += payload
        ctx.emit(key, (rank, ext))

    # -- convergence & emission --------------------------------------------
    def gmap_emit(self, table: dict, part_id: int) -> list:
        out = []
        for u, (rank, ext, internal, external, inv_out) in table.items():
            out.append((u, ("rank", rank)))
            for v in external:
                out.append((v, ("c", rank * inv_out)))
        return out

    def local_converged(self, prev_table: dict, curr_table: dict) -> bool:
        delta = 0.0
        for u, rec in curr_table.items():
            delta = max(delta, abs(rec[0] - prev_table[u][0]))
        return delta < self.tol

    def global_converged(self, prev_state, curr_state):
        if isinstance(curr_state, DenseKVState):
            prev = prev_state.column(0)
            curr = curr_state.column(0)
            residual = float(np.abs(curr - prev).max()) if len(curr) else 0.0
        else:
            residual = max(
                (abs(curr_state[u][0] - prev_state[u][0])
                 for u in curr_state),
                default=0.0,
            )
        return residual < self.tol, residual

    def state_from_output(self, output: list, prev_state):
        if isinstance(prev_state, DenseKVState):
            return prev_state.scatter_pairs(output)
        new_state = dict(prev_state)
        new_state.update(output)
        return new_state

    # -- columnar fast path ------------------------------------------------
    def _columnar_arrays(self, part_id: int):
        """Static per-partition emission structure (built once).

        ``nodes`` are the partition's node ids in table order,
        ``ext_src`` the *local index* of each outgoing cut edge's source
        (repeated per edge) and ``ext_dst`` its remote target, so the
        per-round contribution vector is one gather-multiply.
        """
        cached = self._col_cache.get(part_id)
        if cached is None:
            nodes = self.partition.parts()[part_id].astype(np.int64)
            node_list = [int(u) for u in nodes]
            counts = [len(self._external_adj[u]) for u in node_list]
            ext_dst = np.fromiter(
                (v for u in node_list for v in self._external_adj[u]),
                dtype=np.int64, count=sum(counts))
            ext_src = np.repeat(np.arange(len(node_list)), counts)
            cached = (nodes, node_list, ext_src, ext_dst,
                      self._inv_outdeg[nodes])
            self._col_cache[part_id] = cached
        return cached

    def gmap_emit_columnar(self, table: dict, part_id: int):
        """Same records as :meth:`gmap_emit`, as typed rows: the owning
        rank record is ``(rank, 0)``, each cut-edge contribution
        ``(0, rank/outdeg)`` — so a per-key sum yields exactly
        ``(rank, ext_contrib)``."""
        nodes, node_list, ext_src, ext_dst, inv_out = \
            self._columnar_arrays(part_id)
        ranks = np.fromiter((table[u][0] for u in node_list),
                            dtype=np.float64, count=len(node_list))
        contrib = ranks[ext_src] * inv_out[ext_src]
        keys = np.concatenate([nodes, ext_dst])
        rows = np.zeros((len(keys), 2), dtype=np.float64)
        rows[:len(nodes), 0] = ranks
        rows[len(nodes):, 1] = contrib
        return keys, rows

    def columnar_reduce(self):
        return "sum"

    def state_from_columnar(self, block, prev_state):
        if isinstance(prev_state, DenseKVState):
            # Pure array scatter — no per-node tuples on the dense path.
            return prev_state.scatter(block.keys, block.values)
        # Dict state: the base default (materialise + dict update) is
        # exactly this spec's state_from_output semantics.
        return super().state_from_columnar(block, prev_state)


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------

def pagerank(
    graph: DiGraph,
    partition: Partition,
    *,
    mode: str = "eager",
    damping: float = 0.85,
    tol: float = 1e-5,
    cluster: "SimCluster | None" = None,
    config: "DriverConfig | None" = None,
    path: str = "block",
    runtime: "MapReduceRuntime | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
    dense_state: bool = False,
    backend: str = "block",
    staleness: "int | None" = 0,
) -> PageRankResult:
    """Compute PageRank with the General or Eager formulation.

    Parameters
    ----------
    graph, partition:
        Input graph and its locality-enhancing partition.
    mode:
        ``"general"`` (baseline) or ``"eager"`` (partial sync).
    damping, tol:
        Eq. 1's chi and the inf-norm convergence bound.
    cluster:
        Optional simulated cluster for time accounting (block path).
    config:
        Full driver configuration; overrides ``mode`` when given.
    path:
        ``"block"`` (vectorised) or ``"kv"`` (record-at-a-time engine).
    runtime:
        Engine runtime for the kv path.
    sync_policy:
        Optional :class:`~repro.core.AdaptiveSyncPolicy` retuning the
        local-iteration budget per round.
    dense_state:
        Keep the kv path's global state as a
        :class:`~repro.core.DenseKVState` array instead of a per-node
        dict (identical values, array-speed round transitions).
    backend, staleness:
        ``backend="async"`` (or any nonzero ``staleness``) runs the
        block path without a per-round barrier — see
        :class:`~repro.core.AsyncBackend`.  Block path only.
    """
    cfg = config if config is not None else DriverConfig(mode=mode)
    if (backend != "block" or staleness != 0) and path != "block":
        raise ValueError("the async backend needs path='block'")
    if path == "block":
        spec = PageRankBlockSpec(graph, partition, damping=damping, tol=tol)
        be = resolve_block_backend(spec, backend=backend,
                                   staleness=staleness, cluster=cluster)
        res = IterationLoop(be, cfg, sync_policy=sync_policy).run()
        ranks = np.asarray(res.state)
    elif path == "kv":
        kv_spec = PageRankKVSpec(graph, partition, damping=damping, tol=tol,
                                 dense_state=dense_state)
        kv_backend = EngineBackend(kv_spec, runtime=runtime)
        res = IterationLoop(kv_backend, cfg, sync_policy=sync_policy).run()
        if isinstance(res.state, DenseKVState):
            ranks = res.state.column(0).copy()
        else:
            ranks = np.array([res.state[u][0] for u in range(graph.num_nodes)])
    else:
        raise ValueError(f"path must be 'block' or 'kv', got {path!r}")
    return PageRankResult(ranks=ranks, global_iters=res.global_iters,
                          converged=res.converged, sim_time=res.sim_time,
                          result=res)


def pagerank_spec(
    graph: DiGraph,
    partition: Partition,
    *,
    mode: str = "eager",
    damping: float = 0.85,
    tol: float = 1e-5,
    config: "DriverConfig | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
    name: "str | None" = None,
    backend: str = "block",
    staleness: "int | None" = 0,
) -> "JobSpec":
    """A submittable PageRank job for :meth:`~repro.core.Session.submit`.

    Where :func:`pagerank` runs immediately on a private driver, this
    describes the same (block-path) job so a multi-job
    :class:`~repro.core.session.Session` can schedule it alongside
    others on one shared cluster.  The final ranks are
    ``np.asarray(handle.result.state)``.
    """
    from repro.core.session import JobSpec

    cfg = config if config is not None else DriverConfig(mode=mode)
    return JobSpec(
        name=name if name is not None else "pagerank",
        config=cfg,
        sync_policy=sync_policy,
        make_backend=lambda session: resolve_block_backend(
            PageRankBlockSpec(graph, partition, damping=damping, tol=tol),
            backend=backend, staleness=staleness,
            cluster=session.cluster),
    )


def pagerank_reference(graph: DiGraph, *, damping: float = 0.85,
                       tol: float = 1e-5, max_iters: int = 10_000) -> np.ndarray:
    """Independent oracle: dense synchronous power iteration of eq. 1."""
    n = graph.num_nodes
    src, dst, _ = graph.edge_arrays()
    outdeg = graph.out_degree().astype(np.float64)
    inv_out = np.where(outdeg > 0, 1.0 / np.maximum(outdeg, 1), 0.0)
    x = np.ones(n, dtype=np.float64)
    for _ in range(max_iters):
        contrib = np.zeros(n, dtype=np.float64)
        np.add.at(contrib, dst, x[src] * inv_out[src])
        x_new = (1.0 - damping) + damping * contrib
        if np.abs(x_new - x).max() < tol:
            return x_new
        x = x_new
    return x
