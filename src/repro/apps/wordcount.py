"""WordCount: the canonical MapReduce sanity application.

Not part of the paper's evaluation, but the standard exercise of the
engine substrate (map -> combine -> shuffle -> reduce), used by the
engine tests, the cross-executor equivalence properties, and the
quickstart example.
"""

from __future__ import annotations

import re
from typing import Sequence

import numpy as np

from repro.engine import Job, JobConf, JobResult, MapReduceRuntime

__all__ = [
    "wordcount_map",
    "wordcount_columnar_map",
    "wordcount_reduce",
    "wordcount_job",
    "wordcount",
]

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def wordcount_map(key, value, ctx) -> None:
    """Tokenise one document line and emit (word, 1) pairs."""
    for word in _WORD_RE.findall(str(value).lower()):
        ctx.emit(word, 1)


def wordcount_columnar_map(key, value, ctx) -> None:
    """Tokenise one document line and emit a typed (words, ones) batch.

    String keys are columnar-eligible: ``emit_block`` interns the words
    through a :class:`~repro.engine.StringDictionary`, so routing,
    combining and grouping run vectorised over int64 codes while byte
    accounting and output still see the original words.  Counts are
    float64 on this path (the columnar value column); the classic
    :func:`wordcount_map` keeps Python ints.
    """
    words = _WORD_RE.findall(str(value).lower())
    ctx.emit_block(np.array(words, dtype=object),
                   np.ones(len(words), dtype=np.float64))


def wordcount_job(*, num_reducers: int = 4, use_combiner: bool = True,
                  columnar: bool = False) -> Job:
    """Build the WordCount job (the reduce doubles as the combiner —
    counting is associative and commutative).

    ``columnar=True`` swaps in :func:`wordcount_columnar_map` and the
    declarative ``"sum"`` reduce/combine: same words, same counts
    (as floats), shuffled as dictionary-encoded typed batches.
    """
    if columnar:
        return Job(
            map_fn=wordcount_columnar_map,
            reduce_fn="sum",
            combine_fn="sum" if use_combiner else None,
            conf=JobConf(num_reducers=num_reducers, name="wordcount"),
        )
    return Job(
        map_fn=wordcount_map,
        reduce_fn=wordcount_reduce,
        combine_fn=wordcount_reduce if use_combiner else None,
        conf=JobConf(num_reducers=num_reducers, name="wordcount"),
    )


def wordcount_reduce(key, values, ctx) -> None:
    """Sum the counts for one word."""
    ctx.emit(key, sum(values))


def wordcount(documents: Sequence[str], *, runtime: "MapReduceRuntime | None" = None,
              splits: int = 4, num_reducers: int = 4,
              use_combiner: bool = True, columnar: bool = False) -> JobResult:
    """Count words across ``documents`` with the MapReduce engine.

    Documents are sliced into ``splits`` input splits (one map task
    each); returns the full :class:`JobResult` (use ``.as_dict()`` for
    the counts).
    """
    if splits < 1:
        raise ValueError("splits must be >= 1")
    rt = runtime if runtime is not None else MapReduceRuntime("serial")
    docs = list(documents)
    chunk = max(1, (len(docs) + splits - 1) // splits)
    parts = [
        [(i + j, docs[i + j]) for j in range(min(chunk, len(docs) - i))]
        for i in range(0, max(len(docs), 1), chunk)
    ]
    job = wordcount_job(num_reducers=num_reducers, use_combiner=use_combiner,
                        columnar=columnar)
    return rt.run(job, parts)
