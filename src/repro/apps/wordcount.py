"""WordCount: the canonical MapReduce sanity application.

Not part of the paper's evaluation, but the standard exercise of the
engine substrate (map -> combine -> shuffle -> reduce), used by the
engine tests, the cross-executor equivalence properties, and the
quickstart example.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.engine import Job, JobConf, JobResult, MapReduceRuntime

__all__ = ["wordcount_map", "wordcount_reduce", "wordcount_job", "wordcount"]

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def wordcount_map(key, value, ctx) -> None:
    """Tokenise one document line and emit (word, 1) pairs."""
    for word in _WORD_RE.findall(str(value).lower()):
        ctx.emit(word, 1)


def wordcount_reduce(key, values, ctx) -> None:
    """Sum the counts for one word."""
    ctx.emit(key, sum(values))


def wordcount_job(*, num_reducers: int = 4, use_combiner: bool = True) -> Job:
    """Build the WordCount job (the reduce doubles as the combiner —
    counting is associative and commutative)."""
    return Job(
        map_fn=wordcount_map,
        reduce_fn=wordcount_reduce,
        combine_fn=wordcount_reduce if use_combiner else None,
        conf=JobConf(num_reducers=num_reducers, name="wordcount"),
    )


def wordcount(documents: Sequence[str], *, runtime: "MapReduceRuntime | None" = None,
              splits: int = 4, num_reducers: int = 4,
              use_combiner: bool = True) -> JobResult:
    """Count words across ``documents`` with the MapReduce engine.

    Documents are sliced into ``splits`` input splits (one map task
    each); returns the full :class:`JobResult` (use ``.as_dict()`` for
    the counts).
    """
    if splits < 1:
        raise ValueError("splits must be >= 1")
    rt = runtime if runtime is not None else MapReduceRuntime("serial")
    docs = list(documents)
    chunk = max(1, (len(docs) + splits - 1) // splits)
    parts = [
        [(i + j, docs[i + j]) for j in range(min(chunk, len(docs) - i))]
        for i in range(0, max(len(docs), 1), chunk)
    ]
    job = wordcount_job(num_reducers=num_reducers, use_combiner=use_combiner)
    return rt.run(job, parts)
