"""Landmark all-pairs shortest paths — §V-C's "related structure".

    "All-Pairs Shortest Path has a related structure, and a similar
    approach can be used." (§V-C)

Full APSP is ``n`` single-source problems; at web-graph scale the
standard compromise (and what distributed systems actually deploy) is
*landmark* APSP: exact distances from a set of landmark sources, giving
the triangle-inequality upper bound ``d(u, v) <= min_l d_rev(l, u) +
d(l, v)`` for arbitrary pairs.  Each landmark's SSSP runs through the
same General/Eager machinery as §V-C, so every landmark benefits from
partial synchronization identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.sssp import SsspBlockSpec
from repro.cluster import SimCluster
from repro.core import BlockBackend, DriverConfig, IterationLoop
from repro.graph import DiGraph, Partition
from repro.util import as_rng

__all__ = ["LandmarkApspResult", "landmark_apsp", "estimate_pair_distance"]


@dataclass
class LandmarkApspResult:
    """Distances from (and to) every landmark, plus run statistics."""

    landmarks: np.ndarray
    #: dist_from[l, v]: exact distance landmark l -> node v.
    dist_from: np.ndarray
    #: dist_to[l, u]: exact distance node u -> landmark l.
    dist_to: np.ndarray
    global_iters: int
    sim_time: float
    converged: bool


def landmark_apsp(
    graph: DiGraph,
    partition: Partition,
    *,
    num_landmarks: int = 4,
    mode: str = "eager",
    cluster: "SimCluster | None" = None,
    config: "DriverConfig | None" = None,
    seed: "int | np.random.Generator | None" = 0,
) -> LandmarkApspResult:
    """Exact SSSP from ``num_landmarks`` random sources, forward and reverse.

    The reverse distances (node -> landmark) come from SSSP on the
    transpose graph with the same machinery.  Iteration/time statistics
    are summed over all the landmark runs (they would execute as
    independent jobs).
    """
    if num_landmarks < 1:
        raise ValueError("num_landmarks must be >= 1")
    if num_landmarks > graph.num_nodes:
        raise ValueError("more landmarks than nodes")
    rng = as_rng(seed)
    landmarks = np.sort(rng.choice(graph.num_nodes, size=num_landmarks,
                                   replace=False))
    cfg = config if config is not None else DriverConfig(mode=mode)

    rev_graph = graph.reverse()
    rev_partition = Partition(rev_graph, partition.assign, partition.k)

    dist_from = np.empty((num_landmarks, graph.num_nodes))
    dist_to = np.empty((num_landmarks, graph.num_nodes))
    total_iters = 0
    total_time = 0.0
    all_converged = True
    for i, l in enumerate(landmarks):
        fwd = IterationLoop(
            BlockBackend(SsspBlockSpec(graph, partition, source=int(l)),
                         cluster=cluster), cfg).run()
        rev = IterationLoop(
            BlockBackend(SsspBlockSpec(rev_graph, rev_partition, source=int(l)),
                         cluster=cluster), cfg).run()
        dist_from[i] = np.asarray(fwd.state)
        dist_to[i] = np.asarray(rev.state)
        total_iters += fwd.global_iters + rev.global_iters
        total_time += fwd.sim_time + rev.sim_time
        all_converged &= fwd.converged and rev.converged
    return LandmarkApspResult(landmarks=landmarks, dist_from=dist_from,
                              dist_to=dist_to, global_iters=total_iters,
                              sim_time=total_time, converged=all_converged)


def estimate_pair_distance(result: LandmarkApspResult, u: int, v: int) -> float:
    """Triangle-inequality upper bound on ``d(u, v)`` via the landmarks.

    Exact whenever some shortest u->v path passes through a landmark
    (and exact by construction when u or v *is* a landmark).
    """
    lu = np.searchsorted(result.landmarks, u)
    if lu < len(result.landmarks) and result.landmarks[lu] == u:
        return float(result.dist_from[lu, v])
    lv = np.searchsorted(result.landmarks, v)
    if lv < len(result.landmarks) and result.landmarks[lv] == v:
        return float(result.dist_to[lv, u])
    with np.errstate(invalid="ignore"):
        bounds = result.dist_to[:, u] + result.dist_from[:, v]
    bounds = bounds[~np.isnan(bounds)]
    return float(bounds.min()) if len(bounds) else float("inf")
