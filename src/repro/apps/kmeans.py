"""K-Means clustering: General and Eager formulations (§V-D).

**General** is the Mahout-style MapReduce K-Means the paper baselines
against: per global iteration, the map phase assigns every point to its
closest centroid and the reduce phase recomputes each centroid as the
mean of its points; iterations continue until the centroid movement
drops below a threshold delta (Euclidean metric).

**Eager** gives each gmap a unique subset of the points: "The local map
and local reduce iterations inside the global map cluster the given
subset of the points using the common input-cluster centroids.  Once the
local iterations converge, the global map emits the input-centroids and
their associated updated-centroids.  The global reduce calculates the
final-centroids" (§V-D).  Two refinements from Yom-Tov & Slonim [12] are
included, as the paper prescribes: the points are *repartitioned across
global maps every few iterations* (to avoid local optima), and the
convergence condition adds *oscillation detection* to the Euclidean
metric.

The global combine weights each partition's updated centroid by its
assigned-point count by default (``weighting="count"``), which makes the
general mode exactly Lloyd's algorithm; ``weighting="uniform"`` is the
paper's literal "mean of all updated-centroids" wording.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import SimCluster
from repro.core import (
    AdaptiveSyncPolicy,
    AsyncMapReduceSpec,
    BlockBackend,
    BlockSpec,
    CentroidShiftCriterion,
    DriverConfig,
    IterationLoop,
    IterativeResult,
    LocalSolveReport,
)
from repro.util import as_rng

__all__ = [
    "KMeansBlockSpec",
    "KMeansResult",
    "kmeans",
    "kmeans_spec",
    "kmeans_reference",
    "assign_points",
    "sse",
]

_WEIGHTINGS = ("count", "uniform")


def assign_points(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the closest centroid for every point (squared Euclidean).

    Computed blockwise with the ||p||^2 - 2 p.c + ||c||^2 expansion so
    memory stays O(block * k) on large inputs.
    """
    points = np.asarray(points, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    if points.ndim != 2 or centroids.ndim != 2:
        raise ValueError("points and centroids must be 2-D")
    if points.shape[1] != centroids.shape[1]:
        raise ValueError(
            f"dimension mismatch: points {points.shape[1]} vs "
            f"centroids {centroids.shape[1]}"
        )
    c_sq = (centroids ** 2).sum(axis=1)
    out = np.empty(len(points), dtype=np.int64)
    block = max(1, 2_000_000 // max(len(centroids), 1))
    for lo in range(0, len(points), block):
        chunk = points[lo: lo + block]
        d = chunk @ centroids.T
        d *= -2.0
        d += c_sq
        out[lo: lo + block] = d.argmin(axis=1)
    return out


def sse(points: np.ndarray, centroids: np.ndarray,
        assignment: "np.ndarray | None" = None) -> float:
    """Within-cluster sum of squared errors (the K-Means objective)."""
    points = np.asarray(points, dtype=np.float64)
    if assignment is None:
        assignment = assign_points(points, centroids)
    diffs = points - np.asarray(centroids)[assignment]
    return float((diffs ** 2).sum())


@dataclass
class KMeansResult:
    """Centroids plus run statistics."""

    centroids: np.ndarray
    global_iters: int
    converged: bool
    sim_time: float
    result: IterativeResult


class KMeansBlockSpec(BlockSpec):
    """Vectorised K-Means over point-subset partitions.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix (the census sample in the paper's setup).
    k:
        Number of clusters.
    num_partitions:
        Global map tasks per iteration (the paper fixes 52 for Figs 8-9).
    threshold:
        Centroid-movement convergence bound (the figures' x axis).
    weighting:
        ``"count"`` (exact Lloyd in general mode) or ``"uniform"`` (the
        paper's literal unweighted mean).
    reshuffle_every:
        Repartition the points across gmaps every this many global
        iterations (eager mode; Yom-Tov & Slonim).  0 disables.
    oscillation_detection:
        Enable the Yom-Tov & Slonim oscillation stopping condition.  The
        paper adds it only to the *eager* convergence check ("the
        convergence condition includes detection of oscillations along
        with the Euclidean metric", §V-D); the general baseline uses the
        plain centroid-movement threshold.
    seed:
        Controls the random initial centroids ("initial centroids are
        chosen at random for the sake of generality", §V-D) and the
        repartitioning.
    """

    def __init__(self, points: np.ndarray, k: int, *,
                 num_partitions: int = 52,
                 threshold: float = 1e-3,
                 local_threshold: "float | None" = None,
                 weighting: str = "count",
                 reshuffle_every: int = 5,
                 oscillation_detection: bool = True,
                 max_global_oscillation_window: int = 4,
                 seed: "int | np.random.Generator | None" = 0) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) matrix")
        if not 1 <= k <= len(points):
            raise ValueError(f"k must be in [1, n], got {k}")
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if weighting not in _WEIGHTINGS:
            raise ValueError(f"weighting must be one of {_WEIGHTINGS}")
        if reshuffle_every < 0:
            raise ValueError("reshuffle_every must be >= 0")
        self.points = points
        self.k = k
        self.threshold = threshold
        self.local_threshold = (local_threshold if local_threshold is not None
                                else threshold)
        self.weighting = weighting
        self.reshuffle_every = reshuffle_every
        self.num_parts = min(num_partitions, len(points))
        self.oscillation_detection = oscillation_detection
        self._rng = as_rng(seed)
        self._init_rng_state = self._rng.bit_generator.state
        self._criterion = CentroidShiftCriterion(
            threshold, window=max_global_oscillation_window)
        self._repartition()

    def _repartition(self) -> None:
        """Shuffle points into ``num_parts`` roughly equal subsets."""
        perm = self._rng.permutation(len(self.points))
        self._parts = np.array_split(perm, self.num_parts)

    # -- BlockSpec interface --------------------------------------------
    def num_partitions(self) -> int:
        return self.num_parts

    def init_state(self) -> np.ndarray:
        """Random distinct points as initial centroids; resets criteria.

        The centroid draw happens before the first repartition so a run
        with seed ``s`` starts from exactly the same centroids as
        :func:`kmeans_reference` with the same seed.
        """
        self._rng.bit_generator.state = self._init_rng_state
        self._criterion.reset()
        idx = self._rng.choice(len(self.points), size=self.k, replace=False)
        self._repartition()
        return self.points[idx].copy()

    def on_global_iteration(self, iteration: int, state):
        """Yom-Tov & Slonim: repartition the points every few iterations
        so gmaps do not repeatedly cluster the same subsets (§V-D)."""
        if self.reshuffle_every and iteration > 0 \
                and iteration % self.reshuffle_every == 0:
            self._repartition()
        return None

    def local_solve(self, part_id: int, state: np.ndarray, *,
                    max_local_iters: int) -> LocalSolveReport:
        idx = self._parts[part_id]
        pts = self.points[idx]
        centroids = np.asarray(state, dtype=np.float64).copy()
        per_iter_ops: list[float] = []
        iters = 0
        sums = np.zeros_like(centroids)
        counts = np.zeros(self.k, dtype=np.float64)
        while iters < max_local_iters:
            assignment = assign_points(pts, centroids)
            sums = np.zeros_like(centroids)
            np.add.at(sums, assignment, pts)
            counts = np.bincount(assignment, minlength=self.k).astype(np.float64)
            new_centroids = centroids.copy()
            nonempty = counts > 0
            new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
            # One record op per point (the map side) plus the centroid
            # records the local reduce touches.
            per_iter_ops.append(float(len(pts) + self.k))
            iters += 1
            shift = float(np.linalg.norm(new_centroids - centroids, axis=1).max())
            centroids = new_centroids
            if shift < self.local_threshold:
                break
        # The emitted (input-centroid -> updated-centroid) pairs are the
        # final local centroids with their supporting sums/counts — i.e.
        # the last in-loop assignment.  With a single local iteration the
        # assignment is by the *input* centroids, so the count-weighted
        # global combine reproduces one exact Lloyd step (the Mahout
        # baseline); recomputing the assignment after the loop would
        # smuggle in an extra half-step.
        shuffle_records = self.k  # one updated-centroid record per input centroid
        return LocalSolveReport(
            partition=part_id,
            updates=(sums, counts),
            local_iters=iters,
            per_iter_ops=per_iter_ops,
            shuffle_bytes=shuffle_records * (self.points.shape[1] + 1) * 8,
        )

    def global_combine(self, state, reports):
        centroids = np.asarray(state, dtype=np.float64)
        total_sums = np.zeros_like(centroids)
        total_counts = np.zeros(self.k, dtype=np.float64)
        if self.weighting == "count":
            for r in reports:
                sums, counts = r.updates
                total_sums += sums
                total_counts += counts
        else:
            # Unweighted mean of each partition's updated centroid.
            for r in reports:
                sums, counts = r.updates
                nonempty = counts > 0
                upd = np.where(nonempty[:, None],
                               sums / np.maximum(counts, 1.0)[:, None],
                               centroids)
                total_sums += upd
                total_counts += 1.0
        new_centroids = centroids.copy()
        nonempty = total_counts > 0
        new_centroids[nonempty] = (total_sums[nonempty]
                                   / total_counts[nonempty, None])
        reduce_ops = float(self.k * len(reports))
        return new_centroids, reduce_ops, 0

    def global_converged(self, prev, curr):
        if self.oscillation_detection:
            done = self._criterion.update(np.asarray(prev), np.asarray(curr))
            return done, self._criterion.last_residual
        shift = float(np.linalg.norm(
            np.asarray(curr, dtype=np.float64)
            - np.asarray(prev, dtype=np.float64), axis=1).max())
        return shift < self.threshold, shift

    def state_nbytes(self, state) -> int:
        """The combined centroids — K-Means' inter-round state.

        Unlike the graph apps, the state is not partition-scoped: the
        global reduce writes ONE small centroid table that every gmap
        reads back.  Its per-partition state-store distribution is
        therefore uniform (the framework's even split of this total),
        which is K-Means' real profile — no partition owns a hotter key
        range than any other.
        """
        return int(np.asarray(state).nbytes)


# ----------------------------------------------------------------------
# Record-at-a-time (§IV API) implementation
# ----------------------------------------------------------------------

class KMeansKVSpec:
    """K-Means through lmap/lreduce/greduce on the real engine.

    Hashtable layout per partition: point records ``("pt", i) ->
    ndarray`` plus centroid records ``("c", j) -> ndarray``.  The current
    centroids are pulled from the table before every local iteration via
    :meth:`before_local_iteration` — the record-at-a-time analogue of
    Hadoop's distributed cache (a map function cannot otherwise see
    shared per-iteration data).

    Intended for the serial engine runtime (the broadcast attribute is
    per-instance, so thread-pool executors would race on it); the block
    spec is the parallel-scale implementation.
    """

    def __init__(self, points: np.ndarray, k: int, *,
                 num_partitions: int = 4, threshold: float = 1e-3,
                 seed: "int | np.random.Generator | None" = 0) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) matrix")
        if not 1 <= k <= len(points):
            raise ValueError(f"k must be in [1, n], got {k}")
        self.points = points
        self.k = k
        self.threshold = threshold
        rng = as_rng(seed)
        self._init_idx = rng.choice(len(points), size=k, replace=False)
        self._parts = np.array_split(rng.permutation(len(points)),
                                     min(num_partitions, len(points)))
        self._centroids: "np.ndarray | None" = None

    # -- plumbing --------------------------------------------------------
    def initial_state(self) -> dict:
        return {("c", j): self.points[self._init_idx[j]].copy()
                for j in range(self.k)}

    def num_partitions(self) -> int:
        return len(self._parts)

    def partition_input(self, part_id: int, state: dict) -> list:
        xs = [(("c", j), state[("c", j)]) for j in range(self.k)]
        xs += [(("pt", int(i)), self.points[int(i)])
               for i in self._parts[part_id]]
        return xs

    def before_local_iteration(self, table: dict) -> None:
        self._centroids = np.stack([table[("c", j)] for j in range(self.k)])

    # -- the four user functions ------------------------------------------
    def lmap(self, key, value, ctx) -> None:
        tag = key[0]
        if tag != "pt":
            return  # centroid records carry state; points do the work
        assert self._centroids is not None
        j = int(assign_points(value[None, :], self._centroids)[0])
        ctx.emit_local_intermediate(("c", j), (value, 1.0))
        ctx.add_ops(float(self.k))

    def lreduce(self, key, values, ctx) -> None:
        total = np.zeros(self.points.shape[1])
        count = 0.0
        for vec, c in values:
            total += vec
            count += c
        if count > 0:
            ctx.emit_local(key, total / count)

    def greduce(self, key, values, ctx) -> None:
        sums = np.zeros(self.points.shape[1])
        counts = 0.0
        for vec, c in values:
            sums += vec * c
            counts += c
        if counts > 0:
            ctx.emit(key, sums / counts)

    # -- emission & convergence --------------------------------------------
    def gmap_emit(self, table: dict, part_id: int) -> list:
        """Emit (input-centroid -> updated-centroid, weight) pairs."""
        assert self._centroids is not None
        counts = np.zeros(self.k)
        idx = np.array([i for (tag, i) in table if tag == "pt"], dtype=np.int64)
        if len(idx):
            a = assign_points(self.points[idx], self._centroids)
            counts = np.bincount(a, minlength=self.k).astype(np.float64)
        return [(("c", j), (table[("c", j)], float(max(counts[j], 0.0))))
                for j in range(self.k)]

    def state_from_output(self, output: list, prev_state: dict) -> dict:
        new_state = dict(prev_state)
        new_state.update(output)
        return new_state

    def local_converged(self, prev_table: dict, curr_table: dict) -> bool:
        shift = 0.0
        for j in range(self.k):
            shift = max(shift, float(np.linalg.norm(
                curr_table[("c", j)] - prev_table[("c", j)])))
        return shift < self.threshold

    def global_converged(self, prev_state: dict, curr_state: dict):
        shift = 0.0
        for j in range(self.k):
            shift = max(shift, float(np.linalg.norm(
                curr_state[("c", j)] - prev_state[("c", j)])))
        return shift < self.threshold, shift

    def on_global_iteration(self, iteration: int, state):
        return None


# Register as a virtual subclass: KMeansKVSpec implements the complete
# AsyncMapReduceSpec surface and is accepted wherever the ABC is.
AsyncMapReduceSpec.register(KMeansKVSpec)


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------

def kmeans(
    points: np.ndarray,
    k: int,
    *,
    mode: str = "eager",
    num_partitions: int = 52,
    threshold: float = 1e-3,
    weighting: str = "count",
    reshuffle_every: int = 5,
    cluster: "SimCluster | None" = None,
    config: "DriverConfig | None" = None,
    seed: "int | np.random.Generator | None" = 0,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups, General or Eager formulation."""
    cfg = config if config is not None else DriverConfig(mode=mode)
    spec = _kmeans_block_spec(points, k, num_partitions=num_partitions,
                              threshold=threshold, weighting=weighting,
                              reshuffle_every=reshuffle_every, seed=seed,
                              cfg=cfg)
    res = IterationLoop(BlockBackend(spec, cluster=cluster), cfg,
                        sync_policy=sync_policy).run()
    return KMeansResult(centroids=np.asarray(res.state),
                        global_iters=res.global_iters,
                        converged=res.converged, sim_time=res.sim_time,
                        result=res)


def _kmeans_block_spec(points, k, *, num_partitions, threshold, weighting,
                       reshuffle_every, seed, cfg) -> KMeansBlockSpec:
    return KMeansBlockSpec(
        points, k,
        num_partitions=num_partitions,
        threshold=threshold,
        weighting=weighting,
        reshuffle_every=(reshuffle_every if cfg.mode == "eager" else 0),
        oscillation_detection=(cfg.mode == "eager"),
        seed=seed,
    )


def kmeans_spec(
    points: np.ndarray,
    k: int,
    *,
    mode: str = "eager",
    num_partitions: int = 52,
    threshold: float = 1e-3,
    weighting: str = "count",
    reshuffle_every: int = 5,
    config: "DriverConfig | None" = None,
    seed: "int | np.random.Generator | None" = 0,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
    name: "str | None" = None,
) -> "JobSpec":
    """A submittable K-Means job for :meth:`~repro.core.Session.submit`.

    Same job :func:`kmeans` runs privately, as a
    :class:`~repro.core.session.JobSpec`; the final centroids are
    ``np.asarray(handle.result.state)``.
    """
    from repro.core.session import JobSpec

    cfg = config if config is not None else DriverConfig(mode=mode)
    return JobSpec(
        name=name if name is not None else "kmeans",
        config=cfg,
        sync_policy=sync_policy,
        make_backend=lambda session: BlockBackend(
            _kmeans_block_spec(points, k, num_partitions=num_partitions,
                               threshold=threshold, weighting=weighting,
                               reshuffle_every=reshuffle_every, seed=seed,
                               cfg=cfg),
            cluster=session.cluster),
    )


def kmeans_reference(points: np.ndarray, k: int, *, threshold: float = 1e-3,
                     max_iters: int = 1000,
                     seed: "int | np.random.Generator | None" = 0) -> np.ndarray:
    """Independent oracle: plain serial Lloyd's algorithm."""
    points = np.asarray(points, dtype=np.float64)
    rng = as_rng(seed)
    idx = rng.choice(len(points), size=k, replace=False)
    centroids = points[idx].copy()
    for _ in range(max_iters):
        assignment = assign_points(points, centroids)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignment, points)
        counts = np.bincount(assignment, minlength=k).astype(np.float64)
        new_centroids = centroids.copy()
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        shift = float(np.linalg.norm(new_centroids - centroids, axis=1).max())
        centroids = new_centroids
        if shift < threshold:
            break
    return centroids
