"""Connected components via label propagation (broader applicability, §V-E).

The paper lists connected components among the "class of applications
over sparse graphs" its approach extends to ("Shortest Path represents a
class of applications over sparse graphs that includes minimum spanning
trees, transitive closure, and connected components", §VI).  This module
is that extension: min-label propagation over the *undirected* view of
the graph, with the same General (one hop per global iteration) vs Eager
(local propagation to a fixed point per partition) pairing as SSSP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import SimCluster
from repro.core import (
    BlockBackend,
    BlockSpec,
    DriverConfig,
    IterationLoop,
    IterativeResult,
    LocalSolveReport,
)
from repro.graph import DiGraph, Partition

__all__ = [
    "ComponentsBlockSpec",
    "ComponentsResult",
    "connected_components",
    "components_spec",
    "components_reference",
]

RECORD_BYTES = 16


@dataclass
class ComponentsResult:
    """Component labels plus run statistics."""

    labels: np.ndarray
    num_components: int
    global_iters: int
    converged: bool
    sim_time: float
    result: IterativeResult


class ComponentsBlockSpec(BlockSpec):
    """Min-label propagation over undirected edges, partitioned."""

    #: Each partition owns a disjoint node slice of the state vector.
    partition_scoped_state = True

    def __init__(self, graph: DiGraph, partition: Partition) -> None:
        self.graph = graph
        self.partition = partition
        ptr, nbr, _ = graph.undirected_csr()
        src = np.repeat(np.arange(graph.num_nodes), np.diff(ptr))
        assign = partition.assign
        parts = partition.parts()
        self._edges = []
        for p in range(partition.k):
            nodes = parts[p]
            local_of = np.full(graph.num_nodes, -1, dtype=np.int64)
            local_of[nodes] = np.arange(len(nodes))
            in_p_src = assign[src] == p
            in_p_dst = assign[nbr] == p
            internal = in_p_src & in_p_dst
            incoming = ~in_p_src & in_p_dst
            self._edges.append((
                nodes,
                local_of[src[internal]], local_of[nbr[internal]],
                src[incoming], local_of[nbr[incoming]],
                int((in_p_src & ~in_p_dst).sum()),
                int(in_p_src.sum()),
            ))

    def num_partitions(self) -> int:
        return self.partition.k

    def init_state(self) -> np.ndarray:
        """Every node starts labelled with its own id."""
        return np.arange(self.graph.num_nodes, dtype=np.int64)

    def local_solve(self, part_id: int, state: np.ndarray, *,
                    max_local_iters: int) -> LocalSolveReport:
        nodes, i_src, i_dst, e_src, e_dst, out_cut, out_all = self._edges[part_id]
        if len(nodes) == 0:
            return LocalSolveReport(partition=part_id, updates=(nodes, nodes),
                                    local_iters=0, per_iter_ops=[],
                                    shuffle_bytes=0, update_nbytes=0)
        # As in SSSP: the frozen cross-edge labels are a constant floor
        # applied inside each relaxation, so one local iteration is one
        # synchronous propagation round regardless of the partitioning.
        x = state[nodes].copy()
        ext_floor = np.full(len(nodes), self.graph.num_nodes, dtype=np.int64)
        if len(e_src):
            np.minimum.at(ext_floor, e_dst, state[e_src])
        per_iter_ops: list[float] = []
        iters = 0
        while iters < max_local_iters:
            x_new = np.minimum(x, ext_floor)
            if len(i_src):
                np.minimum.at(x_new, i_dst, x[i_src])
            per_iter_ops.append(float(len(i_src) + len(nodes)))
            iters += 1
            changed = bool(np.any(x_new < x))
            x = x_new
            if not changed:
                break
        records = (out_all if max_local_iters == 1 else out_cut) + len(nodes)
        # Frontier-driven state traffic, like SSSP: only labels lowered
        # this round are rewritten through the state store.
        changed = int(np.count_nonzero(x < state[nodes]))
        return LocalSolveReport(partition=part_id, updates=(nodes, x),
                                local_iters=iters, per_iter_ops=per_iter_ops,
                                shuffle_bytes=records * RECORD_BYTES,
                                update_nbytes=changed * 8)

    def global_combine(self, state, reports):
        new_state = state.copy()
        records = 0
        for r in reports:
            nodes, x = r.updates
            # Fancy indexing yields a copy, so assign the elementwise min
            # back rather than using an out= view that would be discarded.
            new_state[nodes] = np.minimum(new_state[nodes], x)
            records += r.shuffle_bytes // RECORD_BYTES
        return new_state, float(records), 0

    def global_converged(self, prev, curr):
        residual = float(np.abs(curr - prev).max()) if len(prev) else 0.0
        return residual == 0.0, residual

    def state_nbytes(self, state) -> int:
        return int(np.asarray(state).nbytes)


def connected_components(
    graph: DiGraph,
    partition: Partition,
    *,
    mode: str = "eager",
    cluster: "SimCluster | None" = None,
    config: "DriverConfig | None" = None,
) -> ComponentsResult:
    """Weakly-connected component labels, General or Eager formulation."""
    cfg = config if config is not None else DriverConfig(mode=mode)
    spec = ComponentsBlockSpec(graph, partition)
    res = IterationLoop(BlockBackend(spec, cluster=cluster), cfg).run()
    labels = np.asarray(res.state)
    return ComponentsResult(
        labels=labels,
        num_components=int(len(np.unique(labels))),
        global_iters=res.global_iters,
        converged=res.converged,
        sim_time=res.sim_time,
        result=res,
    )


def components_spec(
    graph: DiGraph,
    partition: Partition,
    *,
    mode: str = "eager",
    config: "DriverConfig | None" = None,
    name: "str | None" = None,
) -> "JobSpec":
    """A submittable connected-components job for
    :meth:`~repro.core.Session.submit`; the final labels are
    ``np.asarray(handle.result.state)``."""
    from repro.core.session import JobSpec

    cfg = config if config is not None else DriverConfig(mode=mode)
    return JobSpec(
        name=name if name is not None else "components",
        config=cfg,
        make_backend=lambda session: BlockBackend(
            ComponentsBlockSpec(graph, partition),
            cluster=session.cluster),
    )


def components_reference(graph: DiGraph) -> np.ndarray:
    """Independent oracle: SciPy's connected_components, min-label form."""
    import scipy.sparse as sp
    import scipy.sparse.csgraph as csgraph

    n = graph.num_nodes
    src, dst, _ = graph.edge_arrays()
    mat = sp.csr_matrix((np.ones(len(src)), (src, dst)), shape=(n, n))
    _, comp = csgraph.connected_components(mat, directed=False)
    # Relabel each component by its smallest member so labels match the
    # min-label propagation's fixed point exactly.
    min_label = np.full(comp.max() + 1 if n else 0, n, dtype=np.int64)
    np.minimum.at(min_label, comp, np.arange(n))
    return min_label[comp]
