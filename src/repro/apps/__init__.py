"""Applications: the paper's three benchmarks plus extensions.

* :mod:`~repro.apps.pagerank` — PageRank (§V-B), General + Eager.
* :mod:`~repro.apps.sssp` — Single-Source Shortest Path (§V-C).
* :mod:`~repro.apps.kmeans` — K-Means clustering (§V-D) with the
  Yom-Tov & Slonim repartitioning and oscillation detection.
* :mod:`~repro.apps.components` — connected components (§V-E / §VI
  "broader applicability").
* :mod:`~repro.apps.jacobi` — asynchronous Jacobi linear solver (§VI:
  "asynchronous mat-vecs form the core of iterative linear system
  solvers").
* :mod:`~repro.apps.apsp` — landmark all-pairs shortest paths (§V-C:
  "All-Pairs Shortest Path has a related structure").
* :mod:`~repro.apps.wordcount` — engine sanity application.

Each iterative app has two entry points: the classic immediate runner
(:func:`pagerank`, :func:`sssp`, ...) and a ``*_spec`` factory
(:func:`pagerank_spec`, :func:`sssp_spec`, :func:`kmeans_spec`,
:func:`components_spec`, :func:`jacobi_spec`) that produces a
submittable :class:`~repro.core.session.JobSpec` for the multi-job
:class:`~repro.core.session.Session` API — apps describe work, the
session schedules it.
"""

from repro.apps.apsp import (
    LandmarkApspResult,
    estimate_pair_distance,
    landmark_apsp,
)
from repro.apps.components import (
    ComponentsBlockSpec,
    ComponentsResult,
    components_reference,
    components_spec,
    connected_components,
)
from repro.apps.jacobi import (
    JacobiBlockSpec,
    JacobiResult,
    SparseSystem,
    jacobi_solve,
    jacobi_spec,
    make_diagonally_dominant_system,
)
from repro.apps.kmeans import (
    KMeansBlockSpec,
    KMeansKVSpec,
    KMeansResult,
    assign_points,
    kmeans,
    kmeans_reference,
    kmeans_spec,
    sse,
)
from repro.apps.pagerank import (
    PageRankBlockSpec,
    PageRankKVSpec,
    PageRankResult,
    pagerank,
    pagerank_reference,
    pagerank_spec,
)
from repro.apps.sssp import (
    SsspBlockSpec,
    SsspKVSpec,
    SsspResult,
    sssp,
    sssp_reference,
    sssp_spec,
)
from repro.apps.wordcount import (
    wordcount,
    wordcount_job,
    wordcount_map,
    wordcount_reduce,
)

__all__ = [
    "pagerank_spec",
    "sssp_spec",
    "kmeans_spec",
    "components_spec",
    "jacobi_spec",
    "pagerank",
    "pagerank_reference",
    "PageRankBlockSpec",
    "PageRankKVSpec",
    "PageRankResult",
    "sssp",
    "sssp_reference",
    "SsspBlockSpec",
    "SsspKVSpec",
    "SsspResult",
    "kmeans",
    "kmeans_reference",
    "KMeansBlockSpec",
    "KMeansKVSpec",
    "KMeansResult",
    "assign_points",
    "sse",
    "connected_components",
    "components_reference",
    "ComponentsBlockSpec",
    "ComponentsResult",
    "landmark_apsp",
    "estimate_pair_distance",
    "LandmarkApspResult",
    "jacobi_solve",
    "JacobiBlockSpec",
    "JacobiResult",
    "SparseSystem",
    "make_diagonally_dominant_system",
    "wordcount",
    "wordcount_job",
    "wordcount_map",
    "wordcount_reduce",
]
