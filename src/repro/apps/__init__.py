"""Applications: the paper's three benchmarks plus extensions.

* :mod:`~repro.apps.pagerank` — PageRank (§V-B), General + Eager.
* :mod:`~repro.apps.sssp` — Single-Source Shortest Path (§V-C).
* :mod:`~repro.apps.kmeans` — K-Means clustering (§V-D) with the
  Yom-Tov & Slonim repartitioning and oscillation detection.
* :mod:`~repro.apps.components` — connected components (§V-E / §VI
  "broader applicability").
* :mod:`~repro.apps.jacobi` — asynchronous Jacobi linear solver (§VI:
  "asynchronous mat-vecs form the core of iterative linear system
  solvers").
* :mod:`~repro.apps.apsp` — landmark all-pairs shortest paths (§V-C:
  "All-Pairs Shortest Path has a related structure").
* :mod:`~repro.apps.wordcount` — engine sanity application.
"""

from repro.apps.components import (
    ComponentsBlockSpec,
    ComponentsResult,
    components_reference,
    connected_components,
)
from repro.apps.kmeans import (
    KMeansBlockSpec,
    KMeansKVSpec,
    KMeansResult,
    assign_points,
    kmeans,
    kmeans_reference,
    sse,
)
from repro.apps.apsp import (
    LandmarkApspResult,
    estimate_pair_distance,
    landmark_apsp,
)
from repro.apps.jacobi import (
    JacobiBlockSpec,
    JacobiResult,
    SparseSystem,
    jacobi_solve,
    make_diagonally_dominant_system,
)
from repro.apps.pagerank import (
    PageRankBlockSpec,
    PageRankKVSpec,
    PageRankResult,
    pagerank,
    pagerank_reference,
)
from repro.apps.sssp import (
    SsspBlockSpec,
    SsspKVSpec,
    SsspResult,
    sssp,
    sssp_reference,
)
from repro.apps.wordcount import (
    wordcount,
    wordcount_job,
    wordcount_map,
    wordcount_reduce,
)

__all__ = [
    "pagerank",
    "pagerank_reference",
    "PageRankBlockSpec",
    "PageRankKVSpec",
    "PageRankResult",
    "sssp",
    "sssp_reference",
    "SsspBlockSpec",
    "SsspKVSpec",
    "SsspResult",
    "kmeans",
    "kmeans_reference",
    "KMeansBlockSpec",
    "KMeansKVSpec",
    "KMeansResult",
    "assign_points",
    "sse",
    "connected_components",
    "components_reference",
    "ComponentsBlockSpec",
    "ComponentsResult",
    "landmark_apsp",
    "estimate_pair_distance",
    "LandmarkApspResult",
    "jacobi_solve",
    "JacobiBlockSpec",
    "JacobiResult",
    "SparseSystem",
    "make_diagonally_dominant_system",
    "wordcount",
    "wordcount_job",
    "wordcount_map",
    "wordcount_reduce",
]
