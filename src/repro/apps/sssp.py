"""Single-Source Shortest Path: General and Eager formulations (§V-C).

The MapReduce formulation maintains each node's best known distance from
the source.  In the **general** implementation every global iteration
relaxes every edge once (a synchronous Bellman-Ford round): "each map
operates on one node ... and for every destination node v, emits the sum
of the shortest distance to u and the weight of the edge; each reduce
finds the minimum of the different paths" (§V-C.1, with the competitive
partition-input baseline).  In the **eager** implementation each gmap
relaxes the paths *within its sub-graph to a fixed point* before the
global synchronization accounts for cross-partition edges (§V-C.1,
"computing shortest distances of nodes using the paths within the
sub-graph asynchronously").

This is the min-plus (tropical) analogue of the PageRank block-Jacobi
scheme; distances are monotonically non-increasing, so both formulations
terminate at the exact Dijkstra distances — which the tests verify
against a SciPy oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import SimCluster
from repro.core import (
    AdaptiveSyncPolicy,
    AsyncMapReduceSpec,
    BlockSpec,
    DenseKVState,
    DriverConfig,
    EngineBackend,
    IterationLoop,
    IterativeResult,
    LocalSolveReport,
    resolve_block_backend,
)
from repro.engine import MapReduceRuntime
from repro.graph import DiGraph, Partition

__all__ = [
    "SsspBlockSpec",
    "SsspKVSpec",
    "SsspResult",
    "sssp",
    "sssp_spec",
    "sssp_reference",
]

RECORD_BYTES = 16


@dataclass
class SsspResult:
    """Distances plus run statistics."""

    distances: np.ndarray
    global_iters: int
    converged: bool
    sim_time: float
    result: IterativeResult


class _PartitionEdges:
    """Per-partition weighted edge structure for the local relaxations."""

    __slots__ = ("nodes", "int_src", "int_dst", "int_w", "ext_src",
                 "ext_dst", "ext_w", "out_cut_edges", "out_edges")

    def __init__(self, graph: DiGraph, assign: np.ndarray, part_id: int,
                 nodes: np.ndarray) -> None:
        self.nodes = nodes
        local_of = np.full(graph.num_nodes, -1, dtype=np.int64)
        local_of[nodes] = np.arange(len(nodes))
        src, dst, w = graph.edge_arrays()
        in_p_src = assign[src] == part_id
        in_p_dst = assign[dst] == part_id
        internal = in_p_src & in_p_dst
        incoming = ~in_p_src & in_p_dst
        self.int_src = local_of[src[internal]]
        self.int_dst = local_of[dst[internal]]
        self.int_w = w[internal]
        self.ext_src = src[incoming]
        self.ext_dst = local_of[dst[incoming]]
        self.ext_w = w[incoming]
        self.out_cut_edges = int((in_p_src & ~in_p_dst).sum())
        self.out_edges = int(in_p_src.sum())


class SsspBlockSpec(BlockSpec):
    """Vectorised SSSP over a partition (min-plus block iteration)."""

    #: Each partition owns a disjoint node slice of the state vector.
    partition_scoped_state = True
    #: Min-plus relaxation is monotone (distances only improve) and the
    #: combine is a commutative min-fold, the textbook async-safe shape:
    #: stale reads only delay relaxations, never corrupt them.
    supports_async = True

    def __init__(self, graph: DiGraph, partition: Partition, *,
                 source: int = 0) -> None:
        if not 0 <= source < graph.num_nodes:
            raise ValueError(f"source {source} out of range")
        if graph.num_edges and graph.out_w.min() < 0:
            raise ValueError("SSSP requires non-negative edge weights")
        self.graph = graph
        self.partition = partition
        self.source = source
        parts = partition.parts()
        self._edges = [
            _PartitionEdges(graph, partition.assign, p, parts[p])
            for p in range(partition.k)
        ]

    # -- BlockSpec interface --------------------------------------------
    def num_partitions(self) -> int:
        return self.partition.k

    def init_state(self) -> np.ndarray:
        """Source at distance 0, everything else unreached (inf), §V-C."""
        dist = np.full(self.graph.num_nodes, np.inf, dtype=np.float64)
        dist[self.source] = 0.0
        return dist

    def local_solve(self, part_id: int, state: np.ndarray, *,
                    max_local_iters: int) -> LocalSolveReport:
        pe = self._edges[part_id]
        nodes = pe.nodes
        if len(nodes) == 0:
            return LocalSolveReport(partition=part_id, updates=(nodes, nodes),
                                    local_iters=0, per_iter_ops=[],
                                    shuffle_bytes=0, update_nbytes=0)
        # Frozen candidates over incoming cross edges: a constant floor
        # applied inside each relaxation so that a single local iteration
        # is exactly one synchronous Bellman-Ford round over *all* edges
        # (general mode must be partition-independent), while iterating
        # to a fixed point resolves every intra-partition path (eager).
        x = state[nodes].copy()
        ext_floor = np.full(len(nodes), np.inf, dtype=np.float64)
        if len(pe.ext_src):
            np.minimum.at(ext_floor, pe.ext_dst, state[pe.ext_src] + pe.ext_w)

        per_iter_ops: list[float] = []
        iters = 0
        while iters < max_local_iters:
            x_new = np.minimum(x, ext_floor)
            if len(pe.int_src):
                np.minimum.at(x_new, pe.int_dst, x[pe.int_src] + pe.int_w)
            per_iter_ops.append(float(len(pe.int_src) + len(nodes)))
            iters += 1
            changed = x_new < x
            x = x_new
            if not np.any(changed):
                break

        if max_local_iters == 1:
            records = pe.out_edges + len(nodes)
        else:
            records = pe.out_cut_edges + len(nodes)
        # State-store traffic is frontier-driven: only distances that
        # improved this round are (re)written, so partitions the wave
        # is currently sweeping dominate the store's key range —
        # SSSP's naturally skewed update distribution.
        changed = int(np.count_nonzero(x < state[nodes]))
        return LocalSolveReport(partition=part_id, updates=(nodes, x),
                                local_iters=iters, per_iter_ops=per_iter_ops,
                                shuffle_bytes=records * RECORD_BYTES,
                                update_nbytes=changed * 8)

    def global_combine(self, state, reports):
        new_state = state.copy()
        records = 0
        for r in reports:
            nodes, x = r.updates
            # Fancy indexing yields a copy, so assign the elementwise min
            # back rather than using an out= view that would be discarded.
            new_state[nodes] = np.minimum(new_state[nodes], x)
            records += r.shuffle_bytes // RECORD_BYTES
        return new_state, float(records), 0

    def global_converged(self, prev, curr):
        both_inf = np.isinf(prev) & np.isinf(curr)
        with np.errstate(invalid="ignore"):  # inf - inf handled via mask
            diff = np.abs(curr - prev)
        diff[both_inf] = 0.0
        residual = float(diff.max()) if len(diff) else 0.0
        return residual == 0.0, residual

    def state_nbytes(self, state) -> int:
        return int(np.asarray(state).nbytes)


# ----------------------------------------------------------------------
# Record-at-a-time (§IV API) implementation
# ----------------------------------------------------------------------

def _sssp_columnar_finish(keys: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Vectorised greduce epilogue: fold the cross-edge floor into the
    distance column (``dist = min(dist, ext_best)``).  Top-level so the
    process-pool executors can pickle the reduce spec."""
    rows = rows.copy()
    rows[:, 0] = np.minimum(rows[:, 0], rows[:, 1])
    return rows


class SsspKVSpec(AsyncMapReduceSpec):
    """SSSP through lmap/lreduce/greduce on the real engine.

    Hashtable layout: ``node -> (dist, ext_best, internal_adj,
    external_adj)`` with weighted adjacency lists split at partition
    boundaries; ``ext_best`` is the best known distance via cross edges,
    frozen during local iterations.  Global state: ``node -> (dist,
    ext_best)``.

    Columnar fast path: boundary records become ``(node, (dist, d))``
    rows — the owner's distance record is ``(dist, inf)``, each
    cross-edge relaxation candidate ``(inf, dist + w)`` — reduced by a
    per-key segmented **min** (exact, so the columnar run is
    bit-identical to the classic path) with a vectorised epilogue
    folding the cross-edge floor into the distance.  The map-side
    ``"min"`` combiner ships one row per remote target per partition.
    """

    supports_columnar = True
    columnar_combine = "min"

    def __init__(self, graph: DiGraph, partition: Partition, *,
                 source: int = 0, dense_state: bool = False) -> None:
        if not 0 <= source < graph.num_nodes:
            raise ValueError(f"source {source} out of range")
        self.graph = graph
        self.partition = partition
        self.source = source
        self.dense_state = dense_state
        assign = partition.assign
        self._internal_adj: dict[int, list] = {}
        self._external_adj: dict[int, list] = {}
        for u in range(graph.num_nodes):
            succ = graph.successors(u)
            w = graph.out_weights(u)
            same = assign[succ] == assign[u]
            self._internal_adj[u] = list(zip(succ[same].tolist(), w[same].tolist()))
            self._external_adj[u] = list(zip(succ[~same].tolist(), w[~same].tolist()))
        #: part_id -> static emission arrays for the columnar gmap.
        self._col_cache: dict = {}

    def initial_state(self) -> dict:
        """Source at 0, rest unreached; cross-edge floors consistent with
        that initial state (the source's cross out-edges already offer
        candidate distances to their remote endpoints)."""
        inf = float("inf")
        if self.dense_state:
            rows = np.full((self.graph.num_nodes, 2), np.inf,
                           dtype=np.float64)
            rows[self.source, 0] = 0.0
            for v, w in self._external_adj[self.source]:
                rows[v, 1] = min(rows[v, 1], w)
            return DenseKVState(rows)
        state = {u: (0.0 if u == self.source else inf, inf)
                 for u in range(self.graph.num_nodes)}
        for v, w in self._external_adj[self.source]:
            dist, ext = state[v]
            state[v] = (dist, min(ext, w))
        return state

    def num_partitions(self) -> int:
        return self.partition.k

    def partition_input(self, part_id: int, state: dict) -> list:
        xs = []
        for u in self.partition.parts()[part_id]:
            u = int(u)
            dist, ext = state[u]
            xs.append((u, (dist, ext, self._internal_adj[u], self._external_adj[u])))
        return xs

    def lmap(self, key, value, ctx) -> None:
        dist, ext, internal, external = value
        ctx.emit_local_intermediate(key, ("rec", value))
        if np.isfinite(dist):
            for v, w in internal:
                ctx.emit_local_intermediate(v, ("d", dist + w))

    def lreduce(self, key, values, ctx) -> None:
        rec = None
        best = float("inf")
        for tag, payload in values:
            if tag == "rec":
                rec = payload
            else:
                best = min(best, payload)
        if rec is None:
            return
        dist, ext, internal, external = rec
        new_dist = min(dist, best, ext)
        ctx.emit_local(key, (new_dist, ext, internal, external))

    def greduce(self, key, values, ctx) -> None:
        dist = float("inf")
        ext = float("inf")
        for tag, payload in values:
            if tag == "dist":
                dist = min(dist, payload)
            else:  # "d": cross-edge candidate for the next round
                ext = min(ext, payload)
        ctx.emit(key, (min(dist, ext), ext))

    def gmap_emit(self, table: dict, part_id: int) -> list:
        out = []
        for u, (dist, ext, internal, external) in table.items():
            out.append((u, ("dist", dist)))
            if np.isfinite(dist):
                for v, w in external:
                    out.append((v, ("d", dist + w)))
        return out

    def local_converged(self, prev_table: dict, curr_table: dict) -> bool:
        for u, rec in curr_table.items():
            prev = prev_table[u][0]
            if rec[0] != prev and not (np.isinf(rec[0]) and np.isinf(prev)):
                return False
        return True

    def global_converged(self, prev_state, curr_state):
        if isinstance(curr_state, DenseKVState):
            prev = prev_state.column(0)
            curr = curr_state.column(0)
            both_inf = np.isinf(prev) & np.isinf(curr)
            with np.errstate(invalid="ignore"):  # inf - inf via mask
                diff = np.abs(curr - prev)
            diff[both_inf] = 0.0
            residual = float(diff.max()) if len(diff) else 0.0
            return residual == 0.0, residual
        residual = 0.0
        for u, (d, _) in curr_state.items():
            p = prev_state[u][0]
            if np.isinf(d) and np.isinf(p):
                continue
            residual = max(residual, abs(d - p))
        return residual == 0.0, residual

    def state_from_output(self, output: list, prev_state):
        if isinstance(prev_state, DenseKVState):
            return prev_state.scatter_pairs(output)
        new_state = dict(prev_state)
        new_state.update(output)
        return new_state

    # -- columnar fast path ------------------------------------------------
    def _columnar_arrays(self, part_id: int):
        """Static per-partition emission structure (built once)."""
        cached = self._col_cache.get(part_id)
        if cached is None:
            nodes = self.partition.parts()[part_id].astype(np.int64)
            node_list = [int(u) for u in nodes]
            counts = [len(self._external_adj[u]) for u in node_list]
            total = sum(counts)
            ext_dst = np.fromiter(
                (v for u in node_list for v, _ in self._external_adj[u]),
                dtype=np.int64, count=total)
            ext_w = np.fromiter(
                (w for u in node_list for _, w in self._external_adj[u]),
                dtype=np.float64, count=total)
            ext_src = np.repeat(np.arange(len(node_list)), counts)
            cached = (nodes, node_list, ext_src, ext_dst, ext_w)
            self._col_cache[part_id] = cached
        return cached

    def gmap_emit_columnar(self, table: dict, part_id: int):
        """Same records as :meth:`gmap_emit`, as typed rows: the owner's
        distance record is ``(dist, inf)``, each finite-source cross
        edge a ``(inf, dist + w)`` relaxation candidate."""
        nodes, node_list, ext_src, ext_dst, ext_w = \
            self._columnar_arrays(part_id)
        dists = np.fromiter((table[u][0] for u in node_list),
                            dtype=np.float64, count=len(node_list))
        live = np.isfinite(dists[ext_src])
        cand = dists[ext_src[live]] + ext_w[live]
        keys = np.concatenate([nodes, ext_dst[live]])
        rows = np.full((len(keys), 2), np.inf, dtype=np.float64)
        rows[:len(nodes), 0] = dists
        rows[len(nodes):, 1] = cand
        return keys, rows

    def columnar_reduce(self):
        from repro.engine import ColumnarReduce

        return ColumnarReduce("min", finish=_sssp_columnar_finish)

    def state_from_columnar(self, block, prev_state):
        if isinstance(prev_state, DenseKVState):
            # Pure array scatter — no per-node tuples on the dense path.
            return prev_state.scatter(block.keys, block.values)
        # Dict state: the base default (materialise + dict update) is
        # exactly this spec's state_from_output semantics.
        return super().state_from_columnar(block, prev_state)


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------

def sssp(
    graph: DiGraph,
    partition: Partition,
    *,
    source: int = 0,
    mode: str = "eager",
    cluster: "SimCluster | None" = None,
    config: "DriverConfig | None" = None,
    path: str = "block",
    runtime: "MapReduceRuntime | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
    dense_state: bool = False,
    backend: str = "block",
    staleness: "int | None" = 0,
) -> SsspResult:
    """Single-source shortest distances, General or Eager formulation.

    ``dense_state=True`` keeps the kv path's global state as a
    :class:`~repro.core.DenseKVState` array instead of a per-node dict
    (identical values, array-speed round transitions).
    ``backend="async"`` (or any nonzero ``staleness``) runs the block
    path without a per-round barrier — see
    :class:`~repro.core.AsyncBackend`.
    """
    cfg = config if config is not None else DriverConfig(mode=mode)
    if (backend != "block" or staleness != 0) and path != "block":
        raise ValueError("the async backend needs path='block'")
    if path == "block":
        spec = SsspBlockSpec(graph, partition, source=source)
        be = resolve_block_backend(spec, backend=backend,
                                   staleness=staleness, cluster=cluster)
        res = IterationLoop(be, cfg, sync_policy=sync_policy).run()
        dist = np.asarray(res.state)
    elif path == "kv":
        kv_spec = SsspKVSpec(graph, partition, source=source,
                             dense_state=dense_state)
        kv_backend = EngineBackend(kv_spec, runtime=runtime)
        res = IterationLoop(kv_backend, cfg, sync_policy=sync_policy).run()
        if isinstance(res.state, DenseKVState):
            dist = res.state.column(0).copy()
        else:
            dist = np.array([res.state[u][0] for u in range(graph.num_nodes)])
    else:
        raise ValueError(f"path must be 'block' or 'kv', got {path!r}")
    return SsspResult(distances=dist, global_iters=res.global_iters,
                      converged=res.converged, sim_time=res.sim_time,
                      result=res)


def sssp_spec(
    graph: DiGraph,
    partition: Partition,
    *,
    source: int = 0,
    mode: str = "eager",
    config: "DriverConfig | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
    name: "str | None" = None,
    backend: str = "block",
    staleness: "int | None" = 0,
) -> "JobSpec":
    """A submittable SSSP job for :meth:`~repro.core.Session.submit`.

    Block-path formulation of :func:`sssp` as a
    :class:`~repro.core.session.JobSpec`; the final distances are
    ``np.asarray(handle.result.state)``.
    """
    from repro.core.session import JobSpec

    cfg = config if config is not None else DriverConfig(mode=mode)
    return JobSpec(
        name=name if name is not None else "sssp",
        config=cfg,
        sync_policy=sync_policy,
        make_backend=lambda session: resolve_block_backend(
            SsspBlockSpec(graph, partition, source=source),
            backend=backend, staleness=staleness,
            cluster=session.cluster),
    )


def sssp_reference(graph: DiGraph, *, source: int = 0) -> np.ndarray:
    """Independent oracle: SciPy's Dijkstra on the same weighted graph.

    Parallel edges are collapsed to their minimum weight (which is what
    any shortest-path computation effectively does).
    """
    import scipy.sparse as sp
    import scipy.sparse.csgraph as csgraph

    n = graph.num_nodes
    src, dst, w = graph.edge_arrays()
    if len(src) == 0:
        out = np.full(n, np.inf)
        out[source] = 0.0
        return out
    # sparse matrix sums duplicates; take the min explicitly instead.
    order = np.lexsort((w, dst, src))
    s, d, ww = src[order], dst[order], w[order]
    first = np.empty(len(s), dtype=bool)
    first[0] = True
    first[1:] = (s[1:] != s[:-1]) | (d[1:] != d[:-1])
    mat = sp.csr_matrix((ww[first], (s[first], d[first])), shape=(n, n))
    return csgraph.dijkstra(mat, directed=True, indices=source)
