"""The Session API: submit many iterative jobs to one shared cluster.

This is the public face of multi-job scheduling (see
:mod:`repro.core.jobsched` for the scheduler itself).  A
:class:`Session` owns the shared :class:`~repro.cluster.SimCluster` and
one persistent :class:`~repro.engine.MapReduceRuntime` (lazily built,
worker pool reused by every engine-path job), and
:meth:`Session.submit` registers work without running it:

>>> from repro.apps import pagerank_spec, sssp_spec
>>> session = Session(cluster=SimCluster(), policy="fair")
>>> pr = session.submit(pagerank_spec(g, part))
>>> sp = session.submit(sssp_spec(wg, wpart), priority=1)
>>> session.run()
>>> pr.result.converged, pr.makespan, pr.queue_wait
(True, ..., ...)

Jobs are submitted either as a :class:`JobSpec` (what the application
factories ``pagerank_spec`` / ``sssp_spec`` / ``kmeans_spec`` / ...
produce — a backend recipe plus its driver configuration) or as a bare
:class:`~repro.core.loop.IterationBackend` with an explicit config.
Each submission returns a :class:`~repro.core.jobsched.JobHandle` whose
``result`` carries the job's own
:class:`~repro.core.loop.IterativeResult` and whose contention metrics
(queue wait, per-round slot shares, makespan) come from the shared
timeline.

The historical single-job entry points ``run_iterative_kv`` /
``run_iterative_block`` / ``run_iterative_hierarchical`` are deprecated
shims over a throwaway single-job session.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

from repro.cluster.accountant import RoundAccountant
from repro.cluster.statestore import StateStore, resolve_state_store
from repro.core.config import DriverConfig
from repro.core.jobsched import JobHandle, SchedulingPolicy, SessionScheduler
from repro.core.loop import AdaptiveSyncPolicy, IterationBackend, IterationLoop

__all__ = ["JobSpec", "Session", "JobHandle"]


@dataclass
class JobSpec:
    """A submittable description of one iterative job.

    Produced by the application factories (``pagerank_spec`` et al.) so
    apps describe work instead of running it.  ``make_backend`` receives
    the session and builds the job's
    :class:`~repro.core.loop.IterationBackend` against the session's
    shared cluster/runtime.
    """

    name: str
    make_backend: "Callable[[Session], IterationBackend]"
    config: DriverConfig
    sync_policy: "AdaptiveSyncPolicy | None" = None


class Session:
    """Owns one shared cluster + runtime and schedules jobs onto them.

    Parameters
    ----------
    cluster:
        The shared :class:`~repro.cluster.SimCluster` every job charges
        (``None`` runs jobs without simulated time — iterates are still
        exact, all timestamps 0).
    runtime:
        The shared persistent :class:`~repro.engine.MapReduceRuntime`
        for engine-path jobs.  ``None`` builds a serial runtime over
        ``cluster`` lazily on first use; a session-built runtime is
        closed by :meth:`close`, a caller-supplied one is left open.
    policy:
        Scheduling policy: ``"fifo"`` / ``"rr"`` / ``"fair"`` or a
        :class:`~repro.core.jobsched.SchedulingPolicy` instance.
    state_store:
        Optional shared :class:`~repro.cluster.statestore.StateStore`
        every job's inter-round state goes through — multi-job runs
        then contend on the same tablets, and the store's per-tablet
        load statistics aggregate across jobs.  ``None`` (default)
        resolves each job's ``config.state_store``; legacy string specs
        still share one store instance per session (``"dfs"`` jobs one
        DFS store, ``"online"`` jobs one single-tablet online store),
        while a config carrying an explicit instance/factory keeps it.

    Use as a context manager to release the runtime's worker pool::

        with Session(cluster=SimCluster(), policy="fair") as s:
            handles = [s.submit(spec) for spec in specs]
            s.run()
    """

    def __init__(self, *, cluster=None, runtime=None,
                 policy: "str | SchedulingPolicy" = "fifo",
                 state_store: "StateStore | None" = None) -> None:
        self.cluster = cluster
        self._runtime = runtime
        self._owns_runtime = False
        self.scheduler = SessionScheduler(policy, cluster=cluster)
        self._next_id = 0
        if state_store is not None and not isinstance(state_store, StateStore):
            raise TypeError(
                f"state_store must be a StateStore instance or None, "
                f"got {type(state_store).__name__}")
        self.state_store = state_store
        #: Legacy-string stores, one shared instance per spelling.
        self._string_stores: "dict[str, StateStore]" = {}

    def _store_for(self, config: DriverConfig) -> StateStore:
        """The state store a submitted job charges through.

        Explicit instances/factories in the job's config win; legacy
        strings resolve to the session-level override (if any) or to one
        session-shared instance per string, so every job submitted with
        the default config contends on the same store.
        """
        spec = config.state_store
        if not isinstance(spec, str):
            return resolve_state_store(spec, self.cluster)
        if self.state_store is not None:
            return self.state_store.bind(self.cluster)
        if spec not in self._string_stores:
            self._string_stores[spec] = resolve_state_store(spec, self.cluster)
        return self._string_stores[spec]

    # -- shared resources ----------------------------------------------
    @property
    def runtime(self):
        """The shared engine runtime (lazily built over the cluster)."""
        if self._runtime is None:
            from repro.engine import MapReduceRuntime

            self._runtime = MapReduceRuntime("serial", cluster=self.cluster)
            self._owns_runtime = True
        return self._runtime

    @property
    def jobs(self) -> "list[JobHandle]":
        return list(self.scheduler.jobs)

    @property
    def policy(self) -> SchedulingPolicy:
        return self.scheduler.policy

    # -- submission -----------------------------------------------------
    def submit(self, job: "JobSpec | IterationBackend",
               config: "DriverConfig | None" = None, *,
               priority: int = 0, name: "str | None" = None,
               sync_policy: "AdaptiveSyncPolicy | None" = None,
               lint: "str | None" = None) -> JobHandle:
        """Register a job without running it; returns its handle.

        ``job`` is a :class:`JobSpec` (config/sync-policy default from
        the spec; keyword arguments override) or a bare backend (then
        ``config`` is required).  ``priority`` orders jobs under the
        ordering policies (higher runs earlier).  Drive the admitted
        jobs with :meth:`run` (or :meth:`step` for one scheduling step).

        ``lint`` runs the :mod:`repro.analysis` linter over the job's
        spec at submission time — before any task executes: ``"warn"``
        emits a :class:`~repro.analysis.LintWarning` per finding,
        ``"strict"`` raises :class:`~repro.analysis.LintError` when any
        error-severity finding (nondeterminism, impure state writes,
        non-commutative combiner, unpicklable capture) is present.
        ``None`` (default) defers to the job config's ``lint`` field.
        """
        job_id = self._next_id
        if isinstance(job, JobSpec):
            cfg = config if config is not None else job.config
            policy = sync_policy if sync_policy is not None else job.sync_policy
            jname = name if name is not None else job.name
            backend = job.make_backend(self)
        elif isinstance(job, IterationBackend):
            if config is None:
                raise ValueError(
                    "submitting a bare backend requires an explicit config "
                    "(JobSpecs carry their own)")
            cfg, policy, backend = config, sync_policy, job
            jname = name if name is not None else f"job{job_id}"
        else:
            raise TypeError(
                f"submit() takes a JobSpec or an IterationBackend, "
                f"got {type(job).__name__}")
        lint_mode = lint if lint is not None else cfg.lint
        if lint_mode != "off":
            from repro.analysis import enforce, lint_backend

            enforce(lint_backend(backend), lint_mode)
        bcluster = backend.cluster
        if bcluster is not None and bcluster is not self.cluster:
            raise ValueError(
                "backend is attached to a different cluster than the "
                "session's — a session schedules jobs on ONE shared cluster")
        # An AdaptiveSyncPolicy is stateful per run; interleaved jobs
        # sharing one instance would reset and cross-feed each other's
        # budgets, so a policy already attached to another job of this
        # session is copied (each job observes only its own rounds).
        if policy is not None and any(policy is j.loop.sync_policy
                                      for j in self.scheduler.jobs):
            policy = copy.deepcopy(policy)
        self._next_id += 1
        accountant = RoundAccountant(self.cluster, cfg, job=jname,
                                     state_store=self._store_for(cfg))
        loop = IterationLoop(backend, cfg, sync_policy=policy,
                             accountant=accountant)
        handle = JobHandle(job_id=job_id, name=jname, priority=priority,
                           loop=loop, accountant=accountant,
                           submitted_at=self.scheduler.clock)
        return self.scheduler.admit(handle)

    # -- driving --------------------------------------------------------
    def step(self) -> bool:
        """Run one scheduling step; returns False when nothing pends."""
        return self.scheduler.step()

    def run(self) -> "list[JobHandle]":
        """Drive every admitted job to convergence; returns all handles."""
        return self.scheduler.run()

    # -- aggregate metrics ---------------------------------------------
    def makespan(self) -> float:
        """First submission to last completion on the shared timeline."""
        return self.scheduler.makespan()

    def mean_latency(self) -> float:
        """Mean per-job submission-to-completion latency."""
        return self.scheduler.mean_latency()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close unfinished job loops and any session-owned runtime."""
        for job in self.scheduler.pending:
            job.loop.close()
        if self._owns_runtime and self._runtime is not None:
            self._runtime.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
