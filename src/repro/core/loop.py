"""The unified iteration core: one driver loop, pluggable sync backends.

The paper's whole contribution is a family of synchronization
disciplines over the *same* iterative fixed-point loop.  This module
owns that loop exactly once: :class:`IterationLoop` runs

    pre-iteration hook -> local work -> global combine ->
    convergence check -> :class:`RoundRecord` history

to convergence, parameterized by an :class:`IterationBackend` that
says *how* one global round executes and synchronizes:

* :class:`EngineBackend` — the record-at-a-time §IV API
  (:class:`~repro.core.api.AsyncMapReduceSpec`) on the real MapReduce
  engine; one global iteration is one engine job.
* :class:`BlockBackend` — the vectorised
  :class:`~repro.core.api.BlockSpec` path; iterates are computed by
  NumPy local solves and simulated time is charged from the reported
  op/byte counts.
* :class:`HierarchicalBackend` — §VIII's rack level, composing
  :class:`BlockBackend`: extra rack-local synchronization rounds run
  between the map phase and the global synchronization.

All simulated-cluster charging flows through one audited
:class:`~repro.cluster.accountant.RoundAccountant`, so the backends
cannot drift apart in what they charge (the pre-unification hierarchy
driver silently skipped the block path's periodic checkpoint and the
``extra_bytes`` shuffle — impossible by construction now).

The loop's synchronization budget is a per-round quantity, which opens
a seam the old triplicated drivers made impractical:
:class:`AdaptiveSyncPolicy` retunes ``max_local_iters`` every round
from the observed residual contraction.

The loop is re-entrant at round granularity (``start``/``step``/
``finish``), which is what lets a multi-job
:class:`~repro.core.session.Session` interleave many jobs' rounds on one
shared cluster clock (:mod:`repro.core.jobsched`).  The historical
entry points ``run_iterative_kv``, ``run_iterative_block`` and
``run_iterative_hierarchical`` survive as deprecated shims over a
single-job session (see :mod:`repro.core.driver` and
:mod:`repro.core.hierarchy`).
"""

from __future__ import annotations

import abc
import copy
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.cluster.accountant import RoundAccountant
from repro.cluster.statestore import even_split
from repro.core.api import AsyncMapReduceSpec, BlockSpec, LocalSolveReport
from repro.core.config import DriverConfig
from repro.core.gmap import GmapFunction, GreduceFunction, local_iter_counter
from repro.engine import Job, JobConf, MapReduceRuntime
from repro.engine.counters import SHUFFLE_BYTES
from repro.engine.shuffle import shuffle_bytes as _measure_output_bytes

__all__ = [
    "RoundRecord",
    "IterativeResult",
    "RoundOutcome",
    "IterationBackend",
    "EngineBackend",
    "BlockBackend",
    "HierarchicalBackend",
    "AdaptiveSyncPolicy",
    "IterationLoop",
]


@dataclass(frozen=True)
class RoundRecord:
    """Bookkeeping for one global iteration."""

    iteration: int
    residual: float
    #: Local iterations per partition in this round.
    local_iters: tuple
    #: Simulated seconds this round added (0 when no cluster attached).
    sim_seconds: float
    #: Bytes shipped through this round's global shuffle.
    shuffle_bytes: int
    #: Per-partition bytes routed through the inter-round state store
    #: (one entry per partition; the shape every backend reports).
    state_partition_bytes: tuple = ()
    #: Per-partition logical clocks: how many rounds each partition has
    #: completed after this round.  Barrier backends leave it empty (all
    #: partitions implicitly share the global round counter); the async
    #: backend fills it, where the invariant "one step advances every
    #: partition exactly one logical round" is worth recording.
    partition_clocks: tuple = ()
    #: Version-vector view of "which partition has seen which round":
    #: entry ``p`` is the *oldest* neighbour version partition ``p``
    #: consumed this round (== the previous iteration number under a
    #: barrier; lower when a staleness bound let reads lag behind).
    version_vector: tuple = ()
    #: Speculative backup copies launched in this round's phases
    #: (``DriverConfig.speculate``; 0 when speculation is off).
    backups: int = 0
    #: Backups that finished before their primary (the round's phases
    #: took the backup's result).
    backups_won: int = 0
    #: Duplicate seconds speculation burned this round: the discarded
    #: copy's work, whether the backup won or lost.
    wasted_seconds: float = 0.0
    #: Tablet splits the state store performed during this round
    #: (load-triggered auto-splitting; 0 for static tablet maps).
    tablet_splits: int = 0
    #: State-store tablet-map version after this round (0 = never split).
    tablet_map_version: int = 0
    #: Adjacent cold tablets the state store merged during this round.
    tablet_merges: int = 0
    #: Worker deaths that fired during this round (correlated-failure
    #: injection via a :class:`~repro.engine.NodeFaultPlan`).
    node_deaths: int = 0
    #: Completed map outputs invalidated by this round's deaths and
    #: recomputed through lineage-based replay.
    lost_map_outputs: int = 0
    #: Simulated seconds this round spent recovering: heartbeat
    #: detection, re-executing the dead domain's work, and (after a
    #: rollback) re-reading the last durability checkpoint.
    recovery_seconds: float = 0.0
    #: Global iterations re-executed by this round's checkpoint
    #: rollback (0 when no state was lost).
    rounds_replayed: int = 0

    @property
    def max_staleness(self) -> int:
        """Largest read lag any partition saw this round (0 = barrier
        semantics; meaningful only when :attr:`version_vector` is set)."""
        if not self.version_vector:
            return 0
        return max(self.iteration - v for v in self.version_vector)


@dataclass
class IterativeResult:
    """Outcome of an iterative partial-synchronization run."""

    state: Any
    global_iters: int
    converged: bool
    sim_time: float
    history: list = field(default_factory=list)

    @property
    def total_local_iters(self) -> int:
        """Sum of local iterations over all partitions and rounds."""
        return int(sum(sum(r.local_iters) for r in self.history))

    @property
    def residuals(self) -> list:
        return [r.residual for r in self.history]


@dataclass
class RoundOutcome:
    """What one backend round hands back to the loop."""

    #: The state after this round's global combine.
    state: Any
    #: Local iterations per partition (summed over inner rounds).
    local_iters: tuple
    #: Bytes shipped through this round's global shuffle (combine
    #: ``extra_bytes`` included).
    shuffle_bytes: int
    #: Per-partition bytes this round wrote through the state store.
    state_partition_bytes: tuple = ()
    #: Per-partition logical clocks after this round (async backend).
    partition_clocks: tuple = ()
    #: Oldest neighbour version each partition consumed (async backend).
    version_vector: tuple = ()


# ----------------------------------------------------------------------
# Backend protocol
# ----------------------------------------------------------------------

class IterationBackend(abc.ABC):
    """How one global round executes and synchronizes.

    The loop calls :meth:`bind` once before the first round, then per
    round: the spec's pre-iteration hook, :meth:`run_round`, and
    :meth:`global_converged`.  :meth:`close` runs exactly once when the
    loop finishes (normally or not).
    """

    #: Set by :meth:`bind`; every simulated charge goes through it.
    accountant: RoundAccountant

    def bind(self, config: DriverConfig,
             accountant: "RoundAccountant | None" = None) -> None:
        """Attach the run's configuration and build the accountant.

        A multi-job :class:`~repro.core.session.Session` passes its own
        per-job ``accountant`` (labelled, over the shared cluster) so
        every job's charges stay attributable on one timeline; solo runs
        get a fresh private one.
        """
        self.config = config
        self.accountant = (accountant if accountant is not None
                           else RoundAccountant(self.cluster, config))

    @property
    def cluster(self):
        """The attached :class:`~repro.cluster.SimCluster` (or None)."""
        return None

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """Global state before the first iteration."""

    @abc.abstractmethod
    def num_partitions(self) -> int:
        """Number of partitions (global map tasks per iteration)."""

    @abc.abstractmethod
    def on_global_iteration(self, iteration: int, state: Any) -> Any:
        """The spec's pre-iteration hook; may return a replacement state."""

    @abc.abstractmethod
    def run_round(self, iteration: int, state: Any, *,
                  max_local_iters: int) -> RoundOutcome:
        """Execute one global round: local work, global combine, and all
        simulated charging (through :attr:`accountant`)."""

    @abc.abstractmethod
    def global_converged(self, prev_state: Any,
                         curr_state: Any) -> "tuple[bool, float]":
        """Global termination; returns (converged, residual)."""

    def close(self) -> None:
        """Release resources the backend owns (default: nothing)."""


# ----------------------------------------------------------------------
# Record-at-a-time backend (real MapReduce engine)
# ----------------------------------------------------------------------

class EngineBackend(IterationBackend):
    """One global iteration = one job on the real MapReduce engine.

    One engine runtime — and therefore one persistent worker pool — is
    reused across every global iteration, so an iterative run pays pool
    start-up once instead of per phase per round.

    Parameters
    ----------
    spec:
        Application spec (lmap/lreduce/greduce + plumbing).
    runtime:
        Engine runtime; defaults to a serial runtime without a cluster
        (owned by this backend and closed when the loop finishes — a
        caller-supplied runtime is left open for reuse).  Attach a
        runtime with a :class:`~repro.cluster.SimCluster` for simulated
        time.
    num_reducers:
        Reduce tasks per global iteration.
    eager_reduce:
        Run each global iteration's job through the engine's streaming
        pipeline (see :class:`~repro.engine.JobConf`); identical
        results, overlapped shuffle.
    columnar:
        Route each job through the engine's columnar shuffle fast path
        (typed batches, vectorised routing/grouping, map-side combiner
        — see :mod:`repro.engine.columnar`).  ``None`` (default) opts in
        automatically when the spec supports it; ``False`` forces the
        classic object path — the fallback and the oracle the
        equivalence tests compare against.
    """

    def __init__(self, spec: AsyncMapReduceSpec, *,
                 runtime: "MapReduceRuntime | None" = None,
                 num_reducers: int = 8, eager_reduce: bool = False,
                 columnar: "bool | None" = None) -> None:
        self.spec = spec
        self.owns_runtime = runtime is None
        self.runtime = runtime if runtime is not None else MapReduceRuntime("serial")
        self.num_reducers = num_reducers
        self.eager_reduce = eager_reduce
        # getattr: duck-typed specs that predate the columnar hooks
        # simply stay on the object path.
        if columnar is None:
            columnar = getattr(spec, "supports_columnar", False)
        elif columnar and not getattr(spec, "supports_columnar", False):
            raise ValueError(
                f"{type(spec).__name__} does not support the columnar path")
        self.columnar = bool(columnar)
        self._greduce = GreduceFunction(spec)
        self._parts = spec.num_partitions()

    @property
    def cluster(self):
        return self.runtime.cluster

    def initial_state(self) -> Any:
        return self.spec.initial_state()

    def num_partitions(self) -> int:
        return self._parts

    def on_global_iteration(self, iteration: int, state: Any) -> Any:
        return self.spec.on_global_iteration(iteration, state)

    def global_converged(self, prev_state, curr_state):
        return self.spec.global_converged(prev_state, curr_state)

    def run_round(self, iteration: int, state: Any, *,
                  max_local_iters: int) -> RoundOutcome:
        spec = self.spec
        splits = [
            [(p, spec.partition_input(p, state))] for p in range(self._parts)
        ]
        job = Job(
            map_fn=GmapFunction(spec, max_local_iters,
                                columnar=self.columnar),
            reduce_fn=(spec.columnar_reduce() if self.columnar
                       else self._greduce),
            combine_fn=(spec.columnar_combine if self.columnar else None),
            conf=JobConf(num_reducers=self.num_reducers,
                         name=f"iter{iteration}",
                         eager_reduce=self.eager_reduce),
        )
        # round_index keys the runtime's NodeFaultPlan: scripted deaths
        # fire in their scripted global iteration, at most once — a
        # checkpoint-rollback replay of the same round runs clean.
        res = self.runtime.run(job, splits, accountant=self.accountant,
                               round_index=iteration)
        if res.columnar_output is not None:
            out_bytes = res.columnar_output.nbytes
            new_state = spec.state_from_columnar(res.columnar_output, state)
        else:
            # Reduce tasks measured their output bytes worker-side; the
            # full estimate scan stays as the oracle for results from
            # before that measurement existed.
            out_bytes = res.output_nbytes or _measure_output_bytes(
                [[res.output]])
            new_state = spec.state_from_output(res.output, state)
        # The record-at-a-time path has no per-key partition attribution
        # for the reduce output, so the state it round-trips is spread
        # evenly — the same shape (one entry per partition, aggregate
        # preserved) the block backends report.  The shared accountant
        # tail also fires the non-durable store's periodic checkpoint,
        # exactly when the block path would.
        state_pb = even_split(out_bytes, self._parts)
        self.accountant.charge_state_tail(iteration=iteration,
                                          state_partition_bytes=state_pb,
                                          label=f"iter{iteration}")
        return RoundOutcome(
            state=new_state,
            local_iters=tuple(
                res.counters.get(local_iter_counter(p))
                for p in range(self._parts)
            ),
            shuffle_bytes=res.counters.get(SHUFFLE_BYTES),
            state_partition_bytes=state_pb,
        )

    def close(self) -> None:
        if self.owns_runtime:
            self.runtime.close()


# ----------------------------------------------------------------------
# Vectorised block backend (simulated cluster accounting)
# ----------------------------------------------------------------------

class BlockBackend(IterationBackend):
    """One global iteration = local solves + combine on a :class:`BlockSpec`.

    When a cluster is attached, each round charges: job startup, the map
    phase (gmap task costs from reported per-iteration op counts,
    honouring ``config.eager_schedule``), the shuffle of reported
    boundary bytes, the combine's ``extra_bytes`` shuffle, the reduce
    phase, the barrier, the inter-iteration state round trip — the
    **per-partition** update bytes through the config's
    :class:`~repro.cluster.statestore.StateStore`, so a tablet-sharded
    online store sees the real skew — and a non-durable store's
    periodic checkpoint, all through the accountant.
    """

    def __init__(self, spec: BlockSpec, *, cluster=None,
                 num_reduce_tasks: "int | None" = None) -> None:
        self.spec = spec
        self._cluster = cluster
        self.num_reduce_tasks = num_reduce_tasks

    @property
    def cluster(self):
        return self._cluster

    def initial_state(self) -> Any:
        return self.spec.init_state()

    def num_partitions(self) -> int:
        return self.spec.num_partitions()

    def on_global_iteration(self, iteration: int, state: Any) -> Any:
        return self.spec.on_global_iteration(iteration, state)

    def global_converged(self, prev_state, curr_state):
        return self.spec.global_converged(prev_state, curr_state)

    def run_round(self, iteration: int, state: Any, *,
                  max_local_iters: int) -> RoundOutcome:
        spec = self.spec
        reports = [
            spec.local_solve(p, state, max_local_iters=max_local_iters)
            for p in range(spec.num_partitions())
        ]
        self.accountant.charge_map_phase(reports, label=f"iter{iteration}")
        return self._finish_round(iteration, state, reports,
                                  tuple(r.local_iters for r in reports))

    def _state_partition_bytes(self, new_state: Any,
                               final_reports: "list[LocalSolveReport]"
                               ) -> tuple:
        """Per-partition bytes this round routes through the state store.

        Specs that measure their real update volume report it per
        partition (``LocalSolveReport.update_nbytes``) — that is where
        frontier skew becomes visible to a tablet-sharded store.  When
        any report omits it, the combined state's total size is split
        evenly, preserving the historical aggregate charge exactly.
        """
        by_part = sorted(final_reports, key=lambda r: r.partition)
        if by_part and all(r.update_nbytes is not None for r in by_part):
            return tuple(int(r.update_nbytes) for r in by_part)
        return even_split(int(self.spec.state_nbytes(new_state)),
                          len(by_part))

    def _finish_round(self, iteration: int, state: Any,
                      final_reports: "list[LocalSolveReport]",
                      local_iters: tuple) -> RoundOutcome:
        """The global synchronization tail every round ends with: the
        reports' shuffle, the global combine, its ``extra_bytes``
        shuffle, reduce, barrier, the per-partition state round trip,
        and the periodic checkpoint.  Shared with the hierarchical
        backend so the two cannot drift apart in what they charge."""
        spec = self.spec
        label = f"iter{iteration}"
        shuffle_total = int(sum(r.shuffle_bytes for r in final_reports))
        self.accountant.charge_shuffle(shuffle_total, label=f"{label}:shuffle")
        new_state, reduce_ops, extra_bytes = spec.global_combine(
            state, final_reports)
        shuffle_total += int(extra_bytes)
        state_pb = self._state_partition_bytes(new_state, final_reports)
        if self.accountant.active:
            self.accountant.charge_global_sync(
                iteration=iteration,
                extra_bytes=int(extra_bytes),
                reduce_ops=reduce_ops,
                state_partition_bytes=state_pb,
                num_reduce_tasks=self.num_reduce_tasks,
                label=label,
            )
        return RoundOutcome(
            state=new_state,
            local_iters=local_iters,
            shuffle_bytes=shuffle_total,
            state_partition_bytes=state_pb,
        )


# ----------------------------------------------------------------------
# Hierarchical backend (§VIII rack level, composing BlockBackend)
# ----------------------------------------------------------------------

class HierarchicalBackend(BlockBackend):
    """Three-level scheme: local / rack / global synchronization.

    Per global iteration: the first inner round of local solves *is* the
    global job's map phase; each additional inner round is a rack-local
    synchronization (cheap: intra-rack network, no job startup) followed
    by fresh solves against the rack-combined state, with racks
    proceeding concurrently (the charged time is the slowest rack).  The
    single expensive global synchronization then merges the final
    reports — charged by the exact same accountant path as
    :class:`BlockBackend`, so ``inner_rounds=1`` is *identical* to the
    plain eager block driver, charge for charge.

    The scheme requires each partition's updates to own a disjoint slice
    of the state (``BlockSpec.partition_scoped_state``); the backend
    rejects other specs.
    """

    def __init__(self, spec: BlockSpec, racks: "Sequence[Sequence[int]]", *,
                 hierarchy=None, cluster=None,
                 num_reduce_tasks: "int | None" = None) -> None:
        from repro.core.hierarchy import HierarchyConfig

        super().__init__(spec, cluster=cluster,
                         num_reduce_tasks=num_reduce_tasks)
        if not spec.partition_scoped_state:
            raise ValueError(
                "hierarchical synchronization requires a spec with "
                "partition-scoped state (see BlockSpec.partition_scoped_state)"
            )
        self.racks = [list(rack) for rack in racks]
        all_parts = sorted(p for rack in self.racks for p in rack)
        if all_parts != list(range(spec.num_partitions())):
            raise ValueError("racks must cover every partition exactly once")
        self.hierarchy = hierarchy if hierarchy is not None else HierarchyConfig()

    def run_round(self, iteration: int, state: Any, *,
                  max_local_iters: int) -> RoundOutcome:
        spec, hcfg, acct = self.spec, self.hierarchy, self.accountant
        label = f"iter{iteration}"
        total_local = [0] * spec.num_partitions()

        def solve(rack: "list[int]", from_state) -> "list[LocalSolveReport]":
            reports = [
                spec.local_solve(p, from_state,
                                 max_local_iters=max_local_iters)
                for p in rack
            ]
            for r in reports:
                total_local[r.partition] += r.local_iters
            return reports

        # Inner round 1: the global job's map phase over every partition.
        reports_by_rack = [solve(rack, state) for rack in self.racks]
        acct.charge_map_phase([r for rs in reports_by_rack for r in rs],
                              label=label)

        # Inner rounds 2..n: rack-local combine + fresh solves, racks
        # concurrent on their share of the machines.
        if hcfg.inner_rounds > 1:
            rack_states: "list[Any]" = [state] * len(self.racks)
            rack_times = [0.0] * len(self.racks)
            for _ in range(hcfg.inner_rounds - 1):
                for i, rack in enumerate(self.racks):
                    prev = reports_by_rack[i]
                    rack_states[i], _, _ = spec.global_combine(
                        rack_states[i], prev)
                    reports_by_rack[i] = solve(rack, rack_states[i])
                    rack_times[i] += acct.rack_round_seconds(
                        prev, reports_by_rack[i],
                        rack_startup_seconds=hcfg.rack_startup_seconds,
                        rack_shuffle_speedup=hcfg.rack_shuffle_speedup,
                        num_racks=len(self.racks))
            acct.charge_rack_phase(rack_times, label=f"{label}:racks")

        final_reports = [r for rs in reports_by_rack for r in rs]
        return self._finish_round(iteration, state, final_reports,
                                  tuple(total_local))


# ----------------------------------------------------------------------
# Adaptive synchronization policy
# ----------------------------------------------------------------------

@dataclass
class AdaptiveSyncPolicy:
    """Retunes the per-round local-iteration budget from round feedback.

    The paper fixes ``max_local_iters`` for a whole run; with one loop
    and per-round budgets, the tradeoff can be steered online instead.
    The policy starts shallow (cheap early rounds, when local solves
    against far-from-converged remote state are mostly wasted) and
    *grows* the budget whenever a round was budget-limited — some
    partition spent its whole budget without reaching local convergence,
    so the expensive global synchronization fired earlier than the
    partial-sync discipline wanted.  When the global residual contracts
    very fast (ratio below ``fast_contraction``), deep local solves are
    over-solving against stale remote state, and the budget *shrinks*.
    Budgets are always clamped to ``[1, config.effective_local_iters]``
    (so the general baseline stays exactly one local step).

    A policy instance is stateful per run; :class:`IterationLoop` resets
    it at the start of each run and appends the budget actually used
    each round to :attr:`budgets` for inspection.
    """

    initial_budget: int = 4
    grow: float = 2.0
    shrink: float = 0.5
    fast_contraction: float = 0.05
    #: Budget handed to the backend each round (filled during a run).
    budgets: "list[int]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.initial_budget < 1:
            raise ValueError("initial_budget must be >= 1")
        if self.grow <= 1.0:
            raise ValueError("grow must be > 1")
        if not 0.0 < self.shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if not 0.0 < self.fast_contraction < 1.0:
            raise ValueError("fast_contraction must be in (0, 1)")
        self.reset()

    def reset(self) -> None:
        """Forget all observations (called by the loop per run)."""
        self._budget = int(self.initial_budget)
        self._prev_residual: "float | None" = None
        self.budgets = []

    def budget(self) -> int:
        """The local-iteration budget to use for the next round."""
        return self._budget

    def observe(self, residual: float, *, local_iters: tuple,
                budget: int) -> None:
        """Feed one round's outcome back into the policy."""
        prev = self._prev_residual
        contraction = None
        if (prev is not None and prev > 0 and math.isfinite(prev)
                and math.isfinite(residual)):
            contraction = residual / prev
        # Adjust from the budget actually used (already clamped by the
        # loop), so the internal budget never runs away past the cap and
        # a shrink engages immediately after sustained growth.
        budget_limited = bool(local_iters) and max(local_iters) >= budget
        if contraction is not None and contraction < self.fast_contraction:
            self._budget = max(1, int(budget * self.shrink))
        elif budget_limited:
            self._budget = max(1, math.ceil(budget * self.grow))
        else:
            self._budget = budget
        self._prev_residual = residual


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------

class IterationLoop:
    """The single outer fixed-point loop every driver runs through.

    Owns the round structure (hook, local work, combine, convergence,
    history) and the round accounting; the backend owns the execution
    substrate and the synchronization discipline.

    The loop is *re-entrant at round granularity*: :meth:`start` binds
    the backend and builds the initial state, each :meth:`step` executes
    exactly one global round, and :meth:`finish` closes the backend and
    assembles the :class:`IterativeResult`.  :meth:`run` composes the
    three for the classic run-to-convergence call, while a multi-job
    :class:`~repro.core.session.Session` interleaves ``step`` calls of
    many loops on one shared cluster clock (see
    :mod:`repro.core.jobsched`).

    Parameters
    ----------
    backend:
        How one global round executes (engine / block / hierarchical).
    config:
        Driver mode and iteration caps.
    sync_policy:
        Optional :class:`AdaptiveSyncPolicy` retuning the local-iteration
        budget per round; ``None`` uses the fixed
        ``config.effective_local_iters`` (the paper's behaviour).
    accountant:
        Optional pre-built :class:`~repro.cluster.accountant.RoundAccountant`
        handed to :meth:`IterationBackend.bind` — how a session gives
        each job its own labelled ledger over the shared cluster.
        ``None`` (solo runs) lets the backend build a private one.
    """

    def __init__(self, backend: IterationBackend, config: DriverConfig, *,
                 sync_policy: "AdaptiveSyncPolicy | None" = None,
                 accountant: "RoundAccountant | None" = None) -> None:
        self.backend = backend
        self.config = config
        self.sync_policy = sync_policy
        self._accountant = accountant
        self._started = False
        self._closed = False
        self._converged = False
        self._iters = 0
        self._busy = 0.0
        self._state: Any = None
        self._history: "list[RoundRecord]" = []
        #: Budget actually handed to the backend each round — a rollback
        #: replays past rounds with the budgets they originally used, so
        #: recovery is bitwise-faithful even under an adaptive policy.
        self._budgets_used: "list[int]" = []
        #: Last durable state snapshot as ``(iteration, state, bytes)``;
        #: ``iteration`` is -1 for the pre-round-0 initial state.  Only
        #: maintained when a fault plan makes a rollback reachable.
        self._checkpoint: "tuple[int, Any, tuple] | None" = None

    def _round_budget(self) -> int:
        if self.sync_policy is None:
            return self.config.effective_local_iters
        budget = max(1, min(int(self.sync_policy.budget()),
                            self.config.effective_local_iters))
        self.sync_policy.budgets.append(budget)
        return budget

    # -- stepwise protocol ------------------------------------------------
    def start(self) -> None:
        """Bind the backend and build the initial state (idempotent)."""
        if self._started:
            return
        self.backend.bind(self.config, self._accountant)
        if self.sync_policy is not None:
            self.sync_policy.reset()
        self._state = self.backend.initial_state()
        if self._faults_possible():
            self._checkpoint = (-1, copy.deepcopy(self._state), ())
        self._started = True

    def _faults_possible(self) -> bool:
        """Whether any layer of this run can lose a worker mid-round
        (an engine runtime with a non-empty fault plan, or a simulated
        cluster with a worker pool) — only then is the per-checkpoint
        state snapshot worth its deepcopy."""
        plan = getattr(getattr(self.backend, "runtime", None),
                       "node_faults", None)
        if plan is not None and not getattr(plan, "is_empty", True):
            return True
        return getattr(self.backend.cluster, "worker_pool", None) is not None

    @property
    def started(self) -> bool:
        return self._started

    @property
    def finished(self) -> bool:
        """True once converged or the global-iteration cap is reached."""
        return self._started and (self._converged
                                  or self._iters >= self.config.max_global_iters)

    @property
    def global_iters(self) -> int:
        """Global rounds executed so far."""
        return self._iters

    def step(self) -> bool:
        """Execute exactly one global round; returns :attr:`finished`.

        Safe to interleave with other loops' steps on the same simulated
        cluster: the round's charges land between this call's entry and
        exit clock readings, so per-round timing stays attributable no
        matter what other jobs did to the clock in between.
        """
        if not self._started:
            raise RuntimeError("IterationLoop.step() before start()")
        if self.finished:
            raise RuntimeError("IterationLoop.step() after the run finished")
        backend, config, policy = self.backend, self.config, self.sync_policy
        it = self._iters
        hooked = backend.on_global_iteration(it, self._state)
        if hooked is not None:
            self._state = hooked
        budget = self._round_budget()
        self._budgets_used.append(budget)
        acct = backend.accountant
        acct.begin_round(it)
        round_start = acct.clock
        backups0 = acct.backups_launched
        won0 = acct.backups_won
        wasted0 = acct.wasted_seconds
        splits0 = acct.tablet_splits
        merges0 = acct.tablet_merges
        deaths0 = acct.node_deaths
        lost0 = acct.lost_map_outputs
        recovery0 = acct.recovery_seconds
        replayed0 = acct.rounds_replayed
        outcome = backend.run_round(it, self._state, max_local_iters=budget)
        if acct.node_deaths > deaths0:
            outcome = self._recover(it, outcome)
        done, residual = backend.global_converged(self._state, outcome.state)
        self._iters = it + 1
        self._busy += acct.clock - round_start
        if config.record_history:
            self._history.append(RoundRecord(
                iteration=it,
                residual=residual,
                local_iters=outcome.local_iters,
                sim_seconds=acct.clock - round_start,
                shuffle_bytes=outcome.shuffle_bytes,
                state_partition_bytes=outcome.state_partition_bytes,
                partition_clocks=outcome.partition_clocks,
                version_vector=outcome.version_vector,
                backups=acct.backups_launched - backups0,
                backups_won=acct.backups_won - won0,
                wasted_seconds=acct.wasted_seconds - wasted0,
                tablet_splits=acct.tablet_splits - splits0,
                tablet_map_version=acct.tablet_map_version,
                tablet_merges=acct.tablet_merges - merges0,
                node_deaths=acct.node_deaths - deaths0,
                lost_map_outputs=acct.lost_map_outputs - lost0,
                recovery_seconds=acct.recovery_seconds - recovery0,
                rounds_replayed=acct.rounds_replayed - replayed0,
            ))
        if (self._checkpoint is not None and config.checkpoint_every
                and (it + 1) % config.checkpoint_every == 0):
            self._checkpoint = (it, copy.deepcopy(outcome.state),
                                outcome.state_partition_bytes)
        if policy is not None:
            policy.observe(residual, local_iters=outcome.local_iters,
                           budget=budget)
        self._state = outcome.state
        if done:
            self._converged = True
        return self.finished

    def _recover(self, it: int, outcome: RoundOutcome) -> RoundOutcome:
        """Checkpoint rollback after a round lost workers.

        When the inter-round state store is not durable, the tablets a
        dead worker hosted take every round since the last periodic
        durability checkpoint with them (§II's deterministic-replay
        argument, applied to iterate state): re-read the checkpoint from
        the replicated DFS, then replay the lost rounds forward on the
        surviving fleet.  Replay is deterministic — each round re-runs
        with the local-iteration budget it originally used, and fired
        deaths never re-fire — so the recovered round is bitwise
        identical to the failure-free one.  The replayed rounds' charges
        re-accrue through the normal accounting paths; that re-execution
        plus the restore read is exactly the recovery cost a tighter
        ``checkpoint_every`` cadence shrinks.
        """
        backend = self.backend
        acct = backend.accountant
        if (self._checkpoint is None or not acct.active
                or acct.state_store.durable):
            # Nothing simulated was lost: a durable store persists every
            # round, and without a cluster the iterate state lives in
            # driver memory (the engine already replayed lost map
            # outputs inside the round).
            return outcome
        ck_it, ck_state, ck_bytes = self._checkpoint
        acct.charge_state_restore(ck_bytes, label=f"iter{it}:restore")
        replay_start = acct.clock
        state = copy.deepcopy(ck_state)
        for r in range(ck_it + 1, it + 1):
            hooked = backend.on_global_iteration(r, state)
            if hooked is not None:
                state = hooked
            outcome = backend.run_round(
                r, state, max_local_iters=self._budgets_used[r])
            state = outcome.state
        # The replay's re-execution time is recovery time: it re-accrues
        # through the normal charge paths (so the trace stays honest)
        # and is mirrored into the recovery ledger here.
        acct.recovery_seconds += acct.clock - replay_start
        acct.record_replay(it - ck_it)
        return outcome

    def close(self) -> None:
        """Close the backend exactly once (idempotent)."""
        if not self._closed:
            self._closed = True
            self.backend.close()

    def finish(self) -> IterativeResult:
        """Close the backend and assemble the run's result.

        ``sim_time`` is the *busy* time — the simulated seconds this
        run's own rounds advanced the clock.  For a solo run that equals
        the clock delta across the run; under session interleaving it
        excludes other jobs' rounds (their share of the timeline is a
        contention metric on the :class:`~repro.core.jobsched.JobHandle`,
        not part of this job's cost).
        """
        self.close()
        return IterativeResult(
            state=self._state,
            global_iters=self._iters,
            converged=self._converged,
            sim_time=self._busy,
            history=self._history,
        )

    def run(self) -> IterativeResult:
        """Start, step to convergence (or the cap), and finish."""
        self.start()
        try:
            while not self.finished:
                self.step()
        finally:
            self.close()
        return self.finish()
