"""Construction of ``gmap``/``greduce`` engine functions from a spec.

§IV: "A global map takes a partition as input, and involves invocation of
local map and local reduce functions iteratively on the partition."  The
factories here wrap an :class:`~repro.core.api.AsyncMapReduceSpec` into
the plain ``map_fn``/``reduce_fn`` callables the MapReduce engine
executes, so one *global iteration* of the two-level scheme is exactly
one engine job.  Both wrappers are picklable (plain classes holding the
spec) so the process-pool executor can run gmaps in parallel.
"""

from __future__ import annotations

from typing import Any

from repro.core.api import AsyncMapReduceSpec
from repro.core.emitter import GlobalReduceContext
from repro.core.localmr import run_local_mapreduce

__all__ = ["GmapFunction", "GreduceFunction", "LOCAL_ITER_COUNTER",
           "LOCAL_OPS_COUNTER", "local_iter_counter"]

#: Engine counter: total local iterations performed inside gmaps.
LOCAL_ITER_COUNTER = "core.local.iterations"
#: Engine counter: total local operations performed inside gmaps.
LOCAL_OPS_COUNTER = "core.local.ops"


def local_iter_counter(part_id: Any) -> str:
    """Per-partition engine counter for local iterations inside one gmap.

    The aggregate :data:`LOCAL_ITER_COUNTER` survives for totals; this
    one lets the driver record a per-partition history tuple that is
    shape-compatible with the vectorised block path's records.
    """
    return f"{LOCAL_ITER_COUNTER}.part{part_id}"


class GmapFunction:
    """Engine ``map_fn`` running Figure 1's local loop over a partition.

    The engine hands it ``(part_id, xs)`` records; it runs the local
    MapReduce to local convergence (or to 1 iteration for the general
    baseline) and emits the spec's boundary/output pairs for the global
    reduce — as one typed batch (``ctx.emit_block``) when the columnar
    fast path is on, or pair-at-a-time otherwise.
    """

    def __init__(self, spec: AsyncMapReduceSpec, max_local_iters: int, *,
                 columnar: bool = False) -> None:
        if max_local_iters < 1:
            raise ValueError("max_local_iters must be >= 1")
        if columnar and not getattr(spec, "supports_columnar", False):
            raise ValueError(
                f"{type(spec).__name__} does not support the columnar path")
        self.spec = spec
        self.max_local_iters = max_local_iters
        self.columnar = columnar

    def __call__(self, part_id: Any, xs: "list[tuple[Any, Any]]", ctx: Any) -> None:
        result = run_local_mapreduce(self.spec, xs,
                                     max_local_iters=self.max_local_iters)
        ctx.incr(LOCAL_ITER_COUNTER, result.local_iters)
        ctx.incr(local_iter_counter(part_id), result.local_iters)
        ctx.incr(LOCAL_OPS_COUNTER, int(result.total_ops))
        ctx.add_ops(result.total_ops)
        if self.columnar:
            keys, values = self.spec.gmap_emit_columnar(result.table, part_id)
            ctx.emit_block(keys, values)
            return
        for k, v in self.spec.gmap_emit(result.table, part_id):
            ctx.emit(k, v)


class GreduceFunction:
    """Engine ``reduce_fn`` delegating to the spec's ``greduce``."""

    def __init__(self, spec: AsyncMapReduceSpec) -> None:
        self.spec = spec

    def __call__(self, key: Any, values: list, ctx: Any) -> None:
        gctx = GlobalReduceContext()
        self.spec.greduce(key, values, gctx)
        ctx.add_ops(gctx.ops)
        for k, v in gctx.output:
            ctx.emit(k, v)
