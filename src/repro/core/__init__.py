"""The paper's contribution: partial synchronization + eager scheduling.

Public surface:

* :class:`~repro.core.loop.IterationLoop` — the single outer fixed-point
  loop, parameterized by an :class:`~repro.core.loop.IterationBackend`
  (engine / block / hierarchical) and an optional
  :class:`~repro.core.loop.AdaptiveSyncPolicy`; the historical
  ``run_iterative_*`` entry points are thin shims over it.
* :class:`~repro.core.api.AsyncMapReduceSpec` — the §IV API
  (``lmap``/``lreduce``/``greduce`` + generated ``gmap``) running on the
  real MapReduce engine via :func:`~repro.core.driver.run_iterative_kv`.
* :class:`~repro.core.api.BlockSpec` — the vectorised per-partition
  variant driven by :func:`~repro.core.driver.run_iterative_block`.
* :class:`~repro.core.config.DriverConfig` with the two canonical
  configurations :data:`~repro.core.config.GENERAL` (baseline) and
  :data:`~repro.core.config.EAGER` (partial sync + eager scheduling).
* Convergence criteria (inf-norm, unchanged, centroid-shift with
  oscillation detection) in :mod:`repro.core.convergence`.
"""

from repro.core.api import AsyncMapReduceSpec, BlockSpec, LocalSolveReport
from repro.core.config import DriverConfig, EAGER, GENERAL
from repro.core.convergence import (
    CentroidShiftCriterion,
    Criterion,
    InfNormCriterion,
    L2NormCriterion,
    UnchangedCriterion,
    combine_any,
)
from repro.core.autotune import AutotuneReport, ProbeResult, autotune_partitions
from repro.core.loop import (
    AdaptiveSyncPolicy,
    BlockBackend,
    EngineBackend,
    HierarchicalBackend,
    IterationBackend,
    IterationLoop,
    IterativeResult,
    RoundOutcome,
    RoundRecord,
)
from repro.core.driver import run_iterative_block, run_iterative_kv
from repro.core.hierarchy import (
    HierarchyConfig,
    make_racks,
    run_iterative_hierarchical,
)
from repro.core.emitter import (
    GlobalReduceContext,
    LocalMapContext,
    LocalReduceContext,
)
from repro.core.gmap import GmapFunction, GreduceFunction
from repro.core.localmr import LocalRunResult, run_local_mapreduce

__all__ = [
    "AsyncMapReduceSpec",
    "BlockSpec",
    "LocalSolveReport",
    "DriverConfig",
    "GENERAL",
    "EAGER",
    "Criterion",
    "InfNormCriterion",
    "L2NormCriterion",
    "UnchangedCriterion",
    "CentroidShiftCriterion",
    "combine_any",
    "IterationLoop",
    "IterationBackend",
    "EngineBackend",
    "BlockBackend",
    "HierarchicalBackend",
    "AdaptiveSyncPolicy",
    "RoundOutcome",
    "IterativeResult",
    "RoundRecord",
    "run_iterative_kv",
    "run_iterative_block",
    "run_iterative_hierarchical",
    "HierarchyConfig",
    "make_racks",
    "autotune_partitions",
    "AutotuneReport",
    "ProbeResult",
    "LocalMapContext",
    "LocalReduceContext",
    "GlobalReduceContext",
    "GmapFunction",
    "GreduceFunction",
    "LocalRunResult",
    "run_local_mapreduce",
]
