"""The paper's contribution: partial synchronization + eager scheduling.

Public surface:

* :class:`~repro.core.session.Session` — **the way to run iterative
  jobs**: owns one shared :class:`~repro.cluster.SimCluster` and a
  persistent engine runtime; ``session.submit(spec_or_backend)``
  registers jobs (:class:`~repro.core.session.JobSpec` from the app
  ``*_spec`` factories, or a bare backend) and ``session.run()`` drives
  them all to convergence under a pluggable scheduling policy
  (FIFO / round-robin / fair-share, :mod:`repro.core.jobsched`), with
  per-job results and contention metrics on each
  :class:`~repro.core.jobsched.JobHandle`.
* :class:`~repro.core.loop.IterationLoop` — the single outer fixed-point
  loop underneath, parameterized by an
  :class:`~repro.core.loop.IterationBackend` (engine / block /
  hierarchical) and an optional
  :class:`~repro.core.loop.AdaptiveSyncPolicy`; re-entrant at round
  granularity so sessions can interleave many jobs on one clock.
* :class:`~repro.core.api.AsyncMapReduceSpec` — the §IV API
  (``lmap``/``lreduce``/``greduce`` + generated ``gmap``) running on the
  real MapReduce engine via an :class:`~repro.core.loop.EngineBackend`.
* :class:`~repro.core.api.BlockSpec` — the vectorised per-partition
  variant driven by a :class:`~repro.core.loop.BlockBackend`.
* :class:`~repro.core.config.DriverConfig` with the two canonical
  configurations :data:`~repro.core.config.GENERAL` (baseline) and
  :data:`~repro.core.config.EAGER` (partial sync + eager scheduling).
* Convergence criteria (inf-norm, unchanged, centroid-shift with
  oscillation detection) in :mod:`repro.core.convergence`.
* Deprecated: the single-job ``run_iterative_{kv,block,hierarchical}``
  entry points, now warning shims over a throwaway single-job session.
"""

from repro.core.api import AsyncMapReduceSpec, BlockSpec, LocalSolveReport
from repro.core.async_backend import (
    AsyncBackend,
    DivergenceDetector,
    resolve_block_backend,
)
from repro.core.autotune import AutotuneReport, ProbeResult, autotune_partitions
from repro.core.config import DriverConfig, EAGER, GENERAL
from repro.core.convergence import (
    CentroidShiftCriterion,
    Criterion,
    InfNormCriterion,
    L2NormCriterion,
    UnchangedCriterion,
    combine_any,
)
from repro.core.driver import run_iterative_block, run_iterative_kv
from repro.core.emitter import (
    GlobalReduceContext,
    LocalMapContext,
    LocalReduceContext,
)
from repro.core.gmap import GmapFunction, GreduceFunction
from repro.core.hierarchy import (
    HierarchyConfig,
    make_racks,
    run_iterative_hierarchical,
)
from repro.core.state import DenseKVState
from repro.core.jobsched import (
    FairSharePolicy,
    FifoPolicy,
    JobHandle,
    RoundRobinPolicy,
    RoundShare,
    SchedulingPolicy,
    SessionScheduler,
    make_policy,
)
from repro.core.localmr import LocalRunResult, run_local_mapreduce
from repro.core.loop import (
    AdaptiveSyncPolicy,
    BlockBackend,
    EngineBackend,
    HierarchicalBackend,
    IterationBackend,
    IterationLoop,
    IterativeResult,
    RoundOutcome,
    RoundRecord,
)
from repro.core.session import JobSpec, Session

__all__ = [
    "Session",
    "JobSpec",
    "JobHandle",
    "RoundShare",
    "SessionScheduler",
    "SchedulingPolicy",
    "FifoPolicy",
    "RoundRobinPolicy",
    "FairSharePolicy",
    "make_policy",
    "AsyncMapReduceSpec",
    "BlockSpec",
    "DenseKVState",
    "LocalSolveReport",
    "DriverConfig",
    "GENERAL",
    "EAGER",
    "Criterion",
    "InfNormCriterion",
    "L2NormCriterion",
    "UnchangedCriterion",
    "CentroidShiftCriterion",
    "combine_any",
    "IterationLoop",
    "IterationBackend",
    "EngineBackend",
    "BlockBackend",
    "HierarchicalBackend",
    "AsyncBackend",
    "DivergenceDetector",
    "resolve_block_backend",
    "AdaptiveSyncPolicy",
    "RoundOutcome",
    "IterativeResult",
    "RoundRecord",
    "run_iterative_kv",
    "run_iterative_block",
    "run_iterative_hierarchical",
    "HierarchyConfig",
    "make_racks",
    "autotune_partitions",
    "AutotuneReport",
    "ProbeResult",
    "LocalMapContext",
    "LocalReduceContext",
    "GlobalReduceContext",
    "GmapFunction",
    "GreduceFunction",
    "LocalRunResult",
    "run_local_mapreduce",
]
