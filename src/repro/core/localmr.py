"""The local MapReduce loop — Figure 1 of the paper.

::

    gmap(xs : X list) {
        while(no-local-convergence-intimated) {
            for each element x in xs { lmap(x); }   // emits lkey, lval
            lreduce();    // operates on the output of lmap functions
        }
        for each value in lreduce-output { EmitIntermediate(key, value); }
    }

:func:`run_local_mapreduce` executes that loop over the in-memory
hashtable: every iteration applies ``lmap`` to each entry, groups the
EmitLocalIntermediate pairs by key, applies ``lreduce`` per group, and
folds the EmitLocal pairs back into the hashtable (entries not re-emitted
persist, so static structure such as adjacency lists survives the loop).
The local synchronization between lmap and lreduce is a plain in-memory
barrier — "the local synchronization does not incur any inter-host
communication delays" (§V-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.api import AsyncMapReduceSpec
from repro.core.emitter import LocalMapContext, LocalReduceContext

__all__ = ["LocalRunResult", "run_local_mapreduce"]


@dataclass
class LocalRunResult:
    """Outcome of one gmap's local MapReduce loop."""

    #: Final hashtable (local state at local convergence).
    table: dict
    #: Number of local iterations executed.
    local_iters: int
    #: Operations per local iteration (hashtable scans + emissions).
    per_iter_ops: list
    #: True when the spec's local criterion stopped the loop (False when
    #: the iteration cap did).
    converged: bool

    @property
    def total_ops(self) -> float:
        return float(sum(self.per_iter_ops))


def run_local_mapreduce(
    spec: AsyncMapReduceSpec,
    xs: "list[tuple[Any, Any]]",
    *,
    max_local_iters: int,
) -> LocalRunResult:
    """Execute Figure 1's local loop for one partition input ``xs``.

    Parameters
    ----------
    spec:
        The application spec providing ``lmap``/``lreduce`` and the local
        termination function.
    xs:
        The gmap's key-value input list; duplicate keys are rejected
        because the hashtable (dict) semantics of §V-A require unique
        keys.
    max_local_iters:
        Iteration cap; 1 reproduces the general (baseline) behaviour.
    """
    if max_local_iters < 1:
        raise ValueError("max_local_iters must be >= 1")
    table: dict = {}
    for k, v in xs:
        if k in table:
            raise ValueError(f"duplicate key in gmap input: {k!r}")
        table[k] = v

    per_iter_ops: list[float] = []
    converged = False
    iters = 0
    while iters < max_local_iters:
        spec.before_local_iteration(table)
        mctx = LocalMapContext()
        for k, v in table.items():
            spec.lmap(k, v, mctx)
        groups: dict[Any, list] = {}
        for lk, lv in mctx.intermediate:
            groups.setdefault(lk, []).append(lv)
        rctx = LocalReduceContext()
        for lk, lvs in groups.items():
            spec.lreduce(lk, lvs, rctx)
        new_table = dict(table)
        for k, v in rctx.local_output:
            new_table[k] = v
        # One scan of the table + all emissions, as the engine would count.
        per_iter_ops.append(float(len(table)) + mctx.ops + rctx.ops)
        iters += 1
        if spec.local_converged(table, new_table):
            table = new_table
            converged = True
            break
        table = new_table
    return LocalRunResult(table=table, local_iters=iters,
                          per_iter_ops=per_iter_ops, converged=converged)
