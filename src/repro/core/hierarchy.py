"""Hierarchical synchronization — §VIII "Generality of semantic extensions".

    "Currently, partial synchronization is restricted to a map and the
    granularity is determined by the input to the map.  Taking the
    configuration of the system into account, one may support a
    hierarchy of synchronizations."

This module adds the third level the paper sketches: *rack-level*
synchronization between the node-local and the global one.  Partitions
are grouped into racks; during one global iteration each rack runs
``inner_rounds`` rounds of partition solves + **rack-local combines**
(cheap: intra-rack network, no job startup) before the single expensive
global synchronization merges everything.

The scheme requires each partition's updates to own a disjoint slice of
the state (``BlockSpec.partition_scoped_state``), which holds for the
node-partitioned graph applications; the driver rejects other specs.
Because each rack's inner combines touch only its own partitions' state
slices against frozen remote values, the fixed point is unchanged —
this is two nested block-Jacobi levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster import SimCluster
from repro.core.api import BlockSpec, LocalSolveReport
from repro.core.config import DriverConfig
from repro.core.driver import IterativeResult, RoundRecord
from repro.engine.scheduler import lpt_schedule

__all__ = ["HierarchyConfig", "make_racks", "run_iterative_hierarchical"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Rack-level synchronization parameters.

    Attributes
    ----------
    inner_rounds:
        Rack-local synchronization rounds per global iteration (1 makes
        the scheme identical to the plain two-level eager driver, up to
        the rack-sync charges).
    rack_startup_seconds:
        Fixed cost of one rack-level synchronization (intra-rack barrier
        + scheduling); far below a global job startup.
    rack_shuffle_speedup:
        Intra-rack network speedup over the global shuffle bandwidth
        (top-of-rack switch vs cross-rack links).
    """

    inner_rounds: int = 2
    rack_startup_seconds: float = 1.0
    rack_shuffle_speedup: float = 8.0

    def __post_init__(self) -> None:
        if self.inner_rounds < 1:
            raise ValueError("inner_rounds must be >= 1")
        if self.rack_startup_seconds < 0:
            raise ValueError("rack_startup_seconds must be >= 0")
        if self.rack_shuffle_speedup <= 0:
            raise ValueError("rack_shuffle_speedup must be > 0")


def make_racks(num_partitions: int, num_racks: int) -> "list[list[int]]":
    """Group partition ids into ``num_racks`` contiguous racks.

    The multilevel partitioner assigns part ids hierarchically (recursive
    bisection: a contiguous id range is a subtree of the bisection tree),
    so contiguous racks maximise intra-rack topological locality — the
    "taking the configuration of the system into account" step of §VIII.
    """
    if num_racks < 1:
        raise ValueError("num_racks must be >= 1")
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    r = min(num_racks, num_partitions)
    bounds = [num_partitions * i // r for i in range(r + 1)]
    return [list(range(bounds[i], bounds[i + 1])) for i in range(r)]


def run_iterative_hierarchical(
    spec: BlockSpec,
    config: DriverConfig,
    racks: "Sequence[Sequence[int]]",
    *,
    hierarchy: "HierarchyConfig | None" = None,
    cluster: "SimCluster | None" = None,
) -> IterativeResult:
    """Run the three-level scheme (local / rack / global) to convergence.

    Per global iteration: every rack independently performs
    ``hierarchy.inner_rounds`` rounds of {local solves for its
    partitions, rack-local combine against frozen remote state}; racks
    proceed concurrently (the charged time is the slowest rack); then
    one global synchronization merges all racks' final partition updates
    and the global termination function is checked.
    """
    if not spec.partition_scoped_state:
        raise ValueError(
            "hierarchical synchronization requires a spec with "
            "partition-scoped state (see BlockSpec.partition_scoped_state)"
        )
    hcfg = hierarchy if hierarchy is not None else HierarchyConfig()
    all_parts = sorted(p for rack in racks for p in rack)
    if all_parts != list(range(spec.num_partitions())):
        raise ValueError("racks must cover every partition exactly once")

    state = spec.init_state()
    history: "list[RoundRecord]" = []
    converged = False
    iters = 0
    start_clock = cluster.clock if cluster is not None else 0.0

    for it in range(config.max_global_iters):
        hooked = spec.on_global_iteration(it, state)
        if hooked is not None:
            state = hooked
        round_start = cluster.clock if cluster is not None else 0.0
        if cluster is not None:
            cluster.charge_job_startup(label=f"hiter{it}:startup")

        final_reports: "list[LocalSolveReport]" = []
        rack_times: "list[float]" = []
        total_local_iters: "list[int]" = [0] * spec.num_partitions()
        for rack in racks:
            rack_state = state
            rack_time = 0.0
            reports: "list[LocalSolveReport]" = []
            for _ in range(hcfg.inner_rounds):
                reports = [
                    spec.local_solve(p, rack_state,
                                     max_local_iters=config.effective_local_iters)
                    for p in rack
                ]
                for r in reports:
                    total_local_iters[r.partition] += r.local_iters
                rack_state, _, _ = spec.global_combine(rack_state, reports)
                if cluster is not None:
                    rack_time += _rack_round_seconds(
                        cluster, reports, config, hcfg, len(racks))
            final_reports.extend(reports)
            rack_times.append(rack_time)

        shuffle_total = int(sum(r.shuffle_bytes for r in final_reports))
        if cluster is not None:
            # Racks run concurrently: the phase costs the slowest rack.
            cluster.charge_fixed(f"hiter{it}:racks", max(rack_times, default=0.0))
            cluster.charge_shuffle(shuffle_total, label=f"hiter{it}:shuffle")

        new_state, reduce_ops, extra_bytes = spec.global_combine(
            state, final_reports)
        if cluster is not None:
            r_tasks = cluster.total_reduce_slots
            per_task = cluster.cost_model.reduce_compute_seconds(reduce_ops) / r_tasks
            cluster.run_reduce_phase([per_task] * r_tasks,
                                     label=f"hiter{it}:reduce")
            cluster.charge_barrier(label=f"hiter{it}:barrier")
            cluster.charge_state_roundtrip(spec.state_nbytes(new_state),
                                           store=config.state_store,
                                           label=f"hiter{it}:state")

        done, residual = spec.global_converged(state, new_state)
        iters = it + 1
        if config.record_history:
            history.append(RoundRecord(
                iteration=it,
                residual=residual,
                local_iters=tuple(total_local_iters),
                sim_seconds=(cluster.clock - round_start) if cluster is not None else 0.0,
                shuffle_bytes=shuffle_total + int(extra_bytes),
            ))
        state = new_state
        if done:
            converged = True
            break

    sim_time = (cluster.clock - start_clock) if cluster is not None else 0.0
    return IterativeResult(state=state, global_iters=iters,
                           converged=converged, sim_time=sim_time,
                           history=history)


def _rack_round_seconds(cluster: SimCluster, reports: "list[LocalSolveReport]",
                        config: DriverConfig, hcfg: HierarchyConfig,
                        num_racks: int) -> float:
    """Simulated seconds of one rack-local round (not charged directly;
    racks are concurrent so the caller charges the slowest rack)."""
    cm = cluster.cost_model
    local_rate = (cm.map_compute_seconds if config.charge_local_ops_at == "map"
                  else cm.local_compute_seconds)

    def cost(r: LocalSolveReport) -> float:
        total = 0.0
        for l, ops in enumerate(r.per_iter_ops):
            total += cm.map_compute_seconds(ops) if l == 0 else local_rate(ops)
        return total + cm.task_dispatch_seconds

    # Racks partition the machines and run concurrently, so one rack's
    # compute is scheduled on its share of the nodes.
    share = max(1, len(cluster.nodes) // max(1, num_racks))
    rack_nodes = cluster.nodes[:share]
    makespan = lpt_schedule([cost(r) for r in reports], rack_nodes).makespan
    rack_shuffle = sum(r.shuffle_bytes for r in reports)
    sync = hcfg.rack_startup_seconds + rack_shuffle / (
        cm.shuffle_bandwidth_bps * hcfg.rack_shuffle_speedup)
    return makespan + sync
