"""Hierarchical synchronization — §VIII "Generality of semantic extensions".

    "Currently, partial synchronization is restricted to a map and the
    granularity is determined by the input to the map.  Taking the
    configuration of the system into account, one may support a
    hierarchy of synchronizations."

This module keeps the rack-level configuration
(:class:`HierarchyConfig`), the rack grouping helper
(:func:`make_racks`), and the historical entry point
:func:`run_iterative_hierarchical` — now a thin shim over the unified
iteration core's :class:`~repro.core.loop.HierarchicalBackend`, which
composes the block backend: the first inner round of local solves is
the global job's map phase, each additional inner round is a cheap
rack-local synchronization, and the final global synchronization
charges through exactly the same audited
:class:`~repro.cluster.accountant.RoundAccountant` path as the plain
block driver (so ``inner_rounds=1`` matches it charge for charge).

The scheme requires each partition's updates to own a disjoint slice of
the state (``BlockSpec.partition_scoped_state``), which holds for the
node-partitioned graph applications; the backend rejects other specs.
Because each rack's inner combines touch only its own partitions' state
slices against frozen remote values, the fixed point is unchanged —
this is two nested block-Jacobi levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster import SimCluster
from repro.core.api import BlockSpec
from repro.core.config import DriverConfig
from repro.core.loop import (
    AdaptiveSyncPolicy,
    HierarchicalBackend,
    IterativeResult,
)

__all__ = ["HierarchyConfig", "make_racks", "run_iterative_hierarchical"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Rack-level synchronization parameters.

    Attributes
    ----------
    inner_rounds:
        Rack-local synchronization rounds per global iteration (1 makes
        the scheme identical to the plain two-level eager driver —
        including, post-unification, its exact cluster charges).
    rack_startup_seconds:
        Fixed cost of one rack-level synchronization (intra-rack barrier
        + scheduling); far below a global job startup.
    rack_shuffle_speedup:
        Intra-rack network speedup over the global shuffle bandwidth
        (top-of-rack switch vs cross-rack links).
    """

    inner_rounds: int = 2
    rack_startup_seconds: float = 1.0
    rack_shuffle_speedup: float = 8.0

    def __post_init__(self) -> None:
        if self.inner_rounds < 1:
            raise ValueError("inner_rounds must be >= 1")
        if self.rack_startup_seconds < 0:
            raise ValueError("rack_startup_seconds must be >= 0")
        if self.rack_shuffle_speedup <= 0:
            raise ValueError("rack_shuffle_speedup must be > 0")


def make_racks(num_partitions: int, num_racks: int) -> "list[list[int]]":
    """Group partition ids into at most ``num_racks`` contiguous racks.

    The multilevel partitioner assigns part ids hierarchically (recursive
    bisection: a contiguous id range is a subtree of the bisection tree),
    so contiguous racks maximise intra-rack topological locality — the
    "taking the configuration of the system into account" step of §VIII.

    When ``num_racks > num_partitions`` the rack count is *clamped* to
    ``num_partitions`` (one partition per rack; a rack cannot be empty),
    so the returned list may be shorter than requested — callers sizing
    per-rack resources should use ``len(result)``, not ``num_racks``.
    """
    if num_racks < 1:
        raise ValueError("num_racks must be >= 1")
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    r = min(num_racks, num_partitions)
    bounds = [num_partitions * i // r for i in range(r + 1)]
    return [list(range(bounds[i], bounds[i + 1])) for i in range(r)]


def run_iterative_hierarchical(
    spec: BlockSpec,
    config: DriverConfig,
    racks: "Sequence[Sequence[int]]",
    *,
    hierarchy: "HierarchyConfig | None" = None,
    cluster: "SimCluster | None" = None,
    num_reduce_tasks: "int | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
) -> IterativeResult:
    """Run the three-level scheme (local / rack / global) to convergence.

    .. deprecated::
        Use :meth:`repro.core.session.Session.submit` with a
        :class:`~repro.core.loop.HierarchicalBackend`; see that class
        for the per-round structure and charging.
    """
    from repro.core.driver import _deprecated, _run_single_job

    _deprecated("run_iterative_hierarchical")
    backend = HierarchicalBackend(spec, racks, hierarchy=hierarchy,
                                  cluster=cluster,
                                  num_reduce_tasks=num_reduce_tasks)
    return _run_single_job(backend, config, sync_policy=sync_policy)
