"""No-barrier iteration with bounded staleness — the async end of the axis.

The paper's synchronization spectrum runs from eager-synchronous
barriers to fully-asynchronous chaotic iteration; the backends in
:mod:`repro.core.loop` reproduce only the synchronous-to-relaxed half,
every round ending in a global barrier.  :class:`AsyncBackend` completes
the axis: partitions publish their state slices *continuously* through
:class:`~repro.cluster.statestore.OnlineStateStore` tablets, and each
local solve consumes whatever neighbour state has arrived by the time it
starts — no job startup per round, no reduce phase, no barrier.

The discipline is governed by one knob, the **staleness bound**:

* ``staleness=0`` — every read must be the neighbour's latest round:
  exactly barrier semantics.  The backend routes these rounds through
  :meth:`BlockBackend.run_round` unchanged, so results and accountant
  charges are *bitwise identical* to the synchronous path.
* ``staleness=S`` — a partition entering round ``i`` may read neighbour
  versions as old as ``i - S``; it blocks until every neighbour has
  published at least that version (the stale-synchronous-parallel
  coupling: fast partitions are dragged along by the slowest, minus
  ``S`` rounds of slack).
* ``staleness=None`` — pure chaotic iteration: never wait, always read
  whatever is newest at the moment the solve starts.

Each backend round advances *every* partition exactly one logical round
(so the loop's history and convergence checks stay aligned), but their
*timelines* drift: partition ``p``'s round costs its own consume +
compute + publish seconds on top of whatever wait its bound imposed, and
the shared cluster clock advances by how far the furthest timeline moved
(:meth:`~repro.cluster.accountant.RoundAccountant.charge_async_step`).
``pace`` and ``phase`` shape those per-partition timelines
(heterogeneous compute rates and staggered starts) — they are what make
reads actually stale in simulation.

Correctness is the classical chaotic-relaxation story (Chazan &
Miranker): a linear update ``x <- Mx + b`` converges synchronously iff
``rho(M) < 1`` but chaotically iff ``rho(|M|) < 1``, and the gap between
the two is real — Jacobi systems exist that contract under a barrier and
*oscillate divergently* without one.  :class:`DivergenceDetector` guards
that gap at runtime: it watches the residual trajectory, and when a
window stops contracting (or goes non-finite) it tightens the bound —
unbounded drops to a finite fallback, a finite bound halves — until, at
worst, ``staleness=0`` restores barrier semantics and the synchronous
convergence guarantee.
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.statestore import OnlineStateStore, even_split
from repro.core.api import BlockSpec
from repro.core.loop import BlockBackend, RoundOutcome

__all__ = ["AsyncBackend", "DivergenceDetector", "resolve_block_backend"]


class DivergenceDetector:
    """Watches the residual trajectory; tightens the bound on non-contraction.

    Chaotic iteration can diverge where synchronous iteration converges
    (``rho(M) < 1 < rho(|M|)``).  The detector observes the global
    residual after every no-barrier round and declares non-contraction
    when the newest residual in a sliding ``window`` is no smaller than
    the oldest (or any residual goes non-finite).  Each trigger tightens
    the staleness bound one notch — ``None`` (unbounded) drops to
    ``chaotic_fallback``, a finite bound halves — and clears the window
    so the iteration is re-observed under the new bound before it can
    tighten again.  The fixed point of repeated tightening is
    ``staleness=0``: barrier semantics, where the synchronous
    convergence guarantee applies.

    Attributes
    ----------
    events:
        One ``(iteration, old_bound, new_bound)`` tuple per tightening,
        in order — the observable trace of a rescued run.
    """

    def __init__(self, window: int = 6, chaotic_fallback: int = 4) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if chaotic_fallback < 1:
            raise ValueError("chaotic_fallback must be >= 1")
        self.window = int(window)
        self.chaotic_fallback = int(chaotic_fallback)
        self.events: "list[tuple]" = []
        self._residuals: "list[float]" = []

    def observe(self, iteration: int, residual: float,
                bound: "int | None") -> "int | None":
        """Feed one round's residual; returns the (possibly tightened)
        staleness bound to use from the next round on."""
        if bound == 0:
            return 0
        r = float(residual)
        if not math.isfinite(r):
            return self._tighten(iteration, bound)
        self._residuals.append(r)
        if len(self._residuals) < self.window:
            return bound
        recent = self._residuals[-self.window:]
        if recent[-1] >= recent[0]:
            return self._tighten(iteration, bound)
        return bound

    def _tighten(self, iteration: int, bound: "int | None") -> int:
        new = self.chaotic_fallback if bound is None else bound // 2
        self.events.append((iteration, bound, new))
        self._residuals.clear()
        return new


def resolve_block_backend(spec: BlockSpec, *, backend: str = "block",
                          staleness: "int | None" = 0, cluster=None,
                          pace=None, phase=None,
                          detector: "DivergenceDetector | None" = None):
    """Map the ``(backend, staleness)`` pair the app entry points and the
    CLI expose onto a bound backend.

    Any nonzero (or unbounded) staleness implies the async backend;
    ``backend="async"`` at ``staleness=0`` is the barrier-equivalent
    async path — useful for the parity pins.  ``pace``/``phase``/
    ``detector`` are async-only knobs and are rejected on the barrier
    path rather than silently dropped.
    """
    if staleness is None or staleness != 0:
        backend = "async"
    if backend == "async":
        return AsyncBackend(spec, staleness=staleness, cluster=cluster,
                            pace=pace, phase=phase, detector=detector)
    if backend != "block":
        raise ValueError(f"backend must be 'block' or 'async', got {backend!r}")
    if pace is not None or phase is not None or detector is not None:
        raise ValueError("pace/phase/detector apply to the async backend only")
    return BlockBackend(spec, cluster=cluster)


class AsyncBackend(BlockBackend):
    """No-barrier rounds over continuously-published tablet state.

    Parameters
    ----------
    spec:
        A :class:`BlockSpec` with ``partition_scoped_state`` *and*
        ``supports_async`` — the spec's explicit promise that its local
        solve tolerates mixed-round neighbour state and its combine is
        arrival-order insensitive.
    staleness:
        ``0`` (barrier semantics, the default), a positive bound, or
        ``None`` for pure chaotic iteration.  Negative values are
        rejected.
    pace:
        Per-partition compute-time multipliers (default all ``1.0``) —
        heterogeneous progress rates, the reason reads go stale.
    phase:
        Per-partition initial timeline offsets in simulated seconds
        (default all ``0.0``) — staggered starts, so equal-pace
        partitions still read across round boundaries.
    detector:
        Optional :class:`DivergenceDetector`; fed the residual after
        every no-barrier round, its tightened bound takes effect from
        the next round.
    cluster / num_reduce_tasks:
        As :class:`BlockBackend` (``num_reduce_tasks`` only matters for
        rounds that run at ``staleness=0``).
    """

    def __init__(self, spec: BlockSpec, *, staleness: "int | None" = 0,
                 cluster=None, num_reduce_tasks: "int | None" = None,
                 pace=None, phase=None,
                 detector: "DivergenceDetector | None" = None) -> None:
        super().__init__(spec, cluster=cluster,
                         num_reduce_tasks=num_reduce_tasks)
        if not spec.partition_scoped_state:
            raise ValueError(
                "no-barrier iteration requires a spec with partition-scoped "
                "state (see BlockSpec.partition_scoped_state)")
        if not getattr(spec, "supports_async", False):
            raise ValueError(
                f"{type(spec).__name__} does not opt into no-barrier "
                "iteration (see BlockSpec.supports_async)")
        if staleness is not None:
            staleness = int(staleness)
            if staleness < 0:
                raise ValueError("staleness must be >= 0 (or None for "
                                 "unbounded chaotic iteration)")
        P = spec.num_partitions()
        self.pace = tuple(float(x) for x in
                          (pace if pace is not None else (1.0,) * P))
        self.phase = tuple(float(x) for x in
                           (phase if phase is not None else (0.0,) * P))
        if len(self.pace) != P or any(x <= 0 for x in self.pace):
            raise ValueError("pace needs one positive entry per partition")
        if len(self.phase) != P or any(x < 0 for x in self.phase):
            raise ValueError("phase needs one non-negative entry per partition")
        self.initial_staleness = staleness
        self.detector = detector
        self._staleness = staleness
        self._async_started = False
        self._startup_charged = False
        self._rounds_done = 0

    @property
    def staleness(self) -> "int | None":
        """The bound currently in effect (the detector may have
        tightened it below :attr:`initial_staleness`)."""
        return self._staleness

    def bind(self, config, accountant=None) -> None:
        super().bind(config, accountant)
        if self.accountant.active and self._staleness != 0:
            store = self.accountant.state_store
            if not isinstance(store, OnlineStateStore):
                raise ValueError(
                    "no-barrier publish/consume needs an OnlineStateStore "
                    f"(got {store.name!r}); set state_store='online' or "
                    "pass an OnlineStateStore instance in the DriverConfig")

    # -- round dispatch -------------------------------------------------
    def run_round(self, iteration: int, state: Any, *,
                  max_local_iters: int) -> RoundOutcome:
        self._rounds_done = iteration + 1
        if self._staleness == 0:
            # Barrier semantics: the synchronous path, charge for charge.
            outcome = super().run_round(iteration, state,
                                        max_local_iters=max_local_iters)
            if self._async_started:
                # Mid-run fallback (detector tightened to 0): keep the
                # logical-clock record going so history stays uniform.
                P = self.spec.num_partitions()
                outcome.partition_clocks = (iteration + 1,) * P
                outcome.version_vector = (iteration,) * P
            return outcome
        return self._run_async_round(iteration, state,
                                     max_local_iters=max_local_iters)

    def global_converged(self, prev_state, curr_state):
        done, residual = self.spec.global_converged(prev_state, curr_state)
        if self.detector is not None and self._staleness != 0:
            new = self.detector.observe(self._rounds_done - 1, residual,
                                        self._staleness)
            if new != self._staleness:
                self._staleness = new
        return done, residual

    # -- the no-barrier round -------------------------------------------
    def _start_tables(self, state: Any) -> None:
        P = self.spec.num_partitions()
        # Views share the initial state object: combines are pure (they
        # write into a copy — lint rule RPR051 polices exactly this), so
        # per-reader views only ever fork, never alias-mutate.
        self._views: "list[Any]" = [state] * P
        self._seen: "list[list[int]]" = [[0] * P for _ in range(P)]
        self._ptime: "list[float]" = list(self.phase)
        self._pub_time: "list[dict]" = [{0: float("-inf")} for _ in range(P)]
        self._pub_report: "list[dict]" = [{} for _ in range(P)]
        self._latest: "list[int]" = [0] * P
        self._horizon: float = 0.0
        self._async_started = True

    def _newest_at(self, q: int, t: float) -> int:
        """Newest version of partition ``q`` published by time ``t``
        (version 0, the initial state, is published at -inf)."""
        v = self._latest[q]
        times = self._pub_time[q]
        while v > 0 and times[v] > t:
            v -= 1
        return v

    def _prune(self) -> None:
        """Drop report payloads no reader can still need."""
        P = len(self._views)
        for q in range(P):
            min_seen = min(self._seen[p][q] for p in range(P))
            reports = self._pub_report[q]
            for v in [v for v in reports if v <= min_seen]:
                del reports[v]

    def _run_async_round(self, iteration: int, state: Any, *,
                         max_local_iters: int) -> RoundOutcome:
        spec, acct, it = self.spec, self.accountant, iteration
        P = spec.num_partitions()
        if not self._async_started:
            self._start_tables(state)
        S = self._staleness

        # Effective start per partition: its own timeline, plus — under
        # a finite bound — the wait until every neighbour has published
        # version it - S (all from earlier rounds, so already known).
        starts = []
        for p in range(P):
            t = self._ptime[p]
            if S is not None:
                rv = max(0, it - S)
                for q in range(P):
                    if q != p:
                        t = max(t, self._pub_time[q][rv])
            starts.append(t)

        reports: "list[Any]" = [None] * P
        pub_bytes = [0] * P
        vv = [it] * P
        # Earlier-starting partitions publish first, so a late starter
        # can consume a same-round version — true chaotic freshness.
        for p in sorted(range(P), key=lambda p: (starts[p], p)):
            t = starts[p]
            view = self._views[p]
            fold: "list[Any]" = []
            read_bytes = [0.0] * P
            read_versions = [0] * P
            oldest = it
            for q in range(P):
                if q == p:
                    continue
                tv = self._newest_at(q, t)
                for v in range(self._seen[p][q] + 1, tv + 1):
                    rep, nb = self._pub_report[q][v]
                    fold.append(rep)
                    read_bytes[q] += nb
                read_versions[q] = tv
                self._seen[p][q] = tv
                oldest = min(oldest, tv)
            if fold:
                view, _, _ = spec.global_combine(view, fold)
            consume = acct.state_consume_seconds(read_bytes,
                                                read_versions=read_versions)
            report = spec.local_solve(p, view, max_local_iters=max_local_iters)
            reports[p] = report
            solve = acct.local_solve_seconds(report)
            nb = (int(report.update_nbytes)
                  if report.update_nbytes is not None
                  else even_split(int(spec.state_nbytes(view)), P)[p])
            publish = acct.state_publish_seconds(p, nb, version=it + 1,
                                                 num_partitions=P)
            if acct.active:
                end = t + consume + solve * self.pace[p] + publish
            else:
                # Pure-compute runs still need timelines to drift, or no
                # read would ever be stale: one round costs pace[p].
                end = t + self.pace[p]
            view, _, _ = spec.global_combine(view, [report])
            self._views[p] = view
            self._seen[p][p] = it + 1
            self._pub_time[p][it + 1] = end
            self._pub_report[p][it + 1] = (report, nb)
            self._latest[p] = it + 1
            self._ptime[p] = end
            pub_bytes[p] = nb
            vv[p] = oldest

        horizon = max(self._ptime)
        if acct.active:
            if not self._startup_charged:
                # One continuous job, not one per round — the whole
                # point of dropping the barrier.
                acct.charge_job_startup(label=f"iter{it}:startup")
                self._startup_charged = True
            acct.charge_async_step(max(0.0, horizon - self._horizon),
                                   label=f"iter{it}:async")
            if (not acct.state_store.durable and self.config.checkpoint_every
                    and (it + 1) % self.config.checkpoint_every == 0):
                acct.charge_state_checkpoint(pub_bytes,
                                             label=f"iter{it}:checkpoint")
        self._horizon = horizon
        self._prune()

        new_state, _, _ = spec.global_combine(state, list(reports))
        return RoundOutcome(
            state=new_state,
            local_iters=tuple(r.local_iters for r in reports),
            shuffle_bytes=0,
            state_partition_bytes=tuple(pub_bytes),
            partition_clocks=(it + 1,) * P,
            version_vector=tuple(vv),
        )
