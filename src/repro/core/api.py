"""The partial-synchronization programming API (§IV of the paper).

Two spec flavours implement the same two-level (local/global) scheme:

* :class:`AsyncMapReduceSpec` — the faithful record-at-a-time API with
  the paper's four user functions (``lmap``, ``lreduce``, ``greduce``
  and the generated ``gmap``) and the EmitLocal* data flow.  It runs on
  the real MapReduce engine and is what the correctness tests and small
  examples use.

* :class:`BlockSpec` — the vectorised per-partition variant.  The paper
  notes that "local map and local reduce operations can use a thread
  pool to extract further parallelism" (§IV); on a NumPy substrate the
  corresponding optimisation is to vectorise the whole local iteration
  over the partition.  A BlockSpec reports per-iteration operation
  counts and shuffle bytes so the simulated cluster charges exactly the
  same quantities the record-at-a-time path would, while the benchmark
  sweeps stay laptop-fast.

Both flavours share :class:`LocalSolveReport` (what a gmap hands to the
global synchronization) and the convergence protocol from
:mod:`repro.core.convergence`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.emitter import (
    GlobalReduceContext,
    LocalMapContext,
    LocalReduceContext,
)

__all__ = ["AsyncMapReduceSpec", "BlockSpec", "LocalSolveReport"]


@dataclass
class LocalSolveReport:
    """What one gmap (partition-local solve) reports to the global sync."""

    partition: int
    #: Application-defined update payload consumed by the global combine.
    updates: Any
    #: Number of local map/reduce iterations performed.
    local_iters: int
    #: Operation count of each local iteration (len == local_iters).
    per_iter_ops: list = field(default_factory=list)
    #: Bytes this partition ships through the global shuffle.
    shuffle_bytes: int = 0
    #: Bytes of state this partition writes through the inter-round
    #: state store (its real update volume — frontier-driven apps
    #: report only the entries that changed, so skew is visible to a
    #: tablet-sharded store).  ``None`` lets the framework fall back to
    #: an even share of ``BlockSpec.state_nbytes``, preserving the
    #: historical aggregate charge.
    update_nbytes: "int | None" = None

    def __post_init__(self) -> None:
        if self.local_iters < 0:
            raise ValueError("local_iters must be >= 0")
        if len(self.per_iter_ops) != self.local_iters:
            raise ValueError(
                f"per_iter_ops has {len(self.per_iter_ops)} entries, "
                f"expected {self.local_iters}"
            )
        if self.shuffle_bytes < 0:
            raise ValueError("shuffle_bytes must be >= 0")
        if self.update_nbytes is not None and self.update_nbytes < 0:
            raise ValueError("update_nbytes must be >= 0 or None")

    @property
    def total_ops(self) -> float:
        return float(sum(self.per_iter_ops))


class AsyncMapReduceSpec(abc.ABC):
    """Record-at-a-time partial-synchronization spec (the paper's API).

    Subclasses provide the four user functions of §IV plus the iteration
    plumbing.  The framework generates ``gmap`` from ``lmap`` +
    ``lreduce`` exactly as Figure 1 prescribes (see
    :mod:`repro.core.localmr` and :mod:`repro.core.gmap`).

    Array-valued specs may additionally opt into the engine's
    **columnar shuffle fast path** (:mod:`repro.engine.columnar`) by
    setting :attr:`supports_columnar` and implementing the
    ``*_columnar`` hooks: the gmap then ships its boundary data as typed
    ``(int64 key, float64 row)`` batches, the global reduce runs as one
    segmented array aggregation (with a map-side combiner pre-folding
    duplicates per partition — the paper's partial-aggregation lever,
    §V-B), and byte accounting is dtype itemsize math.  The classic
    ``gmap_emit``/``greduce`` path stays intact as the fallback and the
    equivalence oracle (``EngineBackend(..., columnar=False)``).
    """

    #: Set True when the spec implements the columnar hooks below.
    supports_columnar: bool = False
    #: Named map-side combiner ("sum"/"min"/"max") applied to the
    #: columnar gmap output before the shuffle; None ships raw records.
    columnar_combine: "str | None" = None

    # -- the four user functions (§IV) ---------------------------------
    @abc.abstractmethod
    def lmap(self, key: Any, value: Any, ctx: LocalMapContext) -> None:
        """Local map: called per hashtable entry; emits via
        ``ctx.emit_local_intermediate``."""

    @abc.abstractmethod
    def lreduce(self, key: Any, values: list, ctx: LocalReduceContext) -> None:
        """Local reduce over one locally-grouped key; emits via
        ``ctx.emit_local``."""

    @abc.abstractmethod
    def greduce(self, key: Any, values: list, ctx: GlobalReduceContext) -> None:
        """Global reduce over one globally-grouped key; emits via
        ``ctx.emit``."""

    # -- iteration plumbing ---------------------------------------------
    @abc.abstractmethod
    def initial_state(self) -> Any:
        """Global state before the first iteration."""

    @abc.abstractmethod
    def num_partitions(self) -> int:
        """Number of partitions (= global map tasks per iteration)."""

    @abc.abstractmethod
    def partition_input(self, part_id: int, state: Any) -> list:
        """Build the gmap input ``xs`` (key-value list) for a partition.

        This is the "functions to convert data into the formats required
        by the local map and local reduce functions" of §IV.
        """

    @abc.abstractmethod
    def state_from_output(self, output: list, prev_state: Any) -> Any:
        """Fold the global reduce's Emit() pairs into the next state."""

    @abc.abstractmethod
    def local_converged(self, prev_table: dict, curr_table: dict) -> bool:
        """Local termination function (§IV: "functions for termination
        of global and local MapReduce iterations")."""

    @abc.abstractmethod
    def global_converged(self, prev_state: Any, curr_state: Any) -> "tuple[bool, float]":
        """Global termination; returns (converged, residual)."""

    # -- optional hooks --------------------------------------------------
    def gmap_emit(self, table: dict, part_id: int) -> list:
        """Pairs the gmap emits to the global reduce at local convergence.

        Defaults to the hashtable contents (Figure 1's "for each value in
        lreduce-output { EmitIntermediate(key, value) }"); applications
        with cross-partition data flow (e.g. PageRank contributions over
        cut edges) override this to add boundary traffic.
        """
        return list(table.items())

    def on_global_iteration(self, iteration: int, state: Any) -> Any:
        """Hook called before each global iteration; may return a new
        state (e.g. K-Means' periodic repartitioning, §V-D).  Returning
        ``None`` keeps the state unchanged."""
        return None

    def before_local_iteration(self, table: dict) -> None:
        """Hook called before every local iteration with the hashtable.

        The record-at-a-time model gives ``lmap`` only its own record;
        jobs that need shared per-iteration data (K-Means' current
        centroids — Hadoop would use the distributed cache / job
        configuration) pull it from the table here.  Default: no-op.
        """

    # -- columnar fast-path hooks (opt-in, see supports_columnar) -------
    def gmap_emit_columnar(self, table: dict, part_id: int
                           ) -> "tuple[Any, Any]":
        """Typed ``(keys, value_rows)`` arrays the gmap ships to the
        global reduce at local convergence — the vectorised counterpart
        of :meth:`gmap_emit` (same logical records, array layout)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the columnar path")

    def columnar_reduce(self) -> Any:
        """The global reduce as a declarative spec the engine can run
        vectorised: an aggregation name or a
        :class:`~repro.engine.columnar.ColumnarReduce`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the columnar path")

    def state_from_columnar(self, block: Any, prev_state: Any) -> Any:
        """Fold a columnar job's output block into the next state.

        Default materialises the block and defers to
        :meth:`state_from_output`; array-state specs override this to
        stay object-free end to end.
        """
        return self.state_from_output(block.to_pairs(), prev_state)


class BlockSpec(abc.ABC):
    """Vectorised per-partition spec (thread-pool/NumPy variant of §IV)."""

    #: True when each partition's updates touch a disjoint slice of the
    #: global state (node-partitioned graph algorithms), so
    #: ``global_combine`` over a *subset* of reports is meaningful.  The
    #: hierarchical driver (§VIII's "hierarchy of synchronizations")
    #: requires this; K-Means (whose combine averages across partitions)
    #: leaves it False.
    partition_scoped_state: bool = False

    #: True when the spec's update is safe under no-barrier iteration:
    #: ``local_solve`` must tolerate a state vector mixing neighbour
    #: slices from *different* rounds (chaotic relaxation, §VII), and
    #: ``global_combine`` must be insensitive to report arrival order.
    #: Specs opt in explicitly; the async backend refuses otherwise.
    supports_async: bool = False

    @abc.abstractmethod
    def num_partitions(self) -> int:
        """Number of partitions (global map tasks per iteration)."""

    @abc.abstractmethod
    def init_state(self) -> Any:
        """Global state before the first iteration."""

    @abc.abstractmethod
    def local_solve(self, part_id: int, state: Any, *,
                    max_local_iters: int) -> LocalSolveReport:
        """Run local iterations for one partition against frozen remote
        state; must stop at local convergence or ``max_local_iters``."""

    @abc.abstractmethod
    def global_combine(self, state: Any,
                       reports: Sequence[LocalSolveReport]) -> "tuple[Any, float, int]":
        """The global reduce: fold all partitions' updates into the next
        state.  Returns ``(new_state, reduce_ops, extra_shuffle_bytes)``.
        """

    @abc.abstractmethod
    def global_converged(self, prev_state: Any, curr_state: Any) -> "tuple[bool, float]":
        """Global termination; returns (converged, residual)."""

    def state_nbytes(self, state: Any) -> int:
        """Size of the state round-tripped through the state store
        between iterations (§VIII).  When a spec's ``local_solve``
        reports do not carry ``update_nbytes``, this total is split
        evenly over the partitions before it reaches the store."""
        from repro.cluster.dfs import estimate_nbytes

        return estimate_nbytes(state)

    def on_global_iteration(self, iteration: int, state: Any) -> Any:
        """Pre-iteration hook (see :meth:`AsyncMapReduceSpec.on_global_iteration`)."""
        return None
