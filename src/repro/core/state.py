"""Array-backed global state for iterative KV specs.

The record-at-a-time specs keep global state as ``node -> tuple`` dicts
— the oracle representation, easy to diff and to reason about, but it
forces every round to rebuild ~``num_nodes`` Python tuples from the
reduce output even when the engine ran fully columnar.
:class:`DenseKVState` stores the same per-node rows as one ``(n, w)``
float64 array keyed by node id, so a columnar round folds its output
block back in with a single fancy-indexed assignment
(:meth:`scatter`) and convergence checks vectorise.

The container is deliberately *Mapping-shaped*: ``state[u]`` returns
the node's row as a tuple of Python floats, ``len`` / ``iter`` /
``items`` behave like the dict they replace, so spec plumbing written
against the dict state (``rank, ext = state[u]``) runs unchanged.
Equivalence is bitwise — the array holds exactly the float64 values
the dict path's tuples hold — which the dense-state tests pin against
the dict oracle.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

__all__ = ["DenseKVState"]


class DenseKVState:
    """Global iterative state as a dense ``(n, width)`` float64 array.

    Node ids are the row index: the container covers the contiguous id
    range ``0..n-1``, which is exactly the key universe of the bundled
    graph specs (graphs number their nodes densely).

    Parameters
    ----------
    rows:
        Array of shape ``(n, width)`` (or ``(n,)``, treated as width 1)
        holding one row per node.  Copied to float64 if needed.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: np.ndarray) -> None:
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise ValueError(
                f"rows must be (n,) or (n, width), got shape {arr.shape}")
        self.rows = arr

    # -- Mapping surface (what the dict-state plumbing reads) ----------
    def __getitem__(self, u: int) -> tuple:
        return tuple(self.rows[u])

    def __len__(self) -> int:
        return self.rows.shape[0]

    def __iter__(self) -> "Iterator[int]":
        return iter(range(self.rows.shape[0]))

    def __contains__(self, u: Any) -> bool:
        return isinstance(u, (int, np.integer)) and 0 <= u < len(self)

    def keys(self) -> range:
        return range(self.rows.shape[0])

    def items(self):
        for u in range(self.rows.shape[0]):
            yield u, tuple(self.rows[u])

    def values(self):
        for u in range(self.rows.shape[0]):
            yield tuple(self.rows[u])

    # -- array surface (what the dense fast paths use) -----------------
    @property
    def width(self) -> int:
        return self.rows.shape[1]

    def column(self, j: int) -> np.ndarray:
        """One state component for all nodes (a view — copy to keep)."""
        return self.rows[:, j]

    def scatter(self, keys: np.ndarray, values: np.ndarray) -> "DenseKVState":
        """New state with ``rows[keys] = values`` (the round's updates).

        The columnar reduce emits one row per touched key; untouched
        nodes carry their previous row forward — exactly the dict
        path's ``dict(prev).update(output)``.
        """
        out = self.rows.copy()
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim == 1:
            vals = vals[:, None]
        out[np.asarray(keys, dtype=np.int64)] = vals
        return DenseKVState(out)

    def scatter_pairs(self, pairs: "list[tuple]") -> "DenseKVState":
        """:meth:`scatter` from object-path ``(key, row_tuple)`` output.

        Keeps the object path available as the oracle even when the
        spec runs with dense state (``conf.columnar=False`` runs land
        here).
        """
        if not pairs:
            return DenseKVState(self.rows.copy())
        keys = np.fromiter((k for k, _ in pairs), dtype=np.int64,
                           count=len(pairs))
        vals = np.array([v for _, v in pairs], dtype=np.float64)
        return self.scatter(keys, vals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseKVState(n={len(self)}, width={self.width})"
