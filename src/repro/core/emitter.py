"""Emission contexts for the partial-synchronization API.

The paper's API (§IV) extends the traditional ``Emit()`` /
``EmitIntermediate()`` data-flow functions with local equivalents:

    "We introduce their local equivalents — EmitLocal() and
    EmitLocalIntermediate().  Function lreduce operates on the data
    emitted through EmitLocalIntermediate().  At the end of local
    iterations, the output through EmitLocal() is sent to the greduce;
    otherwise, lmap receives it as input."

:class:`LocalMapContext` and :class:`LocalReduceContext` realise exactly
that routing, over the in-memory hashtable the implementation section
describes ("A hashtable is used to store the intermediate and final
results of the local MapReduce", §V-A).
"""

from __future__ import annotations

from typing import Any

__all__ = ["LocalMapContext", "LocalReduceContext", "GlobalReduceContext"]


class LocalMapContext:
    """Context passed to ``lmap``; collects EmitLocalIntermediate output."""

    __slots__ = ("_intermediate", "_ops")

    def __init__(self) -> None:
        self._intermediate: list[tuple[Any, Any]] = []
        self._ops: float = 0.0

    def emit_local_intermediate(self, key: Any, value: Any) -> None:
        """The paper's ``EmitLocalIntermediate()``: feed the local reduce."""
        self._intermediate.append((key, value))
        self._ops += 1.0

    def add_ops(self, n: float) -> None:
        """Account extra operations (for vectorised lmap bodies)."""
        if n < 0:
            raise ValueError("ops must be >= 0")
        self._ops += n

    @property
    def intermediate(self) -> list[tuple[Any, Any]]:
        return self._intermediate

    @property
    def ops(self) -> float:
        return self._ops


class LocalReduceContext:
    """Context passed to ``lreduce``; collects EmitLocal output.

    EmitLocal writes into the local hashtable: the pairs become the next
    local iteration's lmap input, or — at local convergence — the gmap's
    EmitIntermediate payload headed for the global reduce.
    """

    __slots__ = ("_local", "_ops")

    def __init__(self) -> None:
        self._local: list[tuple[Any, Any]] = []
        self._ops: float = 0.0

    def emit_local(self, key: Any, value: Any) -> None:
        """The paper's ``EmitLocal()``."""
        self._local.append((key, value))
        self._ops += 1.0

    def add_ops(self, n: float) -> None:
        if n < 0:
            raise ValueError("ops must be >= 0")
        self._ops += n

    @property
    def local_output(self) -> list[tuple[Any, Any]]:
        return self._local

    @property
    def ops(self) -> float:
        return self._ops


class GlobalReduceContext:
    """Context passed to ``greduce``; collects final Emit output."""

    __slots__ = ("_out", "_ops")

    def __init__(self) -> None:
        self._out: list[tuple[Any, Any]] = []
        self._ops: float = 0.0

    def emit(self, key: Any, value: Any) -> None:
        """The paper's ``Emit()``: final output of the global iteration."""
        self._out.append((key, value))
        self._ops += 1.0

    def add_ops(self, n: float) -> None:
        if n < 0:
            raise ValueError("ops must be >= 0")
        self._ops += n

    @property
    def output(self) -> list[tuple[Any, Any]]:
        return self._out

    @property
    def ops(self) -> float:
        return self._ops
