"""Convergence criteria for local and global iteration loops.

The paper uses an infinity-norm bound for PageRank ("We define
convergence by a bound on the norm of difference (infinite norm of 1e-5
in our case)", §V-B), unchanged-distances for SSSP, and a centroid-
movement threshold with *oscillation detection* for Eager K-Means ("the
convergence condition includes detection of oscillations along with the
Euclidean metric", §V-D, after Yom-Tov & Slonim).

Criteria are small stateful objects with a common ``update`` interface so
the driver can treat local and global convergence uniformly; each also
exposes its last residual for the iteration traces the benchmarks print.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

__all__ = [
    "Criterion",
    "InfNormCriterion",
    "L2NormCriterion",
    "UnchangedCriterion",
    "CentroidShiftCriterion",
    "combine_any",
]


class Criterion(Protocol):
    """Protocol: feed successive states, learn when to stop."""

    def update(self, prev: Any, curr: Any) -> bool:
        """Record a transition; return True when converged."""
        ...

    def reset(self) -> None:
        """Forget history (reused between local solves)."""
        ...

    @property
    def last_residual(self) -> float:
        """Residual of the most recent transition (inf before any)."""
        ...


class _ResidualCriterion:
    """Shared base: residual function + tolerance."""

    def __init__(self, tol: float) -> None:
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        self.tol = tol
        self._last = float("inf")

    def residual(self, prev: Any, curr: Any) -> float:  # pragma: no cover
        raise NotImplementedError

    def update(self, prev: Any, curr: Any) -> bool:
        self._last = float(self.residual(prev, curr))
        return self._last < self.tol

    def reset(self) -> None:
        self._last = float("inf")

    @property
    def last_residual(self) -> float:
        return self._last


class InfNormCriterion(_ResidualCriterion):
    """Converged when ``max_i |curr_i - prev_i| < tol`` (the paper's PageRank bound)."""

    def residual(self, prev: np.ndarray, curr: np.ndarray) -> float:
        prev = np.asarray(prev, dtype=np.float64)
        curr = np.asarray(curr, dtype=np.float64)
        if prev.shape != curr.shape:
            raise ValueError(f"shape mismatch: {prev.shape} vs {curr.shape}")
        if prev.size == 0:
            return 0.0
        return float(np.abs(curr - prev).max())


class L2NormCriterion(_ResidualCriterion):
    """Converged when the Euclidean norm of the change drops below tol."""

    def residual(self, prev: np.ndarray, curr: np.ndarray) -> float:
        prev = np.asarray(prev, dtype=np.float64)
        curr = np.asarray(curr, dtype=np.float64)
        if prev.shape != curr.shape:
            raise ValueError(f"shape mismatch: {prev.shape} vs {curr.shape}")
        return float(np.linalg.norm(curr - prev))


class UnchangedCriterion(_ResidualCriterion):
    """Converged when no component changed by more than ``tol`` (SSSP: 0 change).

    With the default ``tol`` this is "distances did not change this
    iteration", the classic Bellman-Ford/MapReduce-SSSP stopping rule.
    """

    def __init__(self, tol: float = 1e-12) -> None:
        super().__init__(tol)

    def residual(self, prev: np.ndarray, curr: np.ndarray) -> float:
        prev = np.asarray(prev, dtype=np.float64)
        curr = np.asarray(curr, dtype=np.float64)
        if prev.shape != curr.shape:
            raise ValueError(f"shape mismatch: {prev.shape} vs {curr.shape}")
        if prev.size == 0:
            return 0.0
        # Treat inf -> inf as unchanged (unreached nodes).
        both_inf = np.isinf(prev) & np.isinf(curr)
        with np.errstate(invalid="ignore"):  # inf - inf handled via mask
            diff = np.abs(curr - prev)
        diff[both_inf] = 0.0
        return float(diff.max())


class CentroidShiftCriterion(_ResidualCriterion):
    """K-Means stopping rule: max centroid movement below delta, or oscillation.

    The oscillation condition is the Yom-Tov & Slonim refinement the
    paper adopts for Eager K-Means (§V-D): when the residual sequence
    stops making progress — no new minimum within the last ``window``
    iterations, i.e. the centroids are bouncing inside their sampling
    noise floor rather than still descending — the run is declared
    converged-by-oscillation even though the plain Euclidean threshold
    was never reached.
    """

    def __init__(self, tol: float, *, window: int = 6) -> None:
        super().__init__(tol)
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self._history: list[float] = []
        self.oscillated = False

    def residual(self, prev: np.ndarray, curr: np.ndarray) -> float:
        prev = np.asarray(prev, dtype=np.float64)
        curr = np.asarray(curr, dtype=np.float64)
        if prev.shape != curr.shape:
            raise ValueError(f"shape mismatch: {prev.shape} vs {curr.shape}")
        if prev.ndim != 2:
            raise ValueError("centroid arrays must be 2-D (k, dims)")
        if prev.size == 0:
            return 0.0
        return float(np.linalg.norm(curr - prev, axis=1).max())

    def update(self, prev: Any, curr: Any) -> bool:
        converged = super().update(prev, curr)
        self._history.append(self._last)
        if converged:
            return True
        h = self._history
        if len(h) >= 2 * self.window:
            best_before = min(h[:-self.window])
            best_recent = min(h[-self.window:])
            if best_recent >= best_before:
                self.oscillated = True
                return True
        return False

    def reset(self) -> None:
        super().reset()
        self._history = []
        self.oscillated = False


def combine_any(*criteria: Criterion) -> Criterion:
    """A criterion satisfied when any member is satisfied."""

    class _Any:
        def __init__(self) -> None:
            self._last = float("inf")

        def update(self, prev: Any, curr: Any) -> bool:
            done = False
            for c in criteria:
                if c.update(prev, curr):
                    done = True
            self._last = min(c.last_residual for c in criteria)
            return done

        def reset(self) -> None:
            for c in criteria:
                c.reset()
            self._last = float("inf")

        @property
        def last_residual(self) -> float:
            return self._last

    return _Any()
