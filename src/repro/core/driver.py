"""The iterative driver: global iterations to convergence.

This is the outer loop of the paper's two-level scheme.  Each global
iteration runs every partition's gmap (local iterations inside), pays one
global synchronization (shuffle + greduce + barrier + DFS round trip),
and checks the global termination function.  The driver implements both
of the paper's configurations:

* **general** — gmaps perform exactly one local step, so every update
  crosses a global barrier (the competitive partition-input baseline of
  §V-B.1);
* **eager** — gmaps iterate to local convergence with eagerly scheduled
  local iterations (§V-B.2), so global barriers are paid only when the
  partitions have locally converged.

Two entry points share all accounting logic:

* :func:`run_iterative_kv` executes the record-at-a-time API on the real
  MapReduce engine (results are actually computed by lmap/lreduce/
  greduce applications);
* :func:`run_iterative_block` executes a vectorised
  :class:`~repro.core.api.BlockSpec` and reproduces the same simulated-
  time accounting from the reported op/byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster import SimCluster
from repro.core.api import AsyncMapReduceSpec, BlockSpec, LocalSolveReport
from repro.core.config import DriverConfig
from repro.core.gmap import GmapFunction, GreduceFunction, local_iter_counter
from repro.engine import Job, JobConf, MapReduceRuntime
from repro.engine.counters import SHUFFLE_BYTES

__all__ = ["RoundRecord", "IterativeResult", "run_iterative_kv", "run_iterative_block"]


@dataclass(frozen=True)
class RoundRecord:
    """Bookkeeping for one global iteration."""

    iteration: int
    residual: float
    #: Local iterations per partition in this round.
    local_iters: tuple
    #: Simulated seconds this round added (0 when no cluster attached).
    sim_seconds: float
    #: Bytes shipped through this round's global shuffle.
    shuffle_bytes: int


@dataclass
class IterativeResult:
    """Outcome of an iterative partial-synchronization run."""

    state: Any
    global_iters: int
    converged: bool
    sim_time: float
    history: list = field(default_factory=list)

    @property
    def total_local_iters(self) -> int:
        """Sum of local iterations over all partitions and rounds."""
        return int(sum(sum(r.local_iters) for r in self.history))

    @property
    def residuals(self) -> list:
        return [r.residual for r in self.history]


# ----------------------------------------------------------------------
# Record-at-a-time path (real MapReduce engine)
# ----------------------------------------------------------------------

def run_iterative_kv(
    spec: AsyncMapReduceSpec,
    config: DriverConfig,
    *,
    runtime: "MapReduceRuntime | None" = None,
    num_reducers: int = 8,
    eager_reduce: bool = False,
) -> IterativeResult:
    """Run the two-level scheme on the real engine until convergence.

    One engine runtime — and therefore one persistent worker pool — is
    reused across every global iteration, so an iterative run pays pool
    start-up once instead of per phase per round.

    Parameters
    ----------
    spec:
        Application spec (lmap/lreduce/greduce + plumbing).
    config:
        Driver mode and iteration caps.
    runtime:
        Engine runtime; defaults to a serial runtime without a cluster
        (owned by this call and closed on return — a caller-supplied
        runtime is left open for reuse).  Attach a runtime with a
        :class:`SimCluster` for simulated time.
    num_reducers:
        Reduce tasks per global iteration.
    eager_reduce:
        Run each global iteration's job through the engine's streaming
        pipeline (see :class:`~repro.engine.JobConf`); identical results,
        overlapped shuffle.
    """
    owns_runtime = runtime is None
    rt = runtime if runtime is not None else MapReduceRuntime("serial")
    state = spec.initial_state()
    gmap_fn = GmapFunction(spec, config.effective_local_iters)
    greduce_fn = GreduceFunction(spec)
    history: list[RoundRecord] = []
    converged = False
    start_clock = rt.cluster.clock if rt.cluster is not None else 0.0
    iters = 0
    num_partitions = spec.num_partitions()

    try:
        for it in range(config.max_global_iters):
            hooked = spec.on_global_iteration(it, state)
            if hooked is not None:
                state = hooked
            splits = [
                [(p, spec.partition_input(p, state))]
                for p in range(num_partitions)
            ]
            job = Job(
                map_fn=gmap_fn,
                reduce_fn=greduce_fn,
                conf=JobConf(num_reducers=num_reducers, name=f"iter{it}",
                             eager_reduce=eager_reduce),
            )
            res = rt.run(job, splits)
            new_state = spec.state_from_output(res.output, state)
            done, residual = spec.global_converged(state, new_state)
            iters = it + 1
            if config.record_history:
                history.append(RoundRecord(
                    iteration=it,
                    residual=residual,
                    local_iters=tuple(
                        res.counters.get(local_iter_counter(p))
                        for p in range(num_partitions)
                    ),
                    sim_seconds=res.sim_time_total,
                    shuffle_bytes=res.counters.get(SHUFFLE_BYTES),
                ))
            state = new_state
            if done:
                converged = True
                break
    finally:
        if owns_runtime:
            rt.close()

    sim_time = (rt.cluster.clock - start_clock) if rt.cluster is not None else 0.0
    return IterativeResult(state=state, global_iters=iters,
                           converged=converged, sim_time=sim_time,
                           history=history)


# ----------------------------------------------------------------------
# Vectorised block path (simulated cluster accounting)
# ----------------------------------------------------------------------

def run_iterative_block(
    spec: BlockSpec,
    config: DriverConfig,
    *,
    cluster: "SimCluster | None" = None,
    num_reduce_tasks: "int | None" = None,
) -> IterativeResult:
    """Run a vectorised :class:`BlockSpec` until global convergence.

    When ``cluster`` is given, each global iteration charges: job
    startup, the map phase (gmap task costs derived from reported
    per-iteration op counts, honouring ``config.eager_schedule``), the
    shuffle of reported boundary bytes, the reduce phase, the barrier,
    and the inter-iteration DFS round trip.
    """
    state = spec.init_state()
    history: list[RoundRecord] = []
    converged = False
    iters = 0
    start_clock = cluster.clock if cluster is not None else 0.0

    for it in range(config.max_global_iters):
        hooked = spec.on_global_iteration(it, state)
        if hooked is not None:
            state = hooked
        reports: list[LocalSolveReport] = [
            spec.local_solve(p, state, max_local_iters=config.effective_local_iters)
            for p in range(spec.num_partitions())
        ]
        round_start = cluster.clock if cluster is not None else 0.0
        shuffle_total = int(sum(r.shuffle_bytes for r in reports))
        if cluster is not None:
            _charge_map_phase(cluster, reports, config, label=f"iter{it}")
            cluster.charge_shuffle(shuffle_total, label=f"iter{it}:shuffle")

        new_state, reduce_ops, extra_bytes = spec.global_combine(state, reports)
        shuffle_total += int(extra_bytes)

        if cluster is not None:
            if extra_bytes:
                cluster.charge_shuffle(int(extra_bytes), label=f"iter{it}:shuffle+")
            r_tasks = num_reduce_tasks or cluster.total_reduce_slots
            per_task = cluster.cost_model.reduce_compute_seconds(reduce_ops) / r_tasks
            cluster.run_reduce_phase([per_task] * r_tasks, label=f"iter{it}:reduce")
            cluster.charge_barrier(label=f"iter{it}:barrier")
            state_bytes = spec.state_nbytes(new_state)
            cluster.charge_state_roundtrip(state_bytes,
                                           store=config.state_store,
                                           label=f"iter{it}:state")
            if (config.state_store == "online" and config.checkpoint_every
                    and (it + 1) % config.checkpoint_every == 0):
                # Periodic durability checkpoint: full replicated DFS
                # write of the state (§VIII's fault-tolerance caveat).
                cluster.charge_fixed(
                    f"iter{it}:checkpoint",
                    cluster.cost_model.dfs_write_seconds(state_bytes))

        done, residual = spec.global_converged(state, new_state)
        iters = it + 1
        if config.record_history:
            history.append(RoundRecord(
                iteration=it,
                residual=residual,
                local_iters=tuple(r.local_iters for r in reports),
                sim_seconds=(cluster.clock - round_start) if cluster is not None else 0.0,
                shuffle_bytes=shuffle_total,
            ))
        state = new_state
        if done:
            converged = True
            break

    sim_time = (cluster.clock - start_clock) if cluster is not None else 0.0
    return IterativeResult(state=state, global_iters=iters,
                           converged=converged, sim_time=sim_time,
                           history=history)


def _charge_map_phase(cluster: SimCluster, reports: "list[LocalSolveReport]",
                      config: DriverConfig, *, label: str) -> None:
    """Charge one global iteration's gmap work onto the cluster.

    Rates: the *first* local iteration of each gmap is the actual map
    invocation over freshly-read input and is charged at the per-record
    map rate; subsequent local iterations run over the in-memory
    hashtable (§V-A) and are charged at the cheaper local rate (or at
    the map rate under the pessimistic ``charge_local_ops_at="map"``
    ablation setting).

    Eager scheduling (the paper's setting) makes each gmap a single
    schedulable task whose cost is the *sum* of its local iterations —
    partitions proceed independently, smoothing load imbalance.  With
    eager scheduling off, local iterations run in lockstep: local round
    ``l`` across all partitions is one scheduled phase (dispatch paid per
    partition per round), and rounds are summed — which is strictly
    slower, as the ablation bench demonstrates.
    """
    cm = cluster.cost_model
    local_rate = (cm.map_compute_seconds if config.charge_local_ops_at == "map"
                  else cm.local_compute_seconds)

    def task_cost(ops: list, lo: int, hi: int) -> float:
        total = 0.0
        for l in range(lo, min(hi, len(ops))):
            total += cm.map_compute_seconds(ops[l]) if l == 0 \
                else local_rate(ops[l])
        return total

    cluster.charge_job_startup(label=f"{label}:startup")
    if config.eager_schedule or config.mode == "general":
        costs = [task_cost(r.per_iter_ops, 0, r.local_iters) for r in reports]
        cluster.run_map_phase(costs, label=f"{label}:map")
        return
    max_rounds = max((r.local_iters for r in reports), default=0)
    for l in range(max_rounds):
        costs = [task_cost(r.per_iter_ops, l, l + 1)
                 for r in reports if l < r.local_iters]
        cluster.run_map_phase(costs, label=f"{label}:map.l{l}")
