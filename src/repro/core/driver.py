"""Historical entry points for the iterative driver — now thin shims.

The outer fixed-point loop of the paper's two-level scheme lives in
:mod:`repro.core.loop`: one :class:`~repro.core.loop.IterationLoop`
(pre-iteration hook, local work, global combine, convergence check,
:class:`~repro.core.loop.RoundRecord` history) parameterized by a
pluggable :class:`~repro.core.loop.IterationBackend`, with all
simulated-cluster charging flowing through the audited
:class:`~repro.cluster.accountant.RoundAccountant`.

This module keeps the original function signatures for existing callers
and delegates:

* :func:`run_iterative_kv` -> :class:`~repro.core.loop.EngineBackend`
  (record-at-a-time §IV API on the real MapReduce engine);
* :func:`run_iterative_block` -> :class:`~repro.core.loop.BlockBackend`
  (vectorised :class:`~repro.core.api.BlockSpec` path).

Both accept an optional ``sync_policy``
(:class:`~repro.core.loop.AdaptiveSyncPolicy`) to retune the
local-iteration budget per round.
"""

from __future__ import annotations

from repro.cluster import SimCluster
from repro.core.api import AsyncMapReduceSpec, BlockSpec
from repro.core.config import DriverConfig
from repro.core.loop import (
    AdaptiveSyncPolicy,
    BlockBackend,
    EngineBackend,
    IterationLoop,
    IterativeResult,
    RoundRecord,
)
from repro.engine import MapReduceRuntime

__all__ = ["RoundRecord", "IterativeResult", "run_iterative_kv", "run_iterative_block"]


def run_iterative_kv(
    spec: AsyncMapReduceSpec,
    config: DriverConfig,
    *,
    runtime: "MapReduceRuntime | None" = None,
    num_reducers: int = 8,
    eager_reduce: bool = False,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
) -> IterativeResult:
    """Run the two-level scheme on the real engine until convergence.

    Shim over :class:`~repro.core.loop.IterationLoop` with an
    :class:`~repro.core.loop.EngineBackend`; see those classes for the
    parameter semantics (a default runtime is owned by the run and
    closed on return; a caller-supplied one is left open for reuse).
    """
    backend = EngineBackend(spec, runtime=runtime, num_reducers=num_reducers,
                            eager_reduce=eager_reduce)
    return IterationLoop(backend, config, sync_policy=sync_policy).run()


def run_iterative_block(
    spec: BlockSpec,
    config: DriverConfig,
    *,
    cluster: "SimCluster | None" = None,
    num_reduce_tasks: "int | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
) -> IterativeResult:
    """Run a vectorised :class:`BlockSpec` until global convergence.

    Shim over :class:`~repro.core.loop.IterationLoop` with a
    :class:`~repro.core.loop.BlockBackend`; when ``cluster`` is given,
    every round charges through the audited
    :class:`~repro.cluster.accountant.RoundAccountant` path.
    """
    backend = BlockBackend(spec, cluster=cluster,
                           num_reduce_tasks=num_reduce_tasks)
    return IterationLoop(backend, config, sync_policy=sync_policy).run()
