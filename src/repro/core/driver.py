"""Historical entry points for the iterative driver — deprecated shims.

The outer fixed-point loop lives in :mod:`repro.core.loop`
(:class:`~repro.core.loop.IterationLoop` over a pluggable
:class:`~repro.core.loop.IterationBackend`), and the public way to run
iterative jobs is the Session API (:mod:`repro.core.session`): build a
:class:`~repro.core.session.Session`, ``submit`` backends or app specs,
and let the session's scheduler drive them — one job or many — on one
shared cluster.

The functions here keep the original single-job signatures for existing
callers, each emitting a :class:`DeprecationWarning` and delegating to a
throwaway single-job session; their results are pinned equal to the
session path by the deprecation tests.
"""

from __future__ import annotations

import warnings

from repro.cluster import SimCluster
from repro.core.api import AsyncMapReduceSpec, BlockSpec
from repro.core.config import DriverConfig
from repro.core.loop import (
    AdaptiveSyncPolicy,
    BlockBackend,
    EngineBackend,
    IterationBackend,
    IterativeResult,
    RoundRecord,
)
from repro.core.session import Session
from repro.engine import MapReduceRuntime

__all__ = ["RoundRecord", "IterativeResult", "run_iterative_kv", "run_iterative_block"]


def _deprecated(old: str, *, stacklevel: int = 2) -> None:
    """Emit the shim deprecation warning, blaming the shim's caller.

    ``stacklevel`` counts from the *shim's* frame, exactly as if the
    shim itself called ``warnings.warn(..., stacklevel=2)``: the default
    of 2 attributes the warning to the line that called the shim — not
    to this helper and not to ``driver.py``.  The helper adds one level
    for its own frame.
    """
    warnings.warn(
        f"{old} is deprecated; submit the job to a "
        f"repro.core.session.Session instead (Session.submit)",
        DeprecationWarning, stacklevel=stacklevel + 1,
    )


def _run_single_job(backend: IterationBackend, config: DriverConfig, *,
                    sync_policy: "AdaptiveSyncPolicy | None") -> IterativeResult:
    """Run one backend through a throwaway single-job FIFO session."""
    session = Session(cluster=backend.cluster, policy="fifo")
    handle = session.submit(backend, config, sync_policy=sync_policy)
    session.run()
    return handle.result


def run_iterative_kv(
    spec: AsyncMapReduceSpec,
    config: DriverConfig,
    *,
    runtime: "MapReduceRuntime | None" = None,
    num_reducers: int = 8,
    eager_reduce: bool = False,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
) -> IterativeResult:
    """Run the two-level scheme on the real engine until convergence.

    .. deprecated::
        Use ``Session.submit`` with an
        :class:`~repro.core.loop.EngineBackend` (or an app ``*_spec``
        factory).  A default runtime is owned by the run and closed on
        return; a caller-supplied one is left open for reuse.
    """
    _deprecated("run_iterative_kv")
    backend = EngineBackend(spec, runtime=runtime, num_reducers=num_reducers,
                            eager_reduce=eager_reduce)
    return _run_single_job(backend, config, sync_policy=sync_policy)


def run_iterative_block(
    spec: BlockSpec,
    config: DriverConfig,
    *,
    cluster: "SimCluster | None" = None,
    num_reduce_tasks: "int | None" = None,
    sync_policy: "AdaptiveSyncPolicy | None" = None,
) -> IterativeResult:
    """Run a vectorised :class:`BlockSpec` until global convergence.

    .. deprecated::
        Use ``Session.submit`` with a
        :class:`~repro.core.loop.BlockBackend` (or an app ``*_spec``
        factory); the session charges every round through the audited
        per-job :class:`~repro.cluster.accountant.RoundAccountant`.
    """
    _deprecated("run_iterative_block")
    backend = BlockBackend(spec, cluster=cluster,
                           num_reduce_tasks=num_reduce_tasks)
    return _run_single_job(backend, config, sync_policy=sync_policy)
