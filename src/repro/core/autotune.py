"""Automatic map-granularity selection — §VIII "Optimal granularity for maps".

    "As shown in our work, as well as the results of others, the
    performance of a MapReduce program is a sensitive function of map
    granularity.  An automated technique, based on execution traces and
    sampling, can potentially deliver these performance increments
    without burdening the programmer with locality enhancing
    aggregations."

:func:`autotune_partitions` implements that technique for the block
driver: for each candidate partition count it *probes* a few global
iterations on the simulated cluster, measures the per-round cost and the
residual contraction rate from the execution trace, extrapolates the
total time-to-converge, and picks the cheapest candidate.  The probe
cost is a small fraction of a full sweep — the sampling idea of the
paper's citation [5].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster import SimCluster
from repro.core.api import BlockSpec
from repro.core.config import DriverConfig
from repro.core.loop import BlockBackend, IterationLoop

__all__ = ["ProbeResult", "AutotuneReport", "autotune_partitions"]


@dataclass(frozen=True)
class ProbeResult:
    """Measurements from probing one candidate partition count."""

    k: int
    probe_iters: int
    seconds_per_round: float
    contraction: float
    predicted_rounds: int
    predicted_seconds: float
    converged_during_probe: bool


@dataclass(frozen=True)
class AutotuneReport:
    """Outcome of the granularity search."""

    best_k: int
    probes: "tuple[ProbeResult, ...]"
    probe_seconds: float

    def ranking(self) -> "list[ProbeResult]":
        """Probes sorted by predicted total time (best first)."""
        return sorted(self.probes, key=lambda p: p.predicted_seconds)


def _estimate_contraction(residuals: Sequence[float]) -> float:
    """Geometric-mean per-round residual contraction from a probe run.

    The first residual is transient (it measures distance from the
    initial guess, not the iteration's asymptotic rate), so it is
    excluded when enough samples exist.
    """
    rs = [r for r in residuals if r > 0 and math.isfinite(r)]
    if len(rs) < 2:
        return 0.5  # no information: assume a moderate rate
    if len(rs) >= 3:
        rs = rs[1:]
    ratios = [b / a for a, b in zip(rs, rs[1:]) if a > 0]
    ratios = [min(r, 0.999) for r in ratios if r > 0]
    if not ratios:
        return 0.5
    log_mean = sum(math.log(r) for r in ratios) / len(ratios)
    return math.exp(log_mean)


def autotune_partitions(
    spec_factory: "Callable[[int], BlockSpec]",
    candidates: Sequence[int],
    *,
    target_residual: float = 1e-5,
    probe_iters: int = 3,
    config: "DriverConfig | None" = None,
    cluster_factory: "Callable[[], SimCluster] | None" = None,
) -> AutotuneReport:
    """Pick the partition count with the lowest predicted time-to-converge.

    Parameters
    ----------
    spec_factory:
        Builds a :class:`BlockSpec` for a given partition count (for the
        graph apps this typically partitions the graph and constructs
        the app spec).
    candidates:
        Partition counts to probe.
    target_residual:
        Residual at which the full run would stop; used to extrapolate
        the probe's contraction rate into a round count.
    probe_iters:
        Global iterations to execute per probe.
    config:
        Driver configuration for the probes (eager by default).
    cluster_factory:
        Builds a fresh simulated cluster per probe (defaults to the
        Table I testbed).

    Returns
    -------
    AutotuneReport
        Per-candidate measurements, the chosen count, and the total
        simulated probe cost.
    """
    if not candidates:
        raise ValueError("need at least one candidate partition count")
    if probe_iters < 2:
        raise ValueError("probe_iters must be >= 2 (rate estimation)")
    if target_residual <= 0:
        raise ValueError("target_residual must be > 0")
    base = config if config is not None else DriverConfig(mode="eager")
    if cluster_factory is None:
        cluster_factory = SimCluster

    probes: list[ProbeResult] = []
    total_probe_time = 0.0
    for k in candidates:
        spec = spec_factory(int(k))
        cluster = cluster_factory()
        probe_cfg = DriverConfig(
            mode=base.mode,
            max_global_iters=probe_iters,
            max_local_iters=base.max_local_iters,
            eager_schedule=base.eager_schedule,
            charge_local_ops_at=base.charge_local_ops_at,
            record_history=True,
            state_store=base.state_store,
            checkpoint_every=base.checkpoint_every,
        )
        res = IterationLoop(BlockBackend(spec, cluster=cluster),
                            probe_cfg).run()
        total_probe_time += res.sim_time
        per_round = res.sim_time / max(res.global_iters, 1)
        if res.converged:
            rounds = res.global_iters
            contraction = _estimate_contraction(res.residuals)
        else:
            contraction = _estimate_contraction(res.residuals)
            last = next((r for r in reversed(res.residuals)
                         if r > 0 and math.isfinite(r)), 1.0)
            if last <= target_residual:
                rounds = res.global_iters
            else:
                extra = math.log(target_residual / last) / math.log(contraction)
                rounds = res.global_iters + max(0, math.ceil(extra))
        probes.append(ProbeResult(
            k=int(k),
            probe_iters=res.global_iters,
            seconds_per_round=per_round,
            contraction=contraction,
            predicted_rounds=int(rounds),
            predicted_seconds=float(per_round * rounds),
            converged_during_probe=res.converged,
        ))

    best = min(probes, key=lambda p: p.predicted_seconds)
    return AutotuneReport(best_k=best.k, probes=tuple(probes),
                          probe_seconds=total_probe_time)
