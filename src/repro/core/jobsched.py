"""Multi-job scheduling: many iterative jobs, one shared cluster.

The paper's two-level scheme assumes a whole cluster per iterative job;
real clusters multiplex many.  The unified loop makes multiplexing
expressible: every job is an :class:`~repro.core.loop.IterationLoop`
stepped one global round at a time, so a scheduler can interleave the
``step`` calls of many jobs on one shared
:class:`~repro.cluster.SimCluster` clock.

:class:`SessionScheduler` drives all admitted jobs to convergence under
a pluggable :class:`SchedulingPolicy`:

* :class:`FifoPolicy` — Hadoop's default: strictly one job at a time,
  in priority-then-submission order, holding the whole cluster.
* :class:`RoundRobinPolicy` — time-slicing: jobs take turns, one global
  round per turn, each round on the full cluster.
* :class:`FairSharePolicy` — space-sharing, the Hadoop Fair Scheduler
  discipline: every unfinished job runs one round *concurrently* on an
  equal ``1/k`` share of the slots.

Concurrency on the single simulated timeline is modelled per scheduling
step: each job in the step's batch runs its round from the same start
clock (the clock is rewound between batch members), and the step
advances the shared clock by the *slowest* member's duration — exactly
the semantics of independent jobs running side by side.  Trace events
of concurrent rounds therefore overlap, and each lands under its own
job-prefixed label (see
:class:`~repro.cluster.accountant.RoundAccountant`).

Because jobs share nothing but the clock, a job's iterates, residuals
and local-iteration counts are identical to a solo run on a private
cluster — only the simulated timestamps differ (pinned by the
interleaving-invariance tests).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.accountant import RoundAccountant
    from repro.cluster.cluster import SimCluster
    from repro.core.loop import IterationLoop, IterativeResult

__all__ = [
    "RoundShare",
    "JobHandle",
    "SchedulingPolicy",
    "FifoPolicy",
    "RoundRobinPolicy",
    "FairSharePolicy",
    "POLICIES",
    "make_policy",
    "SessionScheduler",
]


@dataclass(frozen=True)
class RoundShare:
    """Contention record for one of a job's global rounds."""

    #: The job-local iteration index of the round.
    iteration: int
    #: Shared-cluster clock when the round began.
    start: float
    #: Clock after the round's own charges (before other batch members).
    end: float
    #: Fraction of the cluster's slots the job held for the round.
    slot_share: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


class JobHandle:
    """One submitted job: its loop, lifecycle, and contention metrics.

    Returned by :meth:`~repro.core.session.Session.submit`; the
    scheduler mutates it as rounds run.  All timestamps are shared
    simulated-cluster clock readings (0.0 without a cluster).

    Attributes
    ----------
    status:
        ``"queued"`` -> ``"running"`` -> ``"done"`` (or ``"failed"``).
    result:
        The job's own :class:`~repro.core.loop.IterativeResult` once
        ``status == "done"`` (``sim_time`` there is the job's *busy*
        seconds, not wall-clock on the shared timeline).
    round_shares:
        One :class:`RoundShare` per executed round — the slot share the
        scheduler granted and when the round ran.
    accountant:
        The job's private :class:`~repro.cluster.accountant.RoundAccountant`
        over the shared cluster; ``accountant.charged`` is the audited
        per-job cost split.
    """

    def __init__(self, *, job_id: int, name: str, priority: int,
                 loop: "IterationLoop", accountant: "RoundAccountant",
                 submitted_at: float) -> None:
        self.job_id = job_id
        self.name = name
        self.priority = priority
        self.loop = loop
        self.accountant = accountant
        self.submitted_at = submitted_at
        self.status = "queued"
        self.started_at: "float | None" = None
        self.finished_at: "float | None" = None
        self.result: "IterativeResult | None" = None
        self.round_shares: "list[RoundShare]" = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"JobHandle(id={self.job_id}, name={self.name!r}, "
                f"status={self.status!r}, rounds={self.rounds})")

    # -- lifecycle ------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def rounds(self) -> int:
        """Global rounds executed so far."""
        return self.loop.global_iters

    # -- contention metrics --------------------------------------------
    @property
    def queue_wait(self) -> float:
        """Simulated seconds between submission and the first round."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def busy_seconds(self) -> float:
        """Simulated seconds this job's own rounds took."""
        return sum(r.seconds for r in self.round_shares)

    @property
    def makespan(self) -> float:
        """Submission-to-completion span on the shared timeline."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    @property
    def slot_shares(self) -> "list[float]":
        """Slot share granted per round (the contention profile)."""
        return [r.slot_share for r in self.round_shares]

    @property
    def charged_seconds(self) -> float:
        """Audited per-job charge total from the job's accountant."""
        return self.accountant.charged


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------

class SchedulingPolicy(abc.ABC):
    """Decides, each scheduling step, which jobs run one round and on
    what fraction of the cluster's slots."""

    name: str = "?"

    @abc.abstractmethod
    def next_batch(self, pending: "Sequence[JobHandle]") -> "list[JobHandle]":
        """Jobs that run one global round each this step, concurrently.

        ``pending`` holds every admitted-but-unfinished job.  Returning
        more than one job space-shares the cluster for the step;
        returning one time-slices it; returning ``[]`` stops the
        scheduler (only meaningful when ``pending`` is empty).
        """

    def slot_share(self, batch_size: int) -> float:
        """Slot fraction granted to each job of a batch (default: all)."""
        return 1.0


def _submission_order(jobs: "Sequence[JobHandle]") -> "list[JobHandle]":
    """Priority first (higher runs earlier), then submission order."""
    return sorted(jobs, key=lambda j: (-j.priority, j.job_id))


class FifoPolicy(SchedulingPolicy):
    """One job at a time, to convergence, in priority/submission order."""

    name = "fifo"

    def next_batch(self, pending):
        ordered = _submission_order(pending)
        return ordered[:1]


class RoundRobinPolicy(SchedulingPolicy):
    """Time-slicing: pending jobs take turns, one round per turn."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last_id = -1

    def next_batch(self, pending):
        if not pending:
            return []
        by_id = sorted(pending, key=lambda j: j.job_id)
        nxt = next((j for j in by_id if j.job_id > self._last_id), by_id[0])
        self._last_id = nxt.job_id
        return [nxt]


class FairSharePolicy(SchedulingPolicy):
    """Space-sharing: every pending job runs concurrently on ``1/k`` of
    the slots (the Hadoop Fair Scheduler discipline).  Shares grow as
    jobs finish and leave the cluster."""

    name = "fair"

    def next_batch(self, pending):
        return _submission_order(pending)

    def slot_share(self, batch_size: int) -> float:
        return 1.0 / max(1, batch_size)


POLICIES = {
    "fifo": FifoPolicy,
    "rr": RoundRobinPolicy,
    "round-robin": RoundRobinPolicy,
    "fair": FairSharePolicy,
    "fair-share": FairSharePolicy,
}


def make_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy name (``fifo`` / ``rr`` / ``fair``) or pass an
    instance through."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; "
            f"expected one of {sorted(set(POLICIES))}"
        ) from None


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------

class SessionScheduler:
    """Drives admitted jobs to convergence by interleaving their rounds.

    One scheduling :meth:`step`: ask the policy for a batch, run one
    global round of every batch member from the same start clock on the
    policy's slot share, then advance the shared clock by the slowest
    member (concurrent semantics).  :meth:`run` steps until no job is
    pending.

    The scheduler owns no cluster or runtime — the
    :class:`~repro.core.session.Session` facade does; this class only
    needs the cluster's clock to rewind/advance between batch members.
    """

    def __init__(self, policy: "str | SchedulingPolicy" = "fifo",
                 cluster: "SimCluster | None" = None) -> None:
        self.policy = make_policy(policy)
        self.cluster = cluster
        self.jobs: "list[JobHandle]" = []

    # -- admission ------------------------------------------------------
    def admit(self, handle: JobHandle) -> JobHandle:
        self.jobs.append(handle)
        return handle

    @property
    def pending(self) -> "list[JobHandle]":
        """Admitted jobs that still have rounds to run."""
        return [j for j in self.jobs if j.status in ("queued", "running")]

    # -- clock plumbing -------------------------------------------------
    @property
    def clock(self) -> float:
        """Current shared simulated time (0.0 without a cluster)."""
        return self.cluster.clock if self.cluster is not None else 0.0

    def _clock(self) -> float:
        return self.clock

    def _set_clock(self, value: float) -> None:
        if self.cluster is not None:
            self.cluster.clock = value

    # -- driving --------------------------------------------------------
    def step(self) -> bool:
        """Run one scheduling step; returns False when nothing is left."""
        pending = self.pending
        if not pending:
            return False
        batch = self.policy.next_batch(pending)
        if not batch:
            return False
        share = self.policy.slot_share(len(batch))
        start = self._clock()
        durations = []
        for job in batch:
            self._set_clock(start)
            self._run_one_round(job, share, start)
            durations.append(self._clock() - start)
        # Concurrent batch: the step costs its slowest member.
        self._set_clock(start + max(durations))
        return True

    def _run_one_round(self, job: JobHandle, share: float,
                       start: float) -> None:
        loop = job.loop
        try:
            if not loop.started:
                loop.start()
                job.status = "running"
                job.started_at = start
            job.accountant.slot_share = share
            loop.step()
            end = self._clock()
            job.round_shares.append(RoundShare(
                iteration=loop.global_iters - 1, start=start, end=end,
                slot_share=share))
            if loop.finished:
                job.result = loop.finish()
                job.status = "done"
                job.finished_at = end
        except BaseException:
            job.status = "failed"
            loop.close()
            raise

    def run(self) -> "list[JobHandle]":
        """Step until every admitted job has finished."""
        while self.step():
            pass
        return list(self.jobs)

    # -- aggregate metrics ---------------------------------------------
    @property
    def finished_jobs(self) -> "list[JobHandle]":
        return [j for j in self.jobs if j.done]

    def makespan(self) -> float:
        """First submission to last completion on the shared timeline."""
        done = self.finished_jobs
        if not done:
            return 0.0
        return (max(j.finished_at for j in done)
                - min(j.submitted_at for j in done))

    def mean_latency(self) -> float:
        """Mean submission-to-completion latency over finished jobs."""
        done = self.finished_jobs
        if not done:
            return 0.0
        return sum(j.makespan for j in done) / len(done)
