"""Configuration for the iterative partial-synchronization driver.

``DriverConfig.state_store`` selects where inter-round state
round-trips (§VIII).  It accepts a
:class:`~repro.cluster.statestore.StateStore` instance, a zero-argument
factory returning one, or — as the legacy spelling — the strings
``"dfs"`` / ``"online"``, which map to the charge-equivalent backends
(:class:`~repro.cluster.statestore.DFSStateStore`, single-tablet
:class:`~repro.cluster.statestore.OnlineStateStore`).  The ``"online"``
string warns once per process; pass an ``OnlineStateStore`` directly to
choose the tablet count and get the partitioned hot-tablet behaviour.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Union

from repro.cluster.cluster import SpeculationConfig
from repro.cluster.statestore import StateStore

__all__ = ["DriverConfig", "GENERAL", "EAGER"]

_MODES = ("general", "eager")
_RATES = ("map", "local")
_LINT_MODES = ("off", "warn", "strict")

#: Process-wide flag so the legacy ``state_store="online"`` string warns
#: exactly once (mirrors the ``run_iterative_*`` shim pattern).
_WARNED_ONLINE_STRING = False


def _warn_online_string() -> None:
    global _WARNED_ONLINE_STRING
    if _WARNED_ONLINE_STRING:
        return
    _WARNED_ONLINE_STRING = True
    warnings.warn(
        "DriverConfig(state_store='online') is deprecated; pass a "
        "repro.cluster.statestore.OnlineStateStore instance (or factory) "
        "to choose the tablet count — the string maps to a single-tablet "
        "store for charge compatibility",
        DeprecationWarning, stacklevel=4,
    )


@dataclass(frozen=True)
class DriverConfig:
    """Knobs of one iterative run.

    Attributes
    ----------
    mode:
        ``"general"`` — the paper's baseline: one map+reduce per global
        iteration, maps operating on complete partitions (§V-B.1).
        ``"eager"`` — the paper's contribution: local map/reduce
        iterations run to local convergence inside each gmap before the
        global synchronization (§V-B.2).
    max_global_iters:
        Safety bound on global iterations.
    max_local_iters:
        Bound on local iterations within one gmap (eager mode only; the
        general baseline always performs exactly one local step).
    eager_schedule:
        When True (the paper's setting) a partition's next local
        iteration is scheduled as soon as its local reduce finishes, so
        a whole gmap is one schedulable task and load imbalance between
        partitions is smoothed.  When False, local iterations run in
        lockstep across partitions (a barrier per local round) — the
        ablation that isolates eager scheduling's contribution.
    charge_local_ops_at:
        ``"local"`` (default, faithful to the paper's implementation)
        charges local-iteration operations at the in-memory rate: local
        map/reduce runs over a hashtable inside the gmap's JVM (§V-A),
        with none of the per-record serialisation/framework envelope a
        real map invocation pays.  ``"map"`` prices every local op at
        the full per-record map rate instead — the pessimistic
        sensitivity setting for the cost-model ablations.  Either way
        the *operation counts* are measured, honouring the paper's
        "serial operation counts are higher" accounting.
    record_history:
        Keep per-iteration records (residuals, iteration counts, times).
    state_store:
        Where inter-iteration state round-trips (§VIII) — a
        :class:`~repro.cluster.statestore.StateStore` instance, a
        zero-argument factory returning one, or a legacy string.
        Backends charge **per-partition** state bytes through the
        store: :class:`~repro.cluster.statestore.DFSStateStore` is
        Hadoop's behaviour (one replicated DFS file of the aggregate,
        durable by construction);
        :class:`~repro.cluster.statestore.OnlineStateStore` is the
        Bigtable-like store the paper's future-work section proposes —
        key-range-sharded tablets served in parallel, a round costing
        its hottest tablet, cheap per iteration but needing periodic
        checkpoints for fault tolerance.  Passing one *instance* to
        several jobs of a session makes them contend on the same
        tablets.  The strings ``"dfs"`` / ``"online"`` remain for
        compatibility and map to the charge-equivalent backends
        (``"online"`` = one tablet; warns once per process).
    checkpoint_every:
        With a non-durable store (the online store): take a full DFS
        checkpoint of the state every this many global iterations
        (``None`` disables — fast but unrecoverable, the
        unresolved-fault-tolerance configuration the paper warns
        about).  Ignored for the DFS store, which is durable by
        construction.  Must be a positive integer or ``None``; zero and
        negative values are rejected at construction rather than
        surfacing as a modulo error deep in the accountant.
    lint:
        Default :mod:`repro.analysis` lint mode for jobs submitted with
        this config: ``"off"`` (skip), ``"warn"`` (one
        :class:`~repro.analysis.LintWarning` per finding), ``"strict"``
        (raise :class:`~repro.analysis.LintError` on error-severity
        findings before any task runs).
    speculate:
        Speculative re-execution of straggling tasks (Hadoop's backup
        tasks, LATE-style).  ``False`` (default) disables; ``True``
        enables with :class:`~repro.cluster.SpeculationConfig` defaults;
        a :class:`~repro.cluster.SpeculationConfig` instance tunes the
        threshold/percentile.  Every phase the accountant schedules —
        and, in the engine backend, real task execution — launches
        backup copies of tasks running past the LATE threshold and takes
        the first result.
    """

    mode: str = "eager"
    max_global_iters: int = 500
    max_local_iters: int = 200
    eager_schedule: bool = True
    charge_local_ops_at: str = "local"
    record_history: bool = True
    state_store: "Union[str, StateStore, Callable[[], StateStore]]" = "dfs"
    checkpoint_every: "int | None" = 10
    #: Default lint mode for jobs submitted with this config
    #: (:mod:`repro.analysis`): ``"off"`` / ``"warn"`` / ``"strict"``.
    #: ``Session.submit(lint=...)`` overrides per submission.
    lint: str = "off"
    #: Speculative re-execution of stragglers: ``False`` / ``True`` /
    #: a :class:`~repro.cluster.SpeculationConfig`.
    speculate: "Union[bool, SpeculationConfig]" = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.lint not in _LINT_MODES:
            raise ValueError(
                f"lint must be one of {_LINT_MODES}, got {self.lint!r}")
        if self.max_global_iters < 1:
            raise ValueError("max_global_iters must be >= 1")
        if self.max_local_iters < 1:
            raise ValueError("max_local_iters must be >= 1")
        if self.charge_local_ops_at not in _RATES:
            raise ValueError(
                f"charge_local_ops_at must be one of {_RATES}, "
                f"got {self.charge_local_ops_at!r}"
            )
        if isinstance(self.state_store, str):
            if self.state_store not in ("dfs", "online"):
                raise ValueError(
                    f"state_store must be 'dfs', 'online', a StateStore "
                    f"instance or a factory, got {self.state_store!r}"
                )
            if self.state_store == "online":
                _warn_online_string()
        elif not (isinstance(self.state_store, StateStore)
                  or callable(self.state_store)):
            raise ValueError(
                f"state_store must be 'dfs', 'online', a StateStore "
                f"instance or a factory, got {self.state_store!r}"
            )
        if self.checkpoint_every is not None:
            if (not isinstance(self.checkpoint_every, int)
                    or isinstance(self.checkpoint_every, bool)):
                raise ValueError(
                    f"checkpoint_every must be a positive int or None, "
                    f"got {self.checkpoint_every!r}"
                )
            if self.checkpoint_every <= 0:
                raise ValueError(
                    "checkpoint_every must be >= 1 "
                    "(pass checkpoint_every=None to disable checkpointing)"
                )
        if not isinstance(self.speculate, (bool, SpeculationConfig)):
            raise ValueError(
                f"speculate must be a bool or a SpeculationConfig, "
                f"got {self.speculate!r}"
            )

    @property
    def effective_local_iters(self) -> int:
        """Local iterations allowed per gmap under this mode."""
        return 1 if self.mode == "general" else self.max_local_iters


#: The paper's baseline configuration.
GENERAL = DriverConfig(mode="general")
#: The paper's partial-synchronization + eager-scheduling configuration.
EAGER = DriverConfig(mode="eager")
