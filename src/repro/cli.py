"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro pagerank --graph A --scale 0.01 -k 8 --mode eager
    python -m repro sssp     --graph A --scale 0.01 -k 8 --source 0
    python -m repro kmeans   --rows 20000 --clusters 8 --threshold 0.01
    python -m repro schedule --jobs pagerank,kmeans,sssp --policy fair
    python -m repro sweep    --figure 2            # any of 2..9
    python -m repro autotune --graph A --scale 0.01 --candidates 2,8,32
    python -m repro lint     src/repro/apps examples --strict

``schedule`` multiplexes several heterogeneous iterative jobs onto ONE
shared simulated cluster through the Session API
(:mod:`repro.core.session`) under a chosen scheduling policy (FIFO /
round-robin / fair-share) and reports per-job contention metrics.  The
single-job subcommands accept ``--adaptive-sync`` to retune the
local-iteration budget per round
(:class:`~repro.core.AdaptiveSyncPolicy`).

Every subcommand prints an ASCII report (the same tables the benchmark
suite produces) and exits non-zero on failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Asynchronous Algorithms in MapReduce' "
                    "(Kambatla et al., CLUSTER 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--graph", choices=["A", "B"], default="A",
                       help="Table II input graph")
        p.add_argument("--scale", type=float, default=0.01,
                       help="fraction of the paper's node count")
        p.add_argument("-k", "--partitions", type=int, default=8,
                       help="number of partitions")
        p.add_argument("--partitioner", default="multilevel",
                       help="partitioner: multilevel/bfs/chunk/hash/random")
        p.add_argument("--seed", type=int, default=0)

    def add_adaptive_sync(p: argparse.ArgumentParser) -> None:
        p.add_argument("--adaptive-sync", action="store_true",
                       help="retune the local-iteration budget per round "
                            "(AdaptiveSyncPolicy) instead of the paper's "
                            "fixed budget")

    def add_speculate(p: argparse.ArgumentParser) -> None:
        p.add_argument("--speculate", action="store_true",
                       help="speculatively re-execute straggling tasks "
                            "(LATE-style backup copies; first result wins)")

    def add_async_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=["block", "async"],
                       default="block",
                       help="iteration backend: the barrier-per-round block "
                            "path, or the no-barrier async backend "
                            "(bounded-staleness tablet publish/consume)")
        p.add_argument("--staleness", default="0", metavar="N",
                       help="staleness bound for the async backend: 0 = "
                            "barrier semantics, N = reads may lag N rounds, "
                            "'none'/'inf' = unbounded chaotic iteration "
                            "(a nonzero bound implies --backend async)")

    p_pr = sub.add_parser("pagerank", help="PageRank (Figs 2-5 workload)")
    add_graph_args(p_pr)
    p_pr.add_argument("--mode", choices=["general", "eager", "both"],
                      default="both")
    p_pr.add_argument("--damping", type=float, default=0.85)
    p_pr.add_argument("--tol", type=float, default=1e-5)
    add_adaptive_sync(p_pr)
    add_async_args(p_pr)
    add_speculate(p_pr)

    p_sp = sub.add_parser("sssp", help="Shortest path (Figs 6-7 workload)")
    add_graph_args(p_sp)
    p_sp.add_argument("--mode", choices=["general", "eager", "both"],
                      default="both")
    p_sp.add_argument("--source", type=int, default=0)
    add_adaptive_sync(p_sp)
    add_async_args(p_sp)
    add_speculate(p_sp)

    p_jc = sub.add_parser(
        "jacobi",
        help="block-Jacobi linear solve (the §VI generality workload)")
    add_graph_args(p_jc)
    p_jc.add_argument("--mode", choices=["general", "eager", "both"],
                      default="both")
    p_jc.add_argument("--tol", type=float, default=1e-8)
    p_jc.add_argument("--dominance", type=float, default=1.5,
                      help="diagonal dominance factor of the generated "
                           "system (must be > 1)")
    add_async_args(p_jc)
    add_speculate(p_jc)

    p_km = sub.add_parser("kmeans", help="K-Means (Figs 8-9 workload)")
    p_km.add_argument("--rows", type=int, default=20_000)
    p_km.add_argument("--clusters", type=int, default=8)
    p_km.add_argument("--threshold", type=float, default=0.01)
    p_km.add_argument("-k", "--partitions", type=int, default=52)
    p_km.add_argument("--mode", choices=["general", "eager", "both"],
                      default="both")
    p_km.add_argument("--seed", type=int, default=0)
    add_adaptive_sync(p_km)
    add_speculate(p_km)

    p_sc = sub.add_parser(
        "schedule",
        help="run several jobs on ONE shared cluster (Session API)")
    add_graph_args(p_sc)
    p_sc.add_argument("--jobs", default="pagerank,kmeans,sssp",
                      help="comma-separated job mix; any of "
                           "pagerank/sssp/kmeans/components, repeatable "
                           "(e.g. pagerank,pagerank,kmeans)")
    p_sc.add_argument("--policy", choices=["fifo", "rr", "fair"],
                      default="fair",
                      help="scheduling policy: fifo (one job at a time), "
                           "rr (round-robin time-slicing), fair "
                           "(fair-share slot split)")
    p_sc.add_argument("--mode", choices=["general", "eager"],
                      default="eager")
    p_sc.add_argument("--rows", type=int, default=5_000,
                      help="points for the kmeans job")
    p_sc.add_argument("--clusters", type=int, default=8,
                      help="centroids for the kmeans job")
    p_sc.add_argument("--state-store", choices=["dfs", "online"],
                      default="dfs",
                      help="inter-round state store ALL jobs share: the "
                           "replicated DFS, or the Bigtable-like online "
                           "store (tablet-sharded; see --tablets)")
    p_sc.add_argument("--tablets", type=int, default=8,
                      help="tablet count of the shared online store "
                           "(--state-store online)")
    p_sc.add_argument("--backend", choices=["block", "async"],
                      default="block",
                      help="backend for the jobs that support no-barrier "
                           "iteration (pagerank/sssp); others stay on the "
                           "block path")
    p_sc.add_argument("--staleness", default="0", metavar="N",
                      help="staleness bound for --backend async: 0, N, or "
                           "'none'/'inf' (needs --state-store online)")
    p_sc.add_argument("--split-threshold", type=float, default=None,
                      metavar="BYTES",
                      help="auto-split a tablet of the shared online store "
                           "once its cumulative bytes cross this threshold "
                           "(--state-store online; default: no splitting)")
    p_sc.add_argument("--merge-threshold", type=float, default=None,
                      metavar="BYTES",
                      help="merge adjacent tablets of the shared online "
                           "store while their combined cumulative bytes "
                           "stay under this threshold (--state-store "
                           "online; default: no merging)")
    p_sc.add_argument("--kill-node", type=int, default=None, metavar="N",
                      help="kill worker node N mid-run (correlated-failure "
                           "injection; see --kill-round/--kill-at)")
    p_sc.add_argument("--kill-rack", type=int, default=None, metavar="R",
                      help="kill every node of rack R mid-run (mutually "
                           "exclusive with --kill-node)")
    p_sc.add_argument("--kill-round", type=int, default=0, metavar="I",
                      help="global iteration the kill fires in (default 0)")
    p_sc.add_argument("--kill-at", type=float, default=0.0, metavar="S",
                      help="simulated seconds into the kill round the "
                           "domain dies (default 0.0)")
    p_sc.add_argument("--heartbeat", type=float, default=3.0, metavar="S",
                      help="heartbeat interval pricing death *detection* "
                           "latency (default 3.0 simulated s)")
    add_speculate(p_sc)

    p_sw = sub.add_parser("sweep", help="regenerate one figure's sweep")
    p_sw.add_argument("--figure", type=int, required=True,
                      choices=[2, 3, 4, 5, 6, 7, 8, 9])
    p_sw.add_argument("--scale", type=float, default=None,
                      help="override REPRO_SCALE for this run")

    p_at = sub.add_parser("autotune",
                          help="pick the partition count (§VIII granularity)")
    add_graph_args(p_at)
    p_at.add_argument("--candidates", default="2,4,8,16,32",
                      help="comma-separated partition counts to probe")
    p_at.add_argument("--probe-iters", type=int, default=3)

    p_li = sub.add_parser(
        "lint",
        help="statically check job functions (repro.analysis rule catalog)")
    p_li.add_argument("targets", nargs="+", metavar="TARGET",
                      help="a .py file, a directory, a dotted module "
                           "(repro.apps.pagerank), or a bundled app name "
                           "(pagerank)")
    p_li.add_argument("--format", choices=["text", "json"], default="text",
                      dest="fmt", help="finding output format")
    p_li.add_argument("--strict", action="store_true",
                      help="fail (exit 1) on warning-severity findings too, "
                           "not only errors")

    return parser


def _load_graph(args, *, weighted: bool = False):
    from repro.graph import attach_random_weights, make_paper_graph, partition_graph

    g = make_paper_graph(args.graph, scale=args.scale, seed=args.seed)
    if weighted:
        g = attach_random_weights(g, seed=args.seed + 1)
    part = partition_graph(g, args.partitions, method=args.partitioner,
                           seed=args.seed)
    return g, part


def _modes(arg: str) -> "list[str]":
    return ["general", "eager"] if arg == "both" else [arg]


def _report(title: str, rows: "list[list]") -> None:
    from repro.util import ascii_table

    print(ascii_table(["mode", "global iters", "simulated time (s)",
                       "converged"], rows, title=title))


def _sync_policy(args):
    """Build the per-run AdaptiveSyncPolicy when --adaptive-sync is set."""
    if not getattr(args, "adaptive_sync", False):
        return None
    from repro.core import AdaptiveSyncPolicy

    return AdaptiveSyncPolicy()


def _parse_staleness(value: str) -> "int | None":
    """``--staleness`` values: 'none'/'inf' -> unbounded, else int >= 0."""
    v = str(value).strip().lower()
    if v in ("none", "inf", "unbounded"):
        return None
    try:
        n = int(v)
    except ValueError:
        raise ValueError(
            f"--staleness must be an integer >= 0 or 'none'/'inf', "
            f"got {value!r}") from None
    if n < 0:
        raise ValueError(
            f"--staleness must be >= 0 (or 'none'/'inf' for unbounded "
            f"chaotic iteration), got {n}")
    return n


def _async_args(args, mode: str):
    """Resolve (backend, staleness, config) for a single-job subcommand.

    Nonzero staleness needs the online tablet store for its continuous
    publish/consume path, so the async configurations get
    ``state_store="online"`` in place of the default DFS.
    ``--speculate`` also forces an explicit config (the default one has
    speculation off).
    """
    from repro.core import DriverConfig

    staleness = _parse_staleness(args.staleness)
    speculate = bool(getattr(args, "speculate", False))
    use_async = args.backend == "async" or staleness != 0
    cfg = None
    if use_async:
        cfg = DriverConfig(mode=mode, state_store="online",
                           speculate=speculate)
    elif speculate:
        cfg = DriverConfig(mode=mode, speculate=True)
    return args.backend, staleness, cfg


def _cmd_pagerank(args) -> int:
    from repro.apps import pagerank
    from repro.cluster import SimCluster

    g, part = _load_graph(args)
    rows = []
    for mode in _modes(args.mode):
        backend, staleness, cfg = _async_args(args, mode)
        res = pagerank(g, part, mode=mode, damping=args.damping, tol=args.tol,
                       cluster=SimCluster(), sync_policy=_sync_policy(args),
                       backend=backend, staleness=staleness, config=cfg)
        rows.append([mode, res.global_iters, f"{res.sim_time:,.0f}",
                     "yes" if res.converged else "no"])
    _report(f"PageRank on Graph {args.graph} "
            f"({g.num_nodes} nodes, {args.partitions} partitions)", rows)
    return 0


def _cmd_sssp(args) -> int:
    from repro.apps import sssp
    from repro.cluster import SimCluster

    g, part = _load_graph(args, weighted=True)
    rows = []
    for mode in _modes(args.mode):
        backend, staleness, cfg = _async_args(args, mode)
        res = sssp(g, part, source=args.source, mode=mode, cluster=SimCluster(),
                   sync_policy=_sync_policy(args),
                   backend=backend, staleness=staleness, config=cfg)
        rows.append([mode, res.global_iters, f"{res.sim_time:,.0f}",
                     "yes" if res.converged else "no"])
    _report(f"SSSP on Graph {args.graph} from source {args.source}", rows)
    return 0


def _cmd_jacobi(args) -> int:
    from repro.apps import jacobi_solve, make_diagonally_dominant_system
    from repro.cluster import SimCluster

    g, part = _load_graph(args)
    system = make_diagonally_dominant_system(part, dominance=args.dominance,
                                             seed=args.seed)
    rows = []
    for mode in _modes(args.mode):
        backend, staleness, cfg = _async_args(args, mode)
        res = jacobi_solve(system, part, mode=mode, tol=args.tol,
                           cluster=SimCluster(),
                           backend=backend, staleness=staleness, config=cfg)
        rows.append([mode, res.global_iters, f"{res.sim_time:,.0f}",
                     "yes" if res.converged else "no"])
        print(f"  {mode} ||Ax - b||_inf: {res.residual_norm:.3e}")
    _report(f"Jacobi solve on Graph {args.graph}'s sparsity "
            f"({g.num_nodes} unknowns, {args.partitions} partitions)", rows)
    return 0


def _cmd_kmeans(args) -> int:
    from repro.apps import kmeans, sse
    from repro.cluster import SimCluster
    from repro.data import census_sample

    pts = census_sample(args.rows, seed=args.seed)
    rows = []
    for mode in _modes(args.mode):
        cfg = None
        if args.speculate:
            from repro.core import DriverConfig

            cfg = DriverConfig(mode=mode, speculate=True)
        res = kmeans(pts, args.clusters, mode=mode, threshold=args.threshold,
                     num_partitions=args.partitions, cluster=SimCluster(),
                     seed=args.seed, sync_policy=_sync_policy(args),
                     config=cfg)
        rows.append([mode, res.global_iters, f"{res.sim_time:,.0f}",
                     "yes" if res.converged else "no"])
        print(f"  {mode} SSE: {sse(pts, res.centroids):,.0f}")
    _report(f"K-Means on census sample ({args.rows} x 68, "
            f"k={args.clusters}, delta={args.threshold})", rows)
    return 0


def _cmd_schedule(args) -> int:
    from dataclasses import replace

    from repro.apps import (components_spec, kmeans_spec, pagerank_spec,
                            sssp_spec)
    from repro.cluster import DFSStateStore, OnlineStateStore, SimCluster
    from repro.core import Session
    from repro.engine import NodeFaultPlan
    from repro.data import census_sample
    from repro.graph import attach_random_weights
    from repro.util import ascii_table

    job_names = [j.strip() for j in args.jobs.split(",") if j.strip()]
    if not job_names:
        raise ValueError("--jobs must name at least one job")
    unknown = set(job_names) - {"pagerank", "sssp", "kmeans", "components"}
    if unknown:
        raise ValueError(f"unknown jobs: {sorted(unknown)} "
                         f"(expected pagerank/sssp/kmeans/components)")

    staleness = _parse_staleness(args.staleness)
    use_async = args.backend == "async" or staleness != 0
    if use_async and args.state_store != "online":
        raise ValueError("--backend async (or a nonzero --staleness) needs "
                         "--state-store online: no-barrier publish/consume "
                         "runs through the shared tablet store")

    g, part = _load_graph(args)
    wg = attach_random_weights(g, seed=args.seed + 1)

    def spec_for(job: str, idx: int):
        label = f"{job}#{idx}"
        if job == "pagerank":
            return pagerank_spec(g, part, mode=args.mode, name=label,
                                 backend=args.backend, staleness=staleness)
        if job == "sssp":
            return sssp_spec(wg, part, mode=args.mode, name=label,
                             backend=args.backend, staleness=staleness)
        if job == "components":
            return components_spec(g, part, mode=args.mode, name=label)
        pts = census_sample(args.rows, seed=args.seed)
        return kmeans_spec(pts, args.clusters, mode=args.mode,
                           num_partitions=args.partitions, seed=args.seed,
                           name=label)

    for flag, name in ((args.split_threshold, "--split-threshold"),
                       (args.merge_threshold, "--merge-threshold")):
        if flag is not None and args.state_store != "online":
            raise ValueError(f"{name} applies to the online store "
                             f"only; add --state-store online")
    if args.kill_node is not None and args.kill_rack is not None:
        raise ValueError("--kill-node and --kill-rack are mutually "
                         "exclusive (one failure domain per run)")
    node_faults = None
    if args.kill_node is not None:
        node_faults = NodeFaultPlan.kill_node(
            args.kill_node, round=args.kill_round, at_seconds=args.kill_at,
            heartbeat_seconds=args.heartbeat)
    elif args.kill_rack is not None:
        node_faults = NodeFaultPlan.kill_rack(
            args.kill_rack, round=args.kill_round, at_seconds=args.kill_at,
            heartbeat_seconds=args.heartbeat)

    # One store shared by every job: multi-job runs contend on the same
    # tablets (an --state-store online run reports the tablet skew).
    store = (OnlineStateStore(num_tablets=args.tablets,
                              split_threshold=args.split_threshold,
                              merge_threshold=args.merge_threshold)
             if args.state_store == "online" else DFSStateStore())
    with Session(cluster=SimCluster(node_faults=node_faults),
                 policy=args.policy, state_store=store) as session:
        handles = []
        for i, job in enumerate(job_names):
            spec = spec_for(job, i)
            if args.speculate:
                spec.config = replace(spec.config, speculate=True)
            handles.append(session.submit(spec))
        session.run()

        def spec_stats(h):
            hist = h.result.history
            return (sum(r.backups for r in hist),
                    sum(r.backups_won for r in hist),
                    sum(r.wasted_seconds for r in hist),
                    sum(r.tablet_splits for r in hist))

        rows = [
            [h.name, h.rounds, f"{h.queue_wait:,.0f}",
             f"{h.busy_seconds:,.0f}", f"{h.makespan:,.0f}",
             f"{min(h.slot_shares):.2f}-{max(h.slot_shares):.2f}",
             "yes" if h.result.converged else "no"]
            for h in handles
        ]
        print(ascii_table(
            ["job", "rounds", "queue wait (s)", "busy (s)", "makespan (s)",
             "slot share", "converged"],
            rows,
            title=f"Session schedule: {len(handles)} jobs on one shared "
                  f"cluster ({session.policy.name})"))
        print(f"cluster makespan: {session.makespan():,.0f} simulated s; "
              f"mean job latency: {session.mean_latency():,.0f} simulated s")
        if args.speculate or args.split_threshold is not None:
            srows = []
            for h in handles:
                backups, won, wasted, splits = spec_stats(h)
                srows.append([h.name, backups, won, f"{wasted:,.1f}", splits])
            print(ascii_table(
                ["job", "backups", "backups won", "wasted (s)",
                 "tablet splits"],
                srows, title="Speculation / auto-split"))
        if node_faults is not None:
            frows = []
            for h in handles:
                hist = h.result.history
                frows.append([
                    h.name,
                    sum(r.node_deaths for r in hist),
                    sum(r.lost_map_outputs for r in hist),
                    sum(r.rounds_replayed for r in hist),
                    f"{sum(r.recovery_seconds for r in hist):,.1f}",
                ])
            print(ascii_table(
                ["job", "node deaths", "lost map outputs",
                 "rounds replayed", "recovery (s)"],
                frows, title="Correlated-failure recovery"))
        if args.state_store == "online":
            print(f"shared online store: {store.num_tablets} tablets, "
                  f"hottest-tablet load {store.imbalance():.2f}x the mean, "
                  f"{len(store.split_events)} splits, "
                  f"{len(store.merge_events)} merges "
                  f"(tablet map v{store.tablet_map_version})")
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench import (kmeans_sweep, pagerank_sweep, report_sweep,
                             sssp_sweep)

    fig = args.figure
    if fig in (2, 4):
        result = pagerank_sweep("A", scale=args.scale)
    elif fig in (3, 5):
        result = pagerank_sweep("B", scale=args.scale)
    elif fig in (6, 7):
        result = sssp_sweep(scale=args.scale)
    else:
        result = kmeans_sweep()
    value = "iterations" if fig in (2, 3, 6, 8) else "sim_time"
    x_label = "threshold" if fig in (8, 9) else "#partitions"
    print(report_sweep(result, value=value, x_label=x_label,
                       title=f"Figure {fig}"))
    return 0


def _cmd_autotune(args) -> int:
    from repro.apps.pagerank import PageRankBlockSpec
    from repro.core import autotune_partitions
    from repro.graph import make_paper_graph, partition_graph
    from repro.util import ascii_table

    g = make_paper_graph(args.graph, scale=args.scale, seed=args.seed)
    candidates = [int(c) for c in args.candidates.split(",") if c.strip()]

    def factory(k: int):
        part = partition_graph(g, k, method=args.partitioner, seed=args.seed)
        return PageRankBlockSpec(g, part)

    report = autotune_partitions(factory, candidates,
                                 probe_iters=args.probe_iters)
    rows = [[p.k, p.probe_iters, f"{p.seconds_per_round:.1f}",
             f"{p.contraction:.2f}", p.predicted_rounds,
             f"{p.predicted_seconds:,.0f}"]
            for p in report.ranking()]
    print(ascii_table(
        ["k", "probe iters", "s/round", "contraction", "pred. rounds",
         "pred. total (s)"],
        rows, title=f"Autotune (Graph {args.graph}): best k = {report.best_k}"))
    print(f"probe cost: {report.probe_seconds:,.0f} simulated s")
    return 0


def _cmd_lint(args) -> int:
    """Static lint; exit 0 clean, 1 findings, 2 usage error.

    "Findings" for the exit code means error severity (``--strict``:
    warning severity too); informational notes — e.g. the RPR041
    columnar-eligibility explainer — never fail the run.  Unresolvable
    targets raise ``ValueError``, which :func:`main` maps to exit 2.
    """
    import json

    from repro.analysis import Severity, lint_targets

    findings = lint_targets(args.targets)
    if args.fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.format())
            print(f"    hint: {f.hint}")
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    failing = [f for f in findings if f.severity >= threshold]
    if args.fmt == "text":
        print(f"{len(findings)} finding(s), {len(failing)} at or above "
              f"{threshold} severity")
    return 1 if failing else 0


_COMMANDS = {
    "pagerank": _cmd_pagerank,
    "sssp": _cmd_sssp,
    "jacobi": _cmd_jacobi,
    "kmeans": _cmd_kmeans,
    "schedule": _cmd_schedule,
    "sweep": _cmd_sweep,
    "autotune": _cmd_autotune,
    "lint": _cmd_lint,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
