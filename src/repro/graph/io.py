"""Adjacency-list text I/O.

The paper's jobs consume "a graph represented as adjacency lists as
input" (§V-B).  We support the conventional whitespace format::

    <src> <dst1>[:w1] <dst2>[:w2] ...

one line per source node (sources with no out-edges may be omitted or
listed with no destinations).  Weights default to 1.0 when the ``:w``
suffix is absent.  Comment lines start with ``#``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO

from repro.graph.digraph import DiGraph

__all__ = ["write_adjacency", "read_adjacency", "dumps_adjacency", "loads_adjacency"]


def write_adjacency(graph: DiGraph, path: "str | Path | IO[str]") -> None:
    """Write ``graph`` in adjacency-list text format."""
    if hasattr(path, "write"):
        _write(graph, path)  # type: ignore[arg-type]
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _write(graph, fh)


def _write(graph: DiGraph, fh: IO[str]) -> None:
    fh.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
    for u in range(graph.num_nodes):
        nbrs = graph.successors(u)
        ws = graph.out_weights(u)
        if len(nbrs) == 0:
            fh.write(f"{u}\n")
            continue
        cells = " ".join(
            f"{int(v)}" if w == 1.0 else f"{int(v)}:{float(w)!r}"
            for v, w in zip(nbrs, ws)
        )
        fh.write(f"{u} {cells}\n")


def read_adjacency(path: "str | Path | IO[str]") -> DiGraph:
    """Read a graph written by :func:`write_adjacency` (or compatible)."""
    if hasattr(path, "read"):
        return _read(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def _read(fh: IO[str]) -> DiGraph:
    num_nodes = -1
    src: list[int] = []
    dst: list[int] = []
    w: list[float] = []
    max_node = -1
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            # Honour the size header when present so isolated trailing
            # nodes survive a round trip.
            for tok in line[1:].split():
                if tok.startswith("nodes="):
                    num_nodes = int(tok[len("nodes="):])
            continue
        toks = line.split()
        try:
            u = int(toks[0])
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad source node {toks[0]!r}") from exc
        max_node = max(max_node, u)
        for cell in toks[1:]:
            if ":" in cell:
                v_s, w_s = cell.split(":", 1)
                v, wt = int(v_s), float(w_s)
            else:
                v, wt = int(cell), 1.0
            src.append(u)
            dst.append(v)
            w.append(wt)
            max_node = max(max_node, v)
    n = num_nodes if num_nodes >= 0 else max_node + 1
    return DiGraph(n, src, dst, w)


def dumps_adjacency(graph: DiGraph) -> str:
    """Serialise to an adjacency-list string."""
    buf = io.StringIO()
    _write(graph, buf)
    return buf.getvalue()


def loads_adjacency(text: str) -> DiGraph:
    """Parse a graph from an adjacency-list string."""
    return _read(io.StringIO(text))
