"""Graph traversal utilities: BFS orders, hop distances, reachability.

Support routines for the substrate: the SSSP tests bound Bellman-Ford
round counts with hop distances, the Table II report quotes diameter
estimates, and the partitioners/examples use BFS orders.  All are
CSR-vectorised level-synchronous implementations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "bfs_levels",
    "bfs_order",
    "reachable_from",
    "hop_diameter_estimate",
    "weakly_connected",
]


def bfs_levels(graph: DiGraph, source: int, *,
               undirected: bool = False) -> np.ndarray:
    """Hop distance from ``source`` to every node (-1 if unreachable).

    Level-synchronous BFS over the out-CSR (or the symmetrised view when
    ``undirected``).
    """
    if not 0 <= source < graph.num_nodes:
        raise IndexError(f"source {source} out of range")
    if undirected:
        ptr, nbr, _ = graph.undirected_csr()
    else:
        ptr, nbr = graph.out_ptr, graph.out_dst
    n = graph.num_nodes
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        depth += 1
        # gather all successors of the frontier
        counts = ptr[frontier + 1] - ptr[frontier]
        if counts.sum() == 0:
            break
        nxt = np.concatenate([nbr[ptr[u]: ptr[u + 1]] for u in frontier])
        nxt = np.unique(nxt)
        nxt = nxt[level[nxt] == -1]
        level[nxt] = depth
        frontier = nxt
    return level


def bfs_order(graph: DiGraph, source: int = 0, *,
              undirected: bool = True) -> np.ndarray:
    """All nodes in BFS visitation order, restarting from unvisited seeds.

    Every node appears exactly once; seeds are taken in increasing id
    order, so the output is deterministic.
    """
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    if not 0 <= source < graph.num_nodes:
        raise IndexError(f"source {source} out of range")
    if undirected:
        ptr, nbr, _ = graph.undirected_csr()
    else:
        ptr, nbr = graph.out_ptr, graph.out_dst
    n = graph.num_nodes
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    from collections import deque

    seeds = [source] + [u for u in range(n) if u != source]
    queue: deque[int] = deque()
    for s in seeds:
        if seen[s]:
            continue
        seen[s] = True
        queue.append(s)
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            for v in nbr[ptr[u]: ptr[u + 1]]:
                if not seen[v]:
                    seen[v] = True
                    queue.append(int(v))
    assert pos == n
    return order


def reachable_from(graph: DiGraph, source: int) -> np.ndarray:
    """Boolean mask of nodes reachable from ``source`` along directed edges."""
    return bfs_levels(graph, source) >= 0


def hop_diameter_estimate(graph: DiGraph, *, samples: int = 8,
                          seed: "int | np.random.Generator | None" = 0) -> int:
    """Lower-bound estimate of the directed hop diameter by sampling.

    Runs BFS from ``samples`` random sources and returns the largest
    finite eccentricity observed.  Exact diameters are O(nm); for the
    reports a sampled bound is the conventional compromise.
    """
    from repro.util import as_rng

    if graph.num_nodes == 0:
        return 0
    rng = as_rng(seed)
    sources = rng.choice(graph.num_nodes,
                         size=min(samples, graph.num_nodes), replace=False)
    best = 0
    for s in sources:
        levels = bfs_levels(graph, int(s))
        finite = levels[levels >= 0]
        if len(finite):
            best = max(best, int(finite.max()))
    return best


def weakly_connected(graph: DiGraph) -> bool:
    """True when the undirected view of the graph is a single component."""
    if graph.num_nodes == 0:
        return True
    return bool((bfs_levels(graph, 0, undirected=True) >= 0).all())
