"""Whole-graph and partition quality metrics.

Used by Table II's property report and by the partitioner-quality
ablation bench to show *why* locality-enhancing partitioning matters:
the smaller the cut fraction, the less data each global synchronization
must move and the fewer global rounds the Eager formulations need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.partition import Partition
from repro.graph.powerlaw import fit_power_law, hub_spoke_ratio

__all__ = ["GraphSummary", "summarize_graph", "PartitionQuality", "partition_quality"]


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a digraph (the Table II row for a graph)."""

    num_nodes: int
    num_edges: int
    max_in_degree: int
    max_out_degree: int
    mean_degree: float
    powerlaw_alpha: float
    hub_mass_top1pct: float

    def rows(self) -> list[tuple[str, object]]:
        """(name, value) rows for the Table II report."""
        return [
            ("Nodes", self.num_nodes),
            ("Edges", self.num_edges),
            ("Max in-degree", self.max_in_degree),
            ("Max out-degree", self.max_out_degree),
            ("Mean degree", round(self.mean_degree, 3)),
            ("In-degree power-law alpha", round(self.powerlaw_alpha, 3)),
            ("Degree mass in top 1% nodes", round(self.hub_mass_top1pct, 3)),
        ]


def summarize_graph(graph: DiGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` (power-law fit on in-degrees)."""
    ind = graph.in_degree()
    outd = graph.out_degree()
    alpha = fit_power_law(ind, xmin=max(1, int(np.median(ind[ind > 0])) if np.any(ind > 0) else 1)).alpha \
        if graph.num_edges else float("nan")
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_in_degree=int(ind.max()) if len(ind) else 0,
        max_out_degree=int(outd.max()) if len(outd) else 0,
        mean_degree=float(graph.num_edges / graph.num_nodes) if graph.num_nodes else 0.0,
        powerlaw_alpha=alpha,
        hub_mass_top1pct=hub_spoke_ratio(ind) if len(ind) else 0.0,
    )


@dataclass(frozen=True)
class PartitionQuality:
    """Cut/balance statistics of a partition."""

    k: int
    edge_cut: int
    cut_fraction: float
    boundary_nodes: int
    boundary_fraction: float
    balance: float
    nonempty_parts: int


def partition_quality(partition: Partition) -> PartitionQuality:
    """Compute :class:`PartitionQuality` for a partition."""
    n = partition.graph.num_nodes
    b = len(partition.boundary_nodes())
    return PartitionQuality(
        k=partition.k,
        edge_cut=partition.edge_cut(),
        cut_fraction=partition.cut_fraction(),
        boundary_nodes=b,
        boundary_fraction=b / n if n else 0.0,
        balance=partition.balance(),
        nonempty_parts=partition.nonempty_parts(),
    )
