"""A compact weighted directed-graph type backed by CSR arrays.

The paper's workloads (PageRank, SSSP) operate on sparse directed graphs
with hundreds of thousands of nodes and millions of edges, stored as
adjacency lists.  We store the adjacency structure in compressed sparse
row (CSR) form — an ``out_ptr`` offsets array plus flat ``out_dst`` /
``out_w`` arrays — so that whole-graph and per-partition sweeps vectorise
with NumPy, per the scientific-Python guidance of "vectorise the hot loop,
keep views not copies".

The reverse (in-edge) CSR is built lazily on first use and cached; it is a
pure re-indexing of the same edge set.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.util import check_array_1d

__all__ = ["DiGraph"]


class DiGraph:
    """Weighted directed graph in CSR (adjacency list) form.

    Nodes are the integers ``0..num_nodes-1``.  Parallel edges are
    permitted (the generators may produce them; PageRank treats each as an
    independent contribution, matching an adjacency-*list* representation).

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    src, dst:
        Edge endpoint arrays of equal length ``m``.
    weights:
        Optional edge weights (float); defaults to 1.0 for every edge.
    sort:
        When true (default), edges are sorted by ``(src, dst)`` so that
        each node's out-neighbourhood is a contiguous, ordered slice.

    Notes
    -----
    Construction cost is ``O(m log m)`` for the sort; all per-node
    accessors afterwards are O(out-degree) views, not copies.
    """

    __slots__ = (
        "num_nodes",
        "out_ptr",
        "out_dst",
        "out_w",
        "_edge_src",
        "_in_ptr",
        "_in_src",
        "_in_w",
        "_in_eid",
    )

    def __init__(
        self,
        num_nodes: int,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        *,
        sort: bool = True,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        src_a = check_array_1d("src", np.asarray(src, dtype=np.int64))
        dst_a = check_array_1d("dst", np.asarray(dst, dtype=np.int64), length=len(src_a))
        if len(src_a) and (src_a.min() < 0 or src_a.max() >= num_nodes):
            raise ValueError("src contains node ids outside [0, num_nodes)")
        if len(dst_a) and (dst_a.min() < 0 or dst_a.max() >= num_nodes):
            raise ValueError("dst contains node ids outside [0, num_nodes)")
        if weights is None:
            w_a = np.ones(len(src_a), dtype=np.float64)
        else:
            w_a = check_array_1d(
                "weights", np.asarray(weights, dtype=np.float64), length=len(src_a)
            )

        if sort and len(src_a):
            order = np.lexsort((dst_a, src_a))
            src_a, dst_a, w_a = src_a[order], dst_a[order], w_a[order]

        self.num_nodes = int(num_nodes)
        self.out_dst = dst_a
        self.out_w = w_a
        self._edge_src = src_a
        counts = np.bincount(src_a, minlength=num_nodes)
        self.out_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.out_ptr[1:])
        # Lazily built reverse CSR.
        self._in_ptr: np.ndarray | None = None
        self._in_src: np.ndarray | None = None
        self._in_w: np.ndarray | None = None
        self._in_eid: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(
        cls,
        adjacency: Mapping[int, Iterable[int]] | Sequence[Iterable[int]],
        *,
        num_nodes: int | None = None,
    ) -> "DiGraph":
        """Build from an adjacency-list mapping ``node -> iterable of successors``.

        This mirrors the on-disk input format the paper uses ("a graph
        represented as adjacency lists as input", §V-B).
        """
        src_list: list[int] = []
        dst_list: list[int] = []
        if isinstance(adjacency, Mapping):
            items: Iterable[tuple[int, Iterable[int]]] = adjacency.items()
            max_key = max(adjacency.keys(), default=-1)
        else:
            items = enumerate(adjacency)
            max_key = len(adjacency) - 1
        max_node = max_key
        for u, nbrs in items:
            for v in nbrs:
                src_list.append(u)
                dst_list.append(v)
                if v > max_node:
                    max_node = v
        n = num_nodes if num_nodes is not None else max_node + 1
        return cls(n, src_list, dst_list)

    @classmethod
    def from_weighted_edges(
        cls, num_nodes: int, edges: Iterable[tuple[int, int, float]]
    ) -> "DiGraph":
        """Build from an iterable of ``(src, dst, weight)`` triples."""
        edges = list(edges)
        if not edges:
            return cls(num_nodes, [], [], [])
        src, dst, w = zip(*edges)
        return cls(num_nodes, src, dst, w)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (parallel edges counted)."""
        return int(len(self.out_dst))

    @property
    def edge_src(self) -> np.ndarray:
        """Flat array of edge sources aligned with :attr:`out_dst` / :attr:`out_w`."""
        return self._edge_src

    def out_degree(self) -> np.ndarray:
        """Out-degree of every node as an ``(n,)`` int array."""
        return np.diff(self.out_ptr)

    def in_degree(self) -> np.ndarray:
        """In-degree of every node as an ``(n,)`` int array."""
        return np.bincount(self.out_dst, minlength=self.num_nodes)

    def successors(self, u: int) -> np.ndarray:
        """View of node ``u``'s out-neighbours (with multiplicity)."""
        self._check_node(u)
        return self.out_dst[self.out_ptr[u]: self.out_ptr[u + 1]]

    def out_weights(self, u: int) -> np.ndarray:
        """View of the weights of node ``u``'s out-edges."""
        self._check_node(u)
        return self.out_w[self.out_ptr[u]: self.out_ptr[u + 1]]

    def predecessors(self, u: int) -> np.ndarray:
        """Array of node ``u``'s in-neighbours (with multiplicity)."""
        self._ensure_in_csr()
        assert self._in_ptr is not None and self._in_src is not None
        return self._in_src[self._in_ptr[u]: self._in_ptr[u + 1]]

    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reverse CSR ``(in_ptr, in_src, in_w)``; built lazily, cached."""
        self._ensure_in_csr()
        assert self._in_ptr is not None
        return self._in_ptr, self._in_src, self._in_w  # type: ignore[return-value]

    def has_edge(self, u: int, v: int) -> bool:
        """True when at least one ``u -> v`` edge exists."""
        self._check_node(u)
        self._check_node(v)
        nbrs = self.successors(u)
        # successors are sorted when the graph was built with sort=True;
        # fall back to linear scan otherwise.
        i = np.searchsorted(nbrs, v)
        if i < len(nbrs) and nbrs[i] == v:
            return True
        return bool(np.any(nbrs == v))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(src, dst, weight)`` triples."""
        for i in range(self.num_edges):
            yield int(self._edge_src[i]), int(self.out_dst[i]), float(self.out_w[i])

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The flat ``(src, dst, weight)`` arrays (views, not copies)."""
        return self._edge_src, self.out_dst, self.out_w

    def adjacency_dict(self) -> dict[int, list[int]]:
        """Materialise the adjacency-list dict (small graphs / tests only)."""
        return {u: self.successors(u).tolist() for u in range(self.num_nodes)}

    def with_weights(self, weights: np.ndarray) -> "DiGraph":
        """A new graph with identical structure but different edge weights.

        ``weights`` must align with :meth:`edge_arrays` order.
        """
        w = check_array_1d("weights", np.asarray(weights, dtype=np.float64),
                           length=self.num_edges)
        return DiGraph(self.num_nodes, self._edge_src, self.out_dst, w, sort=False)

    def reverse(self) -> "DiGraph":
        """The transpose graph (every edge flipped)."""
        return DiGraph(self.num_nodes, self.out_dst, self._edge_src, self.out_w)

    def undirected_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Symmetrised CSR ``(ptr, nbr, w)`` with both edge directions.

        Parallel/duplicate edges between the same pair are *merged* with
        summed weights.  Self-loops are dropped.  This is the view the
        multilevel partitioner operates on (partitioning ignores edge
        direction, as Metis does).
        """
        s, d, w = self._edge_src, self.out_dst, self.out_w
        keep = s != d
        s, d, w = s[keep], d[keep], w[keep]
        us = np.concatenate([s, d])
        vs = np.concatenate([d, s])
        ws = np.concatenate([w, w])
        if len(us) == 0:
            return np.zeros(self.num_nodes + 1, dtype=np.int64), us, ws
        # Merge duplicates: sort by (u, v), then sum weight runs.
        order = np.lexsort((vs, us))
        us, vs, ws = us[order], vs[order], ws[order]
        new_run = np.empty(len(us), dtype=bool)
        new_run[0] = True
        new_run[1:] = (us[1:] != us[:-1]) | (vs[1:] != vs[:-1])
        run_id = np.cumsum(new_run) - 1
        uu = us[new_run]
        vv = vs[new_run]
        wsum = np.bincount(run_id, weights=ws)
        ptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(uu, minlength=self.num_nodes), out=ptr[1:])
        return ptr, vv, wsum

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.num_nodes}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self._edge_src, other._edge_src)
            and np.array_equal(self.out_dst, other.out_dst)
            and np.array_equal(self.out_w, other.out_w)
        )

    def __hash__(self) -> int:  # graphs are mutable-ish containers
        raise TypeError("DiGraph is not hashable")

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise IndexError(f"node {u} out of range [0, {self.num_nodes})")

    def _ensure_in_csr(self) -> None:
        if self._in_ptr is not None:
            return
        d = self.out_dst
        order = np.argsort(d, kind="stable")
        self._in_src = self._edge_src[order]
        self._in_w = self.out_w[order]
        self._in_eid = order
        counts = np.bincount(d, minlength=self.num_nodes)
        self._in_ptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self._in_ptr[1:])
