"""Graph substrate: CSR digraphs, generators, partitioning, power-law fits.

This package provides everything the paper's graph workloads need:

* :class:`~repro.graph.digraph.DiGraph` — CSR-backed weighted digraph.
* :mod:`~repro.graph.generators` — preferential-attachment inputs
  (Table II), plus simple test shapes.
* :mod:`~repro.graph.partition` — the locality-enhancing partitioners
  (multilevel Metis substitute and baselines) and the
  :class:`~repro.graph.partition.Partition` object with boundary/cut
  structure.
* :mod:`~repro.graph.powerlaw` — degree-distribution fitting (Table II's
  conformity check).
* :mod:`~repro.graph.io` — adjacency-list text format.
"""

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    GRAPH_A_SPEC,
    GRAPH_B_SPEC,
    attach_random_weights,
    complete_digraph,
    grid_graph,
    make_paper_graph,
    preferential_attachment,
    random_digraph,
    ring_graph,
    star_graph,
)
from repro.graph.io import (
    dumps_adjacency,
    loads_adjacency,
    read_adjacency,
    write_adjacency,
)
from repro.graph.metrics import (
    GraphSummary,
    PartitionQuality,
    partition_quality,
    summarize_graph,
)
from repro.graph.partition import (
    PARTITIONERS,
    Partition,
    bfs_partition,
    chunk_partition,
    hash_partition,
    multilevel_partition,
    partition_graph,
    random_partition,
)
from repro.graph.powerlaw import (
    PowerLawFit,
    degree_histogram,
    fit_power_law,
    hub_spoke_ratio,
)
from repro.graph.traversal import (
    bfs_levels,
    bfs_order,
    hop_diameter_estimate,
    reachable_from,
    weakly_connected,
)

__all__ = [
    "DiGraph",
    "preferential_attachment",
    "make_paper_graph",
    "GRAPH_A_SPEC",
    "GRAPH_B_SPEC",
    "random_digraph",
    "ring_graph",
    "grid_graph",
    "star_graph",
    "complete_digraph",
    "attach_random_weights",
    "Partition",
    "partition_graph",
    "multilevel_partition",
    "bfs_partition",
    "chunk_partition",
    "hash_partition",
    "random_partition",
    "PARTITIONERS",
    "PowerLawFit",
    "fit_power_law",
    "degree_histogram",
    "hub_spoke_ratio",
    "GraphSummary",
    "summarize_graph",
    "PartitionQuality",
    "partition_quality",
    "bfs_levels",
    "bfs_order",
    "reachable_from",
    "hop_diameter_estimate",
    "weakly_connected",
    "read_adjacency",
    "write_adjacency",
    "dumps_adjacency",
    "loads_adjacency",
]
