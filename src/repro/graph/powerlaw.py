"""Power-law fitting for degree distributions.

Table II's justification for the inputs is that "the best-fit for inlinks
in the two input graphs yields the power-law exponent for the graphs,
demonstrating their conformity with the hubs-and-spokes model" (§V-B.3).
This module reproduces that check: fit an exponent to a degree sample and
report tail statistics, so the Table II bench can print the same evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import check_array_1d

__all__ = ["PowerLawFit", "fit_power_law", "degree_histogram", "hub_spoke_ratio"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law fit ``P(X = x) ~ x^-alpha`` for x >= xmin."""

    alpha: float
    xmin: int
    n_tail: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"alpha={self.alpha:.3f} (xmin={self.xmin}, tail n={self.n_tail})"


def fit_power_law(degrees: np.ndarray, *, xmin: int = 1) -> PowerLawFit:
    """Maximum-likelihood exponent for a discrete power-law tail.

    Uses the standard continuous-approximation MLE (Clauset, Shalizi &
    Newman 2009, eq. 3.7 with the -1/2 discreteness correction):

    ``alpha = 1 + n / sum(ln(x_i / (xmin - 1/2)))`` over ``x_i >= xmin``.

    Parameters
    ----------
    degrees:
        Degree sample (non-negative integers; zeros are ignored since a
        power law is only defined on positive support).
    xmin:
        Lower cutoff of the tail to fit.

    Returns
    -------
    PowerLawFit
        Fitted exponent with the tail size used.
    """
    d = check_array_1d("degrees", np.asarray(degrees))
    if xmin < 1:
        raise ValueError(f"xmin must be >= 1, got {xmin}")
    tail = d[d >= xmin].astype(np.float64)
    if len(tail) < 2:
        raise ValueError(
            f"need at least 2 observations >= xmin={xmin}, got {len(tail)}"
        )
    alpha = 1.0 + len(tail) / np.log(tail / (xmin - 0.5)).sum()
    return PowerLawFit(alpha=float(alpha), xmin=xmin, n_tail=int(len(tail)))


def degree_histogram(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(degree values, counts)`` with zero-count bins removed."""
    d = check_array_1d("degrees", np.asarray(degrees, dtype=np.int64))
    if len(d) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    counts = np.bincount(d)
    vals = np.flatnonzero(counts)
    return vals, counts[vals]


def hub_spoke_ratio(degrees: np.ndarray, *, hub_quantile: float = 0.99) -> float:
    """Share of total degree mass held by the top ``1 - hub_quantile`` of nodes.

    A heavy-tailed ("hubs and spokes") graph concentrates a large share of
    edges on very few nodes; this statistic quantifies the paper's "very
    few nodes have very high inlink values" observation.  Exactly the
    ``ceil(n * (1 - hub_quantile))`` largest entries are counted, so a
    uniform distribution scores ~``1 - hub_quantile``.
    """
    if not 0.0 < hub_quantile < 1.0:
        raise ValueError(f"hub_quantile must be in (0, 1), got {hub_quantile}")
    d = check_array_1d("degrees", np.asarray(degrees, dtype=np.float64))
    if len(d) == 0:
        return 0.0
    total = d.sum()
    if total == 0:
        return 0.0
    top = max(1, int(np.ceil(len(d) * (1.0 - hub_quantile))))
    largest = np.partition(d, len(d) - top)[len(d) - top:]
    return float(largest.sum() / total)
