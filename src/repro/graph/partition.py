"""Graph partitioning: the locality-enhancing step of the paper.

The paper partitions its input graphs *once, off-line* with Metis ("A good
partitioning algorithm that minimizes edge-cuts has the desired effect of
reducing global synchronizations", §V-B.3) and hands each partition to a
global map task.  Metis is not available here, so this module implements
the same recipe from scratch:

* :func:`multilevel_partition` — a Metis-style multilevel k-way
  partitioner: heavy-edge-matching coarsening, greedy region-growing
  initial bisection, greedy boundary (Kernighan–Lin / Fiduccia–Mattheyses
  flavoured) refinement at every level, and recursive bisection for k-way.
* :func:`bfs_partition` — cheap locality-aware baseline (grow contiguous
  chunks breadth-first), analogous to the crawler-induced locality the
  paper mentions.
* :func:`hash_partition` / :func:`random_partition` — locality-oblivious
  baselines used by the partitioner-quality ablation.

All partitioners return a :class:`Partition`, which also provides the
derived quantities the Eager formulations need: boundary nodes, cut
edges, per-part node arrays, and balance statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph
from repro.util import as_rng, check_positive

__all__ = [
    "Partition",
    "hash_partition",
    "random_partition",
    "chunk_partition",
    "bfs_partition",
    "multilevel_partition",
    "partition_graph",
    "PARTITIONERS",
]


@dataclass
class Partition:
    """A k-way node partition of a :class:`DiGraph` plus derived structure.

    Attributes
    ----------
    graph:
        The partitioned graph.
    assign:
        ``(n,)`` int array mapping node -> part id in ``[0, k)``.
    k:
        Number of parts.  Empty parts are permitted (they can arise when
        ``k`` approaches ``n``), matching the paper's sweep up to 6400
        partitions.
    """

    graph: DiGraph
    assign: np.ndarray
    k: int
    _parts: list[np.ndarray] | None = field(default=None, repr=False)
    _cut_mask: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.assign = np.asarray(self.assign, dtype=np.int64)
        if self.assign.shape != (self.graph.num_nodes,):
            raise ValueError(
                f"assign must have shape ({self.graph.num_nodes},), "
                f"got {self.assign.shape}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.graph.num_nodes and (
            self.assign.min() < 0 or self.assign.max() >= self.k
        ):
            raise ValueError("assign contains part ids outside [0, k)")

    # -- structure ------------------------------------------------------
    def parts(self) -> list[np.ndarray]:
        """List of ``k`` sorted node arrays, one per part (cached)."""
        if self._parts is None:
            order = np.argsort(self.assign, kind="stable")
            sorted_assign = self.assign[order]
            boundaries = np.searchsorted(sorted_assign, np.arange(self.k + 1))
            self._parts = [
                np.sort(order[boundaries[i]: boundaries[i + 1]])
                for i in range(self.k)
            ]
        return self._parts

    def part_sizes(self) -> np.ndarray:
        """``(k,)`` array of node counts per part."""
        return np.bincount(self.assign, minlength=self.k)

    def cut_edge_mask(self) -> np.ndarray:
        """Boolean mask (aligned with edge arrays) of inter-part edges."""
        if self._cut_mask is None:
            src, dst, _ = self.graph.edge_arrays()
            self._cut_mask = self.assign[src] != self.assign[dst]
        return self._cut_mask

    def edge_cut(self) -> int:
        """Number of directed edges crossing parts."""
        return int(self.cut_edge_mask().sum())

    def cut_fraction(self) -> float:
        """Fraction of edges crossing parts (0 when the graph has no edges)."""
        m = self.graph.num_edges
        return self.edge_cut() / m if m else 0.0

    def boundary_nodes(self) -> np.ndarray:
        """Sorted array of nodes incident to at least one cut edge.

        These are the paper's "boundary nodes (nodes that have edges
        leading to other partitions) [which] require a global reduction"
        (§II); everything else is an internal node whose rank can be
        resolved by local iterations alone.
        """
        src, dst, _ = self.graph.edge_arrays()
        mask = self.cut_edge_mask()
        return np.unique(np.concatenate([src[mask], dst[mask]]))

    def internal_nodes(self) -> np.ndarray:
        """Sorted array of nodes with no cut edge."""
        b = np.zeros(self.graph.num_nodes, dtype=bool)
        b[self.boundary_nodes()] = True
        return np.flatnonzero(~b)

    def balance(self) -> float:
        """Max part size divided by ideal size (1.0 = perfectly balanced).

        Ignores empty parts implied by ``k > n``; the ideal size is
        ``n / min(k, n)`` so the statistic stays meaningful across the
        paper's full partition sweep.
        """
        n = self.graph.num_nodes
        if n == 0:
            return 1.0
        ideal = n / min(self.k, n)
        return float(self.part_sizes().max() / ideal)

    def nonempty_parts(self) -> int:
        """Number of parts that actually contain nodes."""
        return int((self.part_sizes() > 0).sum())

    def validate(self) -> None:
        """Raise ``AssertionError`` if the partition is not a valid cover."""
        sizes = self.part_sizes()
        assert sizes.sum() == self.graph.num_nodes, "parts must cover all nodes"
        assert len(np.concatenate(self.parts())) == self.graph.num_nodes if self.k else True


# ----------------------------------------------------------------------
# Locality-oblivious baselines
# ----------------------------------------------------------------------

def hash_partition(graph: DiGraph, k: int) -> Partition:
    """Assign node ``u`` to part ``u mod k`` (Hadoop's default placement)."""
    check_positive("k", k)
    return Partition(graph, np.arange(graph.num_nodes) % k, k)


def random_partition(graph: DiGraph, k: int, *,
                     seed: "int | np.random.Generator | None" = None) -> Partition:
    """Uniform random balanced assignment (shuffled round-robin)."""
    check_positive("k", k)
    rng = as_rng(seed)
    assign = np.arange(graph.num_nodes) % k
    rng.shuffle(assign)
    return Partition(graph, assign, k)


def chunk_partition(graph: DiGraph, k: int) -> Partition:
    """Split node ids into ``k`` contiguous equal ranges.

    Node ids are insertion (crawl) order for the generated inputs, so
    contiguous ranges inherit the crawler-induced locality the paper
    describes — this is the "partitioning you get for free" baseline,
    cheaper but coarser than the multilevel min-cut partitioner.
    """
    check_positive("k", k)
    n = graph.num_nodes
    bounds = np.linspace(0, n, k + 1).astype(np.int64)
    assign = np.zeros(n, dtype=np.int64)
    for p in range(k):
        assign[bounds[p]: bounds[p + 1]] = p
    return Partition(graph, assign, k)


# ----------------------------------------------------------------------
# BFS partitioner — cheap contiguity
# ----------------------------------------------------------------------

def bfs_partition(graph: DiGraph, k: int, *,
                  seed: "int | np.random.Generator | None" = None) -> Partition:
    """Grow ``k`` contiguous chunks breadth-first over the undirected graph.

    Nodes are visited in BFS order from successive unvisited seeds and
    sliced into ``k`` nearly equal consecutive chunks, so each part is a
    union of BFS-contiguous regions.  This mimics the crawl-order locality
    the paper notes real web graphs arrive with (§V-B.3).
    """
    check_positive("k", k)
    n = graph.num_nodes
    if n == 0:
        return Partition(graph, np.zeros(0, dtype=np.int64), k)
    ptr, nbr, _ = graph.undirected_csr()
    rng = as_rng(seed)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seeds = rng.permutation(n)
    from collections import deque

    queue: deque[int] = deque()
    for s in seeds:
        if visited[s]:
            continue
        visited[s] = True
        queue.append(int(s))
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            for v in nbr[ptr[u]: ptr[u + 1]]:
                if not visited[v]:
                    visited[v] = True
                    queue.append(int(v))
    assert pos == n
    assign = np.empty(n, dtype=np.int64)
    # Slice the BFS order into k nearly equal consecutive chunks.
    bounds = np.linspace(0, n, k + 1).astype(np.int64)
    for p in range(k):
        assign[order[bounds[p]: bounds[p + 1]]] = p
    return Partition(graph, assign, k)


# ----------------------------------------------------------------------
# Multilevel partitioner (Metis substitute)
# ----------------------------------------------------------------------

@dataclass
class _UGraph:
    """Undirected weighted working graph for the multilevel pipeline."""

    ptr: np.ndarray   # (n+1,) CSR offsets
    nbr: np.ndarray   # (m,) neighbour ids
    w: np.ndarray     # (m,) edge weights
    vw: np.ndarray    # (n,) node weights

    @property
    def n(self) -> int:
        return len(self.vw)


def _heavy_edge_matching(g: _UGraph, rng: np.random.Generator) -> np.ndarray:
    """Return match[] pairing each node with a neighbour (or itself).

    Visits nodes in random order, matching each unmatched node to its
    heaviest unmatched neighbour — the classic HEM rule that preserves
    heavy edges inside coarse nodes so they never appear in the cut.
    """
    n = g.n
    match = np.full(n, -1, dtype=np.int64)
    for u in rng.permutation(n):
        if match[u] != -1:
            continue
        best = -1
        best_w = -np.inf
        for i in range(g.ptr[u], g.ptr[u + 1]):
            v = g.nbr[i]
            if v != u and match[v] == -1 and g.w[i] > best_w:
                best = v
                best_w = g.w[i]
        if best == -1:
            match[u] = u
        else:
            match[u] = best
            match[best] = u
    return match


def _contract(g: _UGraph, match: np.ndarray) -> tuple[_UGraph, np.ndarray]:
    """Contract matched pairs into coarse nodes; return (coarse, cmap)."""
    n = g.n
    cmap = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for u in range(n):
        if cmap[u] == -1:
            cmap[u] = nxt
            v = match[u]
            if v != u and cmap[v] == -1:
                cmap[v] = nxt
            nxt += 1
    cn = nxt
    cvw = np.bincount(cmap, weights=g.vw, minlength=cn)
    cu = cmap[np.repeat(np.arange(n), np.diff(g.ptr))]
    cv = cmap[g.nbr]
    keep = cu != cv
    cu, cv, cw = cu[keep], cv[keep], g.w[keep]
    if len(cu):
        order = np.lexsort((cv, cu))
        cu, cv, cw = cu[order], cv[order], cw[order]
        new_run = np.empty(len(cu), dtype=bool)
        new_run[0] = True
        new_run[1:] = (cu[1:] != cu[:-1]) | (cv[1:] != cv[:-1])
        run_id = np.cumsum(new_run) - 1
        uu, vv = cu[new_run], cv[new_run]
        ww = np.bincount(run_id, weights=cw)
    else:
        uu = cu
        vv = cv
        ww = cw
    ptr = np.zeros(cn + 1, dtype=np.int64)
    np.cumsum(np.bincount(uu, minlength=cn), out=ptr[1:])
    return _UGraph(ptr, vv, ww, cvw), cmap


def _greedy_bisection(g: _UGraph, target0: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Initial bisection: BFS region growing to ``target0`` node weight.

    Tries a few random seeds and keeps the lowest-cut result.
    """
    n = g.n
    total = g.vw.sum()
    goal = target0 * total
    best_side: np.ndarray | None = None
    best_cut = np.inf
    tries = min(4, n)
    from collections import deque

    for s in rng.choice(n, size=tries, replace=False):
        side = np.ones(n, dtype=np.int8)
        grown = 0.0
        queue: deque[int] = deque([int(s)])
        seen = np.zeros(n, dtype=bool)
        seen[s] = True
        while queue and grown < goal:
            u = queue.popleft()
            side[u] = 0
            grown += g.vw[u]
            for v in g.nbr[g.ptr[u]: g.ptr[u + 1]]:
                if not seen[v]:
                    seen[v] = True
                    queue.append(int(v))
        # Top up with arbitrary nodes if BFS exhausted a small component.
        if grown < goal:
            for u in rng.permutation(n):
                if side[u] == 1 and grown < goal:
                    side[u] = 0
                    grown += g.vw[u]
        cut = _cut_weight(g, side)
        if cut < best_cut:
            best_cut = cut
            best_side = side.copy()
    assert best_side is not None
    return best_side


def _cut_weight(g: _UGraph, side: np.ndarray) -> float:
    """Total weight of edges crossing the bisection (each counted twice)."""
    src = np.repeat(np.arange(g.n), np.diff(g.ptr))
    return float(g.w[side[src] != side[g.nbr]].sum())


def _refine_bisection(g: _UGraph, side: np.ndarray, target0: float,
                      tol: float, max_passes: int = 4) -> np.ndarray:
    """Greedy KL/FM-style boundary refinement.

    Repeatedly moves the boundary node with the largest positive gain
    (external minus internal incident weight) to the other side, provided
    balance stays within ``tol``.  Each accepted move strictly reduces the
    cut, so refinement never increases the cut weight.
    """
    n = g.n
    total = g.vw.sum()
    lo0 = (target0 - tol) * total
    hi0 = (target0 + tol) * total
    src = np.repeat(np.arange(n), np.diff(g.ptr))
    for _ in range(max_passes):
        w0 = float(g.vw[side == 0].sum())
        # gain[u] = (incident weight to other side) - (incident to own side)
        cross = side[src] != side[g.nbr]
        gain = np.zeros(n, dtype=np.float64)
        np.add.at(gain, src, np.where(cross, g.w, -g.w))
        moved_any = False
        # Visit candidates in decreasing gain; recompute locally on move.
        candidates = np.flatnonzero(gain > 1e-12)
        if len(candidates) == 0:
            break
        for u in candidates[np.argsort(-gain[candidates])]:
            if gain[u] <= 1e-12:
                continue
            if side[u] == 0:
                new_w0 = w0 - g.vw[u]
            else:
                new_w0 = w0 + g.vw[u]
            if not (lo0 <= new_w0 <= hi0):
                continue
            # Flip u and patch gains of u and its neighbours (whole-
            # neighbourhood array update; np.add.at handles repeated
            # neighbour entries exactly like the per-edge loop did).
            side[u] ^= 1
            w0 = new_w0
            gain[u] = -gain[u]
            lo_i, hi_i = g.ptr[u], g.ptr[u + 1]
            nbrs = g.nbr[lo_i:hi_i]
            ws = g.w[lo_i:hi_i]
            np.add.at(gain, nbrs,
                      np.where(side[nbrs] == side[u], -2.0 * ws, 2.0 * ws))
            moved_any = True
        if not moved_any:
            break
    return side


def _bisect(g: _UGraph, target0: float, tol: float,
            rng: np.random.Generator, min_coarse: int = 64) -> np.ndarray:
    """Multilevel bisection of the working graph; returns side[] in {0,1}."""
    if g.n <= min_coarse:
        side = _greedy_bisection(g, target0, rng)
        return _refine_bisection(g, side, target0, tol)
    match = _heavy_edge_matching(g, rng)
    coarse, cmap = _contract(g, match)
    if coarse.n >= g.n * 0.95:  # matching stalled; stop coarsening
        side = _greedy_bisection(g, target0, rng)
        return _refine_bisection(g, side, target0, tol)
    cside = _bisect(coarse, target0, tol, rng, min_coarse)
    side = cside[cmap].astype(np.int8)
    return _refine_bisection(g, side, target0, tol)


def multilevel_partition(graph: DiGraph, k: int, *,
                         balance_tol: float = 0.05,
                         seed: "int | np.random.Generator | None" = 0) -> Partition:
    """Metis-style multilevel k-way partition by recursive bisection.

    Parameters
    ----------
    graph:
        Input digraph; partitioning is performed on its symmetrised,
        weight-merged undirected view (direction does not matter for
        locality).
    k:
        Number of parts.  When ``k >= n`` each node becomes its own part
        (the paper's "partition size is one" degenerate case where Eager
        collapses to General).
    balance_tol:
        Allowed deviation of each bisection side from its target weight
        fraction.
    seed:
        RNG seed (matching and seed selection are randomised).
    """
    check_positive("k", k)
    n = graph.num_nodes
    if k >= n:
        return Partition(graph, np.arange(n, dtype=np.int64), k)
    ptr, nbr, w = graph.undirected_csr()
    g = _UGraph(ptr, nbr, w, np.ones(n, dtype=np.float64))
    rng = as_rng(seed)
    assign = np.zeros(n, dtype=np.int64)
    # Per-bisection imbalance compounds multiplicatively down the
    # recursion, so divide the user's overall tolerance across levels.
    levels = max(1, int(np.ceil(np.log2(k))))
    per_level_tol = balance_tol / levels

    def rec(nodes: np.ndarray, sub: _UGraph, kk: int, base: int) -> None:
        if kk == 1:
            assign[nodes] = base
            return
        k0 = (kk + 1) // 2
        side = _bisect(sub, k0 / kk, per_level_tol, rng)
        idx0 = np.flatnonzero(side == 0)
        idx1 = np.flatnonzero(side == 1)
        # Guard: a degenerate bisection must still split the node set,
        # otherwise recursion would not terminate.
        if len(idx0) == 0 or len(idx1) == 0:
            half = max(1, len(nodes) * k0 // kk)
            idx0 = np.arange(half)
            idx1 = np.arange(half, len(nodes))
        sub0 = _subgraph(sub, idx0)
        sub1 = _subgraph(sub, idx1)
        rec(nodes[idx0], sub0, k0, base)
        rec(nodes[idx1], sub1, kk - k0, base + k0)

    rec(np.arange(n, dtype=np.int64), g, k, 0)
    return Partition(graph, assign, k)


def _subgraph(g: _UGraph, nodes: np.ndarray) -> _UGraph:
    """Induced undirected subgraph on ``nodes`` (renumbered 0..len-1)."""
    remap = np.full(g.n, -1, dtype=np.int64)
    remap[nodes] = np.arange(len(nodes))
    src = np.repeat(np.arange(g.n), np.diff(g.ptr))
    keep = (remap[src] >= 0) & (remap[g.nbr] >= 0)
    uu = remap[src[keep]]
    vv = remap[g.nbr[keep]]
    ww = g.w[keep]
    ptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    if len(uu):
        order = np.argsort(uu, kind="stable")
        uu, vv, ww = uu[order], vv[order], ww[order]
        np.cumsum(np.bincount(uu, minlength=len(nodes)), out=ptr[1:])
    return _UGraph(ptr, vv, ww, g.vw[nodes])


#: Registry used by benchmarks and the partitioner-quality ablation.
PARTITIONERS = {
    "multilevel": multilevel_partition,
    "bfs": bfs_partition,
    "chunk": chunk_partition,
    "hash": hash_partition,
    "random": random_partition,
}

_SEEDLESS = {"hash", "chunk"}


def partition_graph(graph: DiGraph, k: int, *, method: str = "multilevel",
                    seed: "int | np.random.Generator | None" = 0) -> Partition:
    """Dispatch to a registered partitioner by name."""
    if method not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {method!r}; choose from {sorted(PARTITIONERS)}"
        )
    fn = PARTITIONERS[method]
    if method in _SEEDLESS:
        return fn(graph, k)
    return fn(graph, k, seed=seed)
