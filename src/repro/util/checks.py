"""Argument-validation helpers.

Every public entry point in the library validates its arguments eagerly so
that misuse fails with a clear message at the call site rather than deep
inside a numeric kernel.  The helpers raise ``ValueError``/``TypeError``
with messages that name the offending parameter.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def _check_scalar_number(name: str, value: Any) -> None:
    """Reject non-numbers and booleans; accept numpy numeric scalars.

    ``bool`` is a subclass of ``int`` (``True > 0`` holds), so the
    bounds checks below would silently accept flags passed where a
    count belongs; numpy's ``bool_``/``str_`` are scalars by
    ``np.isscalar`` yet are no more numbers than their builtin kin.
    """
    if isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{name} must be a scalar number, got bool")
    if isinstance(value, (int, float, np.integer, np.floating)):
        return
    raise TypeError(
        f"{name} must be a scalar number, got {type(value).__name__}")


def check_positive(name: str, value: Any) -> None:
    """Raise unless ``value`` is a strictly positive number.

    Accepts ``int``/``float`` and numpy integer/floating scalars;
    rejects booleans (``TypeError``) and non-positives (``ValueError``).
    """
    _check_scalar_number(name, value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Any) -> None:
    """Raise unless ``value`` is a number >= 0.

    Accepts ``int``/``float`` and numpy integer/floating scalars;
    rejects booleans (``TypeError``) and negatives (``ValueError``).
    """
    _check_scalar_number(name, value)
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: Any, lo: float, hi: float, *,
                   inclusive: bool = True) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi`` (or strict, if asked)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )


def check_probability(name: str, value: Any) -> None:
    """Raise unless ``value`` is a probability in [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)


def check_array_1d(name: str, arr: Any, *, length: int | None = None,
                   dtype_kind: str | None = None) -> np.ndarray:
    """Coerce ``arr`` to a 1-D :class:`numpy.ndarray` and validate its shape.

    Parameters
    ----------
    name:
        Parameter name used in error messages.
    arr:
        Array-like input.
    length:
        If given, the exact required length.
    dtype_kind:
        If given, the required numpy dtype ``kind`` (e.g. ``"i"`` for
        signed integers, ``"f"`` for floats).

    Returns
    -------
    numpy.ndarray
        The validated array (a view when possible, never a copy of a
        conforming input).
    """
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    if length is not None and out.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {out.shape[0]}")
    if dtype_kind is not None and out.dtype.kind != dtype_kind:
        raise TypeError(
            f"{name} must have dtype kind {dtype_kind!r}, got {out.dtype} "
            f"(kind {out.dtype.kind!r})"
        )
    return out
