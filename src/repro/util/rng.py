"""Deterministic random-number-generator plumbing.

All stochastic components (graph generators, fault injection, K-Means
initialisation, ...) accept a ``seed`` argument which may be ``None``, an
integer, or an existing :class:`numpy.random.Generator`.  Centralising the
coercion here guarantees that "same seed => same output" holds across the
whole library, which the deterministic-replay fault-tolerance tests rely
on.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state);
    passing an int builds a fresh PCG64 generator; ``None`` builds an
    OS-entropy-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Children are derived with :meth:`numpy.random.Generator.spawn`, so the
    streams are statistically independent and reproducible.  Used to give
    each simulated map task its own stream: a re-executed (replayed) task
    attempt receives the same stream and therefore recomputes identical
    output, which is exactly Hadoop's deterministic-replay contract.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return as_rng(seed).spawn(n)
