"""Shared utilities: validation, deterministic RNG handling, and small helpers.

These are internal helpers used across the substrates (graph, cluster,
engine) and the core partial-synchronization driver.  Nothing here is
specific to the paper; it exists so that the rest of the codebase can stay
focused on the algorithms.
"""

from repro.util.checks import (
    check_array_1d,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)
from repro.util.rng import as_rng, spawn_rngs
from repro.util.tables import ascii_table, format_series

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_array_1d",
    "check_probability",
    "as_rng",
    "spawn_rngs",
    "ascii_table",
    "format_series",
]
