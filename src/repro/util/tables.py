"""Plain-text table and series formatting for the benchmark harness.

The paper reports results as log-log line plots (Figures 2-9) and setup
tables (Tables I-II).  The harness regenerates each of those as an ASCII
table / series so the output of ``pytest benchmarks/`` can be compared
against the paper by eye and by the assertions in ``repro.bench``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                *, title: str | None = None) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    Cells are stringified with ``str``; floats are shown with 6 significant
    digits.  Column widths adapt to content.
    """
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.6g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any],
                  *, x_label: str = "x", y_label: str = "y") -> str:
    """Format one plot series (e.g. "Eager" in Figure 4) as aligned text."""
    if len(xs) != len(ys):
        raise ValueError(f"xs and ys must have equal length, got {len(xs)} vs {len(ys)}")
    header = f"series {name}: {y_label} vs {x_label}"
    rows = "\n".join(
        f"  {x_label}={x!s:>10}  {y_label}={y:.6g}" if isinstance(y, float)
        else f"  {x_label}={x!s:>10}  {y_label}={y}"
        for x, y in zip(xs, ys)
    )
    return header + "\n" + rows
