"""Synthetic stand-in for the 1990 US Census sample (UCI repository).

The paper clusters "Sampled US Census data of 1990 from the UCI Machine
Learning repository ... around 200K points each with 68 dimensions"
(§V-D).  The original file is not available offline, so
:func:`census_sample` synthesises a dataset with the same *shape and
character*: 68 integer-coded attributes (the UCI version is entirely
discretised/ordinal), generated from a mixture of latent demographic
profiles with per-attribute noise, so the data is genuinely clusterable
but far from separable — which is what drives K-Means iteration counts.

The substitution is documented in DESIGN.md; K-Means behaviour here
depends only on having a clusterable integer dataset of similar scale.
"""

from __future__ import annotations

import numpy as np

from repro.util import as_rng, check_positive

__all__ = ["census_sample", "CENSUS_DIMENSIONS", "CENSUS_DEFAULT_ROWS"]

#: The UCI USCensus1990 sample is 68 attributes wide.
CENSUS_DIMENSIONS = 68
#: The paper samples about 200K rows.
CENSUS_DEFAULT_ROWS = 200_000

#: Cardinality of each synthetic attribute, cycled across the 68 columns.
#: Mirrors the mix in USCensus1990: many small categorical codes, a few
#: wider ordinal ones (age brackets, income deciles, hours worked, ...).
_ATTR_CARDINALITIES = (2, 3, 3, 4, 5, 5, 8, 10, 13, 17)


def census_sample(
    num_rows: int = CENSUS_DEFAULT_ROWS,
    *,
    num_dims: int = CENSUS_DIMENSIONS,
    num_profiles: int = 24,
    noise: float = 0.35,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Generate a census-like integer dataset of shape ``(num_rows, num_dims)``.

    Parameters
    ----------
    num_rows, num_dims:
        Output shape; defaults match the paper's sample (200K x 68).
    num_profiles:
        Number of latent demographic profiles (mixture components).
        Rows are drawn from profiles with a heavy-tailed mixture weight
        (a few large demographic groups, many small ones).
    noise:
        Probability that any given attribute of a row is resampled
        uniformly from the attribute's full range instead of from its
        profile's distribution — keeps clusters overlapping.
    seed:
        RNG seed.

    Returns
    -------
    numpy.ndarray
        Float64 matrix of integer-valued codes (float dtype so K-Means
        arithmetic needs no conversion).
    """
    check_positive("num_rows", num_rows)
    check_positive("num_dims", num_dims)
    check_positive("num_profiles", num_profiles)
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = as_rng(seed)

    cards = np.array([_ATTR_CARDINALITIES[j % len(_ATTR_CARDINALITIES)]
                      for j in range(num_dims)], dtype=np.int64)
    # Each profile has a modal code per attribute plus a spread.
    modes = np.stack([rng.integers(0, cards) for _ in range(num_profiles)])

    # Heavy-tailed profile popularity (few big demographic groups).
    raw = rng.pareto(1.5, size=num_profiles) + 0.05
    weights = raw / raw.sum()
    labels = rng.choice(num_profiles, size=num_rows, p=weights)

    # Attribute value = profile mode + small integer jitter, clipped.
    jitter = rng.integers(-1, 2, size=(num_rows, num_dims))
    data = modes[labels] + jitter
    np.clip(data, 0, cards - 1, out=data)

    # Uniform-noise resampling of a fraction of cells.
    mask = rng.random((num_rows, num_dims)) < noise
    uniform = rng.integers(0, np.broadcast_to(cards, (num_rows, num_dims)))
    data = np.where(mask, uniform, data)
    return data.astype(np.float64)
