"""Datasets: the synthetic census stand-in and point-cloud generators."""

from repro.data.census import CENSUS_DEFAULT_ROWS, CENSUS_DIMENSIONS, census_sample
from repro.data.points import gaussian_mixture

__all__ = [
    "census_sample",
    "CENSUS_DIMENSIONS",
    "CENSUS_DEFAULT_ROWS",
    "gaussian_mixture",
]
