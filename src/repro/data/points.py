"""Simple point-cloud generators for K-Means tests and examples."""

from __future__ import annotations

import numpy as np

from repro.util import as_rng, check_positive

__all__ = ["gaussian_mixture"]


def gaussian_mixture(
    num_points: int,
    num_clusters: int,
    num_dims: int = 2,
    *,
    spread: float = 0.5,
    box: float = 10.0,
    seed: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Sample ``num_points`` from ``num_clusters`` isotropic Gaussians.

    Returns ``(points, true_labels)``.  Cluster centres are drawn
    uniformly in ``[-box, box]^d``; per-cluster standard deviation is
    ``spread``.  Useful as a well-separated sanity input where K-Means
    should recover the generating structure.
    """
    check_positive("num_points", num_points)
    check_positive("num_clusters", num_clusters)
    check_positive("num_dims", num_dims)
    check_positive("spread", spread)
    check_positive("box", box)
    if num_clusters > num_points:
        raise ValueError("need at least one point per cluster")
    rng = as_rng(seed)
    centres = rng.uniform(-box, box, size=(num_clusters, num_dims))
    labels = rng.integers(0, num_clusters, size=num_points)
    points = centres[labels] + rng.normal(0.0, spread, size=(num_points, num_dims))
    return points, labels
