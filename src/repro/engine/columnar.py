"""Columnar shuffle fast path: typed record batches through the engine.

The object-at-a-time engine spends most of its wall-clock on per-record
interpreter work: one ``partitioner(k, R)`` call and one list append to
route every pair, one ``dict.setdefault`` to group it, and two
``estimate_nbytes`` calls to measure it.  For the array-valued iterative
apps the paper cares about (PageRank, SSSP, Jacobi, k-means) every one
of those records is an ``(int64 key, float64 row)`` — so the whole
shuffle can run on NumPy instead:

* :class:`ColumnarBlock` — one task's typed batch: an int64 key array
  plus a float64 value array (``(n,)`` or ``(n, w)`` for multi-column
  rows).  Byte accounting is dtype itemsize math (``arr.nbytes``),
  which coincides exactly with :func:`~repro.cluster.dfs.estimate_nbytes`'s
  8-bytes-per-number estimate for the materialised pairs.
* :func:`route_columnar` — vectorised partition routing: one FNV-1a
  hash sweep (:func:`hash_buckets`, bit-identical to
  :class:`~repro.engine.partitioner.HashPartitioner`), a stable argsort
  and bincount-derived slices instead of a per-pair append loop.
* :func:`combine_columnar` — the map-side combiner (the paper's partial
  aggregation lever, §V-B): sort-based grouping plus a segmented
  ``ufunc.reduceat``, so pre-aggregatable apps ship one value per key
  per partition across the shuffle.
* :class:`ColumnarGroups` — reduce-side grouping by ``np.argsort`` +
  ``np.unique`` index slices instead of dict-of-lists; aggregates with
  the same segmented primitive and can materialise the exact
  object-path ``groups()`` output on demand (the oracle contract the
  equivalence tests pin).

Determinism mirrors the object path record for record: stable sorts
preserve (map task index, emission order) within every bucket and every
key group, and unsorted group order follows first emission — so
materialising a columnar shuffle is *byte-identical* to running the
same logical pairs through the object path.

Floating-point note: both the columnar and the object-path spellings of
the built-in aggregations ("sum" / "min" / "max") funnel through
:func:`segment_aggregate`, so the two paths perform additions in the
same association order and combined values compare equal bitwise, not
just approximately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.partitioner import HashPartitioner, _FNV_OFFSET, _FNV_PRIME

__all__ = [
    "ColumnarBlock",
    "ColumnarGroups",
    "ColumnarReduce",
    "AGG_UFUNCS",
    "hash_buckets",
    "route_columnar",
    "combine_columnar",
    "group_columnar",
    "segment_aggregate",
    "resolve_agg",
    "object_combiner",
    "object_reducer",
    "as_columnar_reduce",
]

#: Built-in aggregations usable as map-side combiners and reduce ops.
AGG_UFUNCS: "dict[str, np.ufunc]" = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def resolve_agg(agg: str) -> np.ufunc:
    """Look up a named aggregation; raises ``ValueError`` on unknowns."""
    try:
        return AGG_UFUNCS[agg]
    except KeyError:
        raise ValueError(
            f"unknown aggregation {agg!r}; choose from {sorted(AGG_UFUNCS)}"
        ) from None


class ColumnarBlock:
    """A typed batch of (key, value) records.

    Keys are int64, values float64 — either a flat ``(n,)`` vector or an
    ``(n, w)`` row matrix for multi-column values (e.g. PageRank's
    ``(rank, contribution)`` rows).  Inputs are coerced/validated once at
    construction so every later operation is a plain array op.
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys: Any, values: Any) -> None:
        keys = np.asarray(keys)
        if keys.dtype == object or not (
                keys.size == 0 or np.issubdtype(keys.dtype, np.integer)):
            # A forced int64 cast would silently truncate float keys,
            # merging records the object path keeps distinct.
            raise TypeError(
                f"keys must be integers, got dtype {keys.dtype}")
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        if values.ndim not in (1, 2):
            raise ValueError(
                f"values must be (n,) or (n, w), got shape {values.shape}")
        if values.shape[0] != keys.shape[0]:
            raise ValueError(
                f"{keys.shape[0]} keys but {values.shape[0]} value rows")
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def width(self) -> int:
        """Value columns per record (1 for flat value vectors)."""
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        """Shuffle bytes of this batch, from dtype itemsize math.

        Equals ``shuffle_bytes`` over the materialised pairs (8 bytes
        per key + 8 per value number), with no per-object traversal.
        """
        return int(self.keys.nbytes + self.values.nbytes)

    @classmethod
    def empty(cls, width: int = 1) -> "ColumnarBlock":
        shape = (0,) if width == 1 else (0, width)
        return cls(np.empty(0, dtype=np.int64),
                   np.empty(shape, dtype=np.float64))

    @classmethod
    def concat(cls, blocks: "Sequence[ColumnarBlock]") -> "ColumnarBlock":
        """Concatenate batches in order (emission / map-index order)."""
        blocks = list(blocks)
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        widths = {b.width for b in blocks}
        if len(widths) > 1:
            raise ValueError(
                f"cannot concat blocks of mixed value widths {sorted(widths)}")
        return cls(np.concatenate([b.keys for b in blocks]),
                   np.concatenate([b.values for b in blocks], axis=0))

    def to_pairs(self) -> "list[tuple[int, Any]]":
        """Materialise the batch as object-path pairs.

        The oracle contract: ``(int key, float value)`` for flat values,
        ``(int key, (float, ...) tuple)`` for rows — exactly what an
        object-path map emitting the same records would produce.
        """
        ks = self.keys.tolist()
        if self.values.ndim == 1:
            return list(zip(ks, self.values.tolist()))
        return list(zip(ks, map(tuple, self.values.tolist())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarBlock(n={len(self)}, width={self.width})"


# ----------------------------------------------------------------------
# Vectorised routing
# ----------------------------------------------------------------------

def hash_buckets(keys: np.ndarray, num_reducers: int) -> np.ndarray:
    """Vectorised ``stable_hash(int(k)) % num_reducers`` for int64 keys.

    Replays :func:`~repro.engine.partitioner.stable_hash`'s FNV-1a over
    the same 17 bytes (type prefix + 16-byte little-endian two's
    complement) with whole-array xor/multiply sweeps, so the bucket of
    every key is identical to the object path's ``HashPartitioner`` —
    the property the columnar/object equivalence tests pin.
    """
    if num_reducers <= 0:
        raise ValueError("num_reducers must be > 0")
    k = np.ascontiguousarray(keys, dtype=np.int64)
    bits = k.view(np.uint64)
    h = np.full(k.shape, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask = np.uint64(0xFF)
    h ^= np.uint64(0x02)  # stable_hash's int type prefix
    h *= prime
    for shift in range(0, 64, 8):
        h ^= (bits >> np.uint64(shift)) & mask
        h *= prime
    # Bytes 8..15 of the 128-bit little-endian encoding: pure sign
    # extension of the int64 (0x00 for >= 0, 0xFF for < 0).
    ext = np.where(k < 0, mask, np.uint64(0))
    for _ in range(8):
        h ^= ext
        h *= prime
    return (h % np.uint64(num_reducers)).astype(np.int64)


def route_columnar(block: ColumnarBlock, num_reducers: int,
                   partitioner: "Callable[[Any, int], int] | None" = None,
                   ) -> "list[ColumnarBlock]":
    """Split one batch into per-reducer sub-batches (vectorised).

    A (default) :class:`HashPartitioner` routes with one vectorised hash
    sweep; any other partitioner is honoured through a per-key fallback
    call (correct, but not the fast path).  The stable sort keeps each
    bucket's records in emission order — the object path's append order.
    """
    if num_reducers < 1:
        raise ValueError("num_reducers must be >= 1")
    # Exact type check: a HashPartitioner subclass may override __call__
    # and must be honoured through the per-key fallback.
    if partitioner is None or type(partitioner) is HashPartitioner:
        buckets = hash_buckets(block.keys, num_reducers)
    else:
        buckets = np.fromiter(
            (partitioner(int(k), num_reducers) for k in block.keys),
            dtype=np.int64, count=len(block))
        if len(buckets) and not (0 <= buckets.min()
                                 and buckets.max() < num_reducers):
            # The object path's buckets[p].append would raise IndexError
            # for a broken partitioner; match that loudness instead of
            # silently dropping the out-of-range records.
            raise IndexError(
                f"partitioner returned bucket outside [0, {num_reducers})")
    order = np.argsort(buckets, kind="stable")
    counts = np.bincount(buckets, minlength=num_reducers)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    sk = block.keys[order]
    sv = block.values[order]
    return [
        ColumnarBlock(sk[bounds[r]: bounds[r + 1]],
                      sv[bounds[r]: bounds[r + 1]])
        for r in range(num_reducers)
    ]


# ----------------------------------------------------------------------
# Segmented aggregation (shared by combiner, reduce, and the oracle)
# ----------------------------------------------------------------------

def segment_aggregate(values: np.ndarray, starts: np.ndarray,
                      ufunc: np.ufunc) -> np.ndarray:
    """Reduce contiguous key segments of ``values`` with ``ufunc``.

    ``starts`` are ascending segment start indices (each segment runs to
    the next start, the last to the end).  2-D values reduce per column
    on contiguous copies so the arithmetic — and therefore the exact
    floating-point result — is the plain 1-D ``ufunc.reduceat``, which
    the object-path aggregation wrappers reuse for bitwise parity.
    """
    if len(starts) == 0:
        return values[:0].copy()
    if values.ndim == 1:
        return ufunc.reduceat(values, starts)
    cols = [ufunc.reduceat(np.ascontiguousarray(values[:, j]), starts)
            for j in range(values.shape[1])]
    return np.stack(cols, axis=1)


def _group_layout(keys: np.ndarray, sort_keys: bool
                  ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Sort-based grouping: ``(order, unique_keys, starts, out_order)``.

    ``order`` stably sorts the records by key (so values within a key
    stay in emission order); ``unique_keys``/``starts`` index the sorted
    layout; ``out_order`` permutes groups into output order — ascending
    key when ``sort_keys``, else first-emission order (the object
    path's dict insertion order).
    """
    order = np.argsort(keys, kind="stable")
    uk, starts = np.unique(keys[order], return_index=True)
    if sort_keys or len(uk) == 0:
        out_order = np.arange(len(uk))
    else:
        out_order = np.argsort(order[starts], kind="stable")
    return order, uk, starts, out_order


def combine_columnar(block: ColumnarBlock, agg: str) -> ColumnarBlock:
    """Map-side combine: one aggregated value row per distinct key.

    Output keys follow first-emission order, matching the object-path
    combiner's dict insertion order so the routed buckets stay
    byte-identical between the two paths.
    """
    if len(block) == 0:
        return block
    ufunc = resolve_agg(agg)
    order, uk, starts, out_order = _group_layout(block.keys, sort_keys=False)
    rows = segment_aggregate(block.values[order], starts, ufunc)
    return ColumnarBlock(uk[out_order], rows[out_order])


# ----------------------------------------------------------------------
# Reduce-side grouping
# ----------------------------------------------------------------------

@dataclass
class ColumnarGroups:
    """One reducer's key-grouped columnar input.

    ``values`` holds every record in sorted-key layout (stable within a
    key, i.e. (map index, emission order)); group ``i`` of the *output*
    order covers ``values[starts[order[i]] : + counts[order[i]]]``.
    """

    #: Distinct keys, in sorted-key layout order.
    keys: np.ndarray
    #: All value rows, key-grouped (sorted-key layout).
    values: np.ndarray
    #: Start index of each group in ``values`` (sorted-key layout).
    starts: np.ndarray
    #: Record count of each group.
    counts: np.ndarray
    #: Output permutation over groups (identity when keys are sorted).
    order: np.ndarray

    @property
    def num_groups(self) -> int:
        return len(self.keys)

    @property
    def num_records(self) -> int:
        return int(self.values.shape[0])

    @property
    def width(self) -> int:
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    def aggregate(self, agg: str) -> "tuple[np.ndarray, np.ndarray]":
        """Reduce every group with a named aggregation (vectorised).

        Returns ``(keys, rows)`` in output group order.
        """
        ufunc = resolve_agg(agg)
        rows = segment_aggregate(self.values, self.starts, ufunc)
        return self.keys[self.order], rows[self.order]

    def to_pairs(self) -> "list[tuple[int, list]]":
        """Materialise the object-path ``groups()[r]`` structure.

        Byte-identical to feeding the same logical pairs through the
        object :class:`~repro.engine.shuffle.ShuffleBuffer`: same key
        order, same value order, same Python types.
        """
        keys = self.keys.tolist()
        starts = self.starts.tolist()
        counts = self.counts.tolist()
        if self.values.ndim == 1:
            vals = self.values.tolist()
            return [
                (keys[g], vals[starts[g]: starts[g] + counts[g]])
                for g in self.order.tolist()
            ]
        vals = [tuple(row) for row in self.values.tolist()]
        return [
            (keys[g], vals[starts[g]: starts[g] + counts[g]])
            for g in self.order.tolist()
        ]


def group_columnar(blocks: "Sequence[ColumnarBlock]", *,
                   sort_keys: bool = True) -> ColumnarGroups:
    """Group one reducer's blocks (in map-task order) by key."""
    merged = ColumnarBlock.concat(blocks)
    order, uk, starts, out_order = _group_layout(merged.keys, sort_keys)
    counts = np.diff(np.append(starts, len(merged)))
    return ColumnarGroups(keys=uk, values=merged.values[order],
                          starts=starts, counts=counts, order=out_order)


# ----------------------------------------------------------------------
# Declarative reduce + object-path oracles
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnarReduce:
    """A declarative reduce the engine can run vectorised.

    ``agg`` names the per-group aggregation; ``finish`` is an optional
    vectorised epilogue ``(keys, rows) -> rows`` applied after it (e.g.
    SSSP folding its cross-edge floor into the distance column).  Must
    be a picklable top-level callable for the process executors.
    """

    agg: str
    finish: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None

    def __post_init__(self) -> None:
        resolve_agg(self.agg)


def as_columnar_reduce(reduce_fn: Any) -> "ColumnarReduce | None":
    """Coerce a job's reduce spec to :class:`ColumnarReduce` if declarative.

    Strings name a bare aggregation; callables (classic reduce
    functions) return ``None`` — they need materialised groups.
    """
    if isinstance(reduce_fn, ColumnarReduce):
        return reduce_fn
    if isinstance(reduce_fn, str):
        return ColumnarReduce(reduce_fn)
    return None


def _materialise_row(row: np.ndarray) -> Any:
    return float(row) if row.ndim == 0 else tuple(float(x) for x in row)


class _ObjectAgg:
    """Object-path spelling of a named aggregation (combiner flavour).

    Funnels through :func:`segment_aggregate` so combined values are
    bitwise identical to the columnar path's.  Picklable (plain class +
    string state) for the process executors.
    """

    def __init__(self, agg: str) -> None:
        resolve_agg(agg)
        self.agg = agg

    def _reduce_values(self, values: list) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        return segment_aggregate(arr, np.array([0]), resolve_agg(self.agg))[0]

    def __call__(self, key: Any, values: list, ctx: Any) -> None:
        ctx.emit(key, _materialise_row(self._reduce_values(values)))


class _ObjectReduce(_ObjectAgg):
    """Object-path spelling of a :class:`ColumnarReduce` (finish included)."""

    def __init__(self, cr: ColumnarReduce) -> None:
        super().__init__(cr.agg)
        self.finish = cr.finish

    def __call__(self, key: Any, values: list, ctx: Any) -> None:
        row = self._reduce_values(values)
        if self.finish is not None:
            keys = np.asarray([key], dtype=np.int64)
            row = np.asarray(self.finish(keys, row[None]))[0]
        ctx.emit(key, _materialise_row(np.asarray(row)))


def object_combiner(combine_fn: Any) -> Any:
    """Resolve a combine spec for the object path (strings -> oracle fn)."""
    if isinstance(combine_fn, str):
        return _ObjectAgg(combine_fn)
    return combine_fn


def object_reducer(reduce_fn: Any) -> Any:
    """Resolve a reduce spec for the object path (declarative -> oracle fn)."""
    cr = as_columnar_reduce(reduce_fn)
    return _ObjectReduce(cr) if cr is not None else reduce_fn
