"""Columnar shuffle fast path: typed record batches through the engine.

The object-at-a-time engine spends most of its wall-clock on per-record
interpreter work: one ``partitioner(k, R)`` call and one list append to
route every pair, one ``dict.setdefault`` to group it, and two
``estimate_nbytes`` calls to measure it.  For the array-valued iterative
apps the paper cares about (PageRank, SSSP, Jacobi, k-means) every one
of those records is an ``(int64 key, float64 row)`` — so the whole
shuffle can run on NumPy instead:

* :class:`ColumnarBlock` — one task's typed batch: an int64 key array
  plus a float64 value array (``(n,)`` or ``(n, w)`` for multi-column
  rows).  Byte accounting is dtype itemsize math (``arr.nbytes``),
  which coincides exactly with :func:`~repro.cluster.dfs.estimate_nbytes`'s
  8-bytes-per-number estimate for the materialised pairs.
* :class:`StringDictionary` — interning table that dictionary-encodes
  string keys as dense int64 ids, so wordcount-style jobs ride the same
  vectorised shuffle; the reverse table travels with the block and byte
  accounting stays the object path's utf-8 length per key.
* :func:`route_columnar` — vectorised partition routing: one FNV-1a
  hash sweep (:func:`hash_buckets`, bit-identical to
  :class:`~repro.engine.partitioner.HashPartitioner`), a stable argsort
  and bincount-derived slices instead of a per-pair append loop.
* :func:`route_combine_columnar` — the fused map tail: ONE stable
  lexsort by (bucket, key) yields both the per-reducer slices and the
  per-key segments, so the map-side combiner (the paper's partial
  aggregation lever, §V-B) costs one sort instead of the three the
  separate combine-then-route spelling paid.
* :func:`combine_columnar` — standalone map-side combine (sort-based
  grouping plus a segmented ``ufunc.reduceat``), kept for direct
  callers and as the unfused oracle.
* :class:`ColumnarGroups` — reduce-side grouping by ``np.argsort`` +
  ``np.unique`` index slices instead of dict-of-lists; aggregates with
  the same segmented primitive and can materialise the exact
  object-path ``groups()`` output on demand (the oracle contract the
  equivalence tests pin).

Determinism mirrors the object path record for record: stable sorts
preserve (map task index, emission order) within every bucket and every
key group, and unsorted group order follows first emission — so
materialising a columnar shuffle is *byte-identical* to running the
same logical pairs through the object path.

Floating-point note: both the columnar and the object-path spellings of
the built-in aggregations ("sum" / "min" / "max") funnel through
:func:`segment_aggregate`, so the two paths perform additions in the
same association order and combined values compare equal bitwise, not
just approximately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.engine.partitioner import (
    HashPartitioner,
    _FNV_OFFSET,
    _FNV_PRIME,
    stable_hash,
)

__all__ = [
    "ColumnarBlock",
    "ColumnarGroups",
    "ColumnarReduce",
    "MergeScratch",
    "StringDictionary",
    "AGG_UFUNCS",
    "hash_buckets",
    "route_columnar",
    "route_combine_columnar",
    "combine_columnar",
    "group_columnar",
    "segment_aggregate",
    "resolve_agg",
    "object_combiner",
    "object_reducer",
    "as_columnar_reduce",
]

#: Built-in aggregations usable as map-side combiners and reduce ops.
AGG_UFUNCS: "dict[str, np.ufunc]" = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}

#: Sort kind for every grouping/routing sort, hoisted to one constant:
#: stability is load-bearing (it preserves emission order inside every
#: bucket and key group, the object path's append order), so no call
#: site re-decides it per batch.
_SORT_KIND = "stable"

#: Reused ascending-index scratch (see :func:`_arange`).
_ARANGE_SCRATCH = np.empty(0, dtype=np.int64)


def _arange(n: int) -> np.ndarray:
    """A read-only view of ``arange(n)`` from a growing shared scratch.

    Group layouts need an identity output permutation every round; the
    scratch amortises that allocation across rounds.  Callers only ever
    index with the result, never write through it.  Thread-safe by
    immutability: a racing grow swaps in a fresh array while earlier
    slices keep their (static) contents.
    """
    global _ARANGE_SCRATCH
    if len(_ARANGE_SCRATCH) < n:
        _ARANGE_SCRATCH = np.arange(max(n, 2 * len(_ARANGE_SCRATCH)),
                                    dtype=np.int64)
    return _ARANGE_SCRATCH[:n]


def resolve_agg(agg: str) -> np.ufunc:
    """Look up a named aggregation; raises ``ValueError`` on unknowns."""
    try:
        return AGG_UFUNCS[agg]
    except KeyError:
        raise ValueError(
            f"unknown aggregation {agg!r}; choose from {sorted(AGG_UFUNCS)}"
        ) from None


class StringDictionary:
    """Interning table: string keys <-> dense int64 dictionary ids.

    Dictionary encoding is what makes string-keyed jobs (wordcount and
    friends) columnar-eligible: records carry int64 ids through every
    vectorised routing/grouping op while the reverse table rides along
    as block metadata.  Parity with the object path is preserved at the
    two places the key *representation* leaks out:

    * routing — :meth:`buckets` hashes the decoded word with
      :func:`~repro.engine.partitioner.stable_hash` (cached per vocab
      entry, applied per record with one fancy-index gather), so every
      record lands in the same reducer the object path's
      ``HashPartitioner(word, R)`` picks;
    * byte accounting — :meth:`utf8_nbytes` charges the utf-8 length of
      the decoded word per record, exactly
      :func:`~repro.cluster.dfs.estimate_nbytes` on the materialised
      pair.

    Ids are assigned in interning order, so a dictionary built while
    scanning emissions gives first-emission id order — the object
    path's dict-insertion order, which the group-ordering contract
    relies on.
    """

    __slots__ = ("_ids", "_words", "_hash", "_utf8")

    def __init__(self, words: "Iterable[str]" = ()) -> None:
        self._ids: "dict[str, int]" = {}
        self._words: "list[str]" = []
        #: Cached per-vocab-entry stable_hash / utf-8 length arrays.
        self._hash: "np.ndarray | None" = None
        self._utf8: "np.ndarray | None" = None
        for w in words:
            self.intern(w)

    def __len__(self) -> int:
        return len(self._words)

    @property
    def words(self) -> "list[str]":
        """The vocabulary, indexed by id (do not mutate)."""
        return self._words

    def intern(self, word: str) -> int:
        """Return ``word``'s id, assigning the next dense id if new."""
        if not isinstance(word, str):
            raise TypeError(
                f"dictionary keys must be str, got {type(word).__name__}")
        wid = self._ids.get(word)
        if wid is None:
            wid = len(self._words)
            self._ids[word] = wid
            self._words.append(word)
            self._hash = None
            self._utf8 = None
        return wid

    def encode(self, words: "Iterable[str]") -> np.ndarray:
        """Intern a sequence of words into an int64 id array."""
        return np.fromiter((self.intern(w) for w in words), dtype=np.int64)

    def decode(self, ids: np.ndarray) -> "list[str]":
        """Materialise words for an id array (the oracle direction)."""
        words = self._words
        return [words[i] for i in ids.tolist()]

    def word(self, wid: int) -> str:
        return self._words[wid]

    def _hash_table(self) -> np.ndarray:
        if self._hash is None or len(self._hash) != len(self._words):
            self._hash = np.fromiter(
                (stable_hash(w) for w in self._words),
                dtype=np.uint64, count=len(self._words))
        return self._hash

    def _utf8_table(self) -> np.ndarray:
        if self._utf8 is None or len(self._utf8) != len(self._words):
            self._utf8 = np.fromiter(
                (len(w.encode("utf-8")) for w in self._words),
                dtype=np.int64, count=len(self._words))
        return self._utf8

    def buckets(self, ids: np.ndarray, num_reducers: int) -> np.ndarray:
        """Reducer of every record: ``stable_hash(word) % R``, vectorised."""
        if num_reducers <= 0:
            raise ValueError("num_reducers must be > 0")
        return (self._hash_table()[ids]
                % np.uint64(num_reducers)).astype(np.int64)

    def utf8_nbytes(self, ids: np.ndarray) -> int:
        """Total utf-8 bytes of the decoded keys (byte-accounting parity)."""
        if len(ids) == 0:
            return 0
        return int(self._utf8_table()[ids].sum())

    def sort_order(self, ids: np.ndarray) -> np.ndarray:
        """Permutation ordering ``ids`` by their decoded words.

        NumPy's unicode comparison and Python's ``str`` comparison are
        both code-point order, so this matches the object path's
        ``sorted(table)`` over string keys exactly.
        """
        if len(ids) == 0:
            return _arange(0)
        words = np.array([self._words[i] for i in ids.tolist()])
        return np.argsort(words, kind=_SORT_KIND)

    def remap_from(self, other: "StringDictionary") -> np.ndarray:
        """Intern ``other``'s vocabulary; returns old-id -> new-id map."""
        return np.fromiter((self.intern(w) for w in other._words),
                           dtype=np.int64, count=len(other._words))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StringDictionary(vocab={len(self)})"


def _is_string_keys(keys: np.ndarray) -> bool:
    """True for arrays the dictionary encoder should intern."""
    if keys.dtype.kind in ("U", "S"):
        return True
    return bool(keys.dtype == object and keys.size
                and all(isinstance(k, str) for k in keys.flat))


class ColumnarBlock:
    """A typed batch of (key, value) records.

    Keys are int64, values float64 — either a flat ``(n,)`` vector or an
    ``(n, w)`` row matrix for multi-column values (e.g. PageRank's
    ``(rank, contribution)`` rows).  Inputs are coerced/validated once at
    construction so every later operation is a plain array op.

    String keys are accepted too: they are dictionary-encoded on entry
    (or looked up in a caller-provided :class:`StringDictionary`), so
    ``keys`` always holds int64 ids and ``dictionary`` the reverse
    table (``None`` for plain integer keys).
    """

    __slots__ = ("keys", "values", "dictionary")

    def __init__(self, keys: Any, values: Any,
                 dictionary: "StringDictionary | None" = None) -> None:
        keys = np.asarray(keys)
        if _is_string_keys(keys):
            if dictionary is None:
                dictionary = StringDictionary()
            keys = dictionary.encode(keys.tolist())
        elif keys.dtype == object or not (
                keys.size == 0 or np.issubdtype(keys.dtype, np.integer)):
            # A forced int64 cast would silently truncate float keys,
            # merging records the object path keeps distinct.
            raise TypeError(
                f"keys must be integers or strings, got dtype {keys.dtype}")
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        if values.ndim not in (1, 2):
            raise ValueError(
                f"values must be (n,) or (n, w), got shape {values.shape}")
        if values.shape[0] != keys.shape[0]:
            raise ValueError(
                f"{keys.shape[0]} keys but {values.shape[0]} value rows")
        if dictionary is not None and keys.size and (
                keys.min() < 0 or keys.max() >= len(dictionary)):
            raise ValueError("dictionary id out of range for vocabulary")
        self.keys = keys
        self.values = values
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def width(self) -> int:
        """Value columns per record (1 for flat value vectors)."""
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        """Shuffle bytes of this batch, from dtype itemsize math.

        Equals ``shuffle_bytes`` over the materialised pairs: 8 bytes
        per key + 8 per value number for integer keys, the utf-8 length
        per decoded key for dictionary-encoded string keys — with no
        per-object traversal.
        """
        if self.dictionary is not None:
            return int(self.dictionary.utf8_nbytes(self.keys)
                       + self.values.nbytes)
        return int(self.keys.nbytes + self.values.nbytes)

    @classmethod
    def empty(cls, width: int = 1,
              dictionary: "StringDictionary | None" = None) -> "ColumnarBlock":
        shape = (0,) if width == 1 else (0, width)
        return cls(np.empty(0, dtype=np.int64),
                   np.empty(shape, dtype=np.float64), dictionary)

    @classmethod
    def concat(cls, blocks: "Sequence[ColumnarBlock]") -> "ColumnarBlock":
        """Concatenate batches in order (emission / map-index order).

        Dictionary-encoded batches merge their vocabularies in block
        order — later blocks' ids are remapped into the merged table,
        so first-emission id order is preserved across the whole
        concatenation (the object path's dict-insertion order).
        """
        blocks = list(blocks)
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        widths = {b.width for b in blocks}
        if len(widths) > 1:
            raise ValueError(
                f"cannot concat blocks of mixed value widths {sorted(widths)}")
        dicts = [b.dictionary for b in blocks]
        if any(d is not None for d in dicts):
            if any(d is None for d in dicts):
                raise ValueError(
                    "cannot concat dictionary-encoded and plain integer "
                    "key blocks")
            merged = StringDictionary()
            keys = [merged.remap_from(b.dictionary)[b.keys] for b in blocks]
            return cls(np.concatenate(keys),
                       np.concatenate([b.values for b in blocks], axis=0),
                       merged)
        return cls(np.concatenate([b.keys for b in blocks]),
                   np.concatenate([b.values for b in blocks], axis=0))

    def key_objects(self) -> list:
        """Keys as object-path Python keys (ints, or decoded words)."""
        if self.dictionary is not None:
            return self.dictionary.decode(self.keys)
        return self.keys.tolist()

    def to_pairs(self) -> "list[tuple[Any, Any]]":
        """Materialise the batch as object-path pairs.

        The oracle contract: ``(key, float value)`` for flat values,
        ``(key, (float, ...) tuple)`` for rows — with int keys for
        plain blocks and decoded str keys for dictionary-encoded ones —
        exactly what an object-path map emitting the same records would
        produce.
        """
        ks = self.key_objects()
        if self.values.ndim == 1:
            return list(zip(ks, self.values.tolist()))
        return list(zip(ks, map(tuple, self.values.tolist())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dic = f", vocab={len(self.dictionary)}" if self.dictionary else ""
        return f"ColumnarBlock(n={len(self)}, width={self.width}{dic})"


# ----------------------------------------------------------------------
# Vectorised routing
# ----------------------------------------------------------------------

def hash_buckets(keys: np.ndarray, num_reducers: int) -> np.ndarray:
    """Vectorised ``stable_hash(int(k)) % num_reducers`` for int64 keys.

    Replays :func:`~repro.engine.partitioner.stable_hash`'s FNV-1a over
    the same 17 bytes (type prefix + 16-byte little-endian two's
    complement) with whole-array xor/multiply sweeps, so the bucket of
    every key is identical to the object path's ``HashPartitioner`` —
    the property the columnar/object equivalence tests pin.
    """
    if num_reducers <= 0:
        raise ValueError("num_reducers must be > 0")
    k = np.ascontiguousarray(keys, dtype=np.int64)
    bits = k.view(np.uint64)
    h = np.full(k.shape, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask = np.uint64(0xFF)
    h ^= np.uint64(0x02)  # stable_hash's int type prefix
    h *= prime
    for shift in range(0, 64, 8):
        h ^= (bits >> np.uint64(shift)) & mask
        h *= prime
    # Bytes 8..15 of the 128-bit little-endian encoding: pure sign
    # extension of the int64 (0x00 for >= 0, 0xFF for < 0).
    ext = np.where(k < 0, mask, np.uint64(0))
    for _ in range(8):
        h ^= ext
        h *= prime
    return (h % np.uint64(num_reducers)).astype(np.int64)


def _bucket_ids(block: ColumnarBlock, num_reducers: int,
                partitioner: "Callable[[Any, int], int] | None") -> np.ndarray:
    """Reducer assignment of every record, matching the object path.

    A (default) :class:`HashPartitioner` routes with one vectorised
    hash sweep (over decoded-word hashes for dictionary-encoded keys);
    any other partitioner is honoured through a per-key fallback call
    on the object-path key (correct, but not the fast path).
    """
    # Exact type check: a HashPartitioner subclass may override __call__
    # and must be honoured through the per-key fallback.
    if partitioner is None or type(partitioner) is HashPartitioner:
        if block.dictionary is not None:
            return block.dictionary.buckets(block.keys, num_reducers)
        return hash_buckets(block.keys, num_reducers)
    buckets = np.fromiter(
        (partitioner(k, num_reducers) for k in block.key_objects()),
        dtype=np.int64, count=len(block))
    if len(buckets) and not (0 <= buckets.min()
                             and buckets.max() < num_reducers):
        # The object path's buckets[p].append would raise IndexError
        # for a broken partitioner; match that loudness instead of
        # silently dropping the out-of-range records.
        raise IndexError(
            f"partitioner returned bucket outside [0, {num_reducers})")
    return buckets


def route_columnar(block: ColumnarBlock, num_reducers: int,
                   partitioner: "Callable[[Any, int], int] | None" = None,
                   ) -> "list[ColumnarBlock]":
    """Split one batch into per-reducer sub-batches (vectorised).

    The stable sort keeps each bucket's records in emission order — the
    object path's append order.  A single-reducer job routes without
    sorting at all (everything lands in bucket 0, already in order).
    """
    if num_reducers < 1:
        raise ValueError("num_reducers must be >= 1")
    if num_reducers == 1:
        return [block]
    buckets = _bucket_ids(block, num_reducers, partitioner)
    order = np.argsort(buckets, kind=_SORT_KIND)
    counts = np.bincount(buckets, minlength=num_reducers)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    sk = block.keys[order]
    sv = block.values[order]
    return [
        ColumnarBlock(sk[bounds[r]: bounds[r + 1]],
                      sv[bounds[r]: bounds[r + 1]], block.dictionary)
        for r in range(num_reducers)
    ]


#: Key spans at or below this ride the radix fused combine: NumPy's
#: stable argsort is an LSD radix sort only for <= 16-bit integer
#: dtypes (an order of magnitude cheaper than int64 merge sort).
_RADIX_SPAN = 1 << 16


def _radix_combine(
    block: ColumnarBlock, num_reducers: int, ufunc: np.ufunc,
    partitioner: "Callable[[Any, int], int] | None",
) -> "list[ColumnarBlock] | None":
    """Narrow-key fused combine: radix sort records, hash only uniques.

    A key maps to exactly one bucket, so grouping by *key alone* is
    enough — no per-record bucket array, no lexsort.  When the key span
    fits 16 bits (graph node ids, dictionary codes — the bundled
    columnar workloads), the one record-length sort is a uint16 radix
    argsort, and everything after it (hashing, bucket clustering,
    emission ordering) runs over the combined *uniques* only.
    Aggregation goes through the same :func:`segment_aggregate` as the
    lexsort path — identical segments, identical floats.
    """
    if not (partitioner is None or type(partitioner) is HashPartitioner):
        return None
    keys = block.keys
    n = len(keys)
    kmin = int(keys.min())
    if int(keys.max()) - kmin >= _RADIX_SPAN:
        return None
    k16 = (keys - kmin if kmin else keys).astype(np.uint16)
    order = np.argsort(k16, kind=_SORT_KIND)
    sk = keys[order]
    seg_new = np.empty(n, dtype=bool)
    seg_new[0] = True
    np.not_equal(sk[1:], sk[:-1], out=seg_new[1:])
    starts = np.flatnonzero(seg_new)
    rows = segment_aggregate(block.values[order], starts, ufunc)
    uk = sk[starts]
    gfirst = order[starts]  # first-emission index of each key (stable sort)
    if block.dictionary is not None:
        gbuckets = block.dictionary.buckets(uk, num_reducers)
    else:
        gbuckets = hash_buckets(uk, num_reducers)
    # Emission-order the uniques, then stably cluster by bucket: per
    # bucket, keys come out in first-emission order — the object
    # combiner's dict-insertion order restricted to the bucket.  Both
    # sorts stay radix when their values fit uint16.
    pe = np.argsort(gfirst.astype(np.uint16) if n <= _RADIX_SPAN
                    else gfirst, kind=_SORT_KIND)
    gb = gbuckets.astype(np.uint16) if num_reducers <= _RADIX_SPAN \
        else gbuckets
    final = pe[np.argsort(gb[pe], kind=_SORT_KIND)]
    counts = np.bincount(gbuckets, minlength=num_reducers)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    sk = uk[final]
    srows = rows[final]
    return [
        ColumnarBlock(sk[bounds[r]:bounds[r + 1]],
                      srows[bounds[r]:bounds[r + 1]], block.dictionary)
        for r in range(num_reducers)
    ]


def route_combine_columnar(
    block: ColumnarBlock, num_reducers: int, agg: str,
    partitioner: "Callable[[Any, int], int] | None" = None,
) -> "list[ColumnarBlock]":
    """Fused route + map-side combine: one sort, per-bucket aggregation.

    The separate ``combine_columnar`` -> ``route_columnar`` spelling
    pays three stable sorts per batch (group, output order, route);
    this tail pays ONE ``np.lexsort`` by (bucket, key) — a key maps to
    exactly one bucket, so the (bucket, key) segments of the sorted
    layout *are* the key groups, each with its values in emission
    order.  One segmented ``ufunc.reduceat`` later, each bucket's
    combined rows come out in first-emission key order — byte-identical
    to the object path's combine-then-route (dict-insertion order
    restricted to the bucket) and to the unfused columnar spelling.

    Narrow integer keys (node ids, dictionary codes — span under 2**16)
    skip the lexsort: a key maps to exactly one bucket, so a single
    uint16 *radix* argsort by key alone groups the records, and only
    the combined *uniques* — typically a fraction of the records — are
    hashed and bucket-ordered.  That makes combining strictly cheaper
    than plain routing on duplicated-key workloads instead of a
    sort-cost gamble, while the shared :func:`segment_aggregate` keeps
    the floats bitwise identical to every other spelling.
    """
    if num_reducers < 1:
        raise ValueError("num_reducers must be >= 1")
    if len(block) == 0:
        return ([block] if num_reducers == 1
                else route_columnar(block, num_reducers, partitioner))
    ufunc = resolve_agg(agg)
    if num_reducers == 1:
        # No routing needed; a plain combine is already the fused tail.
        return [combine_columnar(block, agg)]
    narrow = _radix_combine(block, num_reducers, ufunc, partitioner)
    if narrow is not None:
        return narrow
    buckets = _bucket_ids(block, num_reducers, partitioner)
    # lexsort is stable with the last key primary: (bucket, then key),
    # emission order within every (bucket, key) run.
    order = np.lexsort((block.keys, buckets))
    sk = block.keys[order]
    sb = buckets[order]
    seg_new = np.empty(len(sk), dtype=bool)
    seg_new[0] = True
    np.logical_or(sk[1:] != sk[:-1], sb[1:] != sb[:-1], out=seg_new[1:])
    starts = np.flatnonzero(seg_new)
    rows = segment_aggregate(block.values[order], starts, ufunc)
    gkeys = sk[starts]
    gbuckets = sb[starts]
    gfirst = order[starts]  # original index of each group's first emission
    counts = np.bincount(gbuckets, minlength=num_reducers)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    out: "list[ColumnarBlock]" = []
    for r in range(num_reducers):
        lo, hi = bounds[r], bounds[r + 1]
        perm = np.argsort(gfirst[lo:hi], kind=_SORT_KIND)
        out.append(ColumnarBlock(gkeys[lo:hi][perm], rows[lo:hi][perm],
                                 block.dictionary))
    return out


# ----------------------------------------------------------------------
# Segmented aggregation (shared by combiner, reduce, and the oracle)
# ----------------------------------------------------------------------

def segment_aggregate(values: np.ndarray, starts: np.ndarray,
                      ufunc: np.ufunc) -> np.ndarray:
    """Reduce contiguous key segments of ``values`` with ``ufunc``.

    ``starts`` are ascending segment start indices (each segment runs to
    the next start, the last to the end).  2-D values reduce per column
    on contiguous copies so the arithmetic — and therefore the exact
    floating-point result — is the plain 1-D ``ufunc.reduceat``, which
    the object-path aggregation wrappers reuse for bitwise parity.
    """
    if len(starts) == 0:
        return values[:0].copy()
    if values.ndim == 1:
        return ufunc.reduceat(values, starts)
    cols = [ufunc.reduceat(np.ascontiguousarray(values[:, j]), starts)
            for j in range(values.shape[1])]
    return np.stack(cols, axis=1)


def _group_layout(keys: np.ndarray, sort_keys: bool
                  ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Sort-based grouping: ``(order, unique_keys, starts, out_order)``.

    ``order`` stably sorts the records by key (so values within a key
    stay in emission order); ``unique_keys``/``starts`` index the sorted
    layout; ``out_order`` permutes groups into output order — ascending
    key when ``sort_keys``, else first-emission order (the object
    path's dict insertion order).
    """
    order = np.argsort(keys, kind=_SORT_KIND)
    uk, starts = np.unique(keys[order], return_index=True)
    if sort_keys or len(uk) == 0:
        out_order = _arange(len(uk))
    else:
        out_order = np.argsort(order[starts], kind=_SORT_KIND)
    return order, uk, starts, out_order


def combine_columnar(block: ColumnarBlock, agg: str) -> ColumnarBlock:
    """Map-side combine: one aggregated value row per distinct key.

    Output keys follow first-emission order, matching the object-path
    combiner's dict insertion order so the routed buckets stay
    byte-identical between the two paths.
    """
    if len(block) == 0:
        return block
    ufunc = resolve_agg(agg)
    order, uk, starts, out_order = _group_layout(block.keys, sort_keys=False)
    rows = segment_aggregate(block.values[order], starts, ufunc)
    return ColumnarBlock(uk[out_order], rows[out_order], block.dictionary)


# ----------------------------------------------------------------------
# Reduce-side grouping
# ----------------------------------------------------------------------

@dataclass
class ColumnarGroups:
    """One reducer's key-grouped columnar input.

    ``values`` holds every record in sorted-key layout (stable within a
    key, i.e. (map index, emission order)); group ``i`` of the *output*
    order covers ``values[starts[order[i]] : + counts[order[i]]]``.
    """

    #: Distinct keys, in sorted-key layout order.
    keys: np.ndarray
    #: All value rows, key-grouped (sorted-key layout).
    values: np.ndarray
    #: Start index of each group in ``values`` (sorted-key layout).
    starts: np.ndarray
    #: Record count of each group.
    counts: np.ndarray
    #: Output permutation over groups (identity when keys are sorted).
    order: np.ndarray
    #: Reverse table for dictionary-encoded string keys (else None).
    dictionary: "StringDictionary | None" = field(default=None)

    @property
    def num_groups(self) -> int:
        return len(self.keys)

    @property
    def num_records(self) -> int:
        return int(self.values.shape[0])

    @property
    def width(self) -> int:
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    def aggregate(self, agg: str) -> "tuple[np.ndarray, np.ndarray]":
        """Reduce every group with a named aggregation (vectorised).

        Returns ``(keys, rows)`` in output group order (keys are
        dictionary ids when :attr:`dictionary` is set).
        """
        ufunc = resolve_agg(agg)
        rows = segment_aggregate(self.values, self.starts, ufunc)
        return self.keys[self.order], rows[self.order]

    def to_pairs(self) -> "list[tuple[Any, list]]":
        """Materialise the object-path ``groups()[r]`` structure.

        Byte-identical to feeding the same logical pairs through the
        object :class:`~repro.engine.shuffle.ShuffleBuffer`: same key
        order, same value order, same Python types (decoded words for
        dictionary-encoded keys).
        """
        if self.dictionary is not None:
            keys: list = self.dictionary.decode(self.keys)
        else:
            keys = self.keys.tolist()
        starts = self.starts.tolist()
        counts = self.counts.tolist()
        if self.values.ndim == 1:
            vals = self.values.tolist()
            return [
                (keys[g], vals[starts[g]: starts[g] + counts[g]])
                for g in self.order.tolist()
            ]
        vals = [tuple(row) for row in self.values.tolist()]
        return [
            (keys[g], vals[starts[g]: starts[g] + counts[g]])
            for g in self.order.tolist()
        ]


class MergeScratch:
    """Reusable concat buffers for the columnar shuffle merge.

    Sealing a columnar shuffle concatenates every reducer's blocks into
    one transient batch that only lives until its sorted copies are
    taken; an iterative driver pays that allocation R times per round.
    One scratch (owned by the runtime, one sealing thread at a time)
    recycles the buffers across reducers and rounds.  The grouped
    output never aliases the scratch — sorting fancy-indexes fresh
    arrays out of it.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.int64)
        self._values: "dict[int, np.ndarray]" = {}

    def _keys_buf(self, n: int) -> np.ndarray:
        if len(self._keys) < n:
            self._keys = np.empty(max(n, 2 * len(self._keys)),
                                  dtype=np.int64)
        return self._keys[:n]

    def _values_buf(self, n: int, width: int) -> np.ndarray:
        buf = self._values.get(width)
        if buf is None or buf.shape[0] < n:
            rows = max(n, 2 * buf.shape[0] if buf is not None else n)
            shape = (rows,) if width == 1 else (rows, width)
            buf = np.empty(shape, dtype=np.float64)
            self._values[width] = buf
        return buf[:n]

    def concat(self, blocks: "list[ColumnarBlock]") -> ColumnarBlock:
        """``ColumnarBlock.concat`` into reused buffers (plain-int keys)."""
        n = sum(len(b) for b in blocks)
        width = blocks[0].width
        keys = self._keys_buf(n)
        values = self._values_buf(n, width)
        at = 0
        for b in blocks:
            stop = at + len(b)
            keys[at:stop] = b.keys
            values[at:stop] = b.values
            at = stop
        return ColumnarBlock(keys, values)


def _merge_blocks(blocks: "Sequence[ColumnarBlock]",
                  scratch: "MergeScratch | None") -> ColumnarBlock:
    blocks = list(blocks)
    if (scratch is None or len(blocks) < 2
            or any(b.dictionary is not None for b in blocks)
            or len({b.width for b in blocks}) != 1):
        return ColumnarBlock.concat(blocks)
    return scratch.concat(blocks)


def group_columnar(blocks: "Sequence[ColumnarBlock]", *,
                   sort_keys: bool = True,
                   scratch: "MergeScratch | None" = None) -> ColumnarGroups:
    """Group one reducer's blocks (in map-task order) by key.

    Dictionary-encoded keys group by id (bijective with the words) but
    honour ``sort_keys`` in *decoded word* order — the object path's
    ``sorted(table)`` over string keys.  ``scratch`` recycles the
    transient concat buffers across calls (single owner thread).
    """
    merged = _merge_blocks(blocks, scratch)
    dic = merged.dictionary
    order, uk, starts, out_order = _group_layout(
        merged.keys, sort_keys and dic is None)
    if sort_keys and dic is not None and len(uk):
        out_order = dic.sort_order(uk)
    counts = np.diff(np.append(starts, len(merged)))
    return ColumnarGroups(keys=uk, values=merged.values[order],
                          starts=starts, counts=counts, order=out_order,
                          dictionary=dic)


# ----------------------------------------------------------------------
# Declarative reduce + object-path oracles
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnarReduce:
    """A declarative reduce the engine can run vectorised.

    ``agg`` names the per-group aggregation; ``finish`` is an optional
    vectorised epilogue ``(keys, rows) -> rows`` applied after it (e.g.
    SSSP folding its cross-edge floor into the distance column).  Must
    be a picklable top-level callable for the process executors.
    """

    agg: str
    finish: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None

    def __post_init__(self) -> None:
        resolve_agg(self.agg)


def as_columnar_reduce(reduce_fn: Any) -> "ColumnarReduce | None":
    """Coerce a job's reduce spec to :class:`ColumnarReduce` if declarative.

    Strings name a bare aggregation; callables (classic reduce
    functions) return ``None`` — they need materialised groups.
    """
    if isinstance(reduce_fn, ColumnarReduce):
        return reduce_fn
    if isinstance(reduce_fn, str):
        return ColumnarReduce(reduce_fn)
    return None


def _materialise_row(row: np.ndarray) -> Any:
    return float(row) if row.ndim == 0 else tuple(float(x) for x in row)


class _ObjectAgg:
    """Object-path spelling of a named aggregation (combiner flavour).

    Funnels through :func:`segment_aggregate` so combined values are
    bitwise identical to the columnar path's.  Picklable (plain class +
    string state) for the process executors.
    """

    def __init__(self, agg: str) -> None:
        resolve_agg(agg)
        self.agg = agg

    def _reduce_values(self, values: list) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        return segment_aggregate(arr, np.array([0]), resolve_agg(self.agg))[0]

    def __call__(self, key: Any, values: list, ctx: Any) -> None:
        ctx.emit(key, _materialise_row(self._reduce_values(values)))


class _ObjectReduce(_ObjectAgg):
    """Object-path spelling of a :class:`ColumnarReduce` (finish included)."""

    def __init__(self, cr: ColumnarReduce) -> None:
        super().__init__(cr.agg)
        self.finish = cr.finish

    def __call__(self, key: Any, values: list, ctx: Any) -> None:
        row = self._reduce_values(values)
        if self.finish is not None:
            keys = np.asarray([key], dtype=np.int64)
            row = np.asarray(self.finish(keys, row[None]))[0]
        ctx.emit(key, _materialise_row(np.asarray(row)))


def object_combiner(combine_fn: Any) -> Any:
    """Resolve a combine spec for the object path (strings -> oracle fn)."""
    if isinstance(combine_fn, str):
        return _ObjectAgg(combine_fn)
    return combine_fn


def object_reducer(reduce_fn: Any) -> Any:
    """Resolve a reduce spec for the object path (declarative -> oracle fn)."""
    cr = as_columnar_reduce(reduce_fn)
    return _ObjectReduce(cr) if cr is not None else reduce_fn
