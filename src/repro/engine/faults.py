"""Failure injection and the deterministic-replay recovery contract.

MapReduce's fault tolerance "is achieved through deterministic-replay,
i.e., re-scheduling failed computations on another running node" (§II).
To test that our runtime honours the contract (same final output with or
without failures), this module injects controlled task failures:

* :class:`FaultPlan.scripted` — fail exact ``(phase, task, attempt)``
  combinations, for precise unit tests.
* :class:`FaultPlan.random` — fail each attempt with probability ``p``
  from a counter-based deterministic hash, modelling the "real-life
  transient failures" of a production cloud (§VI) while staying fully
  reproducible and picklable (safe to ship to process-pool workers).

Failures are not the only heterogeneity a production cloud injects:
tasks also *straggle* — they run, just slowly.  :class:`StragglerPlan`
is the deterministic source of that slowness for the simulated cluster
(per-node slowdown multipliers plus hash-decided transient stalls), and
:attr:`FaultPlan.stalls` injects real wall-clock stalls into engine
task attempts so speculative re-execution has something to race.

Independent task failures miss the correlated case: a whole machine (or
a whole rack) goes down mid-round, taking every in-flight attempt on it
*and* its already-produced map outputs.  :class:`NodeFaultPlan` scripts
exactly that — failure *domains* (node → tasks, rack → nodes) with
deterministic death times — and both execution layers consume it: the
real runtime kills/invalidates by task placement, the simulated cluster
by slot placement through its ``WorkerPool``.  Recovery is the paper's
deterministic replay, extended with lineage: lost map outputs are
re-executed, not merely retried.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.partitioner import stable_hash

__all__ = ["SimulatedTaskFailure", "FaultPlan", "StragglerPlan",
           "NodeDeath", "NodeFaultPlan"]


class SimulatedTaskFailure(RuntimeError):
    """Raised inside a task runner to simulate a machine/task failure."""


@dataclass(frozen=True)
class FaultPlan:
    """Decides whether a given task attempt fails.

    Use the class methods to construct; an empty plan never fails.
    """

    #: Scripted failures: (phase, task_index) -> number of failing attempts.
    scripted: "dict[tuple[str, int], int]" = field(default_factory=dict)
    #: Random failure probability per attempt.
    probability: float = 0.0
    #: Seed folded into the decision hash for the random mode.
    seed: int = 0
    #: Attempts >= this index never fail (guarantees eventual success).
    always_succeed_from: int = 1_000_000
    #: Wall-clock stalls: (phase, task_index) -> seconds the task's
    #: *first* attempt sleeps before running.  Stalls model transient
    #: slowness, so retries and speculative backups run at full speed —
    #: which is exactly what gives a backup attempt its edge.
    stalls: "dict[tuple[str, int], float]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        for (phase, idx), n in self.scripted.items():
            if phase not in ("map", "reduce"):
                raise ValueError(f"unknown phase {phase!r}")
            if idx < 0 or n < 0:
                raise ValueError("scripted entries must be non-negative")
        for (phase, idx), secs in self.stalls.items():
            if phase not in ("map", "reduce"):
                raise ValueError(f"unknown phase {phase!r}")
            if idx < 0 or secs < 0:
                raise ValueError("stall entries must be non-negative")

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no failures."""
        return cls()

    @classmethod
    def script(cls, failures: "dict[tuple[str, int], int]") -> "FaultPlan":
        """Fail the first N attempts of specific tasks.

        ``failures[("map", 3)] = 2`` makes map task 3 fail on attempts
        0 and 1 and succeed from attempt 2.
        """
        return cls(scripted=dict(failures))

    @classmethod
    def random(cls, probability: float, *, seed: int = 0,
               max_failures_per_task: int = 2) -> "FaultPlan":
        """Fail each attempt independently with ``probability``.

        ``max_failures_per_task`` bounds consecutive failures so a job
        with ``max_attempts`` > that bound always completes — matching a
        cloud where failures are transient rather than permanent.
        """
        return cls(probability=probability, seed=seed,
                   always_succeed_from=max_failures_per_task)

    @classmethod
    def stall(cls, stalls: "dict[tuple[str, int], float]") -> "FaultPlan":
        """Stall the first attempt of specific tasks by wall-clock seconds.

        ``stalls[("map", 3)] = 0.5`` makes map task 3's attempt 0 sleep
        half a second before doing its work; retries and speculative
        backups of the same task run unstalled.
        """
        return cls(stalls=dict(stalls))

    def stall_seconds_for(self, phase: str, task_index: int,
                          attempt: int) -> float:
        """Seconds this attempt should sleep before running (0 for
        retries/backups: stalls are transient, tied to attempt 0)."""
        if attempt != 0:
            return 0.0
        return self.stalls.get((phase, task_index), 0.0)

    def maybe_fail(self, phase: str, task_index: int, attempt: int) -> None:
        """Raise :class:`SimulatedTaskFailure` if this attempt should fail."""
        if attempt >= self.always_succeed_from:
            return
        n = self.scripted.get((phase, task_index))
        if n is not None and attempt < n:
            raise SimulatedTaskFailure(
                f"scripted failure: {phase} task {task_index} attempt {attempt}"
            )
        if self.probability > 0.0:
            h = stable_hash((self.seed, phase, task_index, attempt))
            if (h % 10_000_000) / 10_000_000.0 < self.probability:
                raise SimulatedTaskFailure(
                    f"random failure: {phase} task {task_index} attempt {attempt}"
                )

    @property
    def is_empty(self) -> bool:
        return (not self.scripted and self.probability == 0.0
                and not self.stalls)


@dataclass(frozen=True)
class StragglerPlan:
    """Deterministic heterogeneity for the simulated cluster.

    Two ingredients, mirroring what the paper's production cloud does to
    task durations:

    * ``node_slowdown`` — per-node multipliers on task duration (a node
      mapped to 4.0 runs every task four times slower: a failing disk,
      a noisy neighbour VM).
    * transient stalls — any individual task, on any node, loses
      ``stall_seconds`` with probability ``stall_probability``, decided
      by a counter-based hash so runs replay bit-identically.

    The plan is consumed by :class:`~repro.cluster.SimCluster` phase
    scheduling (duck-typed — the cluster package never imports the
    engine), making simulated phase charges reflect per-task slowdowns
    instead of uniform node speed.
    """

    #: node_id -> duration multiplier (> 1 is slower). Missing ids run
    #: at full speed.
    node_slowdown: "dict[int, float]" = field(default_factory=dict)
    #: Probability any given task suffers a transient stall.
    stall_probability: float = 0.0
    #: Seconds a stalled task loses before making progress.
    stall_seconds: float = 0.0
    #: Seed folded into the stall decision hash.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.stall_probability <= 1.0:
            raise ValueError("stall_probability must be in [0, 1]")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        for nid, factor in self.node_slowdown.items():
            if nid < 0:
                raise ValueError("node ids must be >= 0")
            if factor < 1.0:
                raise ValueError(
                    f"slowdown for node {nid} must be >= 1 (got {factor}); "
                    "fast nodes belong in SimNode.speed")

    @classmethod
    def none(cls) -> "StragglerPlan":
        """A plan with no stragglers."""
        return cls()

    @classmethod
    def slow_nodes(cls, node_slowdown: "dict[int, float]", *,
                   stall_probability: float = 0.0,
                   stall_seconds: float = 0.0,
                   seed: int = 0) -> "StragglerPlan":
        """Slow specific nodes down, optionally with transient stalls."""
        return cls(node_slowdown=dict(node_slowdown),
                   stall_probability=stall_probability,
                   stall_seconds=stall_seconds, seed=seed)

    def node_factor(self, node_id: int) -> float:
        """Duration multiplier for tasks scheduled on ``node_id``."""
        return self.node_slowdown.get(node_id, 1.0)

    def transient_stall(self, phase: str, task_index: int) -> float:
        """Deterministic stall seconds for one task of one phase."""
        if self.stall_probability <= 0.0 or self.stall_seconds <= 0.0:
            return 0.0
        h = stable_hash((self.seed, "stall", phase, task_index))
        if (h % 10_000_000) / 10_000_000.0 < self.stall_probability:
            return self.stall_seconds
        return 0.0

    @property
    def is_empty(self) -> bool:
        return not self.node_slowdown and (
            self.stall_probability == 0.0 or self.stall_seconds == 0.0)


@dataclass(frozen=True)
class NodeDeath:
    """One scripted correlated failure: a node (or its rack) dies.

    The two triggers serve the two execution layers.  The simulated
    cluster kills the node ``at_seconds`` into the named round's map
    phase — simulated time is its native clock.  The real runtime has no
    useful wall clock (task durations are microseconds and
    nondeterministic), so it fires the death once ``after_completions``
    map tasks of the round have completed — a deterministic progress
    point on every executor.
    """

    #: The node that dies (with ``rack=True``: any node of the rack,
    #: expanded to the whole rack by the plan).
    node: int
    #: Global iteration index (round) the death occurs in.
    round: int = 0
    #: Simulated seconds into the round's map phase (SimCluster path).
    at_seconds: float = 0.0
    #: Kill the node's entire rack, not just the node.
    rack: bool = False
    #: Completed-map-task count that triggers the death (engine path).
    after_completions: int = 1

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if self.at_seconds < 0:
            raise ValueError("at_seconds must be >= 0")
        if self.after_completions < 0:
            raise ValueError("after_completions must be >= 0")


@dataclass(frozen=True)
class NodeFaultPlan:
    """Correlated-failure domains: which nodes die, when, and together.

    Failure domains compose node → tasks and rack → nodes: killing a
    node kills every in-flight attempt placed on it and invalidates its
    completed map outputs; killing a rack does that to
    ``nodes_per_rack`` adjacent nodes at once (node ``n`` lives in rack
    ``n // nodes_per_rack``).  Deaths are scripted
    (:meth:`kill_node` / :meth:`kill_rack`) or drawn per (round, node)
    from a counter-based hash (:meth:`random`) — either way fully
    deterministic and picklable.

    Detection is not free: a death is only *noticed* after
    ``heartbeat_seconds`` of silence, which the simulated cluster prices
    into the recovery timeline (the real runtime notices via in-process
    callbacks, so the charge is applied by the accountant instead).

    Consumed duck-typed by :class:`~repro.cluster.WorkerPool` and
    :class:`~repro.cluster.SimCluster` (the cluster package never
    imports the engine) and natively by
    :class:`~repro.engine.MapReduceRuntime`.
    """

    #: Cluster size the domains are defined over.
    num_nodes: int = 8
    #: Rack width; node n belongs to rack n // nodes_per_rack.
    nodes_per_rack: int = 4
    #: Scripted deaths (rack deaths expand at query time).
    deaths: "tuple[NodeDeath, ...]" = ()
    #: Per (round, node) random death probability.
    probability: float = 0.0
    #: Seed folded into the random-death hash.
    seed: int = 0
    #: Heartbeat interval: silence longer than this marks a node dead.
    heartbeat_seconds: float = 3.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not 1 <= self.nodes_per_rack <= self.num_nodes:
            raise ValueError("nodes_per_rack must be in [1, num_nodes]")
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        if self.heartbeat_seconds < 0:
            raise ValueError("heartbeat_seconds must be >= 0")
        for d in self.deaths:
            if d.node >= self.num_nodes:
                raise ValueError(
                    f"death names node {d.node} but the plan has "
                    f"{self.num_nodes} nodes")

    @classmethod
    def none(cls) -> "NodeFaultPlan":
        """A plan under which every node survives."""
        return cls()

    @classmethod
    def kill_node(cls, node: int, *, round: int = 0,
                  at_seconds: float = 0.0, after_completions: int = 1,
                  num_nodes: int = 8, nodes_per_rack: int = 4,
                  heartbeat_seconds: float = 3.0) -> "NodeFaultPlan":
        """Script one node's death ("node 3 dies at t=12s of round 4")."""
        return cls(num_nodes=num_nodes,
                   nodes_per_rack=min(nodes_per_rack, num_nodes),
                   heartbeat_seconds=heartbeat_seconds,
                   deaths=(NodeDeath(node, round=round,
                                     at_seconds=at_seconds,
                                     after_completions=after_completions),))

    @classmethod
    def kill_rack(cls, rack: int, *, round: int = 0,
                  at_seconds: float = 0.0, after_completions: int = 1,
                  num_nodes: int = 8, nodes_per_rack: int = 4,
                  heartbeat_seconds: float = 3.0) -> "NodeFaultPlan":
        """Script a whole rack's death (correlated: a switch, a PDU)."""
        nodes_per_rack = min(nodes_per_rack, num_nodes)
        first = rack * nodes_per_rack
        if first >= num_nodes:
            raise ValueError(f"rack {rack} is beyond a {num_nodes}-node "
                             f"cluster with {nodes_per_rack}-node racks")
        return cls(num_nodes=num_nodes, nodes_per_rack=nodes_per_rack,
                   heartbeat_seconds=heartbeat_seconds,
                   deaths=(NodeDeath(first, round=round,
                                     at_seconds=at_seconds, rack=True,
                                     after_completions=after_completions),))

    @classmethod
    def random(cls, probability: float, *, seed: int = 0,
               num_nodes: int = 8, nodes_per_rack: int = 4,
               heartbeat_seconds: float = 3.0) -> "NodeFaultPlan":
        """Kill each node each round with ``probability``, hash-decided.

        Which nodes die in which rounds varies deterministically in
        ``seed``; random deaths fire at round start (``at_seconds=0``,
        ``after_completions=1``) so both layers trigger them the same
        way.
        """
        return cls(num_nodes=num_nodes,
                   nodes_per_rack=min(nodes_per_rack, num_nodes),
                   probability=probability, seed=seed,
                   heartbeat_seconds=heartbeat_seconds)

    def node_rack(self, node: int) -> int:
        """Rack id of ``node``."""
        return node // self.nodes_per_rack

    def rack_nodes(self, rack: int) -> "tuple[int, ...]":
        """All node ids of ``rack`` that exist in this cluster."""
        first = rack * self.nodes_per_rack
        return tuple(n for n in range(first, first + self.nodes_per_rack)
                     if n < self.num_nodes)

    def deaths_in_round(self, round: int) -> "dict[int, NodeDeath]":
        """Expanded node → death map for one round.

        Rack deaths expand to every node of the rack (each expanded
        death keeps the trigger of the scripted one).  Random deaths are
        decided per (round, node) by a counter-based hash.
        """
        out: "dict[int, NodeDeath]" = {}
        for d in self.deaths:
            if d.round != round:
                continue
            targets = (self.rack_nodes(self.node_rack(d.node))
                       if d.rack else (d.node,))
            for n in targets:
                out.setdefault(n, NodeDeath(
                    n, round=round, at_seconds=d.at_seconds, rack=d.rack,
                    after_completions=d.after_completions))
        if self.probability > 0.0:
            for n in range(self.num_nodes):
                if n in out:
                    continue
                h = stable_hash((self.seed, "death", round, n))
                if (h % 10_000_000) / 10_000_000.0 < self.probability:
                    out[n] = NodeDeath(n, round=round)
        return out

    @property
    def is_empty(self) -> bool:
        return not self.deaths and self.probability == 0.0
