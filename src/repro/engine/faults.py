"""Failure injection and the deterministic-replay recovery contract.

MapReduce's fault tolerance "is achieved through deterministic-replay,
i.e., re-scheduling failed computations on another running node" (§II).
To test that our runtime honours the contract (same final output with or
without failures), this module injects controlled task failures:

* :class:`FaultPlan.scripted` — fail exact ``(phase, task, attempt)``
  combinations, for precise unit tests.
* :class:`FaultPlan.random` — fail each attempt with probability ``p``
  from a counter-based deterministic hash, modelling the "real-life
  transient failures" of a production cloud (§VI) while staying fully
  reproducible and picklable (safe to ship to process-pool workers).

Failures are not the only heterogeneity a production cloud injects:
tasks also *straggle* — they run, just slowly.  :class:`StragglerPlan`
is the deterministic source of that slowness for the simulated cluster
(per-node slowdown multipliers plus hash-decided transient stalls), and
:attr:`FaultPlan.stalls` injects real wall-clock stalls into engine
task attempts so speculative re-execution has something to race.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.partitioner import stable_hash

__all__ = ["SimulatedTaskFailure", "FaultPlan", "StragglerPlan"]


class SimulatedTaskFailure(RuntimeError):
    """Raised inside a task runner to simulate a machine/task failure."""


@dataclass(frozen=True)
class FaultPlan:
    """Decides whether a given task attempt fails.

    Use the class methods to construct; an empty plan never fails.
    """

    #: Scripted failures: (phase, task_index) -> number of failing attempts.
    scripted: "dict[tuple[str, int], int]" = field(default_factory=dict)
    #: Random failure probability per attempt.
    probability: float = 0.0
    #: Seed folded into the decision hash for the random mode.
    seed: int = 0
    #: Attempts >= this index never fail (guarantees eventual success).
    always_succeed_from: int = 1_000_000
    #: Wall-clock stalls: (phase, task_index) -> seconds the task's
    #: *first* attempt sleeps before running.  Stalls model transient
    #: slowness, so retries and speculative backups run at full speed —
    #: which is exactly what gives a backup attempt its edge.
    stalls: "dict[tuple[str, int], float]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        for (phase, idx), n in self.scripted.items():
            if phase not in ("map", "reduce"):
                raise ValueError(f"unknown phase {phase!r}")
            if idx < 0 or n < 0:
                raise ValueError("scripted entries must be non-negative")
        for (phase, idx), secs in self.stalls.items():
            if phase not in ("map", "reduce"):
                raise ValueError(f"unknown phase {phase!r}")
            if idx < 0 or secs < 0:
                raise ValueError("stall entries must be non-negative")

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no failures."""
        return cls()

    @classmethod
    def script(cls, failures: "dict[tuple[str, int], int]") -> "FaultPlan":
        """Fail the first N attempts of specific tasks.

        ``failures[("map", 3)] = 2`` makes map task 3 fail on attempts
        0 and 1 and succeed from attempt 2.
        """
        return cls(scripted=dict(failures))

    @classmethod
    def random(cls, probability: float, *, seed: int = 0,
               max_failures_per_task: int = 2) -> "FaultPlan":
        """Fail each attempt independently with ``probability``.

        ``max_failures_per_task`` bounds consecutive failures so a job
        with ``max_attempts`` > that bound always completes — matching a
        cloud where failures are transient rather than permanent.
        """
        return cls(probability=probability, seed=seed,
                   always_succeed_from=max_failures_per_task)

    @classmethod
    def stall(cls, stalls: "dict[tuple[str, int], float]") -> "FaultPlan":
        """Stall the first attempt of specific tasks by wall-clock seconds.

        ``stalls[("map", 3)] = 0.5`` makes map task 3's attempt 0 sleep
        half a second before doing its work; retries and speculative
        backups of the same task run unstalled.
        """
        return cls(stalls=dict(stalls))

    def stall_seconds_for(self, phase: str, task_index: int,
                          attempt: int) -> float:
        """Seconds this attempt should sleep before running (0 for
        retries/backups: stalls are transient, tied to attempt 0)."""
        if attempt != 0:
            return 0.0
        return self.stalls.get((phase, task_index), 0.0)

    def maybe_fail(self, phase: str, task_index: int, attempt: int) -> None:
        """Raise :class:`SimulatedTaskFailure` if this attempt should fail."""
        if attempt >= self.always_succeed_from:
            return
        n = self.scripted.get((phase, task_index))
        if n is not None and attempt < n:
            raise SimulatedTaskFailure(
                f"scripted failure: {phase} task {task_index} attempt {attempt}"
            )
        if self.probability > 0.0:
            h = stable_hash((self.seed, phase, task_index, attempt))
            if (h % 10_000_000) / 10_000_000.0 < self.probability:
                raise SimulatedTaskFailure(
                    f"random failure: {phase} task {task_index} attempt {attempt}"
                )

    @property
    def is_empty(self) -> bool:
        return (not self.scripted and self.probability == 0.0
                and not self.stalls)


@dataclass(frozen=True)
class StragglerPlan:
    """Deterministic heterogeneity for the simulated cluster.

    Two ingredients, mirroring what the paper's production cloud does to
    task durations:

    * ``node_slowdown`` — per-node multipliers on task duration (a node
      mapped to 4.0 runs every task four times slower: a failing disk,
      a noisy neighbour VM).
    * transient stalls — any individual task, on any node, loses
      ``stall_seconds`` with probability ``stall_probability``, decided
      by a counter-based hash so runs replay bit-identically.

    The plan is consumed by :class:`~repro.cluster.SimCluster` phase
    scheduling (duck-typed — the cluster package never imports the
    engine), making simulated phase charges reflect per-task slowdowns
    instead of uniform node speed.
    """

    #: node_id -> duration multiplier (> 1 is slower). Missing ids run
    #: at full speed.
    node_slowdown: "dict[int, float]" = field(default_factory=dict)
    #: Probability any given task suffers a transient stall.
    stall_probability: float = 0.0
    #: Seconds a stalled task loses before making progress.
    stall_seconds: float = 0.0
    #: Seed folded into the stall decision hash.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.stall_probability <= 1.0:
            raise ValueError("stall_probability must be in [0, 1]")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        for nid, factor in self.node_slowdown.items():
            if nid < 0:
                raise ValueError("node ids must be >= 0")
            if factor < 1.0:
                raise ValueError(
                    f"slowdown for node {nid} must be >= 1 (got {factor}); "
                    "fast nodes belong in SimNode.speed")

    @classmethod
    def none(cls) -> "StragglerPlan":
        """A plan with no stragglers."""
        return cls()

    @classmethod
    def slow_nodes(cls, node_slowdown: "dict[int, float]", *,
                   stall_probability: float = 0.0,
                   stall_seconds: float = 0.0,
                   seed: int = 0) -> "StragglerPlan":
        """Slow specific nodes down, optionally with transient stalls."""
        return cls(node_slowdown=dict(node_slowdown),
                   stall_probability=stall_probability,
                   stall_seconds=stall_seconds, seed=seed)

    def node_factor(self, node_id: int) -> float:
        """Duration multiplier for tasks scheduled on ``node_id``."""
        return self.node_slowdown.get(node_id, 1.0)

    def transient_stall(self, phase: str, task_index: int) -> float:
        """Deterministic stall seconds for one task of one phase."""
        if self.stall_probability <= 0.0 or self.stall_seconds <= 0.0:
            return 0.0
        h = stable_hash((self.seed, "stall", phase, task_index))
        if (h % 10_000_000) / 10_000_000.0 < self.stall_probability:
            return self.stall_seconds
        return 0.0

    @property
    def is_empty(self) -> bool:
        return not self.node_slowdown and (
            self.stall_probability == 0.0 or self.stall_seconds == 0.0)
