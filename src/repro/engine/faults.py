"""Failure injection and the deterministic-replay recovery contract.

MapReduce's fault tolerance "is achieved through deterministic-replay,
i.e., re-scheduling failed computations on another running node" (§II).
To test that our runtime honours the contract (same final output with or
without failures), this module injects controlled task failures:

* :class:`FaultPlan.scripted` — fail exact ``(phase, task, attempt)``
  combinations, for precise unit tests.
* :class:`FaultPlan.random` — fail each attempt with probability ``p``
  from a counter-based deterministic hash, modelling the "real-life
  transient failures" of a production cloud (§VI) while staying fully
  reproducible and picklable (safe to ship to process-pool workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.partitioner import stable_hash

__all__ = ["SimulatedTaskFailure", "FaultPlan"]


class SimulatedTaskFailure(RuntimeError):
    """Raised inside a task runner to simulate a machine/task failure."""


@dataclass(frozen=True)
class FaultPlan:
    """Decides whether a given task attempt fails.

    Use the class methods to construct; an empty plan never fails.
    """

    #: Scripted failures: (phase, task_index) -> number of failing attempts.
    scripted: "dict[tuple[str, int], int]" = field(default_factory=dict)
    #: Random failure probability per attempt.
    probability: float = 0.0
    #: Seed folded into the decision hash for the random mode.
    seed: int = 0
    #: Attempts >= this index never fail (guarantees eventual success).
    always_succeed_from: int = 1_000_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        for (phase, idx), n in self.scripted.items():
            if phase not in ("map", "reduce"):
                raise ValueError(f"unknown phase {phase!r}")
            if idx < 0 or n < 0:
                raise ValueError("scripted entries must be non-negative")

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no failures."""
        return cls()

    @classmethod
    def script(cls, failures: "dict[tuple[str, int], int]") -> "FaultPlan":
        """Fail the first N attempts of specific tasks.

        ``failures[("map", 3)] = 2`` makes map task 3 fail on attempts
        0 and 1 and succeed from attempt 2.
        """
        return cls(scripted=dict(failures))

    @classmethod
    def random(cls, probability: float, *, seed: int = 0,
               max_failures_per_task: int = 2) -> "FaultPlan":
        """Fail each attempt independently with ``probability``.

        ``max_failures_per_task`` bounds consecutive failures so a job
        with ``max_attempts`` > that bound always completes — matching a
        cloud where failures are transient rather than permanent.
        """
        return cls(probability=probability, seed=seed,
                   always_succeed_from=max_failures_per_task)

    def maybe_fail(self, phase: str, task_index: int, attempt: int) -> None:
        """Raise :class:`SimulatedTaskFailure` if this attempt should fail."""
        if attempt >= self.always_succeed_from:
            return
        n = self.scripted.get((phase, task_index))
        if n is not None and attempt < n:
            raise SimulatedTaskFailure(
                f"scripted failure: {phase} task {task_index} attempt {attempt}"
            )
        if self.probability > 0.0:
            h = stable_hash((self.seed, phase, task_index, attempt))
            if (h % 10_000_000) / 10_000_000.0 < self.probability:
                raise SimulatedTaskFailure(
                    f"random failure: {phase} task {task_index} attempt {attempt}"
                )

    @property
    def is_empty(self) -> bool:
        return not self.scripted and self.probability == 0.0
