"""Job counters, after Hadoop's counter facility.

Counters are the engine's measurement channel: every task counts its
input/output records and operations, tasks' counters are merged into the
job's, and the cost model converts the operation counts into simulated
seconds.  Applications may define their own counters through the task
context (``ctx.incr("my.counter")``).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Counters",
    "MAP_INPUT_RECORDS",
    "MAP_OUTPUT_RECORDS",
    "COMBINE_INPUT_RECORDS",
    "COMBINE_OUTPUT_RECORDS",
    "REDUCE_INPUT_GROUPS",
    "REDUCE_INPUT_RECORDS",
    "REDUCE_OUTPUT_RECORDS",
    "SHUFFLE_BYTES",
    "MAP_OPS",
    "REDUCE_OPS",
    "TASK_RETRIES",
    "SPECULATIVE_BACKUPS",
    "SPECULATIVE_WINS",
    "SPECULATIVE_WASTED_TASKS",
    "NODE_DEATHS",
    "LOST_MAP_OUTPUTS",
]

# Built-in counter names (namespaced like Hadoop's "FileSystemCounters").
MAP_INPUT_RECORDS = "task.map.input.records"
MAP_OUTPUT_RECORDS = "task.map.output.records"
COMBINE_INPUT_RECORDS = "task.combine.input.records"
COMBINE_OUTPUT_RECORDS = "task.combine.output.records"
REDUCE_INPUT_GROUPS = "task.reduce.input.groups"
REDUCE_INPUT_RECORDS = "task.reduce.input.records"
REDUCE_OUTPUT_RECORDS = "task.reduce.output.records"
SHUFFLE_BYTES = "job.shuffle.bytes"
MAP_OPS = "task.map.ops"
REDUCE_OPS = "task.reduce.ops"
TASK_RETRIES = "job.task.retries"
SPECULATIVE_BACKUPS = "job.speculative.backups"
SPECULATIVE_WINS = "job.speculative.wins"
SPECULATIVE_WASTED_TASKS = "job.speculative.wasted"
NODE_DEATHS = "job.node.deaths"
LOST_MAP_OUTPUTS = "job.node.lost.map.outputs"


@dataclass
class Counters:
    """A mergeable bag of named non-negative counters."""

    _data: _Counter = field(default_factory=_Counter)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (negative increments rejected)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._data[name] += amount

    def get(self, name: str) -> int:
        """Current value (0 for never-touched counters)."""
        return self._data.get(name, 0)

    def merge(self, other: "Counters | Mapping[str, int]") -> None:
        """Add another counter bag into this one."""
        items: Iterable[tuple[str, int]]
        if isinstance(other, Counters):
            items = other._data.items()
        else:
            items = other.items()
        for name, amount in items:
            self._data[name] += amount

    def as_dict(self) -> dict[str, int]:
        """Snapshot as a plain dict (sorted keys)."""
        return {k: self._data[k] for k in sorted(self._data)}

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Counters({inner})"
