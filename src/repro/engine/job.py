"""Job definition: user functions plus configuration.

A :class:`Job` bundles the programmer-supplied ``map``/``reduce`` (and
optional ``combine``) functions with a :class:`JobConf`.  The function
signatures follow the paper's description of the traditional MapReduce
API (§II):

* ``map_fn(key, value, ctx)`` — called once per input record; emits
  intermediate pairs with ``ctx.emit(k, v)``.
* ``reduce_fn(key, values, ctx)`` — called once per distinct key with
  the full list of values; emits output pairs with ``ctx.emit(k, v)``.
* ``combine_fn(key, values, ctx)`` — optional map-side pre-aggregation
  ("a combiner is often used to aggregate over keys from map tasks
  executing on the same node", §II); must be semantically idempotent
  with respect to the reduce for correctness, which the property tests
  verify for the bundled applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.columnar import ColumnarReduce, resolve_agg
from repro.engine.partitioner import HashPartitioner, Partitioner

__all__ = ["JobConf", "Job"]

MapFn = Callable[[Any, Any, Any], None]
ReduceFn = Callable[[Any, list, Any], None]


@dataclass(frozen=True)
class JobConf:
    """Static configuration of one MapReduce job."""

    #: Number of reduce tasks (R).  Map task count follows the input splits.
    num_reducers: int = 8
    #: Maximum attempts per task before the job fails (Hadoop default 4).
    max_attempts: int = 4
    #: Sort keys within each reduce partition (deterministic output order).
    sort_keys: bool = True
    #: Human-readable job name for traces and errors.
    name: str = "job"
    #: Run the job through the streaming pipeline (§V-B.2's eager
    #: reduce-side consumption): failed task attempts are resubmitted
    #: immediately instead of waiting for a per-attempt barrier, reduce
    #: tasks launch the moment the shuffle buffer completes, and — with a
    #: cluster attached — the shuffle transfer is modelled as overlapping
    #: the map phase.  Output is byte-identical either way; only the
    #: schedule (and the simulated time) changes.
    eager_reduce: bool = False
    #: Allow the columnar fast path when map tasks emit typed batches
    #: (``ctx.emit_block``): vectorised routing/combining/grouping and
    #: dtype-math byte accounting.  ``False`` forces such jobs through
    #: the object path (materialised pairs) — the oracle the columnar
    #: equivalence tests compare against.  Output is byte-identical
    #: either way.
    columnar: bool = True
    #: Minimum records per map batch before a *named* combiner runs —
    #: below it the grouping sort costs more than the bytes it saves,
    #: so the combine is skipped outright.  Applied identically on the
    #: columnar and object paths (callable combiners always run), so
    #: output stays byte-identical.  0 forces combining at any size.
    combine_crossover: int = 64
    #: Lint the job's user functions (:mod:`repro.analysis`) before any
    #: task runs: ``"off"`` (default) skips the check, ``"warn"`` emits
    #: a :class:`~repro.analysis.LintWarning` per finding, ``"strict"``
    #: raises :class:`~repro.analysis.LintError` on error-severity
    #: findings (nondeterminism, impurity, non-commutative combiners,
    #: unpicklable captures).
    lint: str = "off"

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if self.combine_crossover < 0:
            raise ValueError("combine_crossover must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.lint not in ("off", "warn", "strict"):
            raise ValueError(
                f"lint must be 'off', 'warn' or 'strict', got {self.lint!r}")


@dataclass
class Job:
    """User functions + configuration, ready for a runtime to execute.

    ``reduce_fn`` and ``combine_fn`` also accept *declarative* specs:
    a named aggregation string (``"sum"`` / ``"min"`` / ``"max"``) or,
    for the reduce, a :class:`~repro.engine.columnar.ColumnarReduce`.
    Declarative specs run vectorised on the columnar path and through
    arithmetic-identical object wrappers on the classic path, so the
    same job definition executes either way.
    """

    map_fn: MapFn
    reduce_fn: "ReduceFn | str | ColumnarReduce"
    combine_fn: "ReduceFn | str | None" = None
    conf: JobConf = field(default_factory=JobConf)
    partitioner: Partitioner = field(default_factory=HashPartitioner)

    def __post_init__(self) -> None:
        if not callable(self.map_fn):
            raise TypeError("map_fn must be callable")
        if isinstance(self.reduce_fn, str):
            resolve_agg(self.reduce_fn)
        elif not (callable(self.reduce_fn)
                  or isinstance(self.reduce_fn, ColumnarReduce)):
            raise TypeError(
                "reduce_fn must be callable, a named aggregation, or a "
                "ColumnarReduce")
        if isinstance(self.combine_fn, str):
            resolve_agg(self.combine_fn)
        elif self.combine_fn is not None and not callable(self.combine_fn):
            raise TypeError(
                "combine_fn must be callable, a named aggregation, or None")
