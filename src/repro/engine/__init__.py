"""A complete MapReduce runtime (the Hadoop substitute).

Jobs are user ``map``/``reduce``/``combine`` functions over key-value
records; the runtime executes map tasks (one per input split), a
grouping/sorting shuffle, and reduce tasks, with Hadoop-style counters,
hash partitioning, retry-on-failure via deterministic replay, and three
interchangeable executors (serial / threads / processes).  Attaching a
:class:`~repro.cluster.SimCluster` makes every job charge the cost model
for startup, phase makespans, shuffle bytes, barrier, and the DFS round
trip — producing the simulated-time axis of the paper's figures.
"""

from repro.engine.columnar import (
    ColumnarBlock,
    ColumnarGroups,
    ColumnarReduce,
    StringDictionary,
    combine_columnar,
    group_columnar,
    hash_buckets,
    route_columnar,
    route_combine_columnar,
)
from repro.engine.shm import (
    SegmentRegistry,
    ShmBlockRef,
    ShmGroupsRef,
    ShmPickleRef,
)
from repro.engine.counters import Counters
from repro.engine.faults import (
    FaultPlan,
    NodeDeath,
    NodeFaultPlan,
    SimulatedTaskFailure,
    StragglerPlan,
)
from repro.engine.job import Job, JobConf
from repro.engine.partitioner import HashPartitioner, RangePartitioner, stable_hash
from repro.engine.runtime import JobFailedError, JobResult, MapReduceRuntime
from repro.engine.scheduler import (
    ScheduleOutcome,
    fifo_schedule,
    locality_schedule,
    lpt_schedule,
    speculative_schedule,
    submission_order_schedule,
)
from repro.engine.shuffle import ShuffleBuffer, shuffle, shuffle_bytes
from repro.engine.task import TaskContext, TaskResult, run_map_task, run_reduce_task

__all__ = [
    "ColumnarBlock",
    "ColumnarGroups",
    "ColumnarReduce",
    "StringDictionary",
    "combine_columnar",
    "group_columnar",
    "hash_buckets",
    "route_columnar",
    "route_combine_columnar",
    "SegmentRegistry",
    "ShmBlockRef",
    "ShmGroupsRef",
    "ShmPickleRef",
    "Job",
    "JobConf",
    "JobResult",
    "JobFailedError",
    "MapReduceRuntime",
    "Counters",
    "FaultPlan",
    "NodeDeath",
    "NodeFaultPlan",
    "SimulatedTaskFailure",
    "StragglerPlan",
    "HashPartitioner",
    "RangePartitioner",
    "stable_hash",
    "ShuffleBuffer",
    "shuffle",
    "shuffle_bytes",
    "TaskContext",
    "TaskResult",
    "run_map_task",
    "run_reduce_task",
    "ScheduleOutcome",
    "lpt_schedule",
    "submission_order_schedule",
    "fifo_schedule",
    "locality_schedule",
    "speculative_schedule",
]
