"""Task-level execution: contexts, attempts, and the task runners.

A *task* is the unit of scheduling and of failure: one map task per input
split, one reduce task per reduce partition.  Task runners are plain
picklable functions so the process-pool executor can ship them to
workers; they return a :class:`TaskResult` carrying the emitted data,
counters and the operation count the cost model charges for.

Failure injection happens *inside* the runner (so it behaves identically
under every executor) via a :class:`~repro.engine.faults.FaultPlan`
consulted with the task's id and attempt number.  Recovery is Hadoop's
deterministic replay: the runtime simply re-executes the same runner with
the same inputs and a bumped attempt number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    Counters,
    MAP_INPUT_RECORDS,
    MAP_OPS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OPS,
    REDUCE_OUTPUT_RECORDS,
)
from repro.engine.faults import FaultPlan, SimulatedTaskFailure
from repro.engine.shuffle import shuffle_bytes

__all__ = ["TaskContext", "TaskResult", "run_map_task", "run_reduce_task"]


class TaskContext:
    """The ``ctx`` object handed to user map/reduce/combine functions.

    Provides ``emit`` for output, counter increments, and an operation
    counter that feeds the cost model.  One context lives for the whole
    task; per-record bookkeeping is done by the runner.
    """

    __slots__ = ("task_id", "attempt", "counters", "_out", "_ops")

    def __init__(self, task_id: str, attempt: int) -> None:
        self.task_id = task_id
        self.attempt = attempt
        self.counters = Counters()
        self._out: list[tuple[Any, Any]] = []
        self._ops: float = 0.0

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output pair (the paper's ``Emit``/``EmitIntermediate``)."""
        self._out.append((key, value))
        self._ops += 1.0

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment an application counter."""
        self.counters.incr(name, amount)

    def add_ops(self, n: float) -> None:
        """Account ``n`` extra operations toward this task's compute cost.

        Vectorised map functions (which process many records per call)
        use this so the cost model still sees the true operation count.
        """
        if n < 0:
            raise ValueError("ops must be >= 0")
        self._ops += n

    @property
    def output(self) -> list[tuple[Any, Any]]:
        return self._out

    @property
    def ops(self) -> float:
        return self._ops


@dataclass
class TaskResult:
    """What a completed task attempt hands back to the runtime."""

    task_id: str
    attempt: int
    #: For map tasks: buckets[r] = list of (k, v) for reducer r.
    #: For reduce tasks: the emitted output pairs.
    data: Any
    counters: Counters = field(default_factory=Counters)
    ops: float = 0.0
    #: Estimated bytes this task contributes to the shuffle (map tasks
    #: only; measured worker-side so the scan runs in parallel).
    nbytes: int = 0


def run_map_task(
    task_index: int,
    attempt: int,
    split: "list[tuple[Any, Any]]",
    map_fn: Any,
    combine_fn: Any,
    partitioner: Any,
    num_reducers: int,
    fault_plan: "FaultPlan | None" = None,
) -> TaskResult:
    """Execute one map task attempt over its input split.

    Applies ``map_fn`` to every record, optionally combines, then
    partitions the intermediate pairs into per-reducer buckets.
    """
    task_id = f"m{task_index}"
    if fault_plan is not None:
        fault_plan.maybe_fail("map", task_index, attempt)
    ctx = TaskContext(task_id, attempt)
    for key, value in split:
        ctx.counters.incr(MAP_INPUT_RECORDS)
        ctx.add_ops(1.0)
        map_fn(key, value, ctx)
    ctx.counters.incr(MAP_OUTPUT_RECORDS, len(ctx.output))

    pairs = ctx.output
    if combine_fn is not None:
        pairs = _apply_combiner(pairs, combine_fn, ctx)

    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_reducers)]
    for k, v in pairs:
        buckets[partitioner(k, num_reducers)].append((k, v))
    ctx.counters.incr(MAP_OPS, int(ctx.ops))
    return TaskResult(task_id=task_id, attempt=attempt, data=buckets,
                      counters=ctx.counters, ops=ctx.ops,
                      nbytes=shuffle_bytes([buckets]))


def _apply_combiner(pairs: "list[tuple[Any, Any]]", combine_fn: Any,
                    outer_ctx: TaskContext) -> "list[tuple[Any, Any]]":
    """Group this task's pairs by key and run the combiner per group."""
    groups: dict[Any, list] = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    cctx = TaskContext(outer_ctx.task_id + ".combine", outer_ctx.attempt)
    for k, vs in groups.items():
        cctx.counters.incr(COMBINE_INPUT_RECORDS, len(vs))
        cctx.add_ops(float(len(vs)))
        combine_fn(k, vs, cctx)
    cctx.counters.incr(COMBINE_OUTPUT_RECORDS, len(cctx.output))
    outer_ctx.counters.merge(cctx.counters)
    outer_ctx.add_ops(cctx.ops)
    return cctx.output


def run_reduce_task(
    task_index: int,
    attempt: int,
    groups: "list[tuple[Any, list]]",
    reduce_fn: Any,
    fault_plan: "FaultPlan | None" = None,
) -> TaskResult:
    """Execute one reduce task attempt over its grouped input."""
    task_id = f"r{task_index}"
    if fault_plan is not None:
        fault_plan.maybe_fail("reduce", task_index, attempt)
    ctx = TaskContext(task_id, attempt)
    for key, values in groups:
        ctx.counters.incr(REDUCE_INPUT_GROUPS)
        ctx.counters.incr(REDUCE_INPUT_RECORDS, len(values))
        ctx.add_ops(float(len(values)))
        reduce_fn(key, values, ctx)
    ctx.counters.incr(REDUCE_OUTPUT_RECORDS, len(ctx.output))
    ctx.counters.incr(REDUCE_OPS, int(ctx.ops))
    return TaskResult(task_id=task_id, attempt=attempt, data=ctx.output,
                      counters=ctx.counters, ops=ctx.ops)
