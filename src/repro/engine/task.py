"""Task-level execution: contexts, attempts, and the task runners.

A *task* is the unit of scheduling and of failure: one map task per input
split, one reduce task per reduce partition.  Task runners are plain
picklable functions so the process-pool executor can ship them to
workers; they return a :class:`TaskResult` carrying the emitted data,
counters and the operation count the cost model charges for.

Two data representations flow through the runners:

* **Object path** — the classic one-pair-at-a-time flow (``ctx.emit``),
  any hashable key / any value.  The reference semantics and the oracle.
* **Columnar path** — map functions emit typed array batches
  (``ctx.emit_block``); routing, map-side combining, grouping and byte
  accounting all run as whole-array NumPy ops (see
  :mod:`repro.engine.columnar`).  ``JobConf.columnar=False`` forces a
  columnar-emitting job back through the object path (materialised
  pairs), which is how the equivalence tests cross-check the two.

Failure injection happens *inside* the runner (so it behaves identically
under every executor) via a :class:`~repro.engine.faults.FaultPlan`
consulted with the task's id and attempt number.  Recovery is Hadoop's
deterministic replay: the runtime simply re-executes the same runner with
the same inputs and a bumped attempt number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.columnar import (
    ColumnarBlock,
    ColumnarGroups,
    as_columnar_reduce,
    object_combiner,
    object_reducer,
    route_columnar,
    route_combine_columnar,
)
from repro.engine.counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    Counters,
    MAP_INPUT_RECORDS,
    MAP_OPS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OPS,
    REDUCE_OUTPUT_RECORDS,
)
from repro.engine.faults import FaultPlan
from repro.engine.shm import ShmGroupsRef, ShmPickleRef, export_block
from repro.engine.shuffle import shuffle_bytes

__all__ = ["TaskContext", "TaskResult", "run_map_task", "run_reduce_task"]

#: Default combine crossover: batches below this many records skip the
#: map-side combiner entirely.  For tiny batches the grouping sort costs
#: more than the shuffle bytes it saves; the skip rule is a pure
#: function of (named combiner, record count), applied identically on
#: the columnar and object paths so their outputs stay byte-identical.
COMBINE_CROSSOVER = 64


def _skip_combine(combine_fn: Any, n_records: int, crossover: int) -> bool:
    """True when a *named* combiner should be skipped for a tiny batch.

    Callable combiners are never skipped: the engine cannot know they
    are pure aggregations, so eliding them could change output.
    """
    return isinstance(combine_fn, str) and n_records < crossover


class TaskContext:
    """The ``ctx`` object handed to user map/reduce/combine functions.

    Provides ``emit`` for output, counter increments, and an operation
    counter that feeds the cost model.  One context lives for the whole
    task; per-record bookkeeping is done by the runner.
    """

    __slots__ = ("task_id", "attempt", "counters", "_out", "_blocks", "_ops")

    def __init__(self, task_id: str, attempt: int) -> None:
        self.task_id = task_id
        self.attempt = attempt
        self.counters = Counters()
        self._out: list[tuple[Any, Any]] = []
        self._blocks: list[ColumnarBlock] = []
        self._ops: float = 0.0

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output pair (the paper's ``Emit``/``EmitIntermediate``)."""
        self._out.append((key, value))
        self._ops += 1.0

    def emit_block(self, keys: Any, values: Any,
                   dictionary: Any = None) -> None:
        """Emit a typed batch of records in one call (the columnar path).

        ``keys`` is an int64-coercible array — or an array/sequence of
        strings, which are dictionary-encoded on entry (pass a
        pre-built :class:`~repro.engine.columnar.StringDictionary` as
        ``dictionary`` to reuse an interned vocabulary).  ``values`` is
        a float64 array of shape ``(n,)`` or ``(n, w)``.  Counts one
        operation per record, exactly like ``len(keys)`` individual
        :meth:`emit` calls.
        """
        block = ColumnarBlock(keys, values, dictionary)
        self._blocks.append(block)
        self._ops += float(len(block))

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment an application counter."""
        self.counters.incr(name, amount)

    def add_ops(self, n: float) -> None:
        """Account ``n`` extra operations toward this task's compute cost.

        Vectorised map functions (which process many records per call)
        use this so the cost model still sees the true operation count.
        """
        if n < 0:
            raise ValueError("ops must be >= 0")
        self._ops += n

    @property
    def output(self) -> list[tuple[Any, Any]]:
        return self._out

    @property
    def columnar_output(self) -> "list[ColumnarBlock]":
        """Batches emitted via :meth:`emit_block`, in emission order."""
        return self._blocks

    @property
    def ops(self) -> float:
        return self._ops


@dataclass
class TaskResult:
    """What a completed task attempt hands back to the runtime."""

    task_id: str
    attempt: int
    #: For map tasks: buckets[r] = (k, v) list — or a
    #: :class:`~repro.engine.columnar.ColumnarBlock` — for reducer r.
    #: For reduce tasks: the emitted output pairs (or output block).
    data: Any
    counters: Counters = field(default_factory=Counters)
    ops: float = 0.0
    #: Estimated bytes this task's data occupies on the wire — shuffle
    #: bytes for map tasks, output bytes for reduce tasks.  Measured
    #: worker-side (dtype itemsize math on the columnar path, an
    #: ``estimate_nbytes`` scan on the object path) so the driver never
    #: re-scans the same data.
    nbytes: int = 0


def _stall(fault_plan: FaultPlan, phase: str, task_index: int,
           attempt: int) -> None:
    """Sleep out the plan's wall-clock stall for this attempt (the
    heterogeneity speculative re-execution races against)."""
    delay = fault_plan.stall_seconds_for(phase, task_index, attempt)
    if delay > 0.0:
        time.sleep(delay)


def run_map_task(
    task_index: int,
    attempt: int,
    split: "list[tuple[Any, Any]]",
    map_fn: Any,
    combine_fn: Any,
    partitioner: Any,
    num_reducers: int,
    fault_plan: "FaultPlan | None" = None,
    columnar: bool = True,
    combine_crossover: int = COMBINE_CROSSOVER,
    shm_threshold: "int | None" = None,
    shm_prefix: "str | None" = None,
) -> TaskResult:
    """Execute one map task attempt over its input split.

    Applies ``map_fn`` to every record, optionally combines, then
    partitions the intermediate pairs into per-reducer buckets.  A map
    function that emits columnar batches takes the vectorised route —
    fused combine + hash routing, dtype-math byte measurement — unless
    ``columnar`` is False, in which case the batches are materialised
    into pairs and run through the object path (the oracle used by the
    equivalence tests).

    A *named* combiner is skipped outright for batches below
    ``combine_crossover`` records — on both paths, so output stays
    byte-identical.  With ``shm_threshold`` set (process executors),
    routed buckets of at least that many bytes are parked in shared
    memory under ``shm_prefix`` and returned as
    :class:`~repro.engine.shm.ShmBlockRef` handles instead of being
    pickled back to the driver.
    """
    task_id = f"m{task_index}"
    if fault_plan is not None:
        _stall(fault_plan, "map", task_index, attempt)
        fault_plan.maybe_fail("map", task_index, attempt)
    if isinstance(map_fn, ShmPickleRef):
        map_fn = map_fn.load()  # parked once per run, cached per worker
    ctx = TaskContext(task_id, attempt)
    for key, value in split:
        ctx.counters.incr(MAP_INPUT_RECORDS)
        ctx.add_ops(1.0)
        map_fn(key, value, ctx)

    pairs = ctx.output
    if ctx.columnar_output:
        if pairs:
            raise RuntimeError(
                f"map task {task_id} mixed emit() and emit_block() output; "
                "a task must use one representation"
            )
        block = ColumnarBlock.concat(ctx.columnar_output)
        if columnar:
            return _finish_columnar_map(
                task_id, attempt, ctx, block, combine_fn, partitioner,
                num_reducers, combine_crossover=combine_crossover,
                shm_threshold=shm_threshold,
                shm_prefix=f"{shm_prefix}m{task_index}a{attempt}"
                if shm_prefix is not None else None)
        pairs = block.to_pairs()

    ctx.counters.incr(MAP_OUTPUT_RECORDS, len(pairs))
    if combine_fn is not None and not _skip_combine(
            combine_fn, len(pairs), combine_crossover):
        pairs = _apply_combiner(pairs, object_combiner(combine_fn), ctx)

    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_reducers)]
    for k, v in pairs:
        buckets[partitioner(k, num_reducers)].append((k, v))
    ctx.counters.incr(MAP_OPS, int(ctx.ops))
    return TaskResult(task_id=task_id, attempt=attempt, data=buckets,
                      counters=ctx.counters, ops=ctx.ops,
                      nbytes=shuffle_bytes([buckets]))


def _finish_columnar_map(task_id: str, attempt: int, ctx: TaskContext,
                         block: ColumnarBlock, combine_fn: Any,
                         partitioner: Any, num_reducers: int, *,
                         combine_crossover: int = COMBINE_CROSSOVER,
                         shm_threshold: "int | None" = None,
                         shm_prefix: "str | None" = None) -> TaskResult:
    """Vectorised tail of a columnar map task: fused combine+route, measure."""
    ctx.counters.incr(MAP_OUTPUT_RECORDS, len(block))
    if combine_fn is not None and not isinstance(combine_fn, str):
        raise TypeError(
            "columnar map output requires a named combiner "
            f"('sum'/'min'/'max'), got {type(combine_fn).__name__}"
        )
    if combine_fn is not None and not _skip_combine(
            combine_fn, len(block), combine_crossover):
        n_in = len(block)
        buckets = route_combine_columnar(block, num_reducers, combine_fn,
                                         partitioner)
        n_out = sum(len(b) for b in buckets)
        ctx.counters.incr(COMBINE_INPUT_RECORDS, n_in)
        ctx.counters.incr(COMBINE_OUTPUT_RECORDS, n_out)
        # Mirrors the object combiner's cost: one op per input record
        # (the group scans) plus one per emitted record.
        ctx.add_ops(float(n_in + n_out))
    else:
        buckets = route_columnar(block, num_reducers, partitioner)
    nbytes = sum(b.nbytes for b in buckets)
    ctx.counters.incr(MAP_OPS, int(ctx.ops))
    data: list = buckets
    if shm_threshold is not None and shm_prefix is not None:
        data = [export_block(b, f"{shm_prefix}p{r}", shm_threshold)
                for r, b in enumerate(buckets)]
    return TaskResult(task_id=task_id, attempt=attempt, data=data,
                      counters=ctx.counters, ops=ctx.ops,
                      nbytes=nbytes)


def _apply_combiner(pairs: "list[tuple[Any, Any]]", combine_fn: Any,
                    outer_ctx: TaskContext) -> "list[tuple[Any, Any]]":
    """Group this task's pairs by key and run the combiner per group."""
    groups: dict[Any, list] = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    cctx = TaskContext(outer_ctx.task_id + ".combine", outer_ctx.attempt)
    for k, vs in groups.items():
        cctx.counters.incr(COMBINE_INPUT_RECORDS, len(vs))
        cctx.add_ops(float(len(vs)))
        combine_fn(k, vs, cctx)
    cctx.counters.incr(COMBINE_OUTPUT_RECORDS, len(cctx.output))
    outer_ctx.counters.merge(cctx.counters)
    outer_ctx.add_ops(cctx.ops)
    return cctx.output


def run_reduce_task(
    task_index: int,
    attempt: int,
    groups: "list[tuple[Any, list]] | ColumnarGroups | ShmGroupsRef",
    reduce_fn: Any,
    fault_plan: "FaultPlan | None" = None,
    measure_output: bool = True,
    shm_threshold: "int | None" = None,
    shm_prefix: "str | None" = None,
) -> TaskResult:
    """Execute one reduce task attempt over its grouped input.

    Columnar grouped input with a declarative reduce (a named
    aggregation or :class:`~repro.engine.columnar.ColumnarReduce`) runs
    as one segmented array reduction; a classic callable reduce gets
    the groups materialised worker-side (so even custom reduces keep
    the columnar shuffle transport).  Object grouped input runs the
    classic per-group loop, resolving declarative reduces to their
    object-path oracle spelling.

    ``measure_output`` asks the task to estimate its output bytes
    worker-side (``TaskResult.nbytes``); the runtime disables it for
    cluster-less object-path runs, where nothing consumes the value and
    the per-object scan would be pure overhead (the columnar path
    measures for free either way).

    Grouped input may arrive as a shared-memory handle
    (:class:`~repro.engine.shm.ShmGroupsRef`, process executors): the
    task copies the arrays straight out of the named segment instead of
    receiving them through the result pipe.  The segment is left in
    place — it must survive task retries; the driver unlinks it.  With
    ``shm_threshold`` set, a large columnar output block is parked in
    shared memory the same way.
    """
    task_id = f"r{task_index}"
    if fault_plan is not None:
        _stall(fault_plan, "reduce", task_index, attempt)
        fault_plan.maybe_fail("reduce", task_index, attempt)
    if isinstance(reduce_fn, ShmPickleRef):
        reduce_fn = reduce_fn.load()  # parked once per run, cached
    if isinstance(groups, ShmGroupsRef):
        groups = groups.take(unlink=False)
    if isinstance(groups, ColumnarGroups):
        cr = as_columnar_reduce(reduce_fn)
        if cr is not None:
            return _run_columnar_reduce(
                task_id, attempt, groups, cr, shm_threshold=shm_threshold,
                shm_prefix=f"{shm_prefix}r{task_index}a{attempt}"
                if shm_prefix is not None else None)
        groups = groups.to_pairs()
    ctx = TaskContext(task_id, attempt)
    reduce_fn = object_reducer(reduce_fn)
    for key, values in groups:
        ctx.counters.incr(REDUCE_INPUT_GROUPS)
        ctx.counters.incr(REDUCE_INPUT_RECORDS, len(values))
        ctx.add_ops(float(len(values)))
        reduce_fn(key, values, ctx)
    ctx.counters.incr(REDUCE_OUTPUT_RECORDS, len(ctx.output))
    ctx.counters.incr(REDUCE_OPS, int(ctx.ops))
    nbytes = shuffle_bytes([[ctx.output]]) if measure_output else 0
    return TaskResult(task_id=task_id, attempt=attempt, data=ctx.output,
                      counters=ctx.counters, ops=ctx.ops, nbytes=nbytes)


def _run_columnar_reduce(task_id: str, attempt: int, groups: ColumnarGroups,
                         cr: Any, *, shm_threshold: "int | None" = None,
                         shm_prefix: "str | None" = None) -> TaskResult:
    """Vectorised reduce: segmented aggregation + optional epilogue."""
    ctx = TaskContext(task_id, attempt)
    keys, rows = groups.aggregate(cr.agg)
    if cr.finish is not None:
        rows = np.asarray(cr.finish(keys, rows), dtype=np.float64)
    out = ColumnarBlock(keys, rows, groups.dictionary)
    ctx.counters.incr(REDUCE_INPUT_GROUPS, groups.num_groups)
    ctx.counters.incr(REDUCE_INPUT_RECORDS, groups.num_records)
    # Cost parity with the object loop: one op per input record (the
    # group scans) plus one per emitted record.
    ctx.add_ops(float(groups.num_records + len(out)))
    ctx.counters.incr(REDUCE_OUTPUT_RECORDS, len(out))
    ctx.counters.incr(REDUCE_OPS, int(ctx.ops))
    nbytes = out.nbytes
    data: Any = out
    if shm_threshold is not None and shm_prefix is not None:
        data = export_block(out, shm_prefix, shm_threshold)
    return TaskResult(task_id=task_id, attempt=attempt, data=data,
                      counters=ctx.counters, ops=ctx.ops, nbytes=nbytes)
