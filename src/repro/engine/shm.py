"""Shared-memory columnar transport for the process executor.

The process pool's default transport pickles every task result through
a pipe — for a columnar job that means serialising, chunking, copying
and deserialising megabytes of ``ColumnarBlock`` arrays per round.
This module replaces the array payload with a POSIX shared-memory
segment: the producer writes the raw buffers once into a named segment
and ships only the *name plus dtype/shape metadata* (a tiny pickle);
the consumer attaches by name, copies the arrays straight out of the
mapping, and closes it.  One memcpy per side, zero pipe traffic for
the data.

Ownership is driver-side and explicit:

* Worker-created segments (map buckets, reduce outputs) are
  ``resource_tracker``-unregistered immediately, so a pooled worker's
  exit never unlinks a segment the driver still needs; the driver
  unlinks each segment the moment it consumes the ref
  (:meth:`_ShmRef.take`).
* Driver-created segments (reduce-task inputs, which outlive the whole
  reduce phase including retries) are recorded in a
  :class:`SegmentRegistry` owned by the runtime and released in the
  job's ``finally`` / ``runtime.close()`` / ``__del__``.
* Names are deterministic (``{prefix}m{i}a{a}p{r}`` / ``{prefix}g{r}``
  / ``{prefix}r{i}a{a}`` / ``{prefix}f``), so an aborted job can sweep
  every segment
  any task *might* have created — nothing leaks even when a crash
  leaves completed-but-unconsumed results behind.

Everything here is fork- and spawn-safe: refs carry only names and
metadata, and attaching is by name.  Blocks below
:data:`SHM_MIN_BYTES` stay on the pickle path — for tiny payloads the
segment round trip (two syscalls + mmap) costs more than it saves.
"""

from __future__ import annotations

import os
import pickle
import uuid
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.engine.columnar import ColumnarBlock, ColumnarGroups

__all__ = [
    "SHM_MIN_BYTES",
    "ShmBlockRef",
    "ShmGroupsRef",
    "ShmPickleRef",
    "SegmentRegistry",
    "export_block",
    "export_groups",
    "export_pickled",
]

#: Default minimum payload (bytes) before a block rides shared memory.
SHM_MIN_BYTES = 64 * 1024


def _untrack(shm: "shared_memory.SharedMemory") -> None:
    """Opt this process's resource tracker out of owning ``shm``.

    Lifetime is managed explicitly by the driver's registry / take();
    the tracker's at-exit unlink would otherwise destroy (or warn
    about) segments another process still owns.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker impl details vary
        pass


def _align(n: int) -> int:
    return (n + 7) & ~7


def _write_segment(name: str, arrays: "list[np.ndarray]") -> "list[tuple]":
    """Create segment ``name``, copy ``arrays`` in back to back.

    Returns the per-array ``(shape, dtype_str, offset)`` specs.  The
    local mapping is closed before returning — the creator keeps no
    handle; consumers re-attach by name.
    """
    specs: "list[tuple]" = []
    offset = 0
    for arr in arrays:
        specs.append((arr.shape, arr.dtype.str, offset))
        offset = _align(offset + arr.nbytes)
    shm = shared_memory.SharedMemory(create=True, name=name,
                                     size=max(offset, 1))
    _untrack(shm)
    try:
        for arr, (shape, dtype, off) in zip(arrays, specs):
            if arr.nbytes:
                dst = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                                 offset=off)
                dst[...] = arr
    finally:
        shm.close()
    return specs


def _read_segment(name: str, specs: "list[tuple]",
                  unlink: bool) -> "list[np.ndarray]":
    """Attach ``name``, copy each spec'd array out, close (and unlink).

    Attaching registers the name with this process's resource tracker
    (CPython <= 3.12 registers on attach, not just create).
    ``unlink()`` unregisters internally, balancing the books; on the
    keep-alive path we unregister explicitly so a pooled worker's exit
    never destroys a segment the driver still owns.
    """
    shm = shared_memory.SharedMemory(name=name)
    if not unlink:
        _untrack(shm)
    try:
        out = [
            np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off).copy()
            for shape, dtype, off in specs
        ]
    finally:
        if unlink:
            shm.unlink()
        shm.close()
    return out


class _ShmRef:
    """Base handle: a named segment plus array layout metadata."""

    __slots__ = ("name", "specs", "nbytes")

    def __init__(self, name: str, specs: "list[tuple]", nbytes: int) -> None:
        self.name = name
        self.specs = specs
        self.nbytes = nbytes

    def _arrays(self, *, unlink: bool) -> "list[np.ndarray]":
        return _read_segment(self.name, self.specs, unlink)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, nbytes={self.nbytes})"


class ShmBlockRef(_ShmRef):
    """A :class:`ColumnarBlock` parked in a shared-memory segment.

    ``dictionary`` (string-key vocab) still travels by pickle — it is
    vocabulary-sized, not record-sized.
    """

    __slots__ = ("dictionary",)

    def __init__(self, name: str, specs: "list[tuple]", nbytes: int,
                 dictionary: Any = None) -> None:
        super().__init__(name, specs, nbytes)
        self.dictionary = dictionary

    def __len__(self) -> int:
        return int(self.specs[0][0][0])

    def take(self, *, unlink: bool = True) -> ColumnarBlock:
        """Materialise the block (one copy out of the mapping).

        ``unlink`` destroys the segment afterwards — the consume-once
        driver side; workers re-reading a retried input pass False.
        """
        keys, values = self._arrays(unlink=unlink)
        return ColumnarBlock(keys, values, self.dictionary)


class ShmGroupsRef(_ShmRef):
    """A reducer's :class:`ColumnarGroups` parked in shared memory."""

    __slots__ = ("dictionary",)

    def __init__(self, name: str, specs: "list[tuple]", nbytes: int,
                 dictionary: Any = None) -> None:
        super().__init__(name, specs, nbytes)
        self.dictionary = dictionary

    def take(self, *, unlink: bool = False) -> ColumnarGroups:
        """Materialise the groups (one copy out of the mapping).

        Defaults to keeping the segment: reduce inputs must survive
        task retries, so only the driver's registry unlinks them.
        """
        keys, values, starts, counts, order = self._arrays(unlink=unlink)
        return ColumnarGroups(keys=keys, values=values, starts=starts,
                              counts=counts, order=order,
                              dictionary=self.dictionary)


#: Worker-side cache of loaded :class:`ShmPickleRef` payloads, keyed by
#: segment name (unique per job run).  Bounded: oldest entry evicted
#: past the cap, so long-lived pooled workers never accumulate stale
#: job functions.
_PICKLE_CACHE: "dict[str, Any]" = {}
_PICKLE_CACHE_CAP = 8


class ShmPickleRef(_ShmRef):
    """An arbitrary pickled object parked once per job run.

    The process pool's default transport re-pickles the job *function*
    into every task submission — for a map callable closing over
    per-partition arrays that is megabytes of identical bytes per
    round.  The driver parks one pickle in a segment instead; tasks
    carry this tiny ref, and each worker attaches, loads and caches the
    object the first time it sees the name (task replays hit the
    cache).  The segment is driver-owned: it must outlive every retry,
    so only the runtime's registry unlinks it.
    """

    __slots__ = ()

    def load(self) -> Any:
        obj = _PICKLE_CACHE.get(self.name, _PICKLE_CACHE)
        if obj is _PICKLE_CACHE:  # sentinel: not cached yet
            [buf] = self._arrays(unlink=False)
            obj = pickle.loads(buf.tobytes())
            while len(_PICKLE_CACHE) >= _PICKLE_CACHE_CAP:
                _PICKLE_CACHE.pop(next(iter(_PICKLE_CACHE)))
            _PICKLE_CACHE[self.name] = obj
        return obj


def export_pickled(obj: Any, name: str,
                   min_bytes: int = SHM_MIN_BYTES) -> "ShmPickleRef | Any":
    """Park ``obj``'s pickle in a segment if it is big enough to pay.

    Small objects (named aggregations, thin callables) come back
    unchanged — per-task pickling of a few hundred bytes is cheaper
    than a segment round trip.
    """
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) < min_bytes:
        return obj
    specs = _write_segment(name, [np.frombuffer(data, dtype=np.uint8)])
    return ShmPickleRef(name, specs, len(data))


def export_block(block: ColumnarBlock, name: str,
                 min_bytes: int = SHM_MIN_BYTES) -> "ShmBlockRef | ColumnarBlock":
    """Park ``block`` in a segment if it is big enough to pay its way."""
    payload = int(block.keys.nbytes + block.values.nbytes)
    if payload < min_bytes:
        return block
    specs = _write_segment(name, [block.keys, block.values])
    return ShmBlockRef(name, specs, block.nbytes, block.dictionary)


def export_groups(groups: ColumnarGroups, name: str,
                  min_bytes: int = SHM_MIN_BYTES
                  ) -> "ShmGroupsRef | ColumnarGroups":
    """Park one reducer's grouped input in a segment if big enough."""
    arrays = [groups.keys, groups.values, groups.starts, groups.counts,
              groups.order]
    payload = int(sum(a.nbytes for a in arrays))
    if payload < min_bytes:
        return groups
    specs = _write_segment(name, arrays)
    return ShmGroupsRef(name, specs, payload, groups.dictionary)


class SegmentRegistry:
    """Driver-side ledger of live shared-memory segments.

    Tracks segments the driver itself created (reduce inputs) so the
    job's ``finally`` — and ultimately ``runtime.close()`` /
    ``__del__`` — can unlink them, and hands out collision-free name
    prefixes per job run.  ``sweep`` is the abort-path net: it probes
    every deterministic name a job's tasks could have created and
    unlinks any that exist, covering worker-created segments whose refs
    never reached the driver.
    """

    def __init__(self) -> None:
        self._token = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self._seq = 0
        self._live: "set[str]" = set()

    @property
    def live_count(self) -> int:
        """Registered segments not yet released (0 after a clean job)."""
        return len(self._live)

    def new_prefix(self) -> str:
        """A unique per-job-run name prefix (process- and run-scoped)."""
        self._seq += 1
        return f"reproshm-{self._token}-{self._seq}-"

    def adopt(self, name: str) -> None:
        """Record a segment this registry must eventually unlink."""
        self._live.add(name)

    def release(self, name: str) -> None:
        """Unlink one segment (tolerates an already-gone segment)."""
        self._live.discard(name)
        _unlink_quietly(name)

    def release_all(self) -> None:
        """Unlink every registered segment (idempotent)."""
        while self._live:
            self.release(self._live.pop())

    def sweep(self, prefix: str, *, num_maps: int, num_reducers: int,
              max_attempts: int, backup_attempts: int = 0) -> int:
        """Unlink every segment a job under ``prefix`` could have made.

        Used on the abort path only: probes are cheap (one failed open
        each) but per-job sweeps would still be pure overhead on the
        happy path, where take()/release have already emptied the
        namespace.  ``backup_attempts`` widens the probe for speculative
        re-execution, whose backup attempts park segments under attempt
        numbers ``max_attempts .. max_attempts + backup_attempts - 1``.
        Returns the number of segments actually reclaimed.
        """
        reclaimed = 0
        names = []
        for a in range(max_attempts + backup_attempts):
            for i in range(num_maps):
                names.extend(f"{prefix}m{i}a{a}p{r}"
                             for r in range(num_reducers))
            names.extend(f"{prefix}r{i}a{a}" for i in range(num_reducers))
        names.extend(f"{prefix}g{r}" for r in range(num_reducers))
        names.extend((f"{prefix}f", f"{prefix}rf"))  # parked job functions
        for name in names:
            self._live.discard(name)
            if _unlink_quietly(name):
                reclaimed += 1
        return reclaimed


def _unlink_quietly(name: str) -> bool:
    """Unlink ``name`` if it exists; True when a segment was reclaimed."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()  # unregisters internally — no explicit _untrack
    except FileNotFoundError:  # pragma: no cover - lost a race
        _untrack(shm)
    shm.close()
    return True
