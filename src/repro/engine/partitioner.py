"""Key -> reducer partitioners.

The partitioner decides which reduce task receives a key.  Hash
partitioning (Hadoop's default) must be *stable across processes*, so we
avoid Python's randomised ``hash`` for strings and use a deterministic
FNV-1a, keeping the cross-executor equivalence guarantee (serial ==
threads == processes) testable.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

__all__ = ["stable_hash", "HashPartitioner", "RangePartitioner", "Partitioner"]

Partitioner = Callable[[Any, int], int]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for b in data:
        h ^= b
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def stable_hash(key: Hashable) -> int:
    """A deterministic, process-stable hash for common key types.

    Supports ints, floats, strings, bytes, bools, None and (nested)
    tuples of these.  Unknown types raise ``TypeError`` rather than
    silently using the per-process randomised ``hash``.
    """
    if key is None:
        return _fnv1a(b"\x00none")
    if isinstance(key, bool):
        return _fnv1a(b"\x01" + bytes([key]))
    if isinstance(key, int):
        return _fnv1a(b"\x02" + key.to_bytes(16, "little", signed=True))
    if isinstance(key, float):
        import struct

        return _fnv1a(b"\x03" + struct.pack("<d", key))
    if isinstance(key, str):
        return _fnv1a(b"\x04" + key.encode("utf-8"))
    if isinstance(key, bytes):
        return _fnv1a(b"\x05" + key)
    if isinstance(key, tuple):
        acc = _FNV_OFFSET
        for item in key:
            acc ^= stable_hash(item)
            acc = (acc * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        return acc
    # numpy scalars quack like python numbers
    try:
        import numpy as np

        if isinstance(key, np.integer):
            return stable_hash(int(key))
        if isinstance(key, np.floating):
            return stable_hash(float(key))
        if isinstance(key, np.str_):
            return stable_hash(str(key))
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(f"no stable hash for key of type {type(key).__name__}")


class HashPartitioner:
    """Hadoop-default partitioner: ``stable_hash(key) mod num_reducers``."""

    def __call__(self, key: Any, num_reducers: int) -> int:
        if num_reducers <= 0:
            raise ValueError("num_reducers must be > 0")
        return stable_hash(key) % num_reducers


class RangePartitioner:
    """Partition orderable keys by split points (for sorted output).

    Parameters
    ----------
    split_points:
        Sorted sequence of ``num_reducers - 1`` boundaries; a key goes to
        the first range whose boundary exceeds it.
    """

    def __init__(self, split_points: "list[Any]") -> None:
        self.split_points = list(split_points)
        for a, b in zip(self.split_points, self.split_points[1:]):
            if not a <= b:
                raise ValueError("split_points must be sorted")

    def __call__(self, key: Any, num_reducers: int) -> int:
        if num_reducers != len(self.split_points) + 1:
            raise ValueError(
                f"RangePartitioner with {len(self.split_points)} split points "
                f"requires {len(self.split_points) + 1} reducers, got {num_reducers}"
            )
        import bisect

        return bisect.bisect_right(self.split_points, key)
